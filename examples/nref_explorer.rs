//! The paper's §1.1 motivating scenario: a biologist runs exploratory
//! queries over the NREF protein database, and the response-time
//! histogram tells the story of the configuration (Figures 1 and 2).
//!
//! ```sh
//! cargo run --release --example nref_explorer
//! ```

use tab_bench::engine::Session;
use tab_bench::eval::report::render_histogram_ascii;
use tab_bench::eval::{build_1c, build_p, run_workload, LogHistogram, Suite, SuiteParams};
use tab_bench::families::Family;
use tab_bench::sqlq::parse;

fn main() {
    let params = SuiteParams::small();
    let suite = Suite::build(params);
    let db = &suite.nref;

    // The paper's Example 1 (adapted to the synthetic instance's
    // constants): proteins per lineage for one named protein.
    let name = {
        // A moderately common protein name (the paper's 'Simian Virus
        // 40' is a specific virus, not the most frequent name in NREF).
        let stats = db.stats("source").expect("stats collected");
        let mcvs = &stats.columns[4].mcvs;
        mcvs[mcvs.len() / 2].0.clone()
    };
    let example_1 = parse(&format!(
        "SELECT t.lineage, COUNT(DISTINCT t2.nref_id) \
         FROM source s, taxonomy t, taxonomy t2 \
         WHERE t.nref_id = s.nref_id AND t.lineage = t2.lineage \
         AND s.p_name = {name} GROUP BY t.lineage"
    ))
    .expect("example 1 parses");

    let p = build_p(db, "NREF");
    let one_c = build_1c(db, "NREF");

    for (label, cfg) in [
        ("P (primary keys only)", &p),
        ("1C (single-column)", &one_c),
    ] {
        let session = Session::new(db, cfg);
        let r = session.run(&example_1, Some(params.timeout_units)).unwrap();
        println!(
            "Example 1 on {label}: {} -> {}",
            r.plan.describe(),
            match &r.outcome {
                o if o.is_timeout() => "TIMEOUT".to_string(),
                o => format!(
                    "{:.1}s, {} lineages",
                    o.sim_seconds_lower_bound(),
                    r.rows.as_ref().map(Vec::len).unwrap_or(0)
                ),
            }
        );
    }

    // One hundred exploratory queries, as in §1.1, and their histograms.
    let workload = tab_bench::eval::prepare_workload(&suite, Family::Nref2J, &p);
    println!("\n{} exploratory queries from NREF2J:", workload.len());
    for (label, cfg) in [("initial (P)", &p), ("single-column (1C)", &one_c)] {
        let run = run_workload(db, cfg, &workload, params.timeout_units);
        let hist = LogHistogram::new(&run.sim_seconds(), 0.1, 1800.0, 1);
        println!("\n--- response times on the {label} configuration ---");
        print!("{}", render_histogram_ascii(&hist, 40));
        println!(
            "cumulative completed: {:.0}%  (timeouts: {})",
            100.0 * run.cfc().completed_fraction(),
            run.timeout_count()
        );
    }
}
