//! Performance goals as CFC constraints — the paper's Example 2.
//!
//! A goal like "10% of queries under 10 s, 50% under a minute, 90%
//! before the timeout" is a step function `G(x)`; a configuration
//! satisfies it when its cumulative frequency curve stays above `G`.
//!
//! ```sh
//! cargo run --release --example goal_check
//! ```

use tab_bench::eval::{build_1c, build_p, run_workload, Goal, Suite, SuiteParams};
use tab_bench::families::Family;

fn main() {
    let params = SuiteParams::small();
    let suite = Suite::build(params);
    let db = &suite.nref;

    let p = build_p(db, "NREF");
    let one_c = build_1c(db, "NREF");
    let workload = tab_bench::eval::prepare_workload(&suite, Family::Nref2J, &p);

    // The paper's Example 2, scaled to this suite's timeout.
    let timeout_s = tab_bench::engine::units_to_sim_seconds(params.timeout_units);
    let goal = Goal::from_steps(vec![
        (timeout_s / 180.0, 0.1),
        (timeout_s / 30.0, 0.5),
        (timeout_s, 0.9),
    ]);
    println!("goal steps (seconds -> required fraction):");
    for (x, f) in goal.steps() {
        println!("  G({x:8.1}s) = {f:.2}");
    }

    for (label, cfg) in [("P", &p), ("1C", &one_c)] {
        let run = run_workload(db, cfg, &workload, params.timeout_units);
        let cfc = run.cfc();
        let verdict = if goal.satisfied_by(&cfc) {
            "SATISFIED"
        } else {
            "violated"
        };
        println!("\nconfiguration {label}: goal {verdict}");
        for (x, f) in goal.steps() {
            println!("  at {x:8.1}s: required {f:.2}, achieved {:.2}", cfc.at(*x));
        }
    }
}
