//! Compare the three recommender profiles against the paper's `1C`
//! baseline on one workload — the benchmark in miniature.
//!
//! ```sh
//! cargo run --release --example advisor_shootout
//! ```

use tab_bench::advisor::{
    one_column_budget_bytes, AdvisorInput, Recommender, SystemA, SystemB, SystemC,
};
use tab_bench::eval::report::render_cfc_ascii;
use tab_bench::eval::{build_1c, build_p, run_workload, Suite, SuiteParams};
use tab_bench::families::Family;
use tab_bench::storage::BuiltConfiguration;

fn main() {
    // Large enough that index choices matter on TPC-H, small enough to
    // finish in about a minute.
    let params = SuiteParams {
        tpch_scale: 0.02,
        workload_size: 40,
        ..SuiteParams::small()
    };
    let suite = Suite::build(params);
    let db = &suite.skth;

    let p = build_p(db, "SkTH");
    let one_c = build_1c(db, "SkTH");
    let budget = one_column_budget_bytes(&p, &one_c);
    println!("space budget (size 1C - size P): {} KiB", budget / 1024);

    let workload = tab_bench::eval::prepare_workload(&suite, Family::SkTH3Js, &p);
    println!("workload: {} SkTH3Js queries", workload.len());

    let run_p = run_workload(db, &p, &workload, params.timeout_units);
    let run_1c = run_workload(db, &one_c, &workload, params.timeout_units);
    let mut curves = vec![
        ("P".to_string(), run_p.cfc()),
        ("1".to_string(), run_1c.cfc()),
    ];

    let input = AdvisorInput {
        db,
        current: &p,
        workload: &workload,
        budget_bytes: budget,
        par: params.par,
        trace: tab_bench::storage::Trace::disabled(),
    };
    for rec in [&SystemA::default() as &dyn Recommender, &SystemB, &SystemC] {
        let (cfg, stats) = rec.recommend_with_stats(&input);
        match cfg {
            None => println!("System {}: no recommendation (gave up)", rec.name()),
            Some(cfg) => {
                println!(
                    "System {}: {} indexes, {} views ({} what-if calls, {:.0}% cached, {:.2}s)",
                    rec.name(),
                    cfg.indexes.len(),
                    cfg.mviews.len(),
                    stats.whatif_calls,
                    stats.cache_hit_rate() * 100.0,
                    stats.wall_seconds
                );
                let built = BuiltConfiguration::build(cfg, db);
                let run = run_workload(db, &built, &workload, params.timeout_units);
                println!(
                    "  total (lower bound): {:.0}s, timeouts {}",
                    run.total_lower_bound_sim_seconds(),
                    run.timeout_count()
                );
                curves.push((rec.name().to_string(), run.cfc()));
            }
        }
    }

    let refs: Vec<(&str, &tab_bench::eval::Cfc)> =
        curves.iter().map(|(l, c)| (l.as_str(), c)).collect();
    println!("\n{}", render_cfc_ascii(&refs, 0.1, 2000.0, 64, 16));
    println!(
        "totals (lower bound): P={:.0}s 1C={:.0}s  -> improvement ratio {:.1}x",
        run_p.total_lower_bound_sim_seconds(),
        run_1c.total_lower_bound_sim_seconds(),
        run_p.total_lower_bound_sim_seconds() / run_1c.total_lower_bound_sim_seconds()
    );
}
