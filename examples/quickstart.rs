//! Quickstart: build a database, compare two configurations with a
//! cumulative frequency curve.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tab_bench::eval::report::render_cfc_ascii;
use tab_bench::eval::{build_1c, build_p, run_workload, Suite, SuiteParams};
use tab_bench::families::Family;

fn main() {
    // 1. A small benchmark suite: synthetic NREF + two TPC-H variants.
    let params = SuiteParams::small();
    let suite = Suite::build(params);
    println!(
        "NREF: {} tables, {} total rows",
        suite.nref.table_names().count(),
        suite.nref.tables().map(|t| t.n_rows()).sum::<usize>()
    );

    // 2. The paper's two baseline configurations.
    let p = build_p(&suite.nref, "NREF");
    let one_c = build_1c(&suite.nref, "NREF");
    println!(
        "P: {} indexes | 1C: {} indexes ({} MiB of extra structures)",
        p.config.indexes.len(),
        one_c.config.indexes.len(),
        one_c.report.aux_bytes() / (1024 * 1024),
    );

    // 3. A workload from the NREF2J family, sampled to preserve the
    //    family's cost distribution.
    let workload = tab_bench::eval::prepare_workload(&suite, Family::Nref2J, &p);
    println!(
        "workload: {} queries, e.g.:\n  {}",
        workload.len(),
        workload[0]
    );

    // 4. Execute on both configurations with the timeout.
    let run_p = run_workload(&suite.nref, &p, &workload, params.timeout_units);
    let run_1c = run_workload(&suite.nref, &one_c, &workload, params.timeout_units);

    // 5. Compare with cumulative frequency curves (the paper's Figure 3).
    let cfc_p = run_p.cfc();
    let cfc_1c = run_1c.cfc();
    println!(
        "\n{}",
        render_cfc_ascii(&[("P", &cfc_p), ("1", &cfc_1c)], 0.1, 2000.0, 64, 16)
    );
    println!(
        "median: P={:?}s  1C={:?}s",
        cfc_p.quantile(0.5).map(|x| x.round()),
        cfc_1c.quantile(0.5).map(|x| x.round())
    );
    if cfc_1c.dominates(&cfc_p) {
        println!("1C stochastically dominates P on this workload.");
    }
}
