//! # tab-sqlq
//!
//! AST, lexer, and parser for the SQL fragment used by the benchmark
//! workloads of *"Goals and Benchmarks for Autonomic Configuration
//! Recommenders"* (SIGMOD 2005): select-project-join queries with simple
//! aggregates, equality predicates, and at most one level of nesting
//! (the `IN (SELECT … GROUP BY … HAVING COUNT(*) …)` frequency filter).
//!
//! Queries render deterministically via `Display` and round-trip through
//! [`parse`] (property-tested in `tests/`).

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{CmpOp, ColRef, Insert, Predicate, Query, RangeOp, SelectItem, Statement, TableRef};
pub use lexer::{lex, LexError, Token};
pub use parser::{parse, parse_statement, ParseError};
