//! Tokenizer for the benchmark SQL fragment.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are recognized case-insensitively
    /// by the parser; the lexer preserves the original spelling).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `*`
    Star,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Eq => write!(f, "="),
            Token::Lt => write!(f, "<"),
            Token::Gt => write!(f, ">"),
            Token::Le => write!(f, "<="),
            Token::Ge => write!(f, ">="),
            Token::Star => write!(f, "*"),
        }
    }
}

/// Lexical error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset in the input.
    pub pos: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `input` into a vector of tokens.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                pos: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            // Strings are UTF-8; collect bytes and decode
                            // at the end would be cleaner, but the
                            // generators emit ASCII so byte-pushing with a
                            // char cast is exact here. Guard anyway:
                            if b < 0x80 {
                                s.push(b as char);
                                i += 1;
                            } else {
                                // Multi-byte sequence: find its extent.
                                let ch_str = &input[i..];
                                let ch = ch_str.chars().next().expect("non-empty");
                                s.push(ch);
                                i += ch.len_utf8();
                            }
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && matches!(bytes.get(i + 1), Some(d) if d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                // A '.' here is a decimal point only if a digit follows;
                // otherwise it is a qualifier dot (e.g. `2.c` never occurs,
                // but be strict anyway).
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && matches!(bytes.get(i + 1), Some(d) if d.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let v = text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("bad float literal `{text}`"),
                    })?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("bad integer literal `{text}`"),
                    })?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_basic_query() {
        let toks = lex("SELECT t.a, COUNT(*) FROM t WHERE t.a = 'x''y'").unwrap();
        assert!(toks.contains(&Token::Str("x'y".into())));
        assert!(toks.contains(&Token::Star));
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
    }

    #[test]
    fn numbers_and_negatives() {
        assert_eq!(
            lex("42 -7 3.5").unwrap(),
            vec![Token::Int(42), Token::Int(-7), Token::Float(3.5)]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let err = lex("'abc").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.pos, 0);
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(lex("a ; b").is_err());
    }

    #[test]
    fn qualifier_dot_is_not_decimal() {
        let toks = lex("t1.c2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t1".into()),
                Token::Dot,
                Token::Ident("c2".into())
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            lex("< <= > >=").unwrap(),
            vec![Token::Lt, Token::Le, Token::Gt, Token::Ge]
        );
    }

    #[test]
    fn unicode_in_strings() {
        let toks = lex("'prot\u{00e9}ine'").unwrap();
        assert_eq!(toks, vec![Token::Str("prot\u{00e9}ine".into())]);
    }
}
