//! Recursive-descent parser for the benchmark SQL fragment.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := SELECT item (, item)* FROM tref (, tref)*
//!               [WHERE pred (AND pred)*] [GROUP BY col (, col)*]
//!               [ORDER BY col [DESC] (, col [DESC])*] [LIMIT int]
//! item       := COUNT ( * ) | COUNT ( DISTINCT col ) | col
//! tref       := ident [ident]          -- table with optional alias
//! col        := ident . ident
//! pred       := col = col
//!             | col = const
//!             | col (< | <= | > | >=) const
//!             | col IN ( SELECT ident FROM ident GROUP BY ident
//!                        HAVING COUNT ( * ) (< | =) int )
//! const      := int | float | string
//! ```

use std::fmt;

use tab_storage::Value;

use crate::ast::{
    CmpOp, ColRef, Insert, Predicate, Query, RangeOp, SelectItem, Statement, TableRef,
};
use crate::lexer::{lex, LexError, Token};

/// Parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Token position (or input byte for lexical errors).
    pub pos: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            pos: e.pos,
            message: e.message,
        }
    }
}

/// Parse a statement: a query or an `INSERT INTO ... VALUES (...)`.
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = if p.at_keyword("INSERT") {
        Statement::Insert(p.insert()?)
    } else {
        Statement::Query(p.query()?)
    };
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input after statement"));
    }
    Ok(stmt)
}

/// Parse a SQL string in the benchmark fragment.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input after query"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.at_keyword(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn colref(&mut self) -> Result<ColRef, ParseError> {
        let alias = self.ident()?;
        self.expect(&Token::Dot)?;
        let column = self.ident()?;
        Ok(ColRef { alias, column })
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword("SELECT")?;
        let mut select = vec![self.select_item()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            select.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let mut from = vec![self.table_ref()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            from.push(self.table_ref()?);
        }
        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            predicates.push(self.predicate()?);
            while self.eat_keyword("AND") {
                predicates.push(self.predicate()?);
            }
        }
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.colref()?);
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                group_by.push(self.colref()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let c = self.colref()?;
                let desc = self.eat_keyword("DESC");
                if !desc {
                    self.eat_keyword("ASC");
                }
                order_by.push((c, desc));
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                other => return Err(self.err(format!("expected row count, found {other:?}"))),
            }
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            predicates,
            group_by,
            order_by,
            limit,
        })
    }

    fn insert(&mut self) -> Result<Insert, ParseError> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        self.expect_keyword("VALUES")?;
        self.expect(&Token::LParen)?;
        let mut values = Vec::new();
        loop {
            if self.at_keyword("NULL") {
                self.pos += 1;
                values.push(Value::Null);
            } else {
                values.push(self.constant()?);
            }
            match self.next() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => return Err(self.err(format!("expected , or ), found {other:?}"))),
            }
        }
        Ok(Insert { table, values })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.at_keyword("COUNT") {
            self.pos += 1;
            self.expect(&Token::LParen)?;
            let item = if self.peek() == Some(&Token::Star) {
                self.pos += 1;
                SelectItem::CountStar
            } else {
                self.expect_keyword("DISTINCT")?;
                SelectItem::CountDistinct(self.colref()?)
            };
            self.expect(&Token::RParen)?;
            Ok(item)
        } else {
            Ok(SelectItem::Column(self.colref()?))
        }
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.ident()?;
        // An alias is any identifier that is not one of the clause
        // keywords that may follow a table reference.
        let alias = match self.peek() {
            Some(Token::Ident(s))
                if !["WHERE", "GROUP", "AND", "ORDER", "LIMIT"]
                    .iter()
                    .any(|k| s.eq_ignore_ascii_case(k)) =>
            {
                self.ident()?
            }
            _ => table.clone(),
        };
        Ok(TableRef { table, alias })
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let col = self.colref()?;
        if self.eat_keyword("IN") {
            self.expect(&Token::LParen)?;
            self.expect_keyword("SELECT")?;
            let sub_column = self.ident()?;
            self.expect_keyword("FROM")?;
            let sub_table = self.ident()?;
            self.expect_keyword("GROUP")?;
            self.expect_keyword("BY")?;
            let g = self.ident()?;
            if g != sub_column {
                return Err(self.err("subquery GROUP BY column must match its SELECT column"));
            }
            self.expect_keyword("HAVING")?;
            self.expect_keyword("COUNT")?;
            self.expect(&Token::LParen)?;
            self.expect(&Token::Star)?;
            self.expect(&Token::RParen)?;
            let op = match self.next() {
                Some(Token::Lt) => CmpOp::Lt,
                Some(Token::Eq) => CmpOp::Eq,
                other => return Err(self.err(format!("expected < or =, found {other:?}"))),
            };
            let k = match self.next() {
                Some(Token::Int(i)) => i,
                other => return Err(self.err(format!("expected integer, found {other:?}"))),
            };
            self.expect(&Token::RParen)?;
            Ok(Predicate::InFrequency {
                col,
                sub_table,
                sub_column,
                op,
                k,
            })
        } else if let Some(op) = self.range_op() {
            let v = self.constant()?;
            Ok(Predicate::ConstRange(col, op, v))
        } else {
            self.expect(&Token::Eq)?;
            match self.peek() {
                Some(Token::Ident(_)) => Ok(Predicate::JoinEq(col, self.colref()?)),
                Some(_) => Ok(Predicate::ConstEq(col, self.constant()?)),
                None => Err(self.err("expected constant or column, found end of input")),
            }
        }
    }

    /// Consume a range operator if one is next.
    fn range_op(&mut self) -> Option<RangeOp> {
        let op = match self.peek()? {
            Token::Lt => RangeOp::Lt,
            Token::Le => RangeOp::Le,
            Token::Gt => RangeOp::Gt,
            Token::Ge => RangeOp::Ge,
            _ => return None,
        };
        self.pos += 1;
        Some(op)
    }

    /// Parse a constant literal.
    fn constant(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Value::Int(i)),
            Some(Token::Float(f)) => Ok(Value::Float(f)),
            Some(Token::Str(s)) => Ok(Value::str(s)),
            other => Err(self.err(format!("expected constant, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_1() {
        let sql = "SELECT t.lineage, COUNT(DISTINCT t2.nref_id) \
                   FROM source s, taxonomy t, taxonomy t2 \
                   WHERE t.nref_id = s.nref_id AND t.lineage = t2.lineage \
                   AND s.p_name = 'Simian Virus 40' \
                   GROUP BY t.lineage";
        let q = parse(sql).unwrap();
        assert_eq!(q.from.len(), 3);
        assert_eq!(q.predicates.len(), 3);
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.table_of_alias("t2"), Some("taxonomy"));
    }

    #[test]
    fn parses_in_frequency() {
        let sql = "SELECT r.a, COUNT(*) FROM rel r, s s \
                   WHERE r.a = s.b \
                   AND r.a IN (SELECT a FROM rel GROUP BY a HAVING COUNT(*) < 4) \
                   GROUP BY r.a";
        let q = parse(sql).unwrap();
        match &q.predicates[1] {
            Predicate::InFrequency { op, k, .. } => {
                assert_eq!(*op, CmpOp::Lt);
                assert_eq!(*k, 4);
            }
            other => panic!("expected InFrequency, got {other:?}"),
        }
    }

    #[test]
    fn parses_range_predicates() {
        let q = parse(
            "SELECT t.a, COUNT(*) FROM t WHERE t.a >= 10 AND t.b < 'm' AND t.c <= 2.5              GROUP BY t.a",
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 3);
        match &q.predicates[0] {
            Predicate::ConstRange(_, op, v) => {
                assert_eq!(*op, RangeOp::Ge);
                assert_eq!(v.as_int(), Some(10));
            }
            other => panic!("expected range, got {other:?}"),
        }
        // Round-trips through Display.
        assert_eq!(parse(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn parses_without_alias() {
        let q = parse("SELECT t.a FROM t WHERE t.a = 1").unwrap();
        assert_eq!(q.from[0].alias, "t");
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse("select t.a from t group by t.a").is_ok());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("SELECT t.a FROM t extra junk tokens ,").is_err());
    }

    #[test]
    fn rejects_mismatched_subquery_columns() {
        let sql = "SELECT r.a FROM r WHERE r.a IN \
                   (SELECT a FROM r GROUP BY b HAVING COUNT(*) < 4)";
        assert!(parse(sql).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(parse("").is_err());
        assert!(parse("SELECT").is_err());
    }

    #[test]
    fn parses_order_by_and_limit() {
        let q =
            parse("SELECT t.a, COUNT(*) FROM t GROUP BY t.a ORDER BY t.a DESC LIMIT 10").unwrap();
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].1, "DESC flag");
        assert_eq!(q.limit, Some(10));
        assert_eq!(parse(&q.to_string()).unwrap(), q);
        // ASC is accepted and means not-descending.
        let q2 = parse("SELECT t.a FROM t ORDER BY t.a ASC LIMIT 3").unwrap();
        assert!(!q2.order_by[0].1);
        assert!(parse("SELECT t.a FROM t LIMIT x").is_err());
    }

    #[test]
    fn parses_insert() {
        let s = parse_statement("INSERT INTO protein VALUES (7, 'name', NULL, 3.5)").unwrap();
        match s {
            Statement::Insert(i) => {
                assert_eq!(i.table, "protein");
                assert_eq!(i.values.len(), 4);
                assert_eq!(i.values[2], Value::Null);
                // Round trip.
                let s2 = parse_statement(&i.to_string()).unwrap();
                assert_eq!(s2, Statement::Insert(i));
            }
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn statement_dispatches_to_query() {
        let s = parse_statement("SELECT t.a FROM t").unwrap();
        assert!(matches!(s, Statement::Query(_)));
        assert!(parse_statement("INSERT INTO t VALUES (").is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        let sql = "SELECT t.lineage, COUNT(DISTINCT t2.nref_id) \
                   FROM source s, taxonomy t, taxonomy t2 \
                   WHERE t.nref_id = s.nref_id AND s.p_name = 'Simian Virus 40' \
                   GROUP BY t.lineage";
        let q = parse(sql).unwrap();
        let q2 = parse(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}
