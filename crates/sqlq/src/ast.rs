//! AST for the SQL fragment the benchmark uses.
//!
//! The paper restricts workloads to "simple select-project-join SQL
//! queries defining simple aggregate functions and with at most one
//! level of nesting, and defining only equality predicates" (§3.2.2).
//! The AST mirrors exactly that fragment:
//!
//! - select list: plain columns, `COUNT(*)`, `COUNT(DISTINCT col)`;
//! - `FROM` with table aliases (self-joins need two aliases of one table);
//! - conjunctive `WHERE` with column–column equality, column–constant
//!   equality, and the one nested form the families use:
//!   `col IN (SELECT c FROM T GROUP BY c HAVING COUNT(*) {<|=} k)`;
//! - `GROUP BY` over plain columns.

use std::fmt;

use tab_storage::Value;

/// A column reference qualified by a table alias, e.g. `r1.taxon_id`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    /// Table alias from the `FROM` clause.
    pub alias: String,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// Construct from alias and column name.
    pub fn new(alias: impl Into<String>, column: impl Into<String>) -> Self {
        ColRef {
            alias: alias.into(),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.alias, self.column)
    }
}

/// One item in the select list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SelectItem {
    /// A plain (grouped) column.
    Column(ColRef),
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(DISTINCT col)`.
    CountDistinct(ColRef),
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::CountStar => write!(f, "COUNT(*)"),
            SelectItem::CountDistinct(c) => write!(f, "COUNT(DISTINCT {c})"),
        }
    }
}

/// A `FROM`-clause entry: base table with alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableRef {
    /// Base table name.
    pub table: String,
    /// Alias used in column references.
    pub alias: String,
}

impl TableRef {
    /// Construct from table name and alias.
    pub fn new(table: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef {
            table: table.into(),
            alias: alias.into(),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.table == self.alias {
            write!(f, "{}", self.table)
        } else {
            write!(f, "{} {}", self.table, self.alias)
        }
    }
}

/// Comparison operator allowed in the nested `HAVING COUNT(*)` filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `=`
    Eq,
}

/// Inequality operator for range predicates on constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl RangeOp {
    /// Whether `left op right` holds under the value ordering.
    pub fn eval(&self, left: &tab_storage::Value, right: &tab_storage::Value) -> bool {
        if left.is_null() || right.is_null() {
            return false;
        }
        match self {
            RangeOp::Lt => left < right,
            RangeOp::Le => left <= right,
            RangeOp::Gt => left > right,
            RangeOp::Ge => left >= right,
        }
    }
}

impl fmt::Display for RangeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RangeOp::Lt => write!(f, "<"),
            RangeOp::Le => write!(f, "<="),
            RangeOp::Gt => write!(f, ">"),
            RangeOp::Ge => write!(f, ">="),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOp::Lt => write!(f, "<"),
            CmpOp::Eq => write!(f, "="),
        }
    }
}

/// One conjunct of the `WHERE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `a.x = b.y` — an equi-join (or self-join) predicate.
    JoinEq(ColRef, ColRef),
    /// `a.x = <constant>` — a selection predicate.
    ConstEq(ColRef, Value),
    /// `a.x {< <= > >=} <constant>` — a range predicate.
    ConstRange(ColRef, RangeOp, Value),
    /// `a.x IN (SELECT c FROM T GROUP BY c HAVING COUNT(*) op k)` —
    /// the frequency filter the NREF2J and SkTH3J templates use to bound
    /// intermediate join sizes.
    InFrequency {
        /// The filtered outer column.
        col: ColRef,
        /// Table named in the subquery.
        sub_table: String,
        /// Column grouped in the subquery.
        sub_column: String,
        /// Comparison against the group count.
        op: CmpOp,
        /// The count bound.
        k: i64,
    },
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::JoinEq(a, b) => write!(f, "{a} = {b}"),
            Predicate::ConstEq(c, v) => write!(f, "{c} = {v}"),
            Predicate::ConstRange(c, op, v) => write!(f, "{c} {op} {v}"),
            Predicate::InFrequency {
                col,
                sub_table,
                sub_column,
                op,
                k,
            } => write!(
                f,
                "{col} IN (SELECT {sub_column} FROM {sub_table} GROUP BY {sub_column} HAVING COUNT(*) {op} {k})"
            ),
        }
    }
}

/// A query in the benchmark fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Select list (non-empty).
    pub select: Vec<SelectItem>,
    /// From clause (non-empty).
    pub from: Vec<TableRef>,
    /// Conjunctive where clause (possibly empty).
    pub predicates: Vec<Predicate>,
    /// Group-by columns (possibly empty).
    pub group_by: Vec<ColRef>,
    /// Order-by items: `(selected column, descending)`. Ties are broken
    /// by the full result row, so ordering is total and deterministic.
    pub order_by: Vec<(ColRef, bool)>,
    /// Row limit applied after ordering.
    pub limit: Option<u64>,
}

impl Query {
    /// Resolve an alias to its base table name.
    pub fn table_of_alias(&self, alias: &str) -> Option<&str> {
        self.from
            .iter()
            .find(|t| t.alias == alias)
            .map(|t| t.table.as_str())
    }

    /// All join-equality predicates.
    pub fn join_predicates(&self) -> impl Iterator<Item = (&ColRef, &ColRef)> {
        self.predicates.iter().filter_map(|p| match p {
            Predicate::JoinEq(a, b) => Some((a, b)),
            _ => None,
        })
    }

    /// All constant-equality predicates.
    pub fn const_predicates(&self) -> impl Iterator<Item = (&ColRef, &Value)> {
        self.predicates.iter().filter_map(|p| match p {
            Predicate::ConstEq(c, v) => Some((c, v)),
            _ => None,
        })
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, s) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        if !self.predicates.is_empty() {
            write!(f, " WHERE ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, c) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, (c, desc)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
                if *desc {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Query {
        Query {
            select: vec![
                SelectItem::Column(ColRef::new("t", "lineage")),
                SelectItem::CountDistinct(ColRef::new("t2", "nref_id")),
            ],
            from: vec![
                TableRef::new("source", "s"),
                TableRef::new("taxonomy", "t"),
                TableRef::new("taxonomy", "t2"),
            ],
            predicates: vec![
                Predicate::JoinEq(ColRef::new("t", "nref_id"), ColRef::new("s", "nref_id")),
                Predicate::JoinEq(ColRef::new("t", "lineage"), ColRef::new("t2", "lineage")),
                Predicate::ConstEq(ColRef::new("s", "p_name"), Value::str("Simian Virus 40")),
            ],
            group_by: vec![ColRef::new("t", "lineage")],
            order_by: vec![],
            limit: None,
        }
    }

    #[test]
    fn renders_example_1() {
        let q = sample();
        let sql = q.to_string();
        assert!(sql.starts_with("SELECT t.lineage, COUNT(DISTINCT t2.nref_id) FROM"));
        assert!(sql.contains("s.p_name = 'Simian Virus 40'"));
        assert!(sql.ends_with("GROUP BY t.lineage"));
    }

    #[test]
    fn alias_resolution() {
        let q = sample();
        assert_eq!(q.table_of_alias("t2"), Some("taxonomy"));
        assert_eq!(q.table_of_alias("zz"), None);
    }

    #[test]
    fn predicate_partitions() {
        let q = sample();
        assert_eq!(q.join_predicates().count(), 2);
        assert_eq!(q.const_predicates().count(), 1);
    }

    #[test]
    fn in_frequency_renders() {
        let p = Predicate::InFrequency {
            col: ColRef::new("r", "c1"),
            sub_table: "r_base".into(),
            sub_column: "c1".into(),
            op: CmpOp::Lt,
            k: 4,
        };
        assert_eq!(
            p.to_string(),
            "r.c1 IN (SELECT c1 FROM r_base GROUP BY c1 HAVING COUNT(*) < 4)"
        );
    }
}

/// An `INSERT INTO t VALUES (...)` statement — the update-workload
/// extension §4.4 calls "a valuable extension to the current benchmark".
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target base table.
    pub table: String,
    /// One value per column, in schema order.
    pub values: Vec<Value>,
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {} VALUES (", self.table)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A statement: a query or an insert.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A retrieval query.
    Query(Query),
    /// A single-row insertion.
    Insert(Insert),
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Query(q) => write!(f, "{q}"),
            Statement::Insert(i) => write!(f, "{i}"),
        }
    }
}
