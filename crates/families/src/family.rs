//! The five benchmark query families, by name.

use tab_sqlq::Query;
use tab_storage::{Database, Parallelism};

/// One of the paper's query families (§3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Two-way co-occurrence joins on NREF.
    Nref2J,
    /// Self-join + dimension-join queries on NREF.
    Nref3J,
    /// Three-way joins on the skewed TPC-H database.
    SkTH3J,
    /// The simpler lineitem/orders/partsupp variant on skewed TPC-H.
    SkTH3Js,
    /// Three-way joins on the uniform TPC-H database.
    UnTH3J,
}

impl Family {
    /// The paper's name for the family.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Nref2J => "NREF2J",
            Family::Nref3J => "NREF3J",
            Family::SkTH3J => "SkTH3J",
            Family::SkTH3Js => "SkTH3Js",
            Family::UnTH3J => "UnTH3J",
        }
    }

    /// Parse a family from its paper name, case-insensitively (the
    /// shared lookup under `tab --family` and the wire `ADVISE` verb).
    pub fn parse(name: &str) -> Option<Family> {
        match name.to_uppercase().as_str() {
            "NREF2J" => Some(Family::Nref2J),
            "NREF3J" => Some(Family::Nref3J),
            "SKTH3J" => Some(Family::SkTH3J),
            "SKTH3JS" => Some(Family::SkTH3Js),
            "UNTH3J" => Some(Family::UnTH3J),
            _ => None,
        }
    }

    /// Which database label the family runs on (`NREF`, `SkTH`, `UnTH`).
    pub fn database_label(&self) -> &'static str {
        match self {
            Family::Nref2J | Family::Nref3J => "NREF",
            Family::SkTH3J | Family::SkTH3Js => "SkTH",
            Family::UnTH3J => "UnTH",
        }
    }

    /// Enumerate the (restricted) family against its database instance.
    pub fn enumerate(&self, db: &Database) -> Vec<Query> {
        self.enumerate_with(db, Parallelism::sequential())
    }

    /// [`Family::enumerate`] with template instantiation fanned out
    /// across threads; the family is identical at any thread count.
    pub fn enumerate_with(&self, db: &Database, par: Parallelism) -> Vec<Query> {
        match self {
            Family::Nref2J => crate::nref2j::enumerate_par(db, par),
            Family::Nref3J => crate::nref3j::enumerate_par(db, par),
            Family::SkTH3J | Family::UnTH3J => crate::th3j::enumerate_par(db, false, par),
            Family::SkTH3Js => crate::th3j::enumerate_par(db, true, par),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_labels() {
        assert_eq!(Family::Nref2J.name(), "NREF2J");
        assert_eq!(Family::SkTH3Js.database_label(), "SkTH");
        assert_eq!(Family::UnTH3J.database_label(), "UnTH");
    }
}
