//! Distribution-preserving workload sampling.
//!
//! §4.1.1: "we sampled 100 queries from each family, in a way that the
//! distribution of elapsed times of the larger family was preserved."
//! Running the full families to learn their elapsed times is exactly the
//! 375-machine-day problem the paper describes, so — like the authors —
//! we stratify on a cheap stand-in: each query's *estimated* cost in the
//! initial configuration. Queries are bucketed by order of magnitude of
//! that cost and the sample takes from each bucket proportionally
//! (largest-remainder allocation), so the sample's cost distribution
//! matches the family's.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tab_sqlq::Query;
use tab_storage::{par_map, Parallelism};

/// Sample `n` queries preserving the distribution of `cost_of` across
/// log10 buckets. Deterministic for a fixed seed. If the family has at
/// most `n` queries it is returned whole.
pub fn sample_preserving(
    queries: &[Query],
    mut cost_of: impl FnMut(&Query) -> f64,
    n: usize,
    seed: u64,
) -> Vec<Query> {
    if queries.len() <= n {
        return queries.to_vec();
    }
    let costs: Vec<f64> = queries.iter().map(&mut cost_of).collect();
    sample_preserving_costed(queries, &costs, n, seed)
}

/// [`sample_preserving`] with the cost model evaluated in parallel —
/// stratification costs one planner invocation per enumerated query
/// (thousands per family), which dominates the sampling step. The
/// sampled workload is identical at any thread count: costs are
/// collected in query order before bucketing.
pub fn sample_preserving_par(
    queries: &[Query],
    cost_of: impl Fn(&Query) -> f64 + Sync,
    n: usize,
    seed: u64,
    par: Parallelism,
) -> Vec<Query> {
    if queries.len() <= n {
        return queries.to_vec();
    }
    let costs = par_map(par, queries, cost_of);
    sample_preserving_costed(queries, &costs, n, seed)
}

/// Shared core: bucket precomputed costs by order of magnitude and draw
/// a largest-remainder proportional sample.
fn sample_preserving_costed(queries: &[Query], costs: &[f64], n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);

    // Bucket by order of magnitude.
    let mut buckets: Vec<(i32, Vec<usize>)> = Vec::new();
    for (i, c) in costs.iter().enumerate() {
        let c = c.max(1e-9);
        let b = c.log10().floor() as i32;
        match buckets.iter_mut().find(|(k, _)| *k == b) {
            Some((_, v)) => v.push(i),
            None => buckets.push((b, vec![i])),
        }
    }
    buckets.sort_by_key(|(k, _)| *k);

    // Largest-remainder proportional allocation.
    let total = queries.len() as f64;
    let mut alloc: Vec<(usize, f64)> = buckets
        .iter()
        .map(|(_, v)| {
            let exact = n as f64 * v.len() as f64 / total;
            (exact.floor() as usize, exact.fract())
        })
        .collect();
    let mut assigned: usize = alloc.iter().map(|(a, _)| a).sum();
    let mut order: Vec<usize> = (0..alloc.len()).collect();
    order.sort_by(|&a, &b| {
        alloc[b]
            .1
            .partial_cmp(&alloc[a].1)
            .expect("finite fractions")
    });
    for &i in &order {
        if assigned >= n {
            break;
        }
        if alloc[i].0 < buckets[i].1.len() {
            alloc[i].0 += 1;
            assigned += 1;
        }
    }
    // If rounding still left a shortfall (tiny buckets), take greedily.
    let mut i = 0;
    while assigned < n {
        if alloc[i].0 < buckets[i].1.len() {
            alloc[i].0 += 1;
            assigned += 1;
        }
        i = (i + 1) % buckets.len();
    }

    let mut out = Vec::with_capacity(n);
    for ((_, members), (take, _)) in buckets.iter().zip(&alloc) {
        let mut m = members.clone();
        m.shuffle(&mut rng);
        for &idx in m.iter().take(*take) {
            out.push(queries[idx].clone());
        }
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_sqlq::parse;

    fn mk(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| {
                parse(&format!(
                    "SELECT t.a, COUNT(*) FROM t WHERE t.b = {i} GROUP BY t.a"
                ))
                .unwrap()
            })
            .collect()
    }

    /// Cost keyed off the constant in the query, for test determinism.
    fn cost(q: &Query) -> f64 {
        match &q.predicates[0] {
            tab_sqlq::Predicate::ConstEq(_, v) => {
                let i = v.as_int().unwrap();
                if i % 10 == 0 {
                    5000.0 // 10% expensive
                } else {
                    5.0
                }
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn preserves_bucket_proportions() {
        let qs = mk(1000);
        let sample = sample_preserving(&qs, cost, 100, 42);
        assert_eq!(sample.len(), 100);
        let expensive = sample.iter().filter(|q| cost(q) > 100.0).count();
        assert!(
            (8..=12).contains(&expensive),
            "expected ~10 expensive, got {expensive}"
        );
    }

    #[test]
    fn small_family_returned_whole() {
        let qs = mk(40);
        let sample = sample_preserving(&qs, cost, 100, 1);
        assert_eq!(sample.len(), 40);
    }

    #[test]
    fn deterministic_for_seed() {
        let qs = mk(500);
        let a = sample_preserving(&qs, cost, 100, 7);
        let b = sample_preserving(&qs, cost, 100, 7);
        assert_eq!(a, b);
        let c = sample_preserving(&qs, cost, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_matches_serial() {
        let qs = mk(800);
        let serial = sample_preserving(&qs, cost, 100, 11);
        for threads in [1, 2, 4] {
            let par = sample_preserving_par(&qs, cost, 100, 11, Parallelism::new(threads));
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn no_duplicates() {
        let qs = mk(300);
        let sample = sample_preserving(&qs, cost, 100, 3);
        let mut texts: Vec<String> = sample.iter().map(|q| q.to_string()).collect();
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), 100);
    }
}
