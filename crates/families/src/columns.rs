//! Column-selection rules for query-family enumeration.
//!
//! The paper applies "a number of practical restrictions to further
//! reduce the space of possible queries" (§4.1.1): non-indexable columns
//! are ignored and no *query* uses more than 4 columns per table. This
//! module implements those restrictions deterministically: a table's
//! *usable* columns are its indexable columns, domain-labelled ones
//! first (they participate in joins), capped at eight — each individual
//! query then draws at most four of them (join + selection + group-by).

use tab_storage::TableSchema;

/// Maximum usable columns per table considered by the enumerators.
pub const MAX_COLUMNS_PER_TABLE: usize = 10;

/// The usable column positions for family enumeration.
pub fn usable_columns(schema: &TableSchema) -> Vec<usize> {
    let mut cols: Vec<usize> = schema
        .indexable_columns()
        .into_iter()
        .filter(|&c| schema.columns[c].domain.is_some())
        .collect();
    for c in schema.indexable_columns() {
        if !cols.contains(&c) {
            cols.push(c);
        }
    }
    cols.truncate(MAX_COLUMNS_PER_TABLE);
    cols
}

/// Usable columns of `schema` sharing the given domain.
pub fn usable_in_domain(schema: &TableSchema, domain: &str) -> Vec<usize> {
    usable_columns(schema)
        .into_iter()
        .filter(|&c| schema.columns[c].domain.as_deref() == Some(domain))
        .collect()
}

/// Group-by column variants: the paper's "up to three other columns"
/// (§3.2.2). Returns progressively wider prefixes of the usable columns
/// excluding `exclude`, including the empty variant.
pub fn group_by_variants(schema: &TableSchema, exclude: &[usize], max: usize) -> Vec<Vec<usize>> {
    let others: Vec<usize> = usable_columns(schema)
        .into_iter()
        .filter(|c| !exclude.contains(c))
        .collect();
    let mut out = vec![Vec::new()];
    for g in 1..=max.min(others.len()) {
        out.push(others[..g].to_vec());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_storage::{ColType, ColumnDef};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("plain1", ColType::Int),
                ColumnDef::new("dom1", ColType::Int).domain("d1"),
                ColumnDef::new("wide", ColType::Str).not_indexable(),
                ColumnDef::new("dom2", ColType::Int).domain("d2"),
                ColumnDef::new("plain2", ColType::Int),
                ColumnDef::new("plain3", ColType::Int),
            ],
        )
    }

    #[test]
    fn domain_columns_come_first() {
        let cols = usable_columns(&schema());
        assert_eq!(cols, vec![1, 3, 0, 4, 5]);
    }

    #[test]
    fn non_indexable_excluded() {
        assert!(!usable_columns(&schema()).contains(&2));
    }

    #[test]
    fn domain_filter() {
        assert_eq!(usable_in_domain(&schema(), "d1"), vec![1]);
        assert!(usable_in_domain(&schema(), "zzz").is_empty());
    }

    #[test]
    fn group_by_variants_grow() {
        let v = group_by_variants(&schema(), &[1], 3);
        assert_eq!(v[0], Vec::<usize>::new());
        assert_eq!(v[1], vec![3]);
        assert_eq!(v[2], vec![3, 0]);
        assert_eq!(v[3], vec![3, 0, 4]);
        assert_eq!(v.len(), 4);
    }
}
