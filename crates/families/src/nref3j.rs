//! Family NREF3J: self-join generalizations of Example 1 (§3.2.2).
//!
//! Template:
//!
//! ```sql
//! SELECT r1.ci1,...,r1.ci3, r1.c1, COUNT(DISTINCT r2.c2)
//! FROM R r1, R r2, S s
//! WHERE r1.c1 = r2.c1 AND r1.c2 = s.c3 AND s.c4 = k
//! GROUP BY r1.ci1,...,r1.ci3, r1.c1
//! ```
//!
//! `k` ranges over the column's `k1/k2/k3` selectivity tiers
//! (see [`crate::constants::selection_tiers`]).

use std::collections::HashMap;

use tab_sqlq::{ColRef, Predicate, Query, SelectItem, TableRef};
use tab_storage::{par_map, Database, Parallelism, Table, Value};

use crate::columns::{group_by_variants, usable_columns, usable_in_domain};
use crate::constants::selection_tiers;
use crate::nref2j::BIG_TABLE_ROWS;

/// Enumerate the (restricted) NREF3J family over `db`.
pub fn enumerate(db: &Database) -> Vec<Query> {
    enumerate_par(db, Parallelism::sequential())
}

/// [`enumerate`] fanned out over outer (self-joined) tables. Each
/// worker keeps its own selection-tier cache; per-table blocks are
/// concatenated in table order, so the family is identical at any
/// thread count.
pub fn enumerate_par(db: &Database, par: Parallelism) -> Vec<Query> {
    let tables: Vec<_> = db.tables().collect();
    par_map(par, &tables, |r| queries_for_outer(&tables, r))
        .into_iter()
        .flatten()
        .collect()
}

/// All NREF3J instantiations with `r` as the self-joined table.
fn queries_for_outer(tables: &[&Table], r: &Table) -> Vec<Query> {
    let mut out = Vec::new();
    let mut tier_cache: HashMap<(String, usize), Vec<(Value, u64)>> = HashMap::new();
    let rs = r.schema();
    let r_usable = usable_columns(rs);
    for &c1 in &r_usable {
        if rs.columns[c1].domain.is_none() {
            continue;
        }
        for &c2 in &r_usable {
            if c2 == c1 {
                continue;
            }
            let Some(dom2) = rs.columns[c2].domain.as_deref() else {
                continue;
            };
            for s in tables {
                let ss = s.schema();
                if ss.name == rs.name {
                    continue;
                }
                for &c3 in &usable_in_domain(ss, dom2) {
                    // Selection columns of S: the first usable column
                    // other than c3 that has magnitude tiers; large S
                    // contributes only its rarest tier (§4.1.1).
                    let s_usable = usable_columns(ss);
                    let Some(&c4) = s_usable.iter().find(|&&c| c != c3) else {
                        continue;
                    };
                    let tiers = tier_cache
                        .entry((ss.name.clone(), c4))
                        .or_insert_with(|| selection_tiers(s, c4))
                        .clone();
                    let n_tiers = if s.n_rows() > BIG_TABLE_ROWS { 1 } else { 3 };
                    let max_groups = if r.n_rows() > BIG_TABLE_ROWS { 0 } else { 2 };
                    for (k, _) in tiers.iter().take(n_tiers) {
                        for extra in group_by_variants(rs, &[c1, c2], max_groups) {
                            out.push(build(rs, ss, c1, c2, c3, c4, k.clone(), &extra));
                        }
                    }
                }
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn build(
    rs: &tab_storage::TableSchema,
    ss: &tab_storage::TableSchema,
    c1: usize,
    c2: usize,
    c3: usize,
    c4: usize,
    k: Value,
    extras: &[usize],
) -> Query {
    let col = |alias: &str, schema: &tab_storage::TableSchema, c: usize| {
        ColRef::new(alias, &schema.columns[c].name)
    };
    let mut select: Vec<SelectItem> = extras
        .iter()
        .map(|&c| SelectItem::Column(col("r1", rs, c)))
        .collect();
    select.push(SelectItem::Column(col("r1", rs, c1)));
    select.push(SelectItem::CountDistinct(col("r2", rs, c2)));
    let mut group_by: Vec<ColRef> = extras.iter().map(|&c| col("r1", rs, c)).collect();
    group_by.push(col("r1", rs, c1));
    Query {
        select,
        from: vec![
            TableRef::new(&rs.name, "r1"),
            TableRef::new(&rs.name, "r2"),
            TableRef::new(&ss.name, "s"),
        ],
        predicates: vec![
            Predicate::JoinEq(col("r1", rs, c1), col("r2", rs, c1)),
            Predicate::JoinEq(col("r1", rs, c2), col("s", ss, c3)),
            Predicate::ConstEq(col("s", ss, c4), k),
        ],
        group_by,
        order_by: vec![],
        limit: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_datagen::{generate_nref, NrefParams};

    #[test]
    fn enumerates_self_joins_with_tiered_constants() {
        let db = generate_nref(NrefParams {
            proteins: 400,
            seed: 3,
        });
        let qs = enumerate(&db);
        assert!(qs.len() > 50, "family too small: {}", qs.len());
        for q in &qs {
            assert_eq!(q.from.len(), 3);
            // Self-join: first two FROM entries are the same table.
            assert_eq!(q.from[0].table, q.from[1].table);
            assert_ne!(q.from[2].table, q.from[0].table);
            assert!(q
                .predicates
                .iter()
                .any(|p| matches!(p, Predicate::ConstEq(..))));
            assert!(q
                .select
                .iter()
                .any(|s| matches!(s, SelectItem::CountDistinct(_))));
        }
    }

    #[test]
    fn includes_multiple_selectivity_tiers() {
        let db = generate_nref(NrefParams {
            proteins: 400,
            seed: 3,
        });
        let qs = enumerate(&db);
        // Same structure with different constants must appear.
        let mut shapes: HashMap<String, std::collections::HashSet<String>> = HashMap::new();
        for q in &qs {
            let consts: Vec<String> = q
                .predicates
                .iter()
                .filter_map(|p| match p {
                    Predicate::ConstEq(_, v) => Some(v.to_string()),
                    _ => None,
                })
                .collect();
            let mut shape = q.to_string();
            for c in &consts {
                shape = shape.replace(c, "?");
            }
            shapes.entry(shape).or_default().insert(consts.join(","));
        }
        assert!(
            shapes.values().any(|s| s.len() >= 2),
            "expected some template with multiple constants"
        );
    }
}
