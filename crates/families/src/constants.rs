//! Constant selection for query templates.
//!
//! §3.2.2: "For each column in each table, we pick three values k1, k2
//! and k3 that can be used as the constant k such that k1 has the
//! highest selectivity for the column and the frequencies of k2 and k3
//! are one and two orders of magnitude (resp.) greater than the
//! frequency of k1."
//!
//! Constants come from the actual database (the paper binds template
//! variables to "constants selected from the database"), so selection
//! here scans the column once and picks from exact frequencies.

use std::collections::HashMap;

use tab_storage::{Table, Value};

/// Exact value frequencies of a column, descending by frequency with a
/// deterministic tie-break on the value.
pub fn value_frequencies(table: &Table, col: usize) -> Vec<(Value, u64)> {
    let mut counts: HashMap<Value, u64> = HashMap::new();
    for (_, row) in table.iter() {
        if !row[col].is_null() {
            *counts.entry(row[col].clone()).or_insert(0) += 1;
        }
    }
    let mut v: Vec<(Value, u64)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

/// The `k1 / k2 / k3` constants for a column: the rarest value and two
/// values roughly 10× and 100× more frequent. Returns fewer than three
/// entries when the column's frequency spectrum cannot span two orders
/// of magnitude (the enumerators then emit fewer selection variants —
/// the paper's "fewer selection criteria on the larger tables" in
/// spirit).
pub fn selection_tiers(table: &Table, col: usize) -> Vec<(Value, u64)> {
    let freqs = value_frequencies(table, col);
    if freqs.is_empty() {
        return Vec::new();
    }
    let (v1, f1) = freqs.last().expect("non-empty").clone();
    let mut out = vec![(v1, f1)];
    for mag in [10.0, 100.0] {
        let target = f1 as f64 * mag;
        // Closest frequency to the target, in log space.
        let best = freqs
            .iter()
            .min_by(|a, b| {
                let da = (a.1 as f64 / target).ln().abs();
                let db = (b.1 as f64 / target).ln().abs();
                da.partial_cmp(&db).expect("finite")
            })
            .expect("non-empty")
            .clone();
        // Accept only if it is genuinely a different magnitude tier.
        let ratio = best.1 as f64 / f1 as f64;
        if ratio >= mag / 3.0 && out.iter().all(|(v, _)| *v != best.0) {
            out.push(best);
        }
    }
    out
}

/// Count-tiers for the `HAVING COUNT(*) = p` variant of θ(S.c₃)
/// (family SkTH3J, §3.2.2): three occurrence-counts `p` whose qualifying
/// row-masses are roughly one and two orders of magnitude apart.
pub fn count_tiers(table: &Table, col: usize) -> Vec<i64> {
    let freqs = value_frequencies(table, col);
    if freqs.is_empty() {
        return Vec::new();
    }
    // mass(c) = c * |{v : freq(v) = c}|, for each distinct count c.
    let mut mass: HashMap<u64, u64> = HashMap::new();
    for (_, f) in &freqs {
        *mass.entry(*f).or_insert(0) += *f;
    }
    let mut masses: Vec<(u64, u64)> = mass.into_iter().collect();
    masses.sort_by_key(|&(_, m)| m);
    let (c1, m1) = masses[0];
    let mut out = vec![c1 as i64];
    for mag in [10.0, 100.0] {
        let target = m1 as f64 * mag;
        let best = masses
            .iter()
            .min_by(|a, b| {
                let da = (a.1 as f64 / target).ln().abs();
                let db = (b.1 as f64 / target).ln().abs();
                da.partial_cmp(&db).expect("finite")
            })
            .expect("non-empty");
        let ratio = best.1 as f64 / m1 as f64;
        if ratio >= mag / 3.0 && !out.contains(&(best.0 as i64)) {
            out.push(best.0 as i64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_storage::{ColType, ColumnDef, TableSchema};

    /// Column with frequencies 1, 10 and 100.
    fn tiered_table() -> Table {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![ColumnDef::new("a", ColType::Int)],
        ));
        t.insert(vec![Value::Int(1)]);
        for _ in 0..10 {
            t.insert(vec![Value::Int(2)]);
        }
        for _ in 0..100 {
            t.insert(vec![Value::Int(3)]);
        }
        t
    }

    #[test]
    fn tiers_span_magnitudes() {
        let tiers = selection_tiers(&tiered_table(), 0);
        assert_eq!(tiers.len(), 3);
        assert_eq!(tiers[0], (Value::Int(1), 1));
        assert_eq!(tiers[1], (Value::Int(2), 10));
        assert_eq!(tiers[2], (Value::Int(3), 100));
    }

    #[test]
    fn flat_column_yields_single_tier() {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![ColumnDef::new("a", ColType::Int)],
        ));
        for i in 0..50 {
            t.insert(vec![Value::Int(i)]);
        }
        let tiers = selection_tiers(&t, 0);
        assert_eq!(tiers.len(), 1);
        assert_eq!(tiers[0].1, 1);
    }

    #[test]
    fn empty_column() {
        let t = Table::new(TableSchema::new(
            "t",
            vec![ColumnDef::new("a", ColType::Int)],
        ));
        assert!(selection_tiers(&t, 0).is_empty());
        assert!(count_tiers(&t, 0).is_empty());
    }

    #[test]
    fn count_tiers_reflect_mass() {
        // freq 1: 1 value  (mass 1); freq 10: one value (mass 10);
        // freq 100: one value (mass 100).
        let tiers = count_tiers(&tiered_table(), 0);
        assert_eq!(tiers, vec![1, 10, 100]);
    }

    #[test]
    fn frequencies_sorted_desc() {
        let f = value_frequencies(&tiered_table(), 0);
        assert_eq!(f[0], (Value::Int(3), 100));
        assert_eq!(f[2], (Value::Int(1), 1));
    }
}
