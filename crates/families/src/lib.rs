//! # tab-families
//!
//! Template-generated query families for the `tab-bench` workloads
//! (§3.2.2 of the paper): NREF2J, NREF3J, SkTH3J, SkTH3Js, and UnTH3J,
//! together with the constant-selection procedure (`k1/k2/k3` magnitude
//! tiers taken from the actual data) and the distribution-preserving
//! 100-query sampler of §4.1.1.

#![warn(missing_docs)]

pub mod columns;
pub mod compress;
pub mod constants;
pub mod family;
pub mod nref2j;
pub mod nref3j;
pub mod sample;
pub mod th3j;

pub use compress::{compress, shape_signature, WeightedQuery};
pub use family::Family;
pub use sample::{sample_preserving, sample_preserving_par};
