//! Workload compression.
//!
//! §2.1 notes that recommenders may be fed by "a component in charge of
//! automatically providing such a workload … based on observing the
//! RDBMS operation" and cites workload compression (Chaudhuri et al.,
//! SIGMOD 2002). This module implements the simplest sound form: group
//! queries by *template shape* (the query with constants stripped) and
//! keep one weighted representative per shape — exactly what makes
//! thousand-query observed workloads digestible for a what-if search.

use std::collections::HashMap;

use tab_sqlq::{Predicate, Query};

/// A compressed workload entry: a representative query and how many
/// original queries it stands for.
#[derive(Debug, Clone)]
pub struct WeightedQuery {
    /// The representative (the first query seen with this shape).
    pub query: Query,
    /// Number of original queries sharing the shape.
    pub weight: usize,
}

/// The shape signature of a query: its SQL with every constant replaced
/// by `?`. Queries with equal signatures differ only in constants.
pub fn shape_signature(q: &Query) -> String {
    let mut shape = q.clone();
    for p in &mut shape.predicates {
        match p {
            Predicate::ConstEq(_, v) => *v = tab_storage::Value::str("?"),
            Predicate::ConstRange(_, _, v) => *v = tab_storage::Value::str("?"),
            Predicate::InFrequency { k, .. } => *k = -1,
            Predicate::JoinEq(..) => {}
        }
    }
    shape.to_string()
}

/// Compress a workload to at most `max_shapes` weighted representatives.
/// Shapes are kept by descending weight (ties broken by first
/// appearance), so the compressed workload covers the most frequent
/// templates first.
///
/// ```
/// use tab_families::compress;
/// use tab_sqlq::parse;
///
/// let workload = vec![
///     parse("SELECT t.a, COUNT(*) FROM t WHERE t.b = 1 GROUP BY t.a").unwrap(),
///     parse("SELECT t.a, COUNT(*) FROM t WHERE t.b = 2 GROUP BY t.a").unwrap(),
/// ];
/// let compressed = compress(&workload, 10);
/// assert_eq!(compressed.len(), 1);       // same template shape
/// assert_eq!(compressed[0].weight, 2);   // stands for both queries
/// ```
pub fn compress(workload: &[Query], max_shapes: usize) -> Vec<WeightedQuery> {
    let mut order: Vec<String> = Vec::new();
    let mut by_shape: HashMap<String, WeightedQuery> = HashMap::new();
    for q in workload {
        let sig = shape_signature(q);
        match by_shape.get_mut(&sig) {
            Some(e) => e.weight += 1,
            None => {
                order.push(sig.clone());
                by_shape.insert(
                    sig,
                    WeightedQuery {
                        query: q.clone(),
                        weight: 1,
                    },
                );
            }
        }
    }
    let mut entries: Vec<(usize, WeightedQuery)> = order
        .iter()
        .enumerate()
        .map(|(i, sig)| (i, by_shape[sig].clone()))
        .collect();
    entries.sort_by(|a, b| b.1.weight.cmp(&a.1.weight).then(a.0.cmp(&b.0)));
    entries
        .into_iter()
        .take(max_shapes)
        .map(|(_, e)| e)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_sqlq::parse;

    fn q(sql: &str) -> Query {
        parse(sql).unwrap()
    }

    #[test]
    fn same_template_different_constants_share_a_shape() {
        let a = q("SELECT t.a, COUNT(*) FROM t WHERE t.b = 1 GROUP BY t.a");
        let b = q("SELECT t.a, COUNT(*) FROM t WHERE t.b = 999 GROUP BY t.a");
        let c = q("SELECT t.a, COUNT(*) FROM t WHERE t.c = 1 GROUP BY t.a");
        assert_eq!(shape_signature(&a), shape_signature(&b));
        assert_ne!(shape_signature(&a), shape_signature(&c));
    }

    #[test]
    fn compress_weights_and_caps() {
        let w = vec![
            q("SELECT t.a, COUNT(*) FROM t WHERE t.b = 1 GROUP BY t.a"),
            q("SELECT t.a, COUNT(*) FROM t WHERE t.b = 2 GROUP BY t.a"),
            q("SELECT t.a, COUNT(*) FROM t WHERE t.b = 3 GROUP BY t.a"),
            q("SELECT t.a, COUNT(*) FROM t WHERE t.c = 1 GROUP BY t.a"),
            q("SELECT t.a, COUNT(*) FROM t WHERE t.c = 2 GROUP BY t.a"),
            q("SELECT t.x, COUNT(*) FROM t GROUP BY t.x"),
        ];
        let full = compress(&w, 10);
        assert_eq!(full.len(), 3);
        assert_eq!(full[0].weight, 3);
        assert_eq!(full[1].weight, 2);
        assert_eq!(full[2].weight, 1);
        // Total weight is preserved.
        assert_eq!(full.iter().map(|e| e.weight).sum::<usize>(), w.len());
        // Capping keeps the heaviest shapes.
        let capped = compress(&w, 1);
        assert_eq!(capped.len(), 1);
        assert_eq!(capped[0].weight, 3);
    }

    #[test]
    fn range_and_frequency_constants_are_stripped() {
        let a = q("SELECT t.a, COUNT(*) FROM t WHERE t.b >= 5 GROUP BY t.a");
        let b = q("SELECT t.a, COUNT(*) FROM t WHERE t.b >= 50 GROUP BY t.a");
        assert_eq!(shape_signature(&a), shape_signature(&b));
        let f1 = q("SELECT t.a, COUNT(*) FROM t WHERE t.a IN \
                    (SELECT a FROM t GROUP BY a HAVING COUNT(*) < 4) GROUP BY t.a");
        let f2 = q("SELECT t.a, COUNT(*) FROM t WHERE t.a IN \
                    (SELECT a FROM t GROUP BY a HAVING COUNT(*) < 9) GROUP BY t.a");
        assert_eq!(shape_signature(&f1), shape_signature(&f2));
    }

    #[test]
    fn empty_workload() {
        assert!(compress(&[], 5).is_empty());
    }

    #[test]
    fn deterministic_representatives() {
        let w = vec![
            q("SELECT t.a, COUNT(*) FROM t WHERE t.b = 7 GROUP BY t.a"),
            q("SELECT t.a, COUNT(*) FROM t WHERE t.b = 8 GROUP BY t.a"),
        ];
        let c = compress(&w, 5);
        // The first-seen query is the representative.
        assert_eq!(c[0].query, w[0]);
    }
}
