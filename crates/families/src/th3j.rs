//! Families SkTH3J / SkTH3Js / UnTH3J: three-way TPC-H joins (§3.2.2).
//!
//! Template:
//!
//! ```sql
//! SELECT t.ci1,...,t.ci4, COUNT(*)
//! FROM R r, S s, T t
//! WHERE r.cp1 = s.cf1 AND ... AND r.cpj = s.cfj   -- PK–FK join
//!   AND s.c1 = t.c2                               -- same-domain join
//!   AND θ(s.c3)                                   -- size-control filter
//! GROUP BY t.ci1,...,t.ci4
//! ```
//!
//! `θ(s.c3)` is either `s.c3 = p` or
//! `s.c3 IN (SELECT c3 FROM S GROUP BY c3 HAVING COUNT(*) = p)`, with
//! three constants per template whose intermediate `R ⋈ S` sizes span
//! orders of magnitude. The *simple* variant (SkTH3Js) restricts the
//! tables to `lineitem`, `orders`, `partsupp` and uses only the equality
//! form.

use std::collections::HashMap;

use tab_sqlq::{CmpOp, ColRef, Predicate, Query, SelectItem, TableRef};
use tab_storage::{par_map, Database, Parallelism, Table, TableSchema, Value};

use crate::columns::{usable_columns, usable_in_domain};
use crate::constants::{count_tiers, selection_tiers};

/// An `(R, S)` pair joined by a declared FK, with the joined column
/// index pairs in `(referencing, referenced)` order.
type FkPair<'a> = (&'a Table, &'a Table, Vec<(usize, usize)>);

/// Enumerate the TH3J family. `simple` selects the SkTH3Js variant.
pub fn enumerate(db: &Database, simple: bool) -> Vec<Query> {
    enumerate_par(db, simple, Parallelism::sequential())
}

/// [`enumerate`] fanned out over the FK-joined `(R, S)` pairs. Each
/// worker keeps its own tier caches; per-pair blocks are concatenated
/// in pair order, so the family is identical at any thread count.
pub fn enumerate_par(db: &Database, simple: bool, par: Parallelism) -> Vec<Query> {
    let tables: Vec<&Table> = db.tables().collect();

    // (R, S) pairs joined by a declared FK, in both orientations.
    let mut rs_pairs: Vec<FkPair<'_>> = Vec::new();
    for f in &tables {
        for fk in &f.schema().foreign_keys {
            let Some(p) = db.table(&fk.ref_table) else {
                continue;
            };
            let pairs: Vec<(usize, usize)> = fk
                .columns
                .iter()
                .zip(&fk.ref_columns)
                .map(|(&fc, rc)| (fc, p.schema().require_column(rc)))
                .collect();
            // R = referencing, S = referenced and the reverse.
            rs_pairs.push((f, p, pairs.clone()));
            rs_pairs.push((p, f, pairs.iter().map(|&(a, b)| (b, a)).collect()));
        }
    }

    par_map(par, &rs_pairs, |(r, s, fk_pairs)| {
        queries_for_pair(&tables, r, s, fk_pairs, simple)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// All TH3J instantiations for one FK-joined `(R, S)` pair.
fn queries_for_pair(
    tables: &[&Table],
    r: &Table,
    s: &Table,
    fk_pairs: &[(usize, usize)],
    simple: bool,
) -> Vec<Query> {
    let allowed = ["lineitem", "orders", "partsupp"];
    let in_scope = |name: &str| !simple || allowed.contains(&name);

    let mut out = Vec::new();
    let mut sel_cache: HashMap<(String, usize), Vec<(Value, u64)>> = HashMap::new();
    let mut cnt_cache: HashMap<(String, usize), Vec<i64>> = HashMap::new();

    {
        if !in_scope(&r.schema().name) || !in_scope(&s.schema().name) {
            return out;
        }
        let ss = s.schema();
        let s_nonkey: Vec<usize> = usable_columns(ss)
            .into_iter()
            .filter(|c| !ss.primary_key.contains(c))
            .collect();
        for &c1 in &s_nonkey {
            let Some(dom) = ss.columns[c1].domain.as_deref() else {
                continue;
            };
            for t in tables {
                let ts = t.schema();
                if ts.name == ss.name || ts.name == r.schema().name || !in_scope(&ts.name) {
                    continue;
                }
                for &c2 in &usable_in_domain(ts, dom) {
                    if ts.primary_key.contains(&c2) {
                        continue;
                    }
                    // θ(s.c3): the first two usable non-key columns ≠ c1.
                    let c3s: Vec<usize> = s_nonkey
                        .iter()
                        .filter(|&&c| c != c1)
                        .take(2)
                        .copied()
                        .collect();
                    // Group-by: "up to 4 columns from relation T" -- one
                    // variant per width.
                    let t_usable = usable_columns(ts);
                    let group_variants: Vec<Vec<usize>> = [1usize, 2, 4]
                        .iter()
                        .filter(|&&g| g <= t_usable.len())
                        .map(|&g| t_usable[..g].to_vec())
                        .collect();

                    for &c3 in &c3s {
                        for groups in &group_variants {
                            let eq_tiers = sel_cache
                                .entry((ss.name.clone(), c3))
                                .or_insert_with(|| selection_tiers(s, c3))
                                .clone();
                            for (p, _) in &eq_tiers {
                                out.push(build(
                                    r.schema(),
                                    ss,
                                    ts,
                                    fk_pairs,
                                    c1,
                                    c2,
                                    Theta::Eq(c3, p.clone()),
                                    groups,
                                ));
                            }
                            if !simple {
                                let tiers = cnt_cache
                                    .entry((ss.name.clone(), c3))
                                    .or_insert_with(|| count_tiers(s, c3))
                                    .clone();
                                for p in tiers {
                                    out.push(build(
                                        r.schema(),
                                        ss,
                                        ts,
                                        fk_pairs,
                                        c1,
                                        c2,
                                        Theta::InCount(c3, p),
                                        groups,
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

enum Theta {
    Eq(usize, Value),
    InCount(usize, i64),
}

#[allow(clippy::too_many_arguments)]
fn build(
    rs: &TableSchema,
    ss: &TableSchema,
    ts: &TableSchema,
    fk_pairs: &[(usize, usize)],
    c1: usize,
    c2: usize,
    theta: Theta,
    groups: &[usize],
) -> Query {
    let col =
        |alias: &str, schema: &TableSchema, c: usize| ColRef::new(alias, &schema.columns[c].name);
    let mut select: Vec<SelectItem> = groups
        .iter()
        .map(|&c| SelectItem::Column(col("t", ts, c)))
        .collect();
    select.push(SelectItem::CountStar);
    let mut predicates: Vec<Predicate> = fk_pairs
        .iter()
        .map(|&(rc, sc)| Predicate::JoinEq(col("r", rs, rc), col("s", ss, sc)))
        .collect();
    predicates.push(Predicate::JoinEq(col("s", ss, c1), col("t", ts, c2)));
    predicates.push(match theta {
        Theta::Eq(c3, p) => Predicate::ConstEq(col("s", ss, c3), p),
        Theta::InCount(c3, p) => Predicate::InFrequency {
            col: col("s", ss, c3),
            sub_table: ss.name.clone(),
            sub_column: ss.columns[c3].name.clone(),
            op: CmpOp::Eq,
            k: p,
        },
    });
    Query {
        select,
        from: vec![
            TableRef::new(&rs.name, "r"),
            TableRef::new(&ss.name, "s"),
            TableRef::new(&ts.name, "t"),
        ],
        predicates,
        group_by: groups.iter().map(|&c| col("t", ts, c)).collect(),
        order_by: vec![],
        limit: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_datagen::{generate_tpch, Distribution, TpchParams};

    fn db() -> Database {
        generate_tpch(TpchParams {
            scale: 0.002,
            distribution: Distribution::Zipf(1.0),
            seed: 5,
        })
    }

    #[test]
    fn full_family_has_both_theta_forms() {
        let qs = enumerate(&db(), false);
        assert!(qs.len() > 30, "family too small: {}", qs.len());
        assert!(qs.iter().any(|q| q
            .predicates
            .iter()
            .any(|p| matches!(p, Predicate::ConstEq(..)))));
        assert!(qs.iter().any(|q| q
            .predicates
            .iter()
            .any(|p| matches!(p, Predicate::InFrequency { op: CmpOp::Eq, .. }))));
    }

    #[test]
    fn simple_family_restricted_to_three_tables() {
        let qs = enumerate(&db(), true);
        assert!(!qs.is_empty());
        for q in &qs {
            for tr in &q.from {
                assert!(
                    ["lineitem", "orders", "partsupp"].contains(&tr.table.as_str()),
                    "unexpected table {}",
                    tr.table
                );
            }
            assert!(!q
                .predicates
                .iter()
                .any(|p| matches!(p, Predicate::InFrequency { .. })));
        }
    }

    #[test]
    fn simple_is_subset_shapewise() {
        let full = enumerate(&db(), false).len();
        let simple = enumerate(&db(), true).len();
        assert!(simple < full);
    }

    #[test]
    fn three_way_structure() {
        for q in enumerate(&db(), true).iter().take(10) {
            assert_eq!(q.from.len(), 3);
            // Group-by over T only.
            for g in &q.group_by {
                assert_eq!(g.alias, "t");
            }
        }
    }
}
