//! Family NREF2J: co-occurrence counting joins (§3.2.2).
//!
//! Template:
//!
//! ```sql
//! SELECT r.ci1,...,r.ci3, r.c1, COUNT(*)
//! FROM R r, S s
//! WHERE r.c1 = s.c2
//!   AND r.c1 IN (SELECT c1 FROM R GROUP BY c1 HAVING COUNT(*) < 4)
//!   AND s.c2 IN (SELECT c2 FROM S GROUP BY c2 HAVING COUNT(*) < 4)
//! GROUP BY r.ci1,...,r.ci3, r.c1
//! ```
//!
//! `R.c1` and `S.c2` range over same-domain column pairs in *different*
//! tables; the frequency filters keep both sides to values occurring
//! fewer than four times, bounding the intermediate join (the paper's
//! third design criterion).

use tab_sqlq::{CmpOp, ColRef, Predicate, Query, SelectItem, TableRef};
use tab_storage::{par_map, Database, Parallelism, Table};

use crate::columns::{group_by_variants, usable_columns};

/// Row count above which a table gets fewer group-by variants
/// ("fewer columns in group by clauses on these tables", §4.1.1).
pub const BIG_TABLE_ROWS: usize = 100_000;

/// Enumerate the (restricted) NREF2J family over `db`.
pub fn enumerate(db: &Database) -> Vec<Query> {
    enumerate_par(db, Parallelism::sequential())
}

/// [`enumerate`] fanned out over outer tables. Each outer table's
/// template instantiations are independent, and per-table blocks are
/// concatenated in table order, so the family is identical at any
/// thread count.
pub fn enumerate_par(db: &Database, par: Parallelism) -> Vec<Query> {
    let tables: Vec<_> = db.tables().collect();
    par_map(par, &tables, |r| queries_for_outer(&tables, r))
        .into_iter()
        .flatten()
        .collect()
}

/// All NREF2J instantiations with `r` as the outer (grouped) table.
fn queries_for_outer(tables: &[&Table], r: &Table) -> Vec<Query> {
    let mut out = Vec::new();
    let rs = r.schema();
    for s in tables {
        let ss = s.schema();
        if rs.name == ss.name {
            continue;
        }
        for &c1 in &usable_columns(rs) {
            let Some(domain) = rs.columns[c1].domain.as_deref() else {
                continue;
            };
            for &c2 in &usable_columns(ss) {
                if ss.columns[c2].domain.as_deref() != Some(domain) {
                    continue;
                }
                let max_groups = if r.n_rows() > BIG_TABLE_ROWS { 1 } else { 3 };
                for extra in group_by_variants(rs, &[c1], max_groups) {
                    out.push(build(
                        &rs.name,
                        &ss.name,
                        &rs.columns[c1].name,
                        &ss.columns[c2].name,
                        &extra
                            .iter()
                            .map(|&c| rs.columns[c].name.as_str())
                            .collect::<Vec<_>>(),
                    ));
                }
            }
        }
    }
    out
}

fn build(r: &str, s: &str, c1: &str, c2: &str, extras: &[&str]) -> Query {
    let mut select: Vec<SelectItem> = extras
        .iter()
        .map(|&c| SelectItem::Column(ColRef::new("r", c)))
        .collect();
    select.push(SelectItem::Column(ColRef::new("r", c1)));
    select.push(SelectItem::CountStar);
    let mut group_by: Vec<ColRef> = extras.iter().map(|&c| ColRef::new("r", c)).collect();
    group_by.push(ColRef::new("r", c1));
    Query {
        select,
        from: vec![TableRef::new(r, "r"), TableRef::new(s, "s")],
        predicates: vec![
            Predicate::JoinEq(ColRef::new("r", c1), ColRef::new("s", c2)),
            Predicate::InFrequency {
                col: ColRef::new("r", c1),
                sub_table: r.to_string(),
                sub_column: c1.to_string(),
                op: CmpOp::Lt,
                k: 4,
            },
            Predicate::InFrequency {
                col: ColRef::new("s", c2),
                sub_table: s.to_string(),
                sub_column: c2.to_string(),
                op: CmpOp::Lt,
                k: 4,
            },
        ],
        group_by,
        order_by: vec![],
        limit: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_datagen::{generate_nref, NrefParams};

    #[test]
    fn enumerates_cross_table_same_domain_joins() {
        let db = generate_nref(NrefParams {
            proteins: 300,
            seed: 1,
        });
        let qs = enumerate(&db);
        assert!(qs.len() > 50, "family too small: {}", qs.len());
        for q in &qs {
            assert_eq!(q.from.len(), 2);
            assert_ne!(q.from[0].table, q.from[1].table);
            // Exactly one join + two frequency filters.
            assert_eq!(q.predicates.len(), 3);
            assert!(
                q.predicates
                    .iter()
                    .filter(|p| matches!(p, Predicate::InFrequency { .. }))
                    .count()
                    == 2
            );
            assert!(!q.group_by.is_empty());
        }
    }

    #[test]
    fn queries_parse_back() {
        let db = generate_nref(NrefParams {
            proteins: 200,
            seed: 2,
        });
        for q in enumerate(&db).iter().take(20) {
            let rt = tab_sqlq::parse(&q.to_string()).unwrap();
            assert_eq!(&rt, q);
        }
    }
}
