//! A vendored, dependency-free micro-benchmark harness exposing the
//! subset of the Criterion API the workspace benches use
//! (`Criterion::default().sample_size(..).measurement_time(..)
//! .warm_up_time(..)`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros).
//!
//! The build environment has no access to crates.io, so the workspace
//! aliases this crate as `criterion`. Timing methodology: each sample
//! runs the closure in a loop sized so one sample lasts roughly
//! `measurement_time / sample_size`; the report prints the median,
//! minimum, and maximum per-iteration time across samples.
//!
//! Setting `TAB_BENCH_SMOKE` (to anything but `0`) switches every
//! benchmark to smoke mode — a millisecond of warm-up and a single
//! sample of a single iteration — so CI can type-check and *run* all
//! bench code in seconds without producing meaningful timings.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// The benchmark driver: collects settings, runs registered functions.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Untimed warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark: warm up, sample, and print a one-line report.
    ///
    /// Under `TAB_BENCH_SMOKE` the configured times are ignored: one
    /// millisecond of warm-up, one sample, one iteration per sample.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let smoke = std::env::var_os("TAB_BENCH_SMOKE").is_some_and(|v| v != "0");
        let (warm_up, samples, per_sample) = if smoke {
            (Duration::from_millis(1), 1, 0.0)
        } else {
            (
                self.warm_up_time,
                self.sample_size,
                self.measurement_time.as_secs_f64() / self.sample_size as f64,
            )
        };
        let mut b = Bencher {
            mode: Mode::WarmUp { until: warm_up },
            iters_per_sample: 1,
            samples: Vec::new(),
        };
        f(&mut b);
        b.mode = Mode::Measure {
            samples,
            per_sample,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

enum Mode {
    WarmUp { until: Duration },
    Measure { samples: usize, per_sample: f64 },
}

/// Handed to each benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    mode: Mode,
    iters_per_sample: u64,
    samples: Vec<f64>,
}

impl Bencher {
    /// Time the closure. In the warm-up pass this also calibrates how
    /// many iterations fit in one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::WarmUp { until } => {
                let start = Instant::now();
                let mut iters = 0u64;
                while start.elapsed() < until {
                    std::hint::black_box(f());
                    iters += 1;
                }
                let per_iter = start.elapsed().as_secs_f64() / iters.max(1) as f64;
                self.iters_per_sample = ((0.05 / per_iter.max(1e-12)) as u64).max(1);
            }
            Mode::Measure {
                samples,
                per_sample,
            } => {
                // Refine the calibration so one sample approximates the
                // requested duration.
                let probe = Instant::now();
                std::hint::black_box(f());
                let per_iter = probe.elapsed().as_secs_f64();
                let iters = ((per_sample / per_iter.max(1e-12)) as u64)
                    .clamp(1, self.iters_per_sample.max(1) * 1000);
                self.samples.clear();
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(f());
                    }
                    self.samples
                        .push(start.elapsed().as_secs_f64() / iters as f64);
                }
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = s[s.len() / 2];
        println!(
            "{name:<40} median {:>12} (min {}, max {}, {} samples)",
            fmt_time(median),
            fmt_time(s[0]),
            fmt_time(s[s.len() - 1]),
            s.len()
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Registers a group function running the given targets, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups, mirroring Criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.filter = None;
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
