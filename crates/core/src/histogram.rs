//! Log-scale histograms with a timeout bin (Figures 1, 2, and 11).
//!
//! §1.1: "we define the bins using a logarithmic scale … we report all
//! 'timeout' queries on a single bin (labeled t_out)". Figure 11 uses
//! the same device for improvement *ratios*, binned by decade around 1.

/// A histogram over elapsed times with logarithmic bins plus `t_out`.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Bin upper edges (the first bin is everything below `edges[0]`).
    pub edges: Vec<f64>,
    /// Counts per bin (`counts.len() == edges.len() + 1`: the last
    /// regular bin catches values above the final edge).
    pub counts: Vec<usize>,
    /// Timed-out queries.
    pub timeout_count: usize,
}

impl LogHistogram {
    /// Histogram of `values` (timeouts as `f64::INFINITY`) with
    /// `bins_per_decade` log bins between `min_edge` and `max_edge`.
    pub fn new(values: &[f64], min_edge: f64, max_edge: f64, bins_per_decade: usize) -> Self {
        assert!(min_edge > 0.0 && max_edge > min_edge);
        assert!(bins_per_decade > 0);
        let step = 1.0 / bins_per_decade as f64;
        let mut edges = Vec::new();
        let mut e = min_edge.log10();
        let top = max_edge.log10() + 1e-9;
        while e <= top {
            edges.push(10f64.powf(e));
            e += step;
        }
        let mut counts = vec![0usize; edges.len() + 1];
        let mut timeout_count = 0;
        for &v in values {
            if !v.is_finite() {
                timeout_count += 1;
                continue;
            }
            let i = edges.partition_point(|&x| x <= v);
            counts[i] += 1;
        }
        LogHistogram {
            edges,
            counts,
            timeout_count,
        }
    }

    /// Total observations including timeouts.
    pub fn total(&self) -> usize {
        self.counts.iter().sum::<usize>() + self.timeout_count
    }

    /// Bin labels, including the trailing `t_out`.
    pub fn labels(&self) -> Vec<String> {
        let mut out = vec![format!("<{:.3}", self.edges[0])];
        for w in self.edges.windows(2) {
            out.push(format!("{:.3}-{:.3}", w[0], w[1]));
        }
        out.push(format!(">{:.3}", self.edges.last().expect("non-empty")));
        out.push("t_out".to_string());
        out
    }

    /// Cumulative completed fraction after each bin (the line the paper
    /// superimposes on Figures 1 and 2).
    pub fn cumulative_fractions(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        let mut acc = 0usize;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total
            })
            .collect()
    }
}

/// Ratio histogram for Figure 11: improvement ratios binned by decade,
/// centered on 1 (ratio 1 = "no improvement").
#[derive(Debug, Clone)]
pub struct RatioHistogram {
    /// Decade exponents, e.g. `-3..=3`.
    pub exponents: Vec<i32>,
    /// Count of ratios rounding to each decade.
    pub counts: Vec<usize>,
}

impl RatioHistogram {
    /// Bin `ratios` to their nearest decade, clamped to `±max_decade`.
    pub fn new(ratios: &[f64], max_decade: i32) -> Self {
        let exponents: Vec<i32> = (-max_decade..=max_decade).collect();
        let mut counts = vec![0usize; exponents.len()];
        for &r in ratios {
            if !(r.is_finite() && r > 0.0) {
                continue;
            }
            let d = r.log10().round() as i32;
            let d = d.clamp(-max_decade, max_decade);
            let i = (d + max_decade) as usize;
            counts[i] += 1;
        }
        RatioHistogram { exponents, counts }
    }

    /// Count of ratios at a given decade (`0` = no improvement,
    /// `-1` = 10× faster in the denominator configuration, …).
    pub fn at_decade(&self, d: i32) -> usize {
        self.exponents
            .iter()
            .position(|&e| e == d)
            .map(|i| self.counts[i])
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_timeouts() {
        let v = [0.5, 5.0, 50.0, 500.0, f64::INFINITY, f64::INFINITY];
        let h = LogHistogram::new(&v, 1.0, 1000.0, 1);
        assert_eq!(h.timeout_count, 2);
        assert_eq!(h.total(), 6);
        // 0.5 below first edge; others one per decade bin.
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts.iter().sum::<usize>(), 4);
    }

    #[test]
    fn cumulative_reaches_completed_fraction() {
        let v = [1.5, 15.0, f64::INFINITY, f64::INFINITY];
        let h = LogHistogram::new(&v, 1.0, 100.0, 1);
        let cum = h.cumulative_fractions();
        let last = cum.last().copied().unwrap();
        assert!((last - 0.5).abs() < 1e-12);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn labels_include_tout() {
        let h = LogHistogram::new(&[2.0], 1.0, 10.0, 1);
        let labels = h.labels();
        assert_eq!(labels.last().unwrap(), "t_out");
        assert_eq!(labels.len(), h.counts.len() + 1);
    }

    #[test]
    fn ratio_histogram_centers_on_one() {
        // 31 queries 10x faster in 1C (ratio 10), 17 at 100x, 33 at 1.
        let mut ratios = vec![10.0; 31];
        ratios.extend(vec![100.0; 17]);
        ratios.extend(vec![1.0; 33]);
        let h = RatioHistogram::new(&ratios, 3);
        assert_eq!(h.at_decade(1), 31);
        assert_eq!(h.at_decade(2), 17);
        assert_eq!(h.at_decade(0), 33);
        assert_eq!(h.at_decade(-1), 0);
    }

    #[test]
    fn ratio_histogram_clamps_extremes() {
        let h = RatioHistogram::new(&[1e9, 1e-9], 2);
        assert_eq!(h.at_decade(2), 1);
        assert_eq!(h.at_decade(-2), 1);
    }
}
