//! The benchmark suite: databases, configurations, workloads, and the
//! §4.4 insertion analysis.
//!
//! This module assembles the paper's experimental setup (§4.1): three
//! databases (NREF, skewed TPC-H, uniform TPC-H), the `P`/`1C`/`R`
//! configurations per family, 100-query workloads sampled from each
//! family, and the measurement protocol (30-minute timeout, statistics
//! collected before recommending and before running).

use tab_advisor::{one_column_budget_bytes, one_column_configuration, p_configuration};
use tab_datagen::{generate_nref, generate_tpch, Distribution, NrefParams, TpchParams};
use tab_engine::{ChargePolicy, RANDOM_PAGE_COST, SEQ_PAGE_COST};
use tab_families::{sample_preserving_par, Family};
use tab_sqlq::Query;
use tab_storage::{par_run, BuiltConfiguration, Database, Parallelism};

use crate::measure::WorkloadRun;

/// Suite-level parameters (scales, seeds, timeout, parallelism).
#[derive(Debug, Clone, Copy)]
pub struct SuiteParams {
    /// Proteins in the synthetic NREF (other tables follow the paper's
    /// ratios; the default yields ~1 M total rows).
    pub nref_proteins: usize,
    /// TPC-H scale factor for both the skewed and uniform instances.
    pub tpch_scale: f64,
    /// Queries per sampled workload (the paper uses 100).
    pub workload_size: usize,
    /// Timeout budget in cost units (defaults to the 30-minute
    /// equivalent).
    pub timeout_units: f64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the measurement fan-out. Results are
    /// identical at any setting; only wall-clock time changes.
    pub par: Parallelism,
    /// Intra-query worker threads for morsel-driven execution inside
    /// each measured query (`tab_engine::ExecOpts::par`). Defaults to
    /// sequential: the grid fan-out above already saturates the cores,
    /// so query-level threads are opt-in (`--query-threads`). Results
    /// are identical at any setting.
    pub query_par: Parallelism,
    /// Rows per execution morsel
    /// ([`tab_engine::DEFAULT_MORSEL_ROWS`] unless sweeping). Results
    /// are identical at any setting.
    pub morsel_rows: usize,
    /// Buffer-pool capacity in 8 KiB frames for each measured query
    /// (`--buffer-pages`; `0` = no pool, the legacy purely-modeled
    /// charge path).
    pub buffer_pages: usize,
    /// How the meter charges pool traffic (`--charge`); ignored when
    /// `buffer_pages == 0`. [`ChargePolicy::Metered`] keeps every cost
    /// total byte-identical to the pool-less path.
    pub charge: ChargePolicy,
}

impl Default for SuiteParams {
    fn default() -> Self {
        SuiteParams {
            nref_proteins: 10_000,
            // lineitem at this scale occupies about as many pages as the
            // largest NREF table, so the shared 30-minute timeout has the
            // same bite on both databases (as it did in the paper, whose
            // databases were all 6.5-10 GB).
            tpch_scale: 0.1,
            workload_size: 100,
            timeout_units: tab_engine::DEFAULT_TIMEOUT_UNITS,
            seed: 2005,
            par: Parallelism::available(),
            query_par: Parallelism::sequential(),
            morsel_rows: tab_engine::DEFAULT_MORSEL_ROWS,
            buffer_pages: 0,
            charge: ChargePolicy::Observed,
        }
    }
}

impl SuiteParams {
    /// A fast variant for tests and examples.
    pub fn small() -> Self {
        SuiteParams {
            nref_proteins: 1_500,
            tpch_scale: 0.004,
            workload_size: 30,
            timeout_units: tab_engine::DEFAULT_TIMEOUT_UNITS / 10.0,
            seed: 2005,
            par: Parallelism::available(),
            query_par: Parallelism::sequential(),
            morsel_rows: tab_engine::DEFAULT_MORSEL_ROWS,
            buffer_pages: 0,
            charge: ChargePolicy::Observed,
        }
    }

    /// The same parameters with an explicit thread count (`0` = all
    /// available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.par = Parallelism::new(threads);
        self
    }

    /// The same parameters with an explicit intra-query thread count
    /// (`0` = all available cores).
    pub fn with_query_threads(mut self, threads: usize) -> Self {
        self.query_par = Parallelism::new(threads);
        self
    }

    /// The same parameters with an explicit morsel size.
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows;
        self
    }

    /// The same parameters with a buffer pool of `pages` 8 KiB frames
    /// per measured query (`0` disables the pool).
    pub fn with_buffer_pages(mut self, pages: usize) -> Self {
        self.buffer_pages = pages;
        self
    }

    /// The same parameters with an explicit pool charge policy.
    pub fn with_charge(mut self, charge: ChargePolicy) -> Self {
        self.charge = charge;
        self
    }
}

/// The three benchmark databases, statistics collected.
pub struct Suite {
    /// Parameters used to build the suite.
    pub params: SuiteParams,
    /// Synthetic NREF.
    pub nref: Database,
    /// Skewed TPC-H (Zipf θ=1).
    pub skth: Database,
    /// Uniform TPC-H.
    pub unth: Database,
}

impl Suite {
    /// Generate all three databases, concurrently when `params.par`
    /// allows. Each generator owns its seed, so the databases are
    /// independent of how the builds are scheduled.
    pub fn build(params: SuiteParams) -> Self {
        let jobs: Vec<Box<dyn FnOnce() -> Database + Send>> = vec![
            Box::new(move || {
                generate_nref(NrefParams {
                    proteins: params.nref_proteins,
                    seed: params.seed,
                })
            }),
            Box::new(move || {
                generate_tpch(TpchParams {
                    scale: params.tpch_scale,
                    distribution: Distribution::Zipf(1.0),
                    seed: params.seed + 1,
                })
            }),
            Box::new(move || {
                generate_tpch(TpchParams {
                    scale: params.tpch_scale,
                    distribution: Distribution::Uniform,
                    seed: params.seed + 2,
                })
            }),
        ];
        let mut dbs = par_run(params.par, jobs).into_iter();
        let nref = dbs.next().expect("three jobs");
        let skth = dbs.next().expect("three jobs");
        let unth = dbs.next().expect("three jobs");
        Suite {
            params,
            nref,
            skth,
            unth,
        }
    }

    /// The database a family runs on.
    pub fn db_for(&self, family: Family) -> &Database {
        match family.database_label() {
            "NREF" => &self.nref,
            "SkTH" => &self.skth,
            _ => &self.unth,
        }
    }
}

/// Build the `P` configuration for a database label.
pub fn build_p(db: &Database, label: &str) -> BuiltConfiguration {
    BuiltConfiguration::build(p_configuration(db, format!("{label}_P")), db)
}

/// Build the `1C` configuration for a database label.
pub fn build_1c(db: &Database, label: &str) -> BuiltConfiguration {
    BuiltConfiguration::build(one_column_configuration(db, format!("{label}_1C")), db)
}

/// The paper's space budget for recommendations on this database.
pub fn space_budget(db: &Database, label: &str) -> u64 {
    let p = build_p(db, label);
    let c1 = build_1c(db, label);
    one_column_budget_bytes(&p, &c1)
}

/// Enumerate a family and sample the benchmark workload from it,
/// preserving the family's cost distribution (§4.1.1; stratified on
/// estimated cost in `P` — see `tab-families::sample`).
pub fn prepare_workload(suite: &Suite, family: Family, p_built: &BuiltConfiguration) -> Vec<Query> {
    prepare_workload_db_with(
        suite.db_for(family),
        family,
        p_built,
        suite.params.workload_size,
        suite.params.seed,
        suite.params.par,
    )
}

/// [`prepare_workload`] against an explicit database instance, for
/// callers that build databases one at a time to bound memory.
pub fn prepare_workload_db(
    db: &Database,
    family: Family,
    p_built: &BuiltConfiguration,
    workload_size: usize,
    seed: u64,
) -> Vec<Query> {
    prepare_workload_db_with(
        db,
        family,
        p_built,
        workload_size,
        seed,
        Parallelism::sequential(),
    )
}

/// [`prepare_workload_db`] with enumeration and stratification cost
/// estimation fanned out across threads. The sampled workload is
/// identical at any thread count.
pub fn prepare_workload_db_with(
    db: &Database,
    family: Family,
    p_built: &BuiltConfiguration,
    workload_size: usize,
    seed: u64,
    par: Parallelism,
) -> Vec<Query> {
    let all = family.enumerate_with(db, par);
    let session = tab_engine::Session::new(db, p_built);
    sample_preserving_par(
        &all,
        |q| session.estimate(q).unwrap_or(f64::INFINITY),
        workload_size,
        seed ^ family.name().len() as u64,
        par,
    )
}

/// One row of Table 1: configuration size and build time.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Configuration name, e.g. `B_NREF2J_R`.
    pub name: String,
    /// Total size (base heaps + auxiliary structures) in MiB of the
    /// scaled instance. The paper reports GB at its 6.5–10 GB scales;
    /// relative sizes are the reproduction target.
    pub size_mib: f64,
    /// Modeled build time in simulated minutes (pages written charged at
    /// the sequential-write rate).
    pub build_sim_minutes: f64,
}

/// Compute a Table 1 row for a built configuration.
pub fn table1_row(db: &Database, built: &BuiltConfiguration) -> Table1Row {
    let bytes = db.heap_bytes() + built.report.aux_bytes();
    let build_units = built.report.pages_written as f64 * SEQ_PAGE_COST;
    Table1Row {
        name: built.config.name.clone(),
        size_mib: bytes as f64 / (1024.0 * 1024.0),
        build_sim_minutes: tab_engine::units_to_sim_seconds(build_units) / 60.0,
    }
}

/// §4.4's insertion analysis for one base table.
#[derive(Debug, Clone)]
pub struct InsertionAnalysis {
    /// Modeled per-tuple maintenance cost (cost units) in `P`.
    pub per_insert_p: f64,
    /// Per-tuple cost in the recommended configuration.
    pub per_insert_r: f64,
    /// Per-tuple cost in `1C`.
    pub per_insert_1c: f64,
    /// Workload lower-bound totals (sim seconds) on `R` and `1C`.
    pub workload_r: f64,
    /// See `workload_r`.
    pub workload_1c: f64,
    /// Number of inserted tuples at which `1C`'s faster queries are
    /// overtaken by its slower inserts (`None` when `1C` never loses,
    /// i.e. its insert cost does not exceed `R`'s).
    pub breakeven_tuples: Option<f64>,
}

/// Per-tuple insert maintenance cost (cost units) for a configuration,
/// from the same cost model the executor charges: one heap page write
/// plus a descent-and-leaf write per index on the table, plus a
/// delta-join charge per dependent view.
pub fn per_insert_cost(built: &BuiltConfiguration, table: &str) -> f64 {
    let mut pages = 1u64;
    for idx in built.indexes_on(table) {
        pages += idx.height() + 1;
    }
    for (mv, _) in built.mviews.iter() {
        if mv.spec.base.iter().any(|b| b == table) {
            pages += 3;
        }
    }
    pages as f64 * RANDOM_PAGE_COST
}

/// Compute the §4.4 break-even point: inserting `n` tuples costs
/// `n * per_insert(C)`; the workload costs `total(C)`. The break-even is
/// the `n` where `1C`'s total catches up with `R`'s.
pub fn insertion_breakeven(
    p: &BuiltConfiguration,
    r: &BuiltConfiguration,
    one_c: &BuiltConfiguration,
    run_r: &WorkloadRun,
    run_1c: &WorkloadRun,
    table: &str,
) -> InsertionAnalysis {
    let per_insert_p = per_insert_cost(p, table);
    let per_insert_r = per_insert_cost(r, table);
    let per_insert_1c = per_insert_cost(one_c, table);
    let workload_r = run_r.total_lower_bound_sim_seconds();
    let workload_1c = run_1c.total_lower_bound_sim_seconds();
    // In sim seconds: workload_1c + n*i_1c = workload_r + n*i_r.
    let di = tab_engine::units_to_sim_seconds(per_insert_1c - per_insert_r);
    let dw = workload_r - workload_1c;
    let breakeven_tuples = if di > 0.0 && dw > 0.0 {
        Some(dw / di)
    } else {
        None
    };
    InsertionAnalysis {
        per_insert_p,
        per_insert_r,
        per_insert_1c,
        workload_r,
        workload_1c,
        breakeven_tuples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_engine::Outcome;

    fn tiny_suite() -> Suite {
        Suite::build(SuiteParams {
            nref_proteins: 400,
            tpch_scale: 0.002,
            workload_size: 10,
            timeout_units: 500.0,
            seed: 7,
            par: Parallelism::sequential(),
            ..SuiteParams::small()
        })
    }

    #[test]
    fn parallel_suite_matches_sequential() {
        let seq = tiny_suite();
        let par = Suite::build(SuiteParams {
            par: Parallelism::new(3),
            ..seq.params
        });
        for (a, b) in [
            (&seq.nref, &par.nref),
            (&seq.skth, &par.skth),
            (&seq.unth, &par.unth),
        ] {
            for name in a.table_names() {
                assert_eq!(
                    a.table(name).unwrap().n_rows(),
                    b.table(name).unwrap().n_rows(),
                    "{name}"
                );
            }
        }
        let p = build_p(&seq.nref, "NREF");
        let w_seq = prepare_workload(&seq, Family::Nref2J, &p);
        let w_par = prepare_workload(&par, Family::Nref2J, &p);
        assert_eq!(w_seq, w_par);
    }

    #[test]
    fn suite_builds_three_databases() {
        let s = tiny_suite();
        assert!(s.nref.table("neighboring_seq").is_some());
        assert!(s.skth.table("lineitem").is_some());
        assert!(s.unth.table("lineitem").is_some());
        assert_eq!(s.db_for(Family::Nref2J).table_names().count(), 6);
        assert_eq!(s.db_for(Family::SkTH3Js).table_names().count(), 8);
    }

    #[test]
    fn workload_prepared_at_requested_size() {
        let s = tiny_suite();
        let p = build_p(&s.nref, "NREF");
        let w = prepare_workload(&s, Family::Nref2J, &p);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn one_c_is_larger_and_slower_to_build_than_p() {
        let s = tiny_suite();
        let p = build_p(&s.nref, "NREF");
        let c1 = build_1c(&s.nref, "NREF");
        let rp = table1_row(&s.nref, &p);
        let r1 = table1_row(&s.nref, &c1);
        assert!(r1.size_mib > rp.size_mib);
        assert!(r1.build_sim_minutes > rp.build_sim_minutes);
        assert!(space_budget(&s.nref, "NREF") > 0);
    }

    #[test]
    fn insertion_breakeven_math() {
        let s = tiny_suite();
        let p = build_p(&s.nref, "NREF");
        let c1 = build_1c(&s.nref, "NREF");
        // Synthetic runs: R slower on queries, cheaper on inserts.
        let run_r = WorkloadRun {
            config: "R".into(),
            outcomes: vec![Outcome::Done {
                units: 60_000.0,
                rows: 1,
            }],
            io: tab_storage::PoolStats::default(),
        };
        let run_1c = WorkloadRun {
            config: "1C".into(),
            outcomes: vec![Outcome::Done {
                units: 10_000.0,
                rows: 1,
            }],
            io: tab_storage::PoolStats::default(),
        };
        let a = insertion_breakeven(&p, &p, &c1, &run_r, &run_1c, "neighboring_seq");
        assert!(a.per_insert_1c > a.per_insert_r);
        let be = a.breakeven_tuples.expect("finite break-even");
        // Sanity: inserting `be` tuples equalizes the totals.
        let lhs = a.workload_1c + be * tab_engine::units_to_sim_seconds(a.per_insert_1c);
        let rhs = a.workload_r + be * tab_engine::units_to_sim_seconds(a.per_insert_r);
        assert!((lhs - rhs).abs() < 1e-6);
    }
}
