//! Performance goals: quality-of-service constraints on CFC curves.
//!
//! §2.2: "a performance goal can be viewed as a quality of service
//! requirement … a configuration `C_j` satisfies the performance goal if
//! `CFC_j > G`. Note that any monotonic function G can be used as a
//! performance goal in this setting." Also supported: the simpler
//! total-cost and improvement-ratio goals the same section defines.

use crate::cfc::Cfc;

/// A monotone step-function performance goal `G(x)`.
///
/// `G(x)` is the largest `frac` whose step starts at or below `x`; zero
/// before the first step.
///
/// ```
/// use tab_core::{Cfc, Goal};
///
/// // "10% under 10 s, half under a minute, 90% before the timeout."
/// let goal = Goal::parse("10:0.1, 60:50%, 1800:0.9").unwrap();
/// let run = Cfc::from_values(&[2.0, 20.0, 30.0, 40.0, 200.0]);
/// assert!(goal.satisfied_by(&run));
/// let slow = Cfc::from_values(&[15.0, 70.0, 80.0, 90.0, 2000.0]);
/// assert!(!goal.satisfied_by(&slow));
/// ```
#[derive(Debug, Clone)]
pub struct Goal {
    /// Steps `(x, frac)`, strictly increasing in both coordinates.
    steps: Vec<(f64, f64)>,
}

impl Goal {
    /// A goal from `(x, fraction)` steps.
    ///
    /// # Panics
    /// Panics if the steps are not strictly increasing in `x` and
    /// non-decreasing in `fraction`, or a fraction is outside `[0, 1]`
    /// — a non-monotone goal is meaningless (§2.2).
    pub fn from_steps(steps: Vec<(f64, f64)>) -> Self {
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0, "goal steps must increase in x");
            assert!(w[0].1 <= w[1].1, "goal fractions must be monotone");
        }
        assert!(
            steps.iter().all(|s| (0.0..=1.0).contains(&s.1)),
            "fractions must be in [0, 1]"
        );
        Goal { steps }
    }

    /// The paper's Example 2: 10% under 10 s, 50% under a minute, 90%
    /// before the 30-minute timeout.
    pub fn example_2() -> Self {
        Goal::from_steps(vec![(10.0, 0.1), (60.0, 0.5), (1800.0, 0.9)])
    }

    /// `G(x)`.
    pub fn value(&self, x: f64) -> f64 {
        self.steps
            .iter()
            .rev()
            .find(|(sx, _)| *sx <= x)
            .map(|(_, f)| *f)
            .unwrap_or(0.0)
    }

    /// Whether a CFC satisfies the goal: `CFC(x) ≥ G(x)` at (just after)
    /// every step, i.e. by each deadline the required fraction has
    /// completed.
    pub fn satisfied_by(&self, cfc: &Cfc) -> bool {
        self.steps.iter().all(|&(x, f)| cfc.at(x) >= f)
    }

    /// The goal's steps.
    pub fn steps(&self) -> &[(f64, f64)] {
        &self.steps
    }

    /// Parse a goal from the compact form `"10:0.1,60:0.5,1800:0.9"`
    /// (seconds:fraction pairs). Fractions may also be percentages
    /// (`"60:50%"`).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut steps = Vec::new();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (x, f) = part
                .split_once(':')
                .ok_or_else(|| format!("expected `seconds:fraction`, got `{part}`"))?;
            let x: f64 = x.trim().parse().map_err(|_| format!("bad seconds `{x}`"))?;
            let f = f.trim();
            let frac: f64 = if let Some(pct) = f.strip_suffix('%') {
                pct.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("bad percentage `{f}`"))?
                    / 100.0
            } else {
                f.parse().map_err(|_| format!("bad fraction `{f}`"))?
            };
            steps.push((x, frac));
        }
        if steps.is_empty() {
            return Err("goal has no steps".into());
        }
        for w in steps.windows(2) {
            if w[0].0 >= w[1].0 || w[0].1 > w[1].1 {
                return Err("goal steps must be monotone".into());
            }
        }
        if steps.iter().any(|s| !(0.0..=1.0).contains(&s.1)) {
            return Err("fractions must be within [0, 1]".into());
        }
        Ok(Goal::from_steps(steps))
    }
}

/// The improvement-ratio goal of §2.2:
/// `IR = A(W, C_i) / A(W, C_j) ≥ target` (e.g. "a 10 times improvement").
pub fn improvement_ratio(total_before: f64, total_after: f64) -> f64 {
    if total_after <= 0.0 {
        f64::INFINITY
    } else {
        total_before / total_after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_2_step_values() {
        let g = Goal::example_2();
        assert_eq!(g.value(5.0), 0.0);
        assert_eq!(g.value(10.0), 0.1);
        assert_eq!(g.value(59.0), 0.1);
        assert_eq!(g.value(60.0), 0.5);
        assert_eq!(g.value(1e6), 0.9);
    }

    #[test]
    fn satisfied_and_violated() {
        let g = Goal::example_2();
        // 10 queries: all at 1s -> satisfies everything.
        let fast = Cfc::from_values(&[1.0; 10]);
        assert!(g.satisfied_by(&fast));
        // All queries at 100s: 0% under 10s -> fails the first step.
        let slow = Cfc::from_values(&[100.0; 10]);
        assert!(!g.satisfied_by(&slow));
        // 90% fast but 20% at timeout-ish: fails the 90% step.
        let mut v = vec![1.0; 7];
        v.extend([f64::INFINITY, f64::INFINITY, f64::INFINITY]);
        assert!(!g.satisfied_by(&Cfc::from_values(&v)));
    }

    #[test]
    fn boundary_semantics() {
        // Exactly 10% under 10 seconds (strictly below).
        let v = [9.0, 20.0, 20.0, 20.0, 20.0, 61.0, 61.0, 61.0, 61.0, 61.0];
        let g = Goal::from_steps(vec![(10.0, 0.1)]);
        assert!(g.satisfied_by(&Cfc::from_values(&v)));
        let g2 = Goal::from_steps(vec![(9.0, 0.1)]);
        assert!(!g2.satisfied_by(&Cfc::from_values(&v)));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_goal_rejected() {
        Goal::from_steps(vec![(10.0, 0.5), (20.0, 0.1)]);
    }

    #[test]
    fn parse_compact_form() {
        let g = Goal::parse("10:0.1, 60:50%, 1800:0.9").unwrap();
        assert_eq!(g.steps().len(), 3);
        assert_eq!(g.value(60.0), 0.5);
        assert!(Goal::parse("").is_err());
        assert!(Goal::parse("10:0.5,5:0.9").is_err());
        assert!(Goal::parse("10:1.5").is_err());
        assert!(Goal::parse("ten:0.5").is_err());
    }

    #[test]
    fn improvement_ratio_math() {
        assert_eq!(improvement_ratio(100.0, 10.0), 10.0);
        assert_eq!(improvement_ratio(100.0, 0.0), f64::INFINITY);
    }
}
