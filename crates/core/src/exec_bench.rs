//! Executor micro-measurements for `BENCH_exec.json`
//! (schema `tab-exec-bench-v1`).
//!
//! The morsel-driven executor (DESIGN.md §12) promises identical
//! results and cost units at any thread count, morsel size, and
//! vectorization setting — wall-clock is the only thing the knobs may
//! change. This module measures exactly that promise on a sample of
//! real benchmark queries: each query runs three ways —
//!
//! 1. **scalar, 1 thread** — the before picture (row-at-a-time
//!    predicates, no intra-query parallelism);
//! 2. **vectorized, 1 thread** — isolates the columnar predicate fast
//!    path (and doubles as the ≤ 5% single-thread regression check);
//! 3. **vectorized, N threads** — the after picture.
//!
//! and [`measure_exec`] *asserts* that all three produce the same
//! outcome before recording their wall-clocks. Cost units, morsel
//! counts, and per-operator shapes in the record are deterministic;
//! the `*_seconds` fields are wall-clock and therefore excluded from
//! the determinism byte-compare (the `BENCH_` prefix, like every other
//! timing record).

use std::time::Instant;

use tab_engine::{ExecOpts, Outcome, Session};
use tab_sqlq::Query;
use tab_storage::{trace::json_escape, BuiltConfiguration, Database, Parallelism};

/// One operator's deterministic shape within a measured query.
#[derive(Debug, Clone)]
pub struct OpBench {
    /// Operator label from the plan (`SeqScan(...)`, `HashJoin(...)`).
    pub label: String,
    /// Morsel jobs the operator dispatched (a pure function of data
    /// size and morsel size — never of the thread count).
    pub morsels: u64,
    /// Cost units the operator charged.
    pub units: f64,
}

/// Measurements for one query of the executor bench.
#[derive(Debug, Clone)]
pub struct ExecBenchEntry {
    /// Display name, e.g. `NREF2J/q0`.
    pub name: String,
    /// Total cost units — identical across all three variants (checked
    /// at measurement time).
    pub units: f64,
    /// Result rows.
    pub result_rows: u64,
    /// Total operator input rows (the throughput numerator for the
    /// rows/sec fields).
    pub rows_in: u64,
    /// Morsel jobs dispatched across all operators.
    pub morsels: u64,
    /// Per-operator shapes in plan slot order.
    pub ops: Vec<OpBench>,
    /// Wall-clock of the scalar single-threaded run (min over repeats).
    pub scalar_1t_seconds: f64,
    /// Wall-clock of the vectorized single-threaded run.
    pub vector_1t_seconds: f64,
    /// Wall-clock of the vectorized run at [`ExecBenchEntry::threads`].
    pub vector_nt_seconds: f64,
    /// Thread count of the parallel variant.
    pub threads: usize,
}

impl ExecBenchEntry {
    /// Parallel speedup of the vectorized executor: 1-thread wall over
    /// N-thread wall.
    pub fn parallel_speedup(&self) -> f64 {
        self.vector_1t_seconds / self.vector_nt_seconds.max(1e-12)
    }

    /// Vectorization speedup at one thread: scalar wall over vectorized
    /// wall.
    pub fn vectorized_speedup(&self) -> f64 {
        self.scalar_1t_seconds / self.vector_1t_seconds.max(1e-12)
    }

    /// Operator-input rows per second through the scalar path.
    pub fn scalar_rows_per_sec(&self) -> f64 {
        self.rows_in as f64 / self.scalar_1t_seconds.max(1e-12)
    }

    /// Operator-input rows per second through the vectorized path.
    pub fn vector_rows_per_sec(&self) -> f64 {
        self.rows_in as f64 / self.vector_1t_seconds.max(1e-12)
    }
}

/// Run `queries` against `built` three ways (scalar/1t, vectorized/1t,
/// vectorized/`threads`) and collect wall-clocks plus the deterministic
/// shape of each execution. `repeats` runs per variant, keeping the
/// minimum wall (the least-noise estimator for CI runners).
///
/// Panics if any variant disagrees on the outcome — the determinism
/// contract this record exists to document.
pub fn measure_exec(
    db: &Database,
    built: &BuiltConfiguration,
    queries: &[(String, Query)],
    threads: usize,
    morsel_rows: usize,
    repeats: usize,
) -> Vec<ExecBenchEntry> {
    let repeats = repeats.max(1);
    let variants = |vectorize: bool, par: Parallelism| ExecOpts {
        par,
        morsel_rows,
        vectorize,
        ..ExecOpts::default()
    };
    let scalar_1t = variants(false, Parallelism::sequential());
    let vector_1t = variants(true, Parallelism::sequential());
    let vector_nt = variants(true, Parallelism::new(threads));
    queries
        .iter()
        .map(|(name, q)| {
            // One instrumented reference run for the deterministic shape.
            let session = Session::new(db, built).with_exec(vector_nt);
            let (reference, acts) = session
                .run_instrumented(q, None)
                .expect("bench queries bind against their database");
            let (units, result_rows) = match reference.outcome {
                Outcome::Done { units, rows } => (units, rows),
                Outcome::Timeout { .. } => unreachable!("unbudgeted runs cannot time out"),
            };
            let labels = reference.plan.op_labels();
            let ops: Vec<OpBench> = acts
                .iter()
                .enumerate()
                .map(|(i, a)| OpBench {
                    label: labels.get(i).cloned().unwrap_or_default(),
                    morsels: a.morsels,
                    units: a.units,
                })
                .collect();
            let rows_in: u64 = acts.iter().map(|a| a.rows_in).sum();
            let morsels: u64 = acts.iter().map(|a| a.morsels).sum();

            let time = |opts: ExecOpts<'static>| -> f64 {
                let mut best = f64::INFINITY;
                for _ in 0..repeats {
                    let session = Session::new(db, built).with_exec(opts);
                    let t0 = Instant::now();
                    let r = session
                        .run(q, None)
                        .expect("bench queries bind against their database");
                    best = best.min(t0.elapsed().as_secs_f64());
                    assert_eq!(
                        r.outcome, reference.outcome,
                        "executor variants must agree on {name}"
                    );
                }
                best
            };
            let scalar_1t_seconds = time(scalar_1t);
            let vector_1t_seconds = time(vector_1t);
            let vector_nt_seconds = time(vector_nt);
            ExecBenchEntry {
                name: name.clone(),
                units,
                result_rows,
                rows_in,
                morsels,
                ops,
                scalar_1t_seconds,
                vector_1t_seconds,
                vector_nt_seconds,
                threads: Parallelism::new(threads).threads(),
            }
        })
        .collect()
}

/// Render the executor bench as the `tab-exec-bench-v1` JSON document.
/// Carries wall-clock, so — like every `BENCH_*` record except the
/// convergence one — it is excluded from determinism byte-compares.
pub fn exec_bench_json(threads: usize, morsel_rows: usize, entries: &[ExecBenchEntry]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tab-exec-bench-v1\",\n");
    s.push_str(&format!("  \"query_threads\": {threads},\n"));
    s.push_str(&format!("  \"morsel_rows\": {morsel_rows},\n"));
    s.push_str("  \"queries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"units\": {:.3}, \"result_rows\": {}, \
             \"rows_in\": {}, \"morsels\": {},\n",
            json_escape(&e.name),
            e.units,
            e.result_rows,
            e.rows_in,
            e.morsels,
        ));
        s.push_str(&format!(
            "     \"scalar_1t_seconds\": {:.6}, \"vector_1t_seconds\": {:.6}, \
             \"vector_nt_seconds\": {:.6}, \"threads\": {},\n",
            e.scalar_1t_seconds, e.vector_1t_seconds, e.vector_nt_seconds, e.threads,
        ));
        s.push_str(&format!(
            "     \"parallel_speedup\": {:.3}, \"vectorized_speedup\": {:.3}, \
             \"scalar_rows_per_sec\": {:.0}, \"vector_rows_per_sec\": {:.0},\n",
            e.parallel_speedup(),
            e.vectorized_speedup(),
            e.scalar_rows_per_sec(),
            e.vector_rows_per_sec(),
        ));
        s.push_str("     \"ops\": [");
        for (j, op) in e.ops.iter().enumerate() {
            s.push_str(&format!(
                "{}{{\"label\": \"{}\", \"morsels\": {}, \"units\": {:.3}}}",
                if j == 0 { "" } else { ", " },
                json_escape(&op.label),
                op.morsels,
                op.units,
            ));
        }
        s.push_str(&format!(
            "]}}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> ExecBenchEntry {
        ExecBenchEntry {
            name: "NREF2J/q0".into(),
            units: 120.5,
            result_rows: 7,
            rows_in: 50_000,
            morsels: 13,
            ops: vec![OpBench {
                label: "SeqScan(protein)".into(),
                morsels: 13,
                units: 100.0,
            }],
            scalar_1t_seconds: 0.080,
            vector_1t_seconds: 0.040,
            vector_nt_seconds: 0.010,
            threads: 4,
        }
    }

    #[test]
    fn speedups_and_throughput() {
        let e = entry();
        assert!((e.parallel_speedup() - 4.0).abs() < 1e-9);
        assert!((e.vectorized_speedup() - 2.0).abs() < 1e-9);
        assert!((e.scalar_rows_per_sec() - 625_000.0).abs() < 1e-3);
    }

    #[test]
    fn json_is_schema_tagged_and_carries_the_record() {
        let j = exec_bench_json(4, 4096, &[entry()]);
        assert!(j.contains("\"schema\": \"tab-exec-bench-v1\""), "{j}");
        assert!(j.contains("\"query_threads\": 4"), "{j}");
        assert!(j.contains("\"morsel_rows\": 4096"), "{j}");
        assert!(j.contains("\"parallel_speedup\": 4.000"), "{j}");
        assert!(j.contains("\"vectorized_speedup\": 2.000"), "{j}");
        assert!(j.contains("SeqScan(protein)"), "{j}");
        assert!(j.contains("\"morsels\": 13"), "{j}");
    }
}
