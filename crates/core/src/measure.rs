//! Workload-level measurement: the paper's `A`, `E`, and `H` applied to
//! whole workloads, timeout lower bounds, and improvement ratios.

use tab_engine::{apply_insert, estimate_hypothetical, Outcome, Session};
use tab_sqlq::{Insert, Query};
use tab_storage::{par_map, BuiltConfiguration, Configuration, Database, Parallelism, PoolStats};

use crate::cfc::Cfc;

/// One workload executed on one configuration.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Configuration display name.
    pub config: String,
    /// Per-query outcomes in workload order.
    pub outcomes: Vec<Outcome>,
    /// Buffer-pool traffic summed over the workload's completed queries
    /// in workload order. All-zero when the run executed without a pool
    /// (the legacy purely-modeled charge path).
    pub io: PoolStats,
}

impl WorkloadRun {
    /// Per-query elapsed simulated seconds, `INFINITY` for timeouts.
    pub fn sim_seconds(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| match o {
                Outcome::Done { units, .. } => tab_engine::units_to_sim_seconds(*units),
                Outcome::Timeout { .. } => f64::INFINITY,
            })
            .collect()
    }

    /// The CFC of this run.
    pub fn cfc(&self) -> Cfc {
        Cfc::from_values(&self.sim_seconds())
    }

    /// Number of timed-out queries.
    pub fn timeout_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_timeout()).count()
    }

    /// §4.3's conservative total: completed times plus the timeout value
    /// for each timed-out query ("a lower bound for the execution of
    /// workload … on P").
    pub fn total_lower_bound_sim_seconds(&self) -> f64 {
        self.outcomes
            .iter()
            .map(Outcome::sim_seconds_lower_bound)
            .sum()
    }

    /// The same conservative total in raw cost units: actual units for
    /// completed queries, the budget for timed-out ones. This is the
    /// quantity the grid timings and `BENCH_repro_*.json` aggregate.
    pub fn total_lower_bound_units(&self) -> f64 {
        self.outcomes.iter().map(Outcome::units_lower_bound).sum()
    }
}

/// Execute a workload on a configuration with the given timeout budget
/// (in cost units). The paper's `A(W, C)` measurement loop.
pub fn run_workload(
    db: &Database,
    built: &BuiltConfiguration,
    workload: &[Query],
    timeout_units: f64,
) -> WorkloadRun {
    run_workload_with(
        db,
        built,
        workload,
        timeout_units,
        Parallelism::sequential(),
    )
}

/// [`run_workload`] fanned out over queries. Queries are independent
/// (sessions are read-only views over `db` and `built`) and outcomes are
/// collected in workload order, so the result is identical at any
/// thread count.
pub fn run_workload_with(
    db: &Database,
    built: &BuiltConfiguration,
    workload: &[Query],
    timeout_units: f64,
    par: Parallelism,
) -> WorkloadRun {
    let session = Session::new(db, built);
    let results = par_map(par, workload, |q| {
        let r = session
            .run(q, Some(timeout_units))
            .expect("workload queries bind against their database");
        (r.outcome, r.io)
    });
    let mut io = PoolStats::default();
    let outcomes = results
        .into_iter()
        .map(|(o, i)| {
            io.merge(&i);
            o
        })
        .collect();
    WorkloadRun {
        config: built.config.name.clone(),
        outcomes,
        io,
    }
}

/// Per-query optimizer estimates `E(q, C)` in the built configuration.
pub fn estimate_workload(
    db: &Database,
    built: &BuiltConfiguration,
    workload: &[Query],
) -> Vec<f64> {
    estimate_workload_with(db, built, workload, Parallelism::sequential())
}

/// [`estimate_workload`] fanned out over queries, order-preserving.
pub fn estimate_workload_with(
    db: &Database,
    built: &BuiltConfiguration,
    workload: &[Query],
    par: Parallelism,
) -> Vec<f64> {
    let session = Session::new(db, built);
    par_map(par, workload, |q| {
        session.estimate(q).expect("queries bind")
    })
}

/// Per-query hypothetical estimates `H(q, Ch, Ca)`.
pub fn estimate_workload_hypothetical(
    db: &Database,
    current: &BuiltConfiguration,
    hyp: &Configuration,
    workload: &[Query],
) -> Vec<f64> {
    estimate_workload_hypothetical_with(db, current, hyp, workload, Parallelism::sequential())
}

/// [`estimate_workload_hypothetical`] fanned out over queries,
/// order-preserving.
pub fn estimate_workload_hypothetical_with(
    db: &Database,
    current: &BuiltConfiguration,
    hyp: &Configuration,
    workload: &[Query],
    par: Parallelism,
) -> Vec<f64> {
    par_map(par, workload, |q| {
        estimate_hypothetical(db, current, hyp, q).expect("queries bind")
    })
}

/// One operation of a mixed (read/write) workload — §4.4's extension.
#[derive(Debug, Clone)]
pub enum WorkloadOp {
    /// A retrieval query.
    Query(Query),
    /// A single-row insertion.
    Insert(Insert),
}

/// Result of executing a mixed workload.
#[derive(Debug, Clone)]
pub struct UpdateWorkloadRun {
    /// Outcomes of the query operations, in order.
    pub query_outcomes: Vec<Outcome>,
    /// Total insert-maintenance cost in cost units.
    pub insert_units: f64,
    /// Number of insertions applied.
    pub inserts: usize,
}

impl UpdateWorkloadRun {
    /// Total lower-bound cost in simulated seconds: queries (timeouts at
    /// the budget) plus insert maintenance.
    pub fn total_lower_bound_sim_seconds(&self) -> f64 {
        let q: f64 = self
            .query_outcomes
            .iter()
            .map(Outcome::sim_seconds_lower_bound)
            .sum();
        q + tab_engine::units_to_sim_seconds(self.insert_units)
    }
}

/// Execute a mixed workload, mutating the database and maintaining the
/// configuration's structures as insertions land.
///
/// # Panics
/// Panics if an operation fails to bind or validate — mixed workloads
/// are constructed against the same database they run on.
pub fn run_update_workload(
    db: &mut Database,
    built: &mut BuiltConfiguration,
    ops: &[WorkloadOp],
    timeout_units: f64,
) -> UpdateWorkloadRun {
    let mut query_outcomes = Vec::new();
    let mut insert_units = 0.0;
    let mut inserts = 0;
    for op in ops {
        match op {
            WorkloadOp::Query(q) => {
                let session = Session::new(db, built);
                let out = session
                    .run(q, Some(timeout_units))
                    .expect("mixed-workload query binds")
                    .outcome;
                query_outcomes.push(out);
            }
            WorkloadOp::Insert(i) => {
                let out = apply_insert(i, db, built).expect("mixed-workload insert validates");
                insert_units += out.units;
                inserts += 1;
            }
        }
    }
    UpdateWorkloadRun {
        query_outcomes,
        insert_units,
        inserts,
    }
}

/// Per-query improvement ratios `x_i / y_i` (§5.2's AIR / EIR / HIR).
/// Pairs involving a non-finite value are skipped, matching the paper:
/// "actual improvements involving timeout queries are not considered".
pub fn improvement_ratios(numer: &[f64], denom: &[f64]) -> Vec<f64> {
    assert_eq!(numer.len(), denom.len());
    numer
        .iter()
        .zip(denom)
        .filter(|(a, b)| a.is_finite() && b.is_finite() && **b > 0.0)
        .map(|(a, b)| a / b)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_engine::Outcome;

    fn run(units: &[Option<f64>]) -> WorkloadRun {
        WorkloadRun {
            config: "T".into(),
            outcomes: units
                .iter()
                .map(|u| match u {
                    Some(x) => Outcome::Done { units: *x, rows: 1 },
                    None => Outcome::Timeout { budget: 100.0 },
                })
                .collect(),
            io: PoolStats::default(),
        }
    }

    #[test]
    fn lower_bound_uses_timeout_budget() {
        let r = run(&[Some(10.0), None, Some(20.0)]);
        let lb = r.total_lower_bound_sim_seconds();
        let expect = tab_engine::units_to_sim_seconds(10.0 + 100.0 + 20.0);
        assert!((lb - expect).abs() < 1e-9);
        assert_eq!(r.timeout_count(), 1);
        assert!((r.total_lower_bound_units() - 130.0).abs() < 1e-9);
    }

    #[test]
    fn sim_seconds_mark_timeouts_infinite() {
        let r = run(&[Some(1.0), None]);
        let s = r.sim_seconds();
        assert!(s[0].is_finite());
        assert!(s[1].is_infinite());
        assert_eq!(r.cfc().timeouts(), 1);
    }

    #[test]
    fn ratios_skip_timeouts() {
        let a = [10.0, f64::INFINITY, 30.0];
        let b = [1.0, 2.0, f64::INFINITY];
        let r = improvement_ratios(&a, &b);
        assert_eq!(r, vec![10.0]);
    }
}
