//! # tab-core
//!
//! The paper's contribution, as a library: a benchmarking framework for
//! autonomic configuration recommenders.
//!
//! - [`cfc`] — cumulative frequency curves of query elapsed times and
//!   first-order stochastic dominance between configurations (§2.2);
//! - [`goal`] — performance goals as monotone constraints on CFC curves
//!   (Example 2), plus total-cost and improvement-ratio goals;
//! - [`histogram`] — log-binned elapsed-time histograms with the `t_out`
//!   bin (Figures 1–2) and decade-binned ratio histograms (Figure 11);
//! - [`measure`] — workload-level `A`/`E`/`H` measurement, timeout lower
//!   bounds (§4.3), and improvement ratios AIR/EIR/HIR (§5.2);
//! - [`experiment`] — the benchmark suite: the three databases, the
//!   `P`/`1C` configurations, space budgets, workload sampling, and the
//!   §4.4 insertion break-even analysis;
//! - [`report`] — CSV output and ASCII figure rendering.
//!
//! The crate also re-exports the structured tracing layer
//! ([`Trace`], [`TraceSink`], and friends from `tab-storage`) so the
//! harness and CLI have one import surface for observability.

#![deny(missing_docs)]

pub mod cfc;
pub mod checkpoint;
pub mod convergence;
pub mod exec_bench;
pub mod experiment;
pub mod goal;
pub mod grid;
pub mod histogram;
pub mod measure;
pub mod report;

pub use cfc::Cfc;
pub use checkpoint::{CheckpointError, CheckpointJournal};
pub use convergence::{
    convergence_csv_rows, convergence_json, fig12_csv_rows, render_convergence_curve,
    render_convergence_table, ConvergenceCurve, CurvePoint, FIG12_HEADER,
};
pub use exec_bench::{exec_bench_json, measure_exec, ExecBenchEntry, OpBench};
pub use experiment::{
    build_1c, build_p, insertion_breakeven, per_insert_cost, prepare_workload, prepare_workload_db,
    prepare_workload_db_with, space_budget, table1_row, InsertionAnalysis, Suite, SuiteParams,
    Table1Row,
};
pub use goal::{improvement_ratio, Goal};
pub use grid::{
    advisor_bench_json, bench_json, io_bench_json, run_grid, run_grid_checkpointed,
    run_grid_traced, timings_json, AdvisorBenchRecord, CellTiming, FailedCell, GridCell, GridError,
    IoBenchCell, PhaseTiming,
};
pub use histogram::{LogHistogram, RatioHistogram};
pub use measure::{
    estimate_workload, estimate_workload_hypothetical, estimate_workload_hypothetical_with,
    estimate_workload_with, improvement_ratios, run_update_workload, run_workload,
    run_workload_with, UpdateWorkloadRun, WorkloadOp, WorkloadRun,
};
pub use tab_storage::Parallelism;
pub use tab_storage::{atomic_write, FaultPlan, Faults, JobPanic};
pub use tab_storage::{read_trace, SkippedLine, TraceDoc, TraceRecord};
pub use tab_storage::{
    FileTraceSink, MemoryTraceSink, StderrTraceSink, Trace, TraceEvent, TraceSink,
};
