//! Convergence curves for recommender searches
//! (`convergence.csv` / `BENCH_convergence.json`).
//!
//! The paper compares recommenders by their *final* picks; this module
//! keeps the whole trajectory — objective value vs. accepted round and
//! vs. cumulative what-if budget — so profiles A/B/C can be compared
//! the way Baybe's `RecommenderConvergenceAnalysis` compares Bayesian
//! recommenders: as curves under an explicit evaluation budget, not as
//! endpoints. A [`ConvergenceCurve`] is built straight from the greedy
//! search's [`SearchStats`] (whose per-round counters are deterministic
//! at any thread count), so the rendered artifacts contain **no
//! wall-clock** and are byte-identical across runs and thread counts —
//! unlike the `BENCH_*` timing records, these participate in the
//! determinism byte-compare.

use tab_advisor::SearchStats;
use tab_storage::trace::json_escape;

/// One accepted round on a convergence curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// One-based round number (round 0 is the curve's
    /// [`ConvergenceCurve::initial_objective`] anchor).
    pub round: u64,
    /// Picked candidate's index in the profile's candidate vector.
    pub candidate: u64,
    /// Estimated objective gain of the pick.
    pub gain: f64,
    /// Objective value after the pick.
    pub objective: f64,
    /// Cumulative what-if requests after this round — the budget axis.
    pub whatif_calls: u64,
    /// Cumulative planner invocations after this round.
    pub planner_calls: u64,
}

/// One recommender profile's trajectory under one what-if budget rung.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceCurve {
    /// Profile name (`A`, `B`, or `C`).
    pub profile: String,
    /// Workload family the search ran over.
    pub family: String,
    /// The what-if budget rung, `None` for unlimited.
    pub whatif_budget: Option<u64>,
    /// Whether the profile declined to recommend (§4.2's observed
    /// give-up) — the curve is then empty.
    pub gave_up: bool,
    /// Objective value of the starting configuration (round 0).
    pub initial_objective: f64,
    /// Accepted rounds in order.
    pub points: Vec<CurvePoint>,
}

impl ConvergenceCurve {
    /// Build a curve from a completed search's stats.
    pub fn from_stats(
        profile: &str,
        family: &str,
        whatif_budget: Option<u64>,
        stats: &SearchStats,
    ) -> Self {
        ConvergenceCurve {
            profile: profile.to_string(),
            family: family.to_string(),
            whatif_budget,
            gave_up: false,
            initial_objective: stats.initial_objective,
            points: stats
                .rounds
                .iter()
                .enumerate()
                .map(|(i, r)| CurvePoint {
                    round: i as u64 + 1,
                    candidate: r.candidate as u64,
                    gain: r.gain,
                    objective: r.objective_after,
                    whatif_calls: r.whatif_calls,
                    planner_calls: r.planner_calls,
                })
                .collect(),
        }
    }

    /// The curve of a profile that gave up before searching.
    pub fn gave_up(profile: &str, family: &str, whatif_budget: Option<u64>) -> Self {
        ConvergenceCurve {
            profile: profile.to_string(),
            family: family.to_string(),
            whatif_budget,
            gave_up: true,
            initial_objective: 0.0,
            points: Vec::new(),
        }
    }

    /// Final objective: the last point's, or the initial anchor for an
    /// empty curve.
    pub fn final_objective(&self) -> f64 {
        self.points
            .last()
            .map_or(self.initial_objective, |p| p.objective)
    }
}

/// The `convergence.csv` header.
pub const CSV_HEADER: [&str; 9] = [
    "profile",
    "family",
    "whatif_budget",
    "round",
    "candidate",
    "gain",
    "objective",
    "whatif_calls",
    "planner_calls",
];

/// Render a budget rung for CSV/display: the rung or `unlimited`.
fn budget_label(b: Option<u64>) -> String {
    b.map_or_else(|| "unlimited".to_string(), |b| b.to_string())
}

/// CSV rows for a set of curves, including each curve's round-0 anchor
/// at the initial objective (a gave-up profile contributes a single row
/// with empty objective fields, so its absence is visible rather than
/// silent).
pub fn convergence_csv_rows(curves: &[ConvergenceCurve]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for c in curves {
        if c.gave_up {
            rows.push(vec![
                c.profile.clone(),
                c.family.clone(),
                budget_label(c.whatif_budget),
                "gave_up".into(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
            continue;
        }
        rows.push(vec![
            c.profile.clone(),
            c.family.clone(),
            budget_label(c.whatif_budget),
            "0".into(),
            String::new(),
            format!("{:.3}", 0.0),
            format!("{:.3}", c.initial_objective),
            "0".into(),
            "0".into(),
        ]);
        for p in &c.points {
            rows.push(vec![
                c.profile.clone(),
                c.family.clone(),
                budget_label(c.whatif_budget),
                p.round.to_string(),
                p.candidate.to_string(),
                format!("{:.3}", p.gain),
                format!("{:.3}", p.objective),
                p.whatif_calls.to_string(),
                p.planner_calls.to_string(),
            ]);
        }
    }
    rows
}

/// Render curves as the `tab-convergence-v1` JSON document. Contains no
/// wall-clock, so the document is deterministic — CI byte-compares it
/// across thread counts.
pub fn convergence_json(curves: &[ConvergenceCurve]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"tab-convergence-v1\",\n  \"curves\": [\n");
    for (i, c) in curves.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"profile\": \"{}\", \"family\": \"{}\", \"whatif_budget\": {}, \
             \"gave_up\": {}, \"initial_objective\": {:.3}, \"final_objective\": {:.3}, \
             \"rounds\": [",
            json_escape(&c.profile),
            json_escape(&c.family),
            c.whatif_budget
                .map_or_else(|| "null".to_string(), |b| b.to_string()),
            c.gave_up,
            c.initial_objective,
            c.final_objective(),
        ));
        for (j, p) in c.points.iter().enumerate() {
            s.push_str(&format!(
                "{}{{\"round\": {}, \"candidate\": {}, \"gain\": {:.3}, \
                 \"objective\": {:.3}, \"whatif_calls\": {}, \"planner_calls\": {}}}",
                if j == 0 { "" } else { ", " },
                p.round,
                p.candidate,
                p.gain,
                p.objective,
                p.whatif_calls,
                p.planner_calls,
            ));
        }
        s.push_str(&format!(
            "]}}{}\n",
            if i + 1 < curves.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Render curves as a compact fixed-width table for terminals and CI
/// job summaries: one line per curve with its objective trajectory.
pub fn render_convergence_table(curves: &[ConvergenceCurve]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<10} {:>14} {:>7} {:>14} {:>14} {:>12}",
        "profile", "family", "whatif_budget", "rounds", "initial", "final", "whatif_used"
    );
    for c in curves {
        if c.gave_up {
            let _ = writeln!(
                out,
                "{:<8} {:<10} {:>14} {:>7} {:>14} {:>14} {:>12}",
                c.profile,
                c.family,
                budget_label(c.whatif_budget),
                "-",
                "gave up",
                "-",
                "-"
            );
            continue;
        }
        let _ = writeln!(
            out,
            "{:<8} {:<10} {:>14} {:>7} {:>14.3} {:>14.3} {:>12}",
            c.profile,
            c.family,
            budget_label(c.whatif_budget),
            c.points.len(),
            c.initial_objective,
            c.final_objective(),
            c.points.last().map_or(0, |p| p.whatif_calls)
        );
    }
    out
}

/// The `fig12_convergence_curve.csv` header: one row per curve point,
/// shaped for plotting objective (absolute and as a percentage of the
/// round-0 anchor) against the cumulative what-if budget spent.
pub const FIG12_HEADER: [&str; 7] = [
    "profile",
    "family",
    "whatif_budget",
    "round",
    "whatif_calls",
    "objective",
    "pct_of_initial",
];

/// Rows for `fig12_convergence_curve.csv`: every curve's round-0 anchor
/// plus its accepted rounds. Gave-up profiles carry no trajectory and
/// contribute no rows (their absence stays visible in
/// `convergence.csv`). Deterministic — the rows contain no wall-clock —
/// so the artifact participates in the determinism byte-compare.
pub fn fig12_csv_rows(curves: &[ConvergenceCurve]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for c in curves.iter().filter(|c| !c.gave_up) {
        let pct = |objective: f64| {
            if c.initial_objective == 0.0 {
                "100.0".to_string()
            } else {
                format!("{:.1}", 100.0 * objective / c.initial_objective)
            }
        };
        rows.push(vec![
            c.profile.clone(),
            c.family.clone(),
            budget_label(c.whatif_budget),
            "0".into(),
            "0".into(),
            format!("{:.3}", c.initial_objective),
            pct(c.initial_objective),
        ]);
        for p in &c.points {
            rows.push(vec![
                c.profile.clone(),
                c.family.clone(),
                budget_label(c.whatif_budget),
                p.round.to_string(),
                p.whatif_calls.to_string(),
                format!("{:.3}", p.objective),
                pct(p.objective),
            ]);
        }
    }
    rows
}

/// Render the convergence curves as an ASCII plot (the figures.txt
/// companion to `fig12_convergence_curve.csv`): objective as % of the
/// round-0 anchor (y) against cumulative what-if calls (x), each
/// profile drawn with its own letter. Deterministic: iteration order is
/// input order and the plot carries no wall-clock.
pub fn render_convergence_curve(curves: &[ConvergenceCurve]) -> String {
    use std::fmt::Write as _;
    const W: usize = 64;
    const H: usize = 16;
    let live: Vec<&ConvergenceCurve> = curves.iter().filter(|c| !c.gave_up).collect();
    let mut out = String::new();
    if live.is_empty() {
        out.push_str("(no convergence trajectories: every profile gave up)\n");
        return out;
    }
    let max_x = live
        .iter()
        .flat_map(|c| c.points.last())
        .map(|p| p.whatif_calls)
        .max()
        .unwrap_or(0)
        .max(1);
    // y axis: percent of the round-0 objective, padded a little below
    // the best final value so the floor of the plot is meaningful.
    let min_pct = live
        .iter()
        .flat_map(|c| {
            c.points.iter().map(|p| {
                if c.initial_objective == 0.0 {
                    100.0
                } else {
                    100.0 * p.objective / c.initial_objective
                }
            })
        })
        .fold(100.0_f64, f64::min);
    let floor = (min_pct - 5.0).max(0.0);
    let span = (100.0 - floor).max(1e-9);
    let mut grid = vec![vec![' '; W]; H];
    for c in &live {
        let letter = c.profile.chars().next().unwrap_or('?');
        // Walk the curve as a step function: each accepted round holds
        // its objective until the next round's what-if position.
        let mut pts: Vec<(u64, f64)> = vec![(0, 100.0)];
        for p in &c.points {
            let pct = if c.initial_objective == 0.0 {
                100.0
            } else {
                100.0 * p.objective / c.initial_objective
            };
            pts.push((p.whatif_calls, pct));
        }
        for win in pts.windows(2) {
            let (x0, y0) = win[0];
            let (x1, _) = win[1];
            let row = plot_row(y0, floor, span, H);
            for x in x0..=x1 {
                let col = (x as usize * (W - 1)) / max_x as usize;
                grid[row][col] = letter;
            }
        }
        if let Some(&(x, y)) = pts.last() {
            let row = plot_row(y, floor, span, H);
            let col = (x as usize * (W - 1)) / max_x as usize;
            for cell in grid[row].iter_mut().skip(col) {
                *cell = letter;
            }
        }
    }
    let _ = writeln!(
        out,
        "objective (% of initial) vs cumulative what-if calls (0..{max_x})"
    );
    for (r, row) in grid.iter().enumerate() {
        let label = 100.0 - span * r as f64 / (H - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{label:>6.1} |{line}");
    }
    let _ = writeln!(out, "{:>6} +{}", "", "-".repeat(W));
    for c in &live {
        let _ = writeln!(
            out,
            "  {} = profile {} on {} (budget {}, final {:.1}%)",
            c.profile.chars().next().unwrap_or('?'),
            c.profile,
            c.family,
            budget_label(c.whatif_budget),
            if c.initial_objective == 0.0 {
                100.0
            } else {
                100.0 * c.final_objective() / c.initial_objective
            }
        );
    }
    out
}

/// Map a percentage to a plot row (row 0 is 100%, the bottom row is the
/// padded floor).
fn plot_row(pct: f64, _floor: f64, span: f64, h: usize) -> usize {
    let frac = ((100.0 - pct) / span).clamp(0.0, 1.0);
    ((frac * (h - 1) as f64).round() as usize).min(h - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_advisor::RoundStats;

    fn stats() -> SearchStats {
        SearchStats {
            candidates: 5,
            whatif_calls: 30,
            planner_calls: 20,
            cache_hits: 10,
            rounds: vec![
                RoundStats {
                    candidate: 3,
                    gain: 40.0,
                    objective_after: 60.0,
                    whatif_calls: 18,
                    planner_calls: 12,
                    cache_hits: 6,
                },
                RoundStats {
                    candidate: 1,
                    gain: 10.0,
                    objective_after: 50.0,
                    whatif_calls: 30,
                    planner_calls: 20,
                    cache_hits: 10,
                },
            ],
            initial_objective: 100.0,
            wall_seconds: 1.25,
        }
    }

    #[test]
    fn curve_tracks_rounds_and_anchors_round_zero() {
        let c = ConvergenceCurve::from_stats("B", "NREF2J", Some(50), &stats());
        assert_eq!(c.points.len(), 2);
        assert_eq!(c.points[0].round, 1);
        assert_eq!(c.points[1].whatif_calls, 30);
        assert_eq!(c.initial_objective, 100.0);
        assert_eq!(c.final_objective(), 50.0);

        let rows = convergence_csv_rows(&[c]);
        assert_eq!(rows.len(), 3, "round-0 anchor plus two rounds");
        assert_eq!(rows[0][3], "0");
        assert_eq!(rows[0][6], "100.000");
        assert_eq!(rows[2][6], "50.000");
        assert_eq!(rows[1][2], "50", "budget rung column");
    }

    #[test]
    fn gave_up_profiles_stay_visible() {
        let c = ConvergenceCurve::gave_up("A", "NREF3J", None);
        assert_eq!(c.final_objective(), 0.0);
        let rows = convergence_csv_rows(std::slice::from_ref(&c));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][2], "unlimited");
        assert_eq!(rows[0][3], "gave_up");
        let table = render_convergence_table(&[c]);
        assert!(table.contains("gave up"), "{table}");
    }

    #[test]
    fn fig12_rows_anchor_and_scale_to_initial() {
        let c = ConvergenceCurve::from_stats("B", "NREF2J", Some(50), &stats());
        let rows = fig12_csv_rows(&[c, ConvergenceCurve::gave_up("A", "NREF2J", Some(50))]);
        assert_eq!(rows.len(), 3, "anchor + two rounds; gave-up adds none");
        assert_eq!(rows[0][4], "0");
        assert_eq!(rows[0][6], "100.0");
        assert_eq!(rows[2][5], "50.000");
        assert_eq!(rows[2][6], "50.0");
        assert!(rows.iter().all(|r| r.len() == FIG12_HEADER.len()));
    }

    #[test]
    fn fig12_plot_is_deterministic_and_labelled() {
        let curves = vec![
            ConvergenceCurve::from_stats("B", "NREF2J", Some(50), &stats()),
            ConvergenceCurve::gave_up("A", "NREF2J", Some(50)),
        ];
        let a = render_convergence_curve(&curves);
        let b = render_convergence_curve(&curves);
        assert_eq!(a, b);
        assert!(a.contains("profile B on NREF2J"), "{a}");
        assert!(a.contains("what-if calls"), "{a}");
        assert!(!a.contains("wall"), "no wall-clock: {a}");
        let empty = render_convergence_curve(&[ConvergenceCurve::gave_up("A", "F", None)]);
        assert!(empty.contains("gave up"), "{empty}");
    }

    #[test]
    fn json_is_schema_tagged_and_wall_clock_free() {
        let curves = vec![
            ConvergenceCurve::from_stats("B", "NREF2J", Some(50), &stats()),
            ConvergenceCurve::gave_up("A", "NREF3J", Some(50)),
        ];
        let j = convergence_json(&curves);
        assert!(j.contains("\"schema\": \"tab-convergence-v1\""), "{j}");
        assert!(j.contains("\"whatif_budget\": 50"), "{j}");
        assert!(j.contains("\"gave_up\": true"), "{j}");
        assert!(j.contains("\"final_objective\": 50.000"), "{j}");
        assert!(!j.contains("wall"), "must carry no wall-clock: {j}");
    }
}
