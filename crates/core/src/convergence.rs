//! Convergence curves for recommender searches
//! (`convergence.csv` / `BENCH_convergence.json`).
//!
//! The paper compares recommenders by their *final* picks; this module
//! keeps the whole trajectory — objective value vs. accepted round and
//! vs. cumulative what-if budget — so profiles A/B/C can be compared
//! the way Baybe's `RecommenderConvergenceAnalysis` compares Bayesian
//! recommenders: as curves under an explicit evaluation budget, not as
//! endpoints. A [`ConvergenceCurve`] is built straight from the greedy
//! search's [`SearchStats`] (whose per-round counters are deterministic
//! at any thread count), so the rendered artifacts contain **no
//! wall-clock** and are byte-identical across runs and thread counts —
//! unlike the `BENCH_*` timing records, these participate in the
//! determinism byte-compare.

use tab_advisor::SearchStats;
use tab_storage::trace::json_escape;

/// One accepted round on a convergence curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// One-based round number (round 0 is the curve's
    /// [`ConvergenceCurve::initial_objective`] anchor).
    pub round: u64,
    /// Picked candidate's index in the profile's candidate vector.
    pub candidate: u64,
    /// Estimated objective gain of the pick.
    pub gain: f64,
    /// Objective value after the pick.
    pub objective: f64,
    /// Cumulative what-if requests after this round — the budget axis.
    pub whatif_calls: u64,
    /// Cumulative planner invocations after this round.
    pub planner_calls: u64,
}

/// One recommender profile's trajectory under one what-if budget rung.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceCurve {
    /// Profile name (`A`, `B`, or `C`).
    pub profile: String,
    /// Workload family the search ran over.
    pub family: String,
    /// The what-if budget rung, `None` for unlimited.
    pub whatif_budget: Option<u64>,
    /// Whether the profile declined to recommend (§4.2's observed
    /// give-up) — the curve is then empty.
    pub gave_up: bool,
    /// Objective value of the starting configuration (round 0).
    pub initial_objective: f64,
    /// Accepted rounds in order.
    pub points: Vec<CurvePoint>,
}

impl ConvergenceCurve {
    /// Build a curve from a completed search's stats.
    pub fn from_stats(
        profile: &str,
        family: &str,
        whatif_budget: Option<u64>,
        stats: &SearchStats,
    ) -> Self {
        ConvergenceCurve {
            profile: profile.to_string(),
            family: family.to_string(),
            whatif_budget,
            gave_up: false,
            initial_objective: stats.initial_objective,
            points: stats
                .rounds
                .iter()
                .enumerate()
                .map(|(i, r)| CurvePoint {
                    round: i as u64 + 1,
                    candidate: r.candidate as u64,
                    gain: r.gain,
                    objective: r.objective_after,
                    whatif_calls: r.whatif_calls,
                    planner_calls: r.planner_calls,
                })
                .collect(),
        }
    }

    /// The curve of a profile that gave up before searching.
    pub fn gave_up(profile: &str, family: &str, whatif_budget: Option<u64>) -> Self {
        ConvergenceCurve {
            profile: profile.to_string(),
            family: family.to_string(),
            whatif_budget,
            gave_up: true,
            initial_objective: 0.0,
            points: Vec::new(),
        }
    }

    /// Final objective: the last point's, or the initial anchor for an
    /// empty curve.
    pub fn final_objective(&self) -> f64 {
        self.points
            .last()
            .map_or(self.initial_objective, |p| p.objective)
    }
}

/// The `convergence.csv` header.
pub const CSV_HEADER: [&str; 9] = [
    "profile",
    "family",
    "whatif_budget",
    "round",
    "candidate",
    "gain",
    "objective",
    "whatif_calls",
    "planner_calls",
];

/// Render a budget rung for CSV/display: the rung or `unlimited`.
fn budget_label(b: Option<u64>) -> String {
    b.map_or_else(|| "unlimited".to_string(), |b| b.to_string())
}

/// CSV rows for a set of curves, including each curve's round-0 anchor
/// at the initial objective (a gave-up profile contributes a single row
/// with empty objective fields, so its absence is visible rather than
/// silent).
pub fn convergence_csv_rows(curves: &[ConvergenceCurve]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for c in curves {
        if c.gave_up {
            rows.push(vec![
                c.profile.clone(),
                c.family.clone(),
                budget_label(c.whatif_budget),
                "gave_up".into(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
            continue;
        }
        rows.push(vec![
            c.profile.clone(),
            c.family.clone(),
            budget_label(c.whatif_budget),
            "0".into(),
            String::new(),
            format!("{:.3}", 0.0),
            format!("{:.3}", c.initial_objective),
            "0".into(),
            "0".into(),
        ]);
        for p in &c.points {
            rows.push(vec![
                c.profile.clone(),
                c.family.clone(),
                budget_label(c.whatif_budget),
                p.round.to_string(),
                p.candidate.to_string(),
                format!("{:.3}", p.gain),
                format!("{:.3}", p.objective),
                p.whatif_calls.to_string(),
                p.planner_calls.to_string(),
            ]);
        }
    }
    rows
}

/// Render curves as the `tab-convergence-v1` JSON document. Contains no
/// wall-clock, so the document is deterministic — CI byte-compares it
/// across thread counts.
pub fn convergence_json(curves: &[ConvergenceCurve]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"tab-convergence-v1\",\n  \"curves\": [\n");
    for (i, c) in curves.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"profile\": \"{}\", \"family\": \"{}\", \"whatif_budget\": {}, \
             \"gave_up\": {}, \"initial_objective\": {:.3}, \"final_objective\": {:.3}, \
             \"rounds\": [",
            json_escape(&c.profile),
            json_escape(&c.family),
            c.whatif_budget
                .map_or_else(|| "null".to_string(), |b| b.to_string()),
            c.gave_up,
            c.initial_objective,
            c.final_objective(),
        ));
        for (j, p) in c.points.iter().enumerate() {
            s.push_str(&format!(
                "{}{{\"round\": {}, \"candidate\": {}, \"gain\": {:.3}, \
                 \"objective\": {:.3}, \"whatif_calls\": {}, \"planner_calls\": {}}}",
                if j == 0 { "" } else { ", " },
                p.round,
                p.candidate,
                p.gain,
                p.objective,
                p.whatif_calls,
                p.planner_calls,
            ));
        }
        s.push_str(&format!(
            "]}}{}\n",
            if i + 1 < curves.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Render curves as a compact fixed-width table for terminals and CI
/// job summaries: one line per curve with its objective trajectory.
pub fn render_convergence_table(curves: &[ConvergenceCurve]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<10} {:>14} {:>7} {:>14} {:>14} {:>12}",
        "profile", "family", "whatif_budget", "rounds", "initial", "final", "whatif_used"
    );
    for c in curves {
        if c.gave_up {
            let _ = writeln!(
                out,
                "{:<8} {:<10} {:>14} {:>7} {:>14} {:>14} {:>12}",
                c.profile,
                c.family,
                budget_label(c.whatif_budget),
                "-",
                "gave up",
                "-",
                "-"
            );
            continue;
        }
        let _ = writeln!(
            out,
            "{:<8} {:<10} {:>14} {:>7} {:>14.3} {:>14.3} {:>12}",
            c.profile,
            c.family,
            budget_label(c.whatif_budget),
            c.points.len(),
            c.initial_objective,
            c.final_objective(),
            c.points.last().map_or(0, |p| p.whatif_calls)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_advisor::RoundStats;

    fn stats() -> SearchStats {
        SearchStats {
            candidates: 5,
            whatif_calls: 30,
            planner_calls: 20,
            cache_hits: 10,
            rounds: vec![
                RoundStats {
                    candidate: 3,
                    gain: 40.0,
                    objective_after: 60.0,
                    whatif_calls: 18,
                    planner_calls: 12,
                    cache_hits: 6,
                },
                RoundStats {
                    candidate: 1,
                    gain: 10.0,
                    objective_after: 50.0,
                    whatif_calls: 30,
                    planner_calls: 20,
                    cache_hits: 10,
                },
            ],
            initial_objective: 100.0,
            wall_seconds: 1.25,
        }
    }

    #[test]
    fn curve_tracks_rounds_and_anchors_round_zero() {
        let c = ConvergenceCurve::from_stats("B", "NREF2J", Some(50), &stats());
        assert_eq!(c.points.len(), 2);
        assert_eq!(c.points[0].round, 1);
        assert_eq!(c.points[1].whatif_calls, 30);
        assert_eq!(c.initial_objective, 100.0);
        assert_eq!(c.final_objective(), 50.0);

        let rows = convergence_csv_rows(&[c]);
        assert_eq!(rows.len(), 3, "round-0 anchor plus two rounds");
        assert_eq!(rows[0][3], "0");
        assert_eq!(rows[0][6], "100.000");
        assert_eq!(rows[2][6], "50.000");
        assert_eq!(rows[1][2], "50", "budget rung column");
    }

    #[test]
    fn gave_up_profiles_stay_visible() {
        let c = ConvergenceCurve::gave_up("A", "NREF3J", None);
        assert_eq!(c.final_objective(), 0.0);
        let rows = convergence_csv_rows(&[c.clone()]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][2], "unlimited");
        assert_eq!(rows[0][3], "gave_up");
        let table = render_convergence_table(&[c]);
        assert!(table.contains("gave up"), "{table}");
    }

    #[test]
    fn json_is_schema_tagged_and_wall_clock_free() {
        let curves = vec![
            ConvergenceCurve::from_stats("B", "NREF2J", Some(50), &stats()),
            ConvergenceCurve::gave_up("A", "NREF3J", Some(50)),
        ];
        let j = convergence_json(&curves);
        assert!(j.contains("\"schema\": \"tab-convergence-v1\""), "{j}");
        assert!(j.contains("\"whatif_budget\": 50"), "{j}");
        assert!(j.contains("\"gave_up\": true"), "{j}");
        assert!(j.contains("\"final_objective\": 50.000"), "{j}");
        assert!(!j.contains("wall"), "must carry no wall-clock: {j}");
    }
}
