//! The crash-consistency journal (`tab-checkpoint-v1`).
//!
//! A reproduction run's measurement grid is its expensive part: a cell
//! whose configuration times out on most queries spends the full
//! timeout budget per query, and the full-scale grid runs for the
//! better part of an hour. The journal turns the harness's determinism
//! guarantee into a *crash-consistency* one: every completed grid cell
//! is persisted as one JSONL entry, rewritten via
//! write-temp-then-rename ([`tab_storage::atomic_write`]) so the
//! journal on disk is always a consistent prefix of the run. A rerun
//! with `--resume` replays journaled cells byte-exactly — per-query
//! outcomes round-trip through `f64::to_bits`, so claims arithmetic,
//! CFC curves, and every CSV derived from a replayed cell are
//! identical to an uninterrupted run — and executes only the missing
//! cells.
//!
//! # Journal format (`tab-checkpoint-v1`)
//!
//! One JSON object per line. The first line is a header binding the
//! journal to the run's parameters (resuming under different
//! parameters would splice incompatible measurements):
//!
//! ```json
//! {"schema":"tab-checkpoint-v1","kind":"header","fingerprint":"seed=7;nref=400;..."}
//! ```
//!
//! Each completed cell appends one entry. Cells are keyed by
//! `(family, config)` — unique across a whole reproduction run — and
//! outcomes are encoded compactly with bit-exact floats:
//!
//! ```json
//! {"schema":"tab-checkpoint-v1","kind":"cell","family":"NREF2J","config":"NREF_P",
//!  "queries":8,"wall_bits":4612136378390124954,"outcomes":"d:4638387906509053952:12,t:4652007308841189376"}
//! ```
//!
//! `outcomes` is a comma-separated list in workload order:
//! `d:<units_bits>:<rows>` for a completed query,
//! `t:<budget_bits>` for a timeout. `wall_bits` preserves the cell's
//! measured wall-clock for `timings.json` (wall-clock is excluded from
//! determinism comparisons, but replaying the original measurement
//! keeps the record honest about where time was actually spent).
//!
//! Unparseable lines are skipped on load (a journal written by a
//! non-atomic writer could have a torn tail after a hard crash); the
//! worst case is re-executing a cell that was in fact complete, which
//! is deterministic and therefore harmless.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use tab_engine::Outcome;
use tab_storage::{atomic_write, Faults, PoolStats};

use crate::grid::CellTiming;
use crate::measure::WorkloadRun;

/// Why a journal could not be opened for resume.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The journal exists but belongs to a different run configuration.
    Mismatch {
        /// Human-readable description of the disagreement.
        message: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Mismatch { message } => {
                write!(f, "checkpoint mismatch: {message}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// One journaled cell, as loaded from disk.
#[derive(Debug, Clone)]
struct JournaledCell {
    queries: usize,
    wall_seconds: f64,
    outcomes: Vec<Outcome>,
    io: PoolStats,
}

struct JournalState {
    /// Rendered lines (header first), rewritten wholesale on each
    /// record so the on-disk journal is always internally consistent.
    lines: Vec<String>,
    /// Completed cells by `(family, config)`.
    done: BTreeMap<(String, String), JournaledCell>,
    /// First write failure; surfaced by [`CheckpointJournal::io_error`].
    error: Option<io::Error>,
}

/// A crash-consistent journal of completed grid cells. Shared by
/// reference into the grid's worker threads; all mutation is behind an
/// internal mutex.
pub struct CheckpointJournal {
    path: PathBuf,
    state: Mutex<JournalState>,
}

impl CheckpointJournal {
    /// Open the journal at `path`.
    ///
    /// With `resume` set, an existing journal is loaded (its header
    /// fingerprint must equal `fingerprint`) and its cells become
    /// available to [`CheckpointJournal::lookup`]; a missing journal
    /// starts empty, making `--resume` of a never-started run a plain
    /// run. Without `resume`, any stale journal is discarded.
    pub fn open(
        path: impl AsRef<Path>,
        fingerprint: &str,
        resume: bool,
    ) -> Result<CheckpointJournal, CheckpointError> {
        let path = path.as_ref().to_path_buf();
        let header = format!(
            "{{\"schema\":\"tab-checkpoint-v1\",\"kind\":\"header\",\"fingerprint\":\"{}\"}}",
            esc(fingerprint)
        );
        let mut state = JournalState {
            lines: vec![header],
            done: BTreeMap::new(),
            error: None,
        };
        if resume {
            match std::fs::read_to_string(&path) {
                Ok(text) => {
                    let mut lines = text.lines();
                    match lines.next().and_then(|l| field_str(l, "fingerprint")) {
                        Some(fp) if fp == fingerprint => {}
                        Some(fp) => {
                            return Err(CheckpointError::Mismatch {
                                message: format!(
                                    "journal {} was written by a run with parameters `{fp}`, \
                                     this run has `{fingerprint}` — delete it or rerun without \
                                     --resume",
                                    path.display()
                                ),
                            })
                        }
                        None => {
                            return Err(CheckpointError::Mismatch {
                                message: format!(
                                    "journal {} has no tab-checkpoint-v1 header",
                                    path.display()
                                ),
                            })
                        }
                    }
                    for line in lines {
                        if let Some((key, cell)) = parse_cell(line) {
                            state.lines.push(line.to_string());
                            state.done.insert(key, cell);
                        }
                        // else: torn or foreign line — skip; the cell
                        // re-executes deterministically.
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(CheckpointError::Io(e)),
            }
        }
        Ok(CheckpointJournal {
            path,
            state: Mutex::new(state),
        })
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of journaled cells currently held.
    pub fn cells(&self) -> usize {
        self.state.lock().expect("journal poisoned").done.len()
    }

    /// Replay a journaled cell, if present and compatible (same query
    /// count — a guard against journals from differently-sampled
    /// workloads slipping past the fingerprint).
    pub fn lookup(
        &self,
        family: &str,
        config: &str,
        queries: usize,
    ) -> Option<(WorkloadRun, CellTiming)> {
        let state = self.state.lock().expect("journal poisoned");
        let cell = state
            .done
            .get(&(family.to_string(), config.to_string()))
            .filter(|c| c.queries == queries)?;
        Some(assemble(
            family,
            config,
            cell.outcomes.clone(),
            cell.wall_seconds,
            cell.io,
        ))
    }

    /// Journal one completed cell and rewrite the file atomically.
    /// Write failures (including an injected `enospc:checkpoint`) are
    /// stashed for [`CheckpointJournal::io_error`] rather than
    /// panicking a worker mid-grid.
    pub fn record(
        &self,
        family: &str,
        config: &str,
        run: &WorkloadRun,
        wall_seconds: f64,
        faults: Faults<'_>,
    ) {
        let outcomes: Vec<String> = run
            .outcomes
            .iter()
            .map(|o| match o {
                Outcome::Done { units, rows } => {
                    format!("d:{}:{}", units.to_bits(), rows)
                }
                Outcome::Timeout { budget } => format!("t:{}", budget.to_bits()),
            })
            .collect();
        // Pool traffic rides along only when a pool ran: pool-less
        // journals stay byte-identical to earlier versions, and older
        // journals (no `io` field) replay with zeroed stats.
        let io_field = if run.io.is_zero() {
            String::new()
        } else {
            format!(
                ",\"io\":\"{},{},{},{},{},{}\"",
                run.io.hits,
                run.io.misses_seq,
                run.io.misses_random,
                run.io.evictions,
                run.io.spill_bytes_written,
                run.io.spill_bytes_read
            )
        };
        let line = format!(
            "{{\"schema\":\"tab-checkpoint-v1\",\"kind\":\"cell\",\"family\":\"{}\",\
             \"config\":\"{}\",\"queries\":{},\"wall_bits\":{},\"outcomes\":\"{}\"{}}}",
            esc(family),
            esc(config),
            run.outcomes.len(),
            wall_seconds.to_bits(),
            outcomes.join(","),
            io_field
        );
        let mut state = self.state.lock().expect("journal poisoned");
        state.lines.push(line);
        state.done.insert(
            (family.to_string(), config.to_string()),
            JournaledCell {
                queries: run.outcomes.len(),
                wall_seconds,
                outcomes: run.outcomes.clone(),
                io: run.io,
            },
        );
        let doc = state.lines.join("\n") + "\n";
        let result = faults
            .io("checkpoint")
            .and_then(|()| atomic_write(&self.path, doc.as_bytes()));
        if let Err(e) = result {
            state.error.get_or_insert(e);
        }
    }

    /// The first journal write failure, if any. Taking it clears it.
    pub fn io_error(&self) -> Option<io::Error> {
        self.state.lock().expect("journal poisoned").error.take()
    }

    /// Delete the journal — the run completed, there is nothing left
    /// to resume. A missing file is not an error.
    pub fn finish(&self) -> io::Result<()> {
        match std::fs::remove_file(&self.path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

/// Rebuild the `(WorkloadRun, CellTiming)` pair exactly as the grid
/// assembles it for a freshly-executed cell, so replayed cells are
/// byte-identical downstream.
pub(crate) fn assemble(
    family: &str,
    config: &str,
    outcomes: Vec<Outcome>,
    wall_seconds: f64,
    io: PoolStats,
) -> (WorkloadRun, CellTiming) {
    let run = WorkloadRun {
        config: config.to_string(),
        outcomes,
        io,
    };
    let timing = CellTiming {
        family: family.to_string(),
        config: run.config.clone(),
        queries: run.outcomes.len(),
        timeouts: run.timeout_count(),
        wall_seconds,
        cost_units: run.total_lower_bound_units(),
    };
    (run, timing)
}

fn esc(s: &str) -> String {
    tab_storage::trace::json_escape(s)
}

/// Extract a string field's unescaped value from one journal line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Extract an unsigned integer field from one journal line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Parse one `kind:cell` line into its key and payload.
fn parse_cell(line: &str) -> Option<((String, String), JournaledCell)> {
    if !line.starts_with("{\"schema\":\"tab-checkpoint-v1\"") || !line.contains("\"kind\":\"cell\"")
    {
        return None;
    }
    let family = field_str(line, "family")?;
    let config = field_str(line, "config")?;
    let queries = field_u64(line, "queries")? as usize;
    let wall_seconds = f64::from_bits(field_u64(line, "wall_bits")?);
    let encoded = field_str(line, "outcomes")?;
    let mut outcomes = Vec::with_capacity(queries);
    for item in encoded.split(',').filter(|s| !s.is_empty()) {
        let mut parts = item.split(':');
        match parts.next()? {
            "d" => outcomes.push(Outcome::Done {
                units: f64::from_bits(parts.next()?.parse().ok()?),
                rows: parts.next()?.parse().ok()?,
            }),
            "t" => outcomes.push(Outcome::Timeout {
                budget: f64::from_bits(parts.next()?.parse().ok()?),
            }),
            _ => return None,
        }
    }
    if outcomes.len() != queries {
        return None; // torn mid-entry
    }
    // Optional pool-traffic field; absent in pool-less runs and in
    // journals written before the buffer pool existed.
    let io = match field_str(line, "io") {
        None => PoolStats::default(),
        Some(enc) => {
            let parts: Vec<u64> = enc
                .split(',')
                .map(|p| p.parse().ok())
                .collect::<Option<_>>()?;
            let [hits, misses_seq, misses_random, evictions, written, read]: [u64; 6] =
                parts.try_into().ok()?;
            PoolStats {
                hits,
                misses_seq,
                misses_random,
                evictions,
                spill_bytes_written: written,
                spill_bytes_read: read,
            }
        }
    };
    Some((
        (family, config),
        JournaledCell {
            queries,
            wall_seconds,
            outcomes,
            io,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_storage::FaultPlan;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tab_ckpt_{name}_{}.jsonl", std::process::id()))
    }

    fn sample_run() -> WorkloadRun {
        WorkloadRun {
            config: "NREF_P".into(),
            outcomes: vec![
                Outcome::Done {
                    units: 1.5000000000000002, // not representable in short decimal
                    rows: 12,
                },
                Outcome::Timeout { budget: 500.0 },
                Outcome::Done {
                    units: f64::MIN_POSITIVE,
                    rows: 0,
                },
            ],
            io: PoolStats::default(),
        }
    }

    #[test]
    fn pool_traffic_round_trips_and_zero_io_omits_the_field() {
        let path = tmp("io");
        let mut run = sample_run();
        run.io = PoolStats {
            hits: 10,
            misses_seq: 2,
            misses_random: 3,
            evictions: 1,
            spill_bytes_written: 8192,
            spill_bytes_read: 0,
        };
        {
            let j = CheckpointJournal::open(&path, "fp", false).expect("open");
            j.record("F", "POOL", &run, 0.5, Faults::disabled());
            j.record("F", "PLAIN", &sample_run(), 0.5, Faults::disabled());
        }
        let text = std::fs::read_to_string(&path).expect("read");
        let pool_line = text.lines().find(|l| l.contains("\"POOL\"")).expect("line");
        assert!(
            pool_line.contains("\"io\":\"10,2,3,1,8192,0\""),
            "{pool_line}"
        );
        let plain_line = text
            .lines()
            .find(|l| l.contains("\"PLAIN\""))
            .expect("line");
        assert!(!plain_line.contains("\"io\""), "{plain_line}");
        let j = CheckpointJournal::open(&path, "fp", true).expect("reopen");
        let (got, _) = j.lookup("F", "POOL", 3).expect("replay");
        assert_eq!(got.io, run.io);
        let (got, _) = j.lookup("F", "PLAIN", 3).expect("replay");
        assert!(got.io.is_zero());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cells_round_trip_bit_exactly() {
        let path = tmp("roundtrip");
        let run = sample_run();
        {
            let j = CheckpointJournal::open(&path, "fp=1", false).expect("open");
            j.record("NREF2J", "NREF_P", &run, 0.123456789, Faults::disabled());
            assert!(j.io_error().is_none());
        }
        let j = CheckpointJournal::open(&path, "fp=1", true).expect("reopen");
        assert_eq!(j.cells(), 1);
        let (got, timing) = j.lookup("NREF2J", "NREF_P", 3).expect("replay");
        assert_eq!(got.config, run.config);
        assert_eq!(got.outcomes, run.outcomes); // PartialEq on exact f64s
        assert_eq!(timing.timeouts, 1);
        assert_eq!(timing.wall_seconds, 0.123456789);
        // Wrong query count refuses to replay.
        assert!(j.lookup("NREF2J", "NREF_P", 4).is_none());
        assert!(j.lookup("NREF2J", "NREF_1C", 3).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_mismatch_refuses_resume() {
        let path = tmp("fingerprint");
        {
            let j = CheckpointJournal::open(&path, "seed=7", false).expect("open");
            j.record("F", "C", &sample_run(), 0.0, Faults::disabled());
        }
        let err = match CheckpointJournal::open(&path, "seed=8", true) {
            Ok(_) => panic!("mismatched fingerprint must refuse to resume"),
            Err(e) => e,
        };
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
        // Without --resume the stale journal is simply superseded.
        let j = CheckpointJournal::open(&path, "seed=8", false).expect("fresh open");
        assert_eq!(j.cells(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_lines_are_skipped() {
        let path = tmp("torn");
        {
            let j = CheckpointJournal::open(&path, "fp", false).expect("open");
            j.record("F", "A", &sample_run(), 1.0, Faults::disabled());
            j.record("F", "B", &sample_run(), 2.0, Faults::disabled());
        }
        // Simulate a crash-torn journal: chop the last line in half.
        let text = std::fs::read_to_string(&path).expect("read");
        let keep = text.len() - text.lines().last().expect("line").len() / 2 - 1;
        std::fs::write(&path, &text.as_bytes()[..keep]).expect("tear");
        let j = CheckpointJournal::open(&path, "fp", true).expect("resume over torn tail");
        assert_eq!(j.cells(), 1, "only the intact cell survives");
        assert!(j.lookup("F", "A", 3).is_some());
        assert!(j.lookup("F", "B", 3).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_resumes_as_empty() {
        let path = tmp("missing");
        std::fs::remove_file(&path).ok();
        let j = CheckpointJournal::open(&path, "fp", true).expect("open missing");
        assert_eq!(j.cells(), 0);
        j.finish().expect("finish with nothing on disk");
    }

    #[test]
    fn injected_checkpoint_enospc_is_stashed_not_raised() {
        let path = tmp("enospc");
        let plan = FaultPlan::parse("enospc:checkpoint").expect("spec");
        let j = CheckpointJournal::open(&path, "fp", false).expect("open");
        j.record("F", "A", &sample_run(), 1.0, Faults::to(&plan));
        let e = j.io_error().expect("stashed error");
        assert!(e.to_string().contains("checkpoint"), "{e}");
        assert!(j.io_error().is_none(), "taking clears it");
        std::fs::remove_file(&path).ok();
    }
}
