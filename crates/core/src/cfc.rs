//! Cumulative frequency curves — the paper's central measurement device.
//!
//! §2.2: "we denote by `CFC_j` the cumulative (relative) frequency of the
//! elapsed times `A(q_k, C_j)` for `q_k ∈ W` on configuration `C_j`,
//! defined as `CFC_j(x) = count({q_k : A(q_k, C_j) < x}) / size(W)`."
//!
//! Timed-out queries never complete, so they contribute to `size(W)` but
//! never to the numerator — the paper's `t_out` bin. Comparing two
//! curves "corresponds to deciding first order stochastic dominance".

/// A cumulative frequency curve over a workload's elapsed times.
///
/// ```
/// use tab_core::Cfc;
///
/// // Three queries finished (1 s, 10 s, 100 s); one timed out.
/// let cfc = Cfc::from_values(&[1.0, 10.0, 100.0, f64::INFINITY]);
/// assert_eq!(cfc.at(50.0), 0.5);          // half the workload under 50 s
/// assert_eq!(cfc.quantile(0.5), Some(10.0));
/// assert_eq!(cfc.timeouts(), 1);
///
/// let faster = Cfc::from_values(&[0.5, 5.0, 50.0, 500.0]);
/// assert!(faster.dominates(&cfc));        // first-order stochastic dominance
/// ```
#[derive(Debug, Clone)]
pub struct Cfc {
    /// Completed-query times, sorted ascending.
    times: Vec<f64>,
    /// Queries that timed out.
    timeouts: usize,
}

impl Cfc {
    /// Build from completed times (any order) and a timeout count.
    pub fn new(mut times: Vec<f64>, timeouts: usize) -> Self {
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        Cfc { times, timeouts }
    }

    /// Build from per-query values where timeouts are `f64::INFINITY`.
    pub fn from_values(values: &[f64]) -> Self {
        let times: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        let timeouts = values.len() - times.len();
        Cfc::new(times, timeouts)
    }

    /// Workload size (completed + timed out).
    pub fn size(&self) -> usize {
        self.times.len() + self.timeouts
    }

    /// Number of timed-out queries.
    pub fn timeouts(&self) -> usize {
        self.timeouts
    }

    /// `CFC(x)`: fraction of the workload completing strictly below `x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.size() == 0 {
            return 0.0;
        }
        let below = self.times.partition_point(|&t| t < x);
        below as f64 / self.size() as f64
    }

    /// Smallest time by which at least fraction `p` of the workload has
    /// completed; `None` when `p` exceeds the completed fraction (the
    /// quantile falls in the timeout region).
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        if self.size() == 0 {
            return None;
        }
        let k = (p * self.size() as f64).ceil() as usize;
        if k == 0 {
            return self.times.first().copied();
        }
        self.times.get(k - 1).copied()
    }

    /// Fraction of the workload that completed at all.
    pub fn completed_fraction(&self) -> f64 {
        if self.size() == 0 {
            return 0.0;
        }
        self.times.len() as f64 / self.size() as f64
    }

    /// All distinct completed times (breakpoints of the step function).
    pub fn breakpoints(&self) -> &[f64] {
        &self.times
    }

    /// First-order stochastic dominance: `self` weakly dominates `other`
    /// when `self.at(x) ≥ other.at(x)` for every x, and strictly at some
    /// x. This is the paper's criterion for "configuration i is better".
    pub fn dominates(&self, other: &Cfc) -> bool {
        let mut strict = false;
        for &x in self.times.iter().chain(other.times.iter()) {
            // Evaluate just after the breakpoint to see its effect.
            let x = x * (1.0 + 1e-12) + f64::MIN_POSITIVE;
            let a = self.at(x);
            let b = other.at(x);
            if a < b - 1e-12 {
                return false;
            }
            if a > b + 1e-12 {
                strict = true;
            }
        }
        strict || (self.timeouts < other.timeouts && self.size() == other.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definition_matches_paper() {
        // 4 queries: 1s, 10s, 100s, timeout.
        let c = Cfc::from_values(&[1.0, 10.0, 100.0, f64::INFINITY]);
        assert_eq!(c.size(), 4);
        assert_eq!(c.timeouts(), 1);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(1.0), 0.0); // strictly less than
        assert_eq!(c.at(1.1), 0.25);
        assert_eq!(c.at(1e9), 0.75); // timeouts never complete
    }

    #[test]
    fn quantiles() {
        let c = Cfc::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.quantile(0.5), Some(2.0));
        assert_eq!(c.quantile(1.0), Some(4.0));
        let with_tout = Cfc::from_values(&[1.0, f64::INFINITY]);
        assert_eq!(with_tout.quantile(0.5), Some(1.0));
        assert_eq!(with_tout.quantile(0.9), None);
    }

    #[test]
    fn dominance_is_detected() {
        let fast = Cfc::from_values(&[1.0, 2.0, 3.0]);
        let slow = Cfc::from_values(&[10.0, 20.0, 30.0]);
        assert!(fast.dominates(&slow));
        assert!(!slow.dominates(&fast));
    }

    #[test]
    fn crossing_curves_do_not_dominate() {
        let a = Cfc::from_values(&[1.0, 100.0]);
        let b = Cfc::from_values(&[10.0, 20.0]);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn self_dominance_is_false() {
        let a = Cfc::from_values(&[1.0, 2.0]);
        assert!(!a.dominates(&a.clone()));
    }

    #[test]
    fn monotone_nondecreasing() {
        let c = Cfc::from_values(&[3.0, 1.0, 2.0, f64::INFINITY]);
        let mut last = 0.0;
        for i in 0..100 {
            let v = c.at(i as f64 * 0.1);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn empty_workload() {
        let c = Cfc::from_values(&[]);
        assert_eq!(c.at(10.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
    }
}
