//! The experiment grid: every (family, configuration) cell of the
//! reproduction, executed as one flat pool of per-query jobs.
//!
//! The repro driver measures each sampled workload on several built
//! configurations. Cells vary enormously in cost — a configuration that
//! times out on most of its workload spends the full timeout budget per
//! query — so parallelizing cell-by-cell would leave threads idle behind
//! the slowest cell. Instead [`run_grid`] flattens the whole grid into
//! (cell, query) jobs and lets the dynamic scheduler in
//! [`tab_storage::par_map`] balance them; outcomes are reassembled per
//! cell in workload order, so every [`WorkloadRun`] is identical to what
//! the serial loop would have produced.
//!
//! Each cell also gets a [`CellTiming`]: real wall-clock spent on its
//! queries plus the modeled cost units the paper's analysis is based
//! on. [`timings_json`] renders those machine-readably for CI trend
//! tracking.

use std::collections::BTreeSet;
use std::io;
use std::sync::Mutex;
use std::time::Instant;

use tab_engine::{ChargePolicy, ExecOpts, Outcome, PoolOpts, Session};
use tab_sqlq::Query;
use tab_storage::{
    par_map_catch, BuiltConfiguration, Database, Faults, JobPanic, Pager, Parallelism, PoolStats,
    Trace, TraceEvent,
};

use crate::checkpoint::{self, CheckpointJournal};
use crate::measure::WorkloadRun;

/// One (family, configuration) cell of the experiment grid, borrowed
/// from the driver that owns the databases and configurations.
pub struct GridCell<'a> {
    /// Family name, e.g. `NREF2J`.
    pub family: &'a str,
    /// Database the workload runs on.
    pub db: &'a Database,
    /// Built configuration to measure.
    pub built: &'a BuiltConfiguration,
    /// The sampled workload, in order.
    pub workload: &'a [Query],
    /// Timeout budget in cost units.
    pub timeout_units: f64,
    /// Intra-query worker threads for morsel-driven execution, *inside*
    /// each (cell, query) job — distinct from the grid-level `par`
    /// fan-out across jobs. Outcomes are identical at any setting.
    pub query_par: Parallelism,
    /// Rows per execution morsel (see [`tab_engine::exec`];
    /// [`tab_engine::DEFAULT_MORSEL_ROWS`] unless sweeping).
    pub morsel_rows: usize,
    /// Buffer-pool capacity in 8 KiB frames for each query of the cell
    /// (`0` = no pool, the legacy purely-modeled charge path). Each
    /// query gets a fresh pool, so eviction state never leaks between
    /// queries and outcomes stay order-independent.
    pub buffer_pages: usize,
    /// How the meter charges pool traffic; ignored when
    /// `buffer_pages == 0`. [`ChargePolicy::Metered`] keeps every cost
    /// total byte-identical to the pool-less path.
    pub charge: ChargePolicy,
    /// Spill-to-disk pager backing the pool's frames (optional; without
    /// one, evicted dirty pages are re-materialized from the in-memory
    /// heap on re-fetch and only the byte counters move).
    pub pager: Option<&'a Pager>,
}

/// Timing record for one executed grid cell.
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// Family name, e.g. `NREF2J`.
    pub family: String,
    /// Configuration display name, e.g. `NREF_P`.
    pub config: String,
    /// Queries in the cell.
    pub queries: usize,
    /// Queries that hit the timeout budget.
    pub timeouts: usize,
    /// Real wall-clock seconds summed over the cell's queries. Under a
    /// parallel run this is aggregate compute time, not elapsed time.
    pub wall_seconds: f64,
    /// Modeled cost units, timeouts charged at the budget (the §4.3
    /// lower bound).
    pub cost_units: f64,
}

/// Execute every cell of the grid and return, per cell in input order,
/// the workload run and its timing.
pub fn run_grid(cells: &[GridCell<'_>], par: Parallelism) -> Vec<(WorkloadRun, CellTiming)> {
    run_grid_traced(cells, par, Trace::disabled())
}

/// [`run_grid`], additionally emitting one `query` event and a set of
/// per-operator `operator` events per (cell, query) job to `trace`.
///
/// Tracing is observational only: the outcomes, timings, and every
/// downstream benchmark output are byte-identical to an untraced run.
/// Parallel workers interleave event lines, so every event carries the
/// `family`/`config`/`query` fields needed to regroup it.
///
/// A panic inside any job propagates here (after the remaining jobs
/// finish), preserving the historical contract; callers that want
/// per-cell failure isolation use [`run_grid_checkpointed`].
pub fn run_grid_traced(
    cells: &[GridCell<'_>],
    par: Parallelism,
    trace: Trace<'_>,
) -> Vec<(WorkloadRun, CellTiming)> {
    match run_grid_checkpointed(cells, par, trace, Faults::disabled(), None) {
        Ok(out) => out,
        Err(GridError::Poisoned { mut failed, .. }) => {
            failed.remove(0).panic.resume() // re-raise the original payload
        }
        Err(GridError::Journal(e)) => {
            unreachable!("no journal attached, yet it failed: {e}")
        }
    }
}

/// One grid cell that failed because a job inside it panicked —
/// whether from an injected `panic:cell:<family>/<config>` fault or a
/// genuine bug.
#[derive(Debug)]
pub struct FailedCell {
    /// Family name of the failed cell.
    pub family: String,
    /// Configuration display name of the failed cell.
    pub config: String,
    /// The first captured panic from the cell's jobs.
    pub panic: JobPanic,
}

/// Why a checkpointed grid run could not produce a full result set.
#[derive(Debug)]
pub enum GridError {
    /// One or more cells had a panicking job. Every other cell ran to
    /// completion and — when a journal was attached — was checkpointed,
    /// so a `--resume` rerun only re-executes the failed cells.
    Poisoned {
        /// The failed cells, in grid order.
        failed: Vec<FailedCell>,
        /// Cells that completed (executed or replayed) this run.
        completed: usize,
    },
    /// The checkpoint journal itself could not be written; crash
    /// consistency is compromised even though the grid may have
    /// finished.
    Journal(io::Error),
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::Poisoned { failed, completed } => {
                write!(
                    f,
                    "{} grid cell(s) failed ({} completed and checkpointed):",
                    failed.len(),
                    completed
                )?;
                for cell in failed {
                    write!(
                        f,
                        " {}/{}: {};",
                        cell.family, cell.config, cell.panic.message
                    )?;
                }
                Ok(())
            }
            GridError::Journal(e) => write!(f, "checkpoint journal write failed: {e}"),
        }
    }
}

impl std::error::Error for GridError {}

/// Per-cell accumulator: jobs land out of order across worker threads,
/// so each cell collects its outcomes behind a mutex and assembles the
/// `(WorkloadRun, CellTiming)` pair when its last query completes —
/// which is the moment the cell is journaled, giving true mid-run crash
/// consistency rather than journal-at-the-end.
struct Slab {
    got: Vec<Option<(Outcome, f64, PoolStats)>>,
    filled: usize,
    done: Option<(WorkloadRun, CellTiming)>,
}

/// The fault-aware, crash-consistent grid executor every other grid
/// entry point wraps.
///
/// Semantics on top of [`run_grid_traced`]:
///
/// - **Replay**: cells present in `journal` (matched by
///   `(family, config)` and query count) are *not* executed; their
///   journaled outcomes are returned bit-exactly. Replayed cells emit
///   no trace events — a resumed run's trace covers only the work it
///   actually performed.
/// - **Checkpoint**: each cell that completes all its queries is
///   recorded to `journal` immediately, via write-temp-then-rename.
/// - **Isolation**: a panicking job (injected via
///   `panic:cell:<family>/<config>`, or real) fails only its own cell;
///   sibling cells run to completion and are journaled. The failure
///   surfaces as [`GridError::Poisoned`].
///
/// The per-cell ordering of outcomes, the wall-clock summation order,
/// and therefore every downstream artifact are identical to the
/// historical implementation at any thread count.
pub fn run_grid_checkpointed(
    cells: &[GridCell<'_>],
    par: Parallelism,
    trace: Trace<'_>,
    faults: Faults<'_>,
    journal: Option<&CheckpointJournal>,
) -> Result<Vec<(WorkloadRun, CellTiming)>, GridError> {
    // Resolve replayed (and degenerate zero-query) cells up front.
    let mut resolved: Vec<Option<(WorkloadRun, CellTiming)>> = cells
        .iter()
        .map(|cell| {
            let config = cell.built.config.name.as_str();
            if let Some(j) = journal {
                if let Some(pair) = j.lookup(cell.family, config, cell.workload.len()) {
                    return Some(pair);
                }
            }
            if cell.workload.is_empty() {
                return Some(checkpoint::assemble(
                    cell.family,
                    config,
                    Vec::new(),
                    0.0,
                    PoolStats::default(),
                ));
            }
            None
        })
        .collect();

    let slabs: Vec<Mutex<Slab>> = cells
        .iter()
        .map(|cell| {
            Mutex::new(Slab {
                got: vec![None; cell.workload.len()],
                filled: 0,
                done: None,
            })
        })
        .collect();

    // Flatten the *missing* cells to (cell, query) jobs so the dynamic
    // scheduler balances across cells, exactly as before.
    let jobs: Vec<(usize, usize)> = cells
        .iter()
        .enumerate()
        .filter(|(c, _)| resolved[*c].is_none())
        .flat_map(|(c, cell)| (0..cell.workload.len()).map(move |q| (c, q)))
        .collect();

    let results = par_map_catch(par, &jobs, |&(c, q)| {
        let cell = &cells[c];
        if faults.is_enabled() {
            // Identity-matched site: fires for every job of the named
            // cell at any thread count, so the poisoned cell is
            // deterministic.
            faults.panic_if_armed(&format!("cell:{}/{}", cell.family, cell.built.config.name));
        }
        let (outcome, wall, io) = execute_query(cell, q, trace, faults);
        let mut slab = slabs[c].lock().expect("cell slab poisoned");
        slab.got[q] = Some((outcome, wall, io));
        slab.filled += 1;
        if slab.filled == cell.workload.len() {
            // Last query in: assemble in workload order (deterministic
            // f64 summation) and checkpoint the finished cell.
            let outcomes: Vec<Outcome> = slab
                .got
                .iter()
                .map(|s| s.as_ref().expect("slab filled").0.clone())
                .collect();
            let wall_seconds: f64 = slab
                .got
                .iter()
                .map(|s| s.as_ref().expect("slab filled").1)
                .sum();
            let mut cell_io = PoolStats::default();
            for s in &slab.got {
                cell_io.merge(&s.as_ref().expect("slab filled").2);
            }
            let (run, timing) = checkpoint::assemble(
                cell.family,
                &cell.built.config.name,
                outcomes,
                wall_seconds,
                cell_io,
            );
            if let Some(j) = journal {
                j.record(cell.family, &run.config, &run, wall_seconds, faults);
            }
            slab.done = Some((run, timing));
        }
    });

    // Fold job verdicts back to cell verdicts.
    let mut poisoned: BTreeSet<usize> = BTreeSet::new();
    let mut failed: Vec<FailedCell> = Vec::new();
    for (r, &(c, _)) in results.into_iter().zip(&jobs) {
        if let Err(panic) = r {
            if poisoned.insert(c) {
                failed.push(FailedCell {
                    family: cells[c].family.to_string(),
                    config: cells[c].built.config.name.clone(),
                    panic,
                });
            }
        }
    }
    if !failed.is_empty() {
        let completed = resolved.iter().filter(|r| r.is_some()).count()
            + slabs
                .iter()
                .filter(|s| s.lock().expect("cell slab poisoned").done.is_some())
                .count();
        return Err(GridError::Poisoned { failed, completed });
    }
    if let Some(e) = journal.and_then(|j| j.io_error()) {
        return Err(GridError::Journal(e));
    }

    let mut out = Vec::with_capacity(cells.len());
    for (c, slot) in resolved.iter_mut().enumerate() {
        match slot.take() {
            Some(pair) => out.push(pair),
            None => out.push(
                slabs[c]
                    .lock()
                    .expect("cell slab poisoned")
                    .done
                    .take()
                    .expect("no failures, so every executed cell completed"),
            ),
        }
    }
    Ok(out)
}

/// Execute one (cell, query) job, optionally tracing it. Extracted from
/// the original `run_grid_traced` body verbatim, plus the morsel-driven
/// [`ExecOpts`] and the `panic:morsel:<family>/<config>` fault site
/// armed inside the executor's morsel workers.
fn execute_query(
    cell: &GridCell<'_>,
    q: usize,
    trace: Trace<'_>,
    faults: Faults<'_>,
) -> (Outcome, f64, PoolStats) {
    // The site strings only exist when injection is on; the disabled
    // path must not pay a per-morsel format.
    let site = if faults.is_enabled() {
        Some(format!("morsel:{}/{}", cell.family, cell.built.config.name))
    } else {
        None
    };
    let evict_site = if faults.is_enabled() && cell.buffer_pages > 0 {
        Some(format!("evict:{}/{}", cell.family, cell.built.config.name))
    } else {
        None
    };
    let pool = (cell.buffer_pages > 0).then(|| {
        let mut p = PoolOpts::new(cell.buffer_pages);
        p.policy = cell.charge;
        p.pager = cell.pager;
        p.trace = trace;
        p.evict_site = evict_site.as_deref();
        p
    });
    let exec = ExecOpts {
        par: cell.query_par,
        morsel_rows: cell.morsel_rows,
        faults,
        fault_site: site.as_deref(),
        pool,
        ..ExecOpts::default()
    };
    let session = Session::new(cell.db, cell.built).with_exec(exec);
    let t0 = Instant::now();
    let (outcome, io) = if trace.is_enabled() {
        let (result, acts) = session
            .run_instrumented(&cell.workload[q], Some(cell.timeout_units))
            .expect("grid workloads bind against their databases");
        let config = cell.built.config.name.as_str();
        let labels = result.plan.op_labels();
        for (op, label) in labels.iter().enumerate() {
            trace.emit(|| {
                let mut ev = TraceEvent::new("operator")
                    .str("family", cell.family)
                    .str("config", config)
                    .int("query", q as u64)
                    .int("op", op as u64)
                    .str("label", label);
                if let Some(est) = result.plan.op_ests.get(op) {
                    ev = ev.num("est_cost", est.cost).num("est_rows", est.rows);
                }
                if let Some(act) = acts.get(op) {
                    ev = ev
                        .int("rows_in", act.rows_in)
                        .int("rows_out", act.rows_out)
                        .int("probes", act.probes)
                        .num("units", act.units);
                    // Pool-mode only: absent fields keep pool-less
                    // traces byte-identical to earlier versions.
                    if act.page_hits + act.page_misses > 0 {
                        ev = ev
                            .int("page_hits", act.page_hits)
                            .int("page_misses", act.page_misses);
                    }
                }
                ev
            });
        }
        trace.emit(|| {
            let (label, units) = match result.outcome {
                Outcome::Done { units, .. } => ("done", units),
                // A timeout is charged at the budget — the §4.3
                // lower bound the analysis uses.
                Outcome::Timeout { budget } => ("timeout", budget),
            };
            TraceEvent::new("query")
                .str("family", cell.family)
                .str("config", config)
                .int("query", q as u64)
                .str("outcome", label)
                .num("units", units)
        });
        (result.outcome, result.io)
    } else {
        let r = session
            .run(&cell.workload[q], Some(cell.timeout_units))
            .expect("grid workloads bind against their databases");
        (r.outcome, r.io)
    };
    (outcome, t0.elapsed().as_secs_f64(), io)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render cell timings as a `timings.json` document:
///
/// ```json
/// {
///   "threads": 4,
///   "total_wall_seconds": 12.3,
///   "cells": [ { "family": "NREF2J", "config": "NREF_P", ... }, ... ]
/// }
/// ```
pub fn timings_json(threads: usize, total_wall_seconds: f64, cells: &[CellTiming]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!(
        "  \"total_wall_seconds\": {total_wall_seconds:.3},\n"
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"family\": \"{}\", \"config\": \"{}\", \"queries\": {}, \"timeouts\": {}, \"wall_seconds\": {:.6}, \"cost_units\": {:.3}}}{}\n",
            json_escape(&c.family),
            json_escape(&c.config),
            c.queries,
            c.timeouts,
            c.wall_seconds,
            c.cost_units,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One coarse phase of a reproduction run, aggregated across sections
/// (e.g. `generate` sums NREF and both TPC-H generations).
#[derive(Debug, Clone)]
pub struct PhaseTiming {
    /// Phase name, e.g. `measurement-grid`.
    pub name: String,
    /// Real wall-clock seconds attributed to the phase.
    pub wall_seconds: f64,
    /// Modeled cost units consumed by the phase's metered query
    /// executions, `0` for phases that run no metered queries.
    pub cost_units: f64,
}

/// Render per-phase timings as a `BENCH_repro_<scale>.json` document,
/// the machine-readable performance record a repro run leaves next to
/// `timings.json`.
///
/// Schema (`tab-bench-phases-v1`):
///
/// ```json
/// {
///   "schema": "tab-bench-phases-v1",
///   "scale": "small",            // SuiteParams preset: "small" | "full"
///   "threads": 1,                // worker threads the run used
///   "total_wall_seconds": 7.980, // elapsed time of the whole run
///   "phases": [                  // in execution order, wall-clock sums
///     {"name": "generate", "wall_seconds": 0.51, "cost_units": 0.0},
///     {"name": "measurement-grid", "wall_seconds": 5.2, "cost_units": 1.9e6}
///   ]
/// }
/// ```
///
/// `wall_seconds` vary run to run, so determinism checks must skip
/// `BENCH_*` files; `cost_units` are deterministic and comparable
/// across machines.
pub fn bench_json(
    scale: &str,
    threads: usize,
    total_wall_seconds: f64,
    phases: &[PhaseTiming],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tab-bench-phases-v1\",\n");
    s.push_str(&format!("  \"scale\": \"{}\",\n", json_escape(scale)));
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!(
        "  \"total_wall_seconds\": {total_wall_seconds:.3},\n"
    ));
    s.push_str("  \"phases\": [\n");
    for (i, p) in phases.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_seconds\": {:.3}, \"cost_units\": {:.3}}}{}\n",
            json_escape(&p.name),
            p.wall_seconds,
            p.cost_units,
            if i + 1 < phases.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One recommendation's what-if search instrumentation, reported in
/// `BENCH_advisor.json`.
#[derive(Debug, Clone)]
pub struct AdvisorBenchRecord {
    /// Recommender profile name (`A`, `B`, or `C`).
    pub system: String,
    /// The workload/scenario label, e.g. `NREF2J` or `SkTH-uniform`.
    pub family: String,
    /// Whether the tool produced a recommendation (System A declines
    /// over-capacity workloads).
    pub recommended: bool,
    /// Candidate structures considered.
    pub candidates: usize,
    /// Structures accepted by the greedy search.
    pub picks: usize,
    /// Total what-if cost requests issued.
    pub whatif_calls: u64,
    /// Requests that invoked the planner (cache misses).
    pub planner_calls: u64,
    /// Requests answered from the what-if cost cache.
    pub cache_hits: u64,
    /// Wall-clock seconds spent in the search.
    pub wall_seconds: f64,
}

/// Render per-recommendation advisor instrumentation as a
/// `BENCH_advisor.json` document, alongside `BENCH_repro_<scale>.json`.
///
/// Schema (`tab-advisor-bench-v1`):
///
/// ```json
/// {
///   "schema": "tab-advisor-bench-v1",
///   "threads": 2,                  // advisor fan-out thread budget
///   "recommendations": [           // in execution order
///     {"system": "A", "family": "NREF2J", "recommended": true,
///      "candidates": 40, "picks": 6,
///      "whatif_calls": 1200, "planner_calls": 300, "cache_hits": 900,
///      "cache_hit_rate": 0.750, "wall_seconds": 0.412}
///   ]
/// }
/// ```
///
/// `wall_seconds` vary run to run, so determinism checks must skip
/// `BENCH_*` files; every other field is deterministic at any thread
/// count.
pub fn advisor_bench_json(threads: usize, records: &[AdvisorBenchRecord]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tab-advisor-bench-v1\",\n");
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str("  \"recommendations\": [\n");
    for (i, r) in records.iter().enumerate() {
        let hit_rate = if r.whatif_calls == 0 {
            0.0
        } else {
            r.cache_hits as f64 / r.whatif_calls as f64
        };
        s.push_str(&format!(
            "    {{\"system\": \"{}\", \"family\": \"{}\", \"recommended\": {}, \
             \"candidates\": {}, \"picks\": {}, \"whatif_calls\": {}, \
             \"planner_calls\": {}, \"cache_hits\": {}, \"cache_hit_rate\": {:.3}, \
             \"wall_seconds\": {:.3}}}{}\n",
            json_escape(&r.system),
            json_escape(&r.family),
            r.recommended,
            r.candidates,
            r.picks,
            r.whatif_calls,
            r.planner_calls,
            r.cache_hits,
            hit_rate,
            r.wall_seconds,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One (family, configuration) cell's pool traffic, reported in
/// `BENCH_io.json`.
#[derive(Debug, Clone)]
pub struct IoBenchCell {
    /// Family name, e.g. `NREF2J`.
    pub family: String,
    /// Configuration display name, e.g. `NREF_P`.
    pub config: String,
    /// Pool traffic summed over the cell's completed queries.
    pub io: PoolStats,
}

/// Render per-cell buffer-pool traffic as a `BENCH_io.json` document.
///
/// Schema (`tab-io-bench-v1`):
///
/// ```json
/// {
///   "schema": "tab-io-bench-v1",
///   "mode": "pool",            // "pool" when buffer_pages > 0, else "compat"
///   "buffer_pages": 64,        // pool capacity in 8 KiB frames (0 = off)
///   "charge": "metered",       // ChargePolicy the run used
///   "cells": [
///     {"family": "NREF2J", "config": "NREF_P", "hits": 812, "misses_seq": 90,
///      "misses_random": 14, "evictions": 40, "spill_bytes_written": 327680,
///      "spill_bytes_read": 81920, "hit_rate": 0.886}
///   ]
/// }
/// ```
///
/// Unlike its `BENCH_*` siblings this document contains **no
/// wall-clock**: every field is a pure function of the logical access
/// stream, so determinism checks byte-compare it across thread counts
/// (like `BENCH_convergence.json`) rather than skipping it.
pub fn io_bench_json(buffer_pages: usize, charge: ChargePolicy, cells: &[IoBenchCell]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tab-io-bench-v1\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if buffer_pages > 0 { "pool" } else { "compat" }
    ));
    s.push_str(&format!("  \"buffer_pages\": {buffer_pages},\n"));
    s.push_str(&format!("  \"charge\": \"{}\",\n", charge.name()));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"family\": \"{}\", \"config\": \"{}\", \"hits\": {}, \"misses_seq\": {}, \
             \"misses_random\": {}, \"evictions\": {}, \"spill_bytes_written\": {}, \
             \"spill_bytes_read\": {}, \"hit_rate\": {:.3}}}{}\n",
            json_escape(&c.family),
            json_escape(&c.config),
            c.io.hits,
            c.io.misses_seq,
            c.io.misses_random,
            c.io.evictions,
            c.io.spill_bytes_written,
            c.io.spill_bytes_read,
            c.io.hit_rate(),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{build_1c, build_p};
    use crate::measure::run_workload;
    use tab_datagen::{generate_nref, NrefParams};
    use tab_engine::DEFAULT_MORSEL_ROWS;
    use tab_sqlq::parse;

    fn setup() -> (Database, Vec<Query>) {
        let db = generate_nref(NrefParams {
            proteins: 200,
            seed: 9,
        });
        let qs: Vec<Query> = (0..6)
            .map(|i| {
                parse(&format!(
                    "SELECT p.p_name, COUNT(*) FROM protein p \
                     WHERE p.last_updated = {i} GROUP BY p.p_name"
                ))
                .unwrap()
            })
            .collect();
        (db, qs)
    }

    #[test]
    fn grid_matches_per_cell_run_workload_at_any_thread_count() {
        let (db, qs) = setup();
        let p = build_p(&db, "NREF");
        let c1 = build_1c(&db, "NREF");
        let cells = [
            GridCell {
                family: "F1",
                db: &db,
                built: &p,
                workload: &qs,
                timeout_units: 500.0,
                query_par: Parallelism::new(2),
                morsel_rows: 64,
                buffer_pages: 0,
                charge: ChargePolicy::Observed,
                pager: None,
            },
            GridCell {
                family: "F1",
                db: &db,
                built: &c1,
                workload: &qs,
                timeout_units: 500.0,
                query_par: Parallelism::new(2),
                morsel_rows: 64,
                buffer_pages: 0,
                charge: ChargePolicy::Observed,
                pager: None,
            },
            GridCell {
                family: "F2",
                db: &db,
                built: &p,
                workload: &qs[..3],
                timeout_units: 10.0,
                query_par: Parallelism::new(2),
                morsel_rows: 64,
                buffer_pages: 0,
                charge: ChargePolicy::Observed,
                pager: None,
            },
        ];
        let serial: Vec<WorkloadRun> = cells
            .iter()
            .map(|c| run_workload(c.db, c.built, c.workload, c.timeout_units))
            .collect();
        for threads in [1, 2, 4] {
            let grid = run_grid(&cells, Parallelism::new(threads));
            assert_eq!(grid.len(), serial.len());
            for ((run, timing), want) in grid.iter().zip(&serial) {
                assert_eq!(run.config, want.config);
                assert_eq!(run.outcomes.len(), want.outcomes.len());
                for (a, b) in run.outcomes.iter().zip(&want.outcomes) {
                    assert_eq!(format!("{a:?}"), format!("{b:?}"), "threads={threads}");
                }
                assert_eq!(timing.queries, run.outcomes.len());
                assert_eq!(timing.timeouts, run.timeout_count());
                assert!(timing.wall_seconds >= 0.0);
                assert!(timing.cost_units > 0.0);
            }
        }
    }

    #[test]
    fn traced_grid_matches_untraced_and_emits_query_events() {
        let (db, qs) = setup();
        let p = build_p(&db, "NREF");
        let cells = [GridCell {
            family: "F1",
            db: &db,
            built: &p,
            workload: &qs,
            timeout_units: 500.0,
            query_par: Parallelism::sequential(),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            buffer_pages: 0,
            charge: ChargePolicy::Observed,
            pager: None,
        }];
        let plain = run_grid(&cells, Parallelism::sequential());
        let sink = tab_storage::MemoryTraceSink::new();
        let traced = run_grid_traced(&cells, Parallelism::sequential(), Trace::to(&sink));
        for ((a, ta), (b, tb)) in plain.iter().zip(&traced) {
            assert_eq!(format!("{:?}", a.outcomes), format!("{:?}", b.outcomes));
            assert_eq!(ta.cost_units, tb.cost_units);
        }
        let lines = sink.lines();
        let queries: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"event\":\"query\""))
            .collect();
        assert_eq!(queries.len(), qs.len());
        assert!(queries[0].contains("\"family\":\"F1\""));
        assert!(queries[0].contains("\"outcome\":\"done\""));
        // Each operator event carries both estimates and actuals.
        let op = lines
            .iter()
            .find(|l| l.contains("\"event\":\"operator\""))
            .expect("operator events");
        assert!(op.contains("\"est_cost\":"), "missing estimates: {op}");
        assert!(op.contains("\"units\":"), "missing actuals: {op}");
    }

    #[test]
    fn poisoned_cell_fails_alone_and_resume_completes_bit_exactly() {
        let (db, qs) = setup();
        let p = build_p(&db, "NREF");
        let c1 = build_1c(&db, "NREF");
        let cells = [
            GridCell {
                family: "F1",
                db: &db,
                built: &p,
                workload: &qs,
                timeout_units: 500.0,
                query_par: Parallelism::new(2),
                morsel_rows: 64,
                buffer_pages: 0,
                charge: ChargePolicy::Observed,
                pager: None,
            },
            GridCell {
                family: "F1",
                db: &db,
                built: &c1,
                workload: &qs,
                timeout_units: 500.0,
                query_par: Parallelism::new(2),
                morsel_rows: 64,
                buffer_pages: 0,
                charge: ChargePolicy::Observed,
                pager: None,
            },
            GridCell {
                family: "F2",
                db: &db,
                built: &p,
                workload: &qs[..3],
                timeout_units: 10.0,
                query_par: Parallelism::new(2),
                morsel_rows: 64,
                buffer_pages: 0,
                charge: ChargePolicy::Observed,
                pager: None,
            },
        ];
        let clean = run_grid(&cells, Parallelism::sequential());

        let path = std::env::temp_dir().join(format!("tab_grid_ckpt_{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        let plan = tab_storage::FaultPlan::parse("panic:cell:F1/NREF_1C").expect("spec");
        for threads in [1, 4] {
            // Crash: the poisoned cell fails, siblings are journaled.
            let journal = CheckpointJournal::open(&path, "t", false).expect("open journal");
            let err = run_grid_checkpointed(
                &cells,
                Parallelism::new(threads),
                Trace::disabled(),
                Faults::to(&plan),
                Some(&journal),
            )
            .expect_err("poisoned cell must fail the grid");
            match &err {
                GridError::Poisoned { failed, completed } => {
                    assert_eq!(failed.len(), 1, "threads={threads}");
                    assert_eq!(failed[0].family, "F1");
                    assert_eq!(failed[0].config, "NREF_1C");
                    assert!(failed[0].panic.message.contains("cell:F1/NREF_1C"));
                    assert_eq!(*completed, 2, "threads={threads}");
                }
                other => panic!("unexpected error: {other}"),
            }
            assert_eq!(journal.cells(), 2);

            // Resume: only the poisoned cell re-executes (faults now
            // disarmed), and the merged result matches a clean run
            // outcome-for-outcome.
            let journal = CheckpointJournal::open(&path, "t", true).expect("reopen");
            assert_eq!(journal.cells(), 2);
            let resumed = run_grid_checkpointed(
                &cells,
                Parallelism::new(threads),
                Trace::disabled(),
                Faults::disabled(),
                Some(&journal),
            )
            .expect("resume completes");
            assert_eq!(resumed.len(), clean.len());
            for ((run, timing), (want, _)) in resumed.iter().zip(&clean) {
                assert_eq!(run.config, want.config);
                assert_eq!(run.outcomes, want.outcomes, "threads={threads}");
                assert_eq!(timing.cost_units, want.total_lower_bound_units());
            }
            journal.finish().expect("journal removed after success");
            assert!(!path.exists());
        }
    }

    #[test]
    fn checkpointed_with_no_journal_matches_run_grid() {
        let (db, qs) = setup();
        let p = build_p(&db, "NREF");
        let cells = [GridCell {
            family: "F1",
            db: &db,
            built: &p,
            workload: &qs,
            timeout_units: 500.0,
            query_par: Parallelism::sequential(),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            buffer_pages: 0,
            charge: ChargePolicy::Observed,
            pager: None,
        }];
        let plain = run_grid(&cells, Parallelism::sequential());
        let bare = run_grid_checkpointed(
            &cells,
            Parallelism::new(2),
            Trace::disabled(),
            Faults::disabled(),
            None,
        )
        .expect("clean grid");
        for ((a, ta), (b, tb)) in bare.iter().zip(&plain) {
            assert_eq!(a.outcomes, b.outcomes);
            assert_eq!(ta.cost_units, tb.cost_units);
        }
    }

    #[test]
    fn timings_json_shape() {
        let cells = vec![
            CellTiming {
                family: "NREF2J".into(),
                config: "NREF_P".into(),
                queries: 30,
                timeouts: 4,
                wall_seconds: 1.25,
                cost_units: 42.0,
            },
            CellTiming {
                family: "SkTH3J".into(),
                config: "SkTH_\"q\"".into(),
                queries: 30,
                timeouts: 0,
                wall_seconds: 0.5,
                cost_units: 7.0,
            },
        ];
        let j = timings_json(4, 3.0, &cells);
        assert!(j.contains("\"threads\": 4"));
        assert!(j.contains("\"total_wall_seconds\": 3.000"));
        assert!(j.contains("\"family\": \"NREF2J\""));
        assert!(j.contains("SkTH_\\\"q\\\""));
        // A comma between the two cell objects, none trailing.
        assert!(j.contains("},\n"));
        assert!(!j.contains("},\n  ]"));
    }

    #[test]
    fn bench_json_shape() {
        let phases = vec![
            PhaseTiming {
                name: "generate".into(),
                wall_seconds: 0.5,
                cost_units: 0.0,
            },
            PhaseTiming {
                name: "measurement-grid".into(),
                wall_seconds: 5.25,
                cost_units: 1234.5,
            },
        ];
        let j = bench_json("small", 2, 7.98, &phases);
        assert!(j.contains("\"schema\": \"tab-bench-phases-v1\""));
        assert!(j.contains("\"scale\": \"small\""));
        assert!(j.contains("\"threads\": 2"));
        assert!(j.contains("\"total_wall_seconds\": 7.980"));
        assert!(j.contains(
            "\"name\": \"measurement-grid\", \"wall_seconds\": 5.250, \"cost_units\": 1234.500"
        ));
        assert!(j.contains("},\n"));
        assert!(!j.contains("},\n  ]"));
    }

    #[test]
    fn advisor_bench_json_shape() {
        let records = vec![
            AdvisorBenchRecord {
                system: "A".into(),
                family: "NREF2J".into(),
                recommended: true,
                candidates: 40,
                picks: 6,
                whatif_calls: 1200,
                planner_calls: 300,
                cache_hits: 900,
                wall_seconds: 0.4125,
            },
            AdvisorBenchRecord {
                system: "A".into(),
                family: "NREF3J".into(),
                recommended: false,
                candidates: 0,
                picks: 0,
                whatif_calls: 0,
                planner_calls: 0,
                cache_hits: 0,
                wall_seconds: 0.0,
            },
        ];
        let j = advisor_bench_json(2, &records);
        assert!(j.contains("\"schema\": \"tab-advisor-bench-v1\""));
        assert!(j.contains("\"threads\": 2"));
        assert!(j.contains("\"system\": \"A\", \"family\": \"NREF2J\", \"recommended\": true"));
        assert!(j.contains("\"cache_hit_rate\": 0.750"));
        // Zero what-if calls must not divide by zero.
        assert!(j.contains("\"recommended\": false"));
        assert!(j.contains("\"cache_hit_rate\": 0.000"));
        assert!(j.contains("},\n"));
        assert!(!j.contains("},\n  ]"));
    }
}
