//! Query-family enumeration and sampling benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use tab_datagen::{generate_nref, generate_tpch, Distribution, NrefParams, TpchParams};
use tab_families::{sample_preserving, Family};

fn bench_families(c: &mut Criterion) {
    let nref = generate_nref(NrefParams {
        proteins: 1_000,
        seed: 3,
    });
    let tpch = generate_tpch(TpchParams {
        scale: 0.003,
        distribution: Distribution::Zipf(1.0),
        seed: 3,
    });

    c.bench_function("enumerate_nref2j", |b| {
        b.iter(|| black_box(Family::Nref2J.enumerate(&nref).len()))
    });
    c.bench_function("enumerate_nref3j", |b| {
        b.iter(|| black_box(Family::Nref3J.enumerate(&nref).len()))
    });
    c.bench_function("enumerate_skth3j", |b| {
        b.iter(|| black_box(Family::SkTH3J.enumerate(&tpch).len()))
    });
    c.bench_function("sample_100_preserving", |b| {
        let family = Family::Nref2J.enumerate(&nref);
        b.iter(|| {
            black_box(sample_preserving(&family, |q| q.to_string().len() as f64, 100, 7).len())
        })
    });
}

fn configured() -> Criterion {
    // Keep full-workspace bench runs to minutes, not hours: these are
    // coarse-grained operations (whole queries, whole advisor searches),
    // so ten samples at ~3 s each is plenty to see regressions.
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group!(name = benches; config = configured(); targets = bench_families);
criterion_main!(benches);
