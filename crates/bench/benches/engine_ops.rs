//! Operator and optimizer microbenchmarks: scan, probe, join, plan.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use tab_datagen::{generate_nref, NrefParams};
use tab_engine::{CostMeter, ExecOpts, Resolver, Session};
use tab_sqlq::parse;
use tab_storage::Parallelism;
use tab_storage::{
    BuiltConfiguration, ColType, ColumnDef, Configuration, Database, IndexSpec, Table, TableSchema,
    Value,
};

fn bench_engine(c: &mut Criterion) {
    let db = generate_nref(NrefParams {
        proteins: 2_000,
        seed: 1,
    });
    let p = BuiltConfiguration::build(Configuration::named("p"), &db);
    let mut icfg = Configuration::named("ix");
    let tax = db.table("taxonomy").unwrap().schema();
    icfg.indexes.push(IndexSpec::new(
        "taxonomy",
        vec![tax.require_column("taxon_id")],
    ));
    icfg.indexes.push(IndexSpec::new("source", vec![1])); // p_id
    let ix = BuiltConfiguration::build(icfg, &db);

    let scan_q = parse("SELECT t.lineage, COUNT(*) FROM taxonomy t GROUP BY t.lineage").unwrap();
    let probe_q =
        parse("SELECT t.lineage, COUNT(*) FROM taxonomy t WHERE t.taxon_id = 3 GROUP BY t.lineage")
            .unwrap();
    let join_q = parse(
        "SELECT t.lineage, COUNT(*) FROM taxonomy t, source s \
         WHERE t.taxon_id = s.taxon_id AND s.p_id = 1 GROUP BY t.lineage",
    )
    .unwrap();

    c.bench_function("seq_scan_aggregate", |b| {
        let s = Session::new(&db, &p);
        b.iter(|| black_box(s.run(&scan_q, None).unwrap().outcome.units()))
    });
    c.bench_function("index_probe_aggregate", |b| {
        let s = Session::new(&db, &ix);
        b.iter(|| black_box(s.run(&probe_q, None).unwrap().outcome.units()))
    });
    c.bench_function("hash_join_two_tables", |b| {
        let s = Session::new(&db, &p);
        b.iter(|| black_box(s.run(&join_q, None).unwrap().outcome.units()))
    });
    c.bench_function("plan_three_relation_query", |b| {
        let s = Session::new(&db, &ix);
        let q = parse(
            "SELECT r1.taxon_id, COUNT(DISTINCT r2.nref_id) \
             FROM taxonomy r1, taxonomy r2, source s \
             WHERE r1.taxon_id = r2.taxon_id AND r1.nref_id = s.nref_id \
             AND s.p_id = 0 GROUP BY r1.taxon_id",
        )
        .unwrap();
        b.iter(|| black_box(s.plan_query(&q).unwrap().est_cost))
    });
    c.bench_function("execute_planned_query", |b| {
        let s = Session::new(&db, &ix);
        let plan = s.plan_query(&probe_q).unwrap();
        let resolver = Resolver::new(&db, &ix);
        b.iter(|| {
            let mut m = CostMeter::unbounded();
            black_box(tab_engine::execute(&plan, &resolver, &mut m).unwrap().len())
        })
    });
}

/// Synthetic star schema sized for the batch-operator benches: `fact`
/// has `n` rows with a 10:1 fan-in onto `dim` (so an equi-join emits
/// exactly `n` rows) and 64 grouping values in `g`; `grp` maps each
/// grouping value to one row. Deterministic, no RNG.
fn batch_db(n: usize) -> Database {
    let mut db = Database::new();
    let mut fact = Table::new(TableSchema::new(
        "fact",
        vec![
            ColumnDef::new("k", ColType::Int),
            ColumnDef::new("g", ColType::Int),
            ColumnDef::new("v", ColType::Int),
        ],
    ));
    let n_dim = (n / 10).max(1);
    for i in 0..n {
        fact.insert(vec![
            Value::Int((i % n_dim) as i64),
            Value::Int((i % 64) as i64),
            Value::Int(i as i64),
        ]);
    }
    let mut dim = Table::new(TableSchema::new(
        "dim",
        vec![
            ColumnDef::new("k", ColType::Int),
            ColumnDef::new("w", ColType::Int),
        ],
    ));
    for i in 0..n_dim {
        dim.insert(vec![Value::Int(i as i64), Value::Int((i * 7) as i64)]);
    }
    let mut grp = Table::new(TableSchema::new(
        "grp",
        vec![
            ColumnDef::new("g", ColType::Int),
            ColumnDef::new("z", ColType::Int),
        ],
    ));
    for i in 0..64 {
        grp.insert(vec![Value::Int(i as i64), Value::Int((i * 3) as i64)]);
    }
    db.add_table(fact);
    db.add_table(dim);
    db.add_table(grp);
    db.collect_stats();
    db
}

/// Hash-join, group-by, and 3-way-join throughput at 10^3..10^5 rows —
/// the operators the late-materialization executor batches. All run
/// under the index-less `P` configuration so the planner picks hash
/// joins.
fn bench_batch_operators(c: &mut Criterion) {
    let join_q = parse("SELECT COUNT(*) FROM fact f, dim d WHERE f.k = d.k").unwrap();
    let group_q = parse("SELECT f.g, COUNT(*) FROM fact f GROUP BY f.g").unwrap();
    let three_q = parse(
        "SELECT COUNT(*) FROM fact f, dim d, grp e \
         WHERE f.k = d.k AND f.g = e.g",
    )
    .unwrap();
    for n in [1_000usize, 10_000, 100_000] {
        let db = batch_db(n);
        let p = BuiltConfiguration::build(Configuration::named("p"), &db);
        let s = Session::new(&db, &p);
        c.bench_function(&format!("hash_join_{n}"), |b| {
            b.iter(|| black_box(s.run(&join_q, None).unwrap().outcome.units()))
        });
        c.bench_function(&format!("group_by_{n}"), |b| {
            b.iter(|| black_box(s.run(&group_q, None).unwrap().outcome.units()))
        });
        c.bench_function(&format!("three_way_join_{n}"), |b| {
            b.iter(|| black_box(s.run(&three_q, None).unwrap().outcome.units()))
        });
    }
}

/// The morsel-driven executor (DESIGN.md §12) on its two hot shapes —
/// a filtered scan and a hash-join probe — at 10^4 and 10^5 rows, each
/// through three executor variants: `scalar_1t` (row-at-a-time
/// predicates, sequential), `vector_1t` (columnar Int predicates,
/// sequential), and `vector_4t` (columnar + 4 morsel workers). Cost
/// units are identical across variants (the determinism contract);
/// only wall-clock may differ, which is exactly what this measures.
fn bench_exec_morsels(c: &mut Criterion) {
    let scan_q = parse("SELECT COUNT(*) FROM fact f WHERE f.v > 500 AND f.g = 3").unwrap();
    let join_q = parse("SELECT COUNT(*) FROM fact f, dim d WHERE f.k = d.k AND f.v > 500").unwrap();
    let variants = [
        ("scalar_1t", false, Parallelism::sequential()),
        ("vector_1t", true, Parallelism::sequential()),
        ("vector_4t", true, Parallelism::new(4)),
    ];
    for n in [10_000usize, 100_000] {
        let db = batch_db(n);
        let p = BuiltConfiguration::build(Configuration::named("p"), &db);
        for (label, vectorize, par) in variants {
            let exec = ExecOpts {
                par,
                vectorize,
                ..ExecOpts::default()
            };
            let s = Session::new(&db, &p).with_exec(exec);
            c.bench_function(&format!("exec_morsels_scan_filter_{n}_{label}"), |b| {
                b.iter(|| black_box(s.run(&scan_q, None).unwrap().outcome.units()))
            });
            c.bench_function(&format!("exec_morsels_join_probe_{n}_{label}"), |b| {
                b.iter(|| black_box(s.run(&join_q, None).unwrap().outcome.units()))
            });
        }
    }
}

/// The buffer pool's hot paths (DESIGN.md §13), isolated from the
/// executor: the hit-path fetch (hash lookup + referenced bit), the
/// clock sweep under eviction pressure (working set 4x capacity, so
/// nearly every fetch walks the hand past referenced frames), and a
/// repeated sequential scan at 50% / 100% / 200% of capacity — the
/// 200% case is clock's sequential-flooding worst case, where every
/// revisit misses again.
fn bench_buffer_pool(c: &mut Criterion) {
    use tab_storage::{table_rel_id, BufferPool, Faults, Fetched, PageHint, PageKey, Trace};
    let rel = table_rel_id("bench");
    let key = |page: u64| PageKey { rel, page };
    let fresh =
        |pages: usize| BufferPool::new(pages, None, Faults::disabled(), Trace::disabled(), None);

    c.bench_function("buffer_pool_hit_fetch", |b| {
        let mut pool = fresh(1024);
        for p in 0..1024u64 {
            pool.fetch(key(p), PageHint::Seq, false);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(pool.fetch(key(i), PageHint::Random, false))
        })
    });

    c.bench_function("buffer_pool_clock_sweep_pressure", |b| {
        let mut pool = fresh(256);
        let mut i = 0u64;
        b.iter(|| {
            // Prime-strided walk over 4x the capacity: no temporal
            // locality the clock hand can exploit.
            i = (i + 7919) % 1024;
            black_box(pool.fetch(key(i), PageHint::Random, false))
        })
    });

    for (label, scan_pages) in [("50pct", 512u64), ("100pct", 1024), ("200pct", 2048)] {
        c.bench_function(&format!("buffer_pool_seq_scan_{label}"), |b| {
            let mut pool = fresh(1024);
            b.iter(|| {
                let mut misses = 0u64;
                for p in 0..scan_pages {
                    if !matches!(pool.fetch(key(p), PageHint::Seq, false), Fetched::Hit) {
                        misses += 1;
                    }
                }
                black_box(misses)
            })
        });
    }
}

fn configured() -> Criterion {
    // Keep full-workspace bench runs to minutes, not hours: these are
    // coarse-grained operations (whole queries, whole advisor searches),
    // so ten samples at ~3 s each is plenty to see regressions.
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group!(name = benches; config = configured(); targets = bench_engine, bench_batch_operators, bench_exec_morsels, bench_buffer_pool);
criterion_main!(benches);
