//! Ablation benchmarks for the design choices DESIGN.md §7 calls out.
//!
//! These measure search-time implications of the ablations (the quality
//! implications are reported by the `ablation` binary, which compares
//! actual workload costs under each variant):
//!
//! - what-if estimation with vs without the uniformity assumption;
//! - total-cost vs percentile objective in the greedy search.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use tab_advisor::{
    generate_candidates, greedy_select, p_configuration, CandidateStyle, GreedyOptions, Objective,
};
use tab_datagen::{generate_nref, NrefParams};
use tab_sqlq::parse;
use tab_storage::BuiltConfiguration;

fn bench_ablations(c: &mut Criterion) {
    let db = generate_nref(NrefParams {
        proteins: 1_000,
        seed: 4,
    });
    let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
    let workload: Vec<_> = (0..15)
        .map(|i| {
            parse(&format!(
                "SELECT t.lineage, COUNT(*) FROM taxonomy t, source s \
                 WHERE t.taxon_id = s.taxon_id AND s.p_id = {} GROUP BY t.lineage",
                i % 3
            ))
            .unwrap()
        })
        .collect();
    let cands = generate_candidates(&db, &workload, CandidateStyle::Covering);

    let mut run = |name: &str, opts: GreedyOptions| {
        let cands = cands.clone();
        let db = &db;
        let p = &p;
        let workload = &workload;
        c.bench_function(name, move |b| {
            b.iter(|| {
                black_box(
                    greedy_select(db, p, workload, cands.clone(), 64 << 20, "R", opts)
                        .indexes
                        .len(),
                )
            })
        });
    };

    run("greedy_uniform_whatif", GreedyOptions::default());
    run(
        "greedy_perfect_whatif",
        GreedyOptions {
            perfect_estimates: true,
            ..Default::default()
        },
    );
    run(
        "greedy_percentile_objective",
        GreedyOptions {
            objective: Objective::Percentile(0.9),
            ..Default::default()
        },
    );
}

fn configured() -> Criterion {
    // Keep full-workspace bench runs to minutes, not hours: these are
    // coarse-grained operations (whole queries, whole advisor searches),
    // so ten samples at ~3 s each is plenty to see regressions.
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group!(name = benches; config = configured(); targets = bench_ablations);
criterion_main!(benches);
