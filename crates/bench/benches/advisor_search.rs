//! Recommender search benchmarks: candidate generation and greedy
//! what-if selection.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use tab_advisor::{
    generate_candidates, greedy_select, p_configuration, CandidateStyle, GreedyOptions,
};
use tab_datagen::{generate_nref, NrefParams};
use tab_sqlq::parse;
use tab_storage::BuiltConfiguration;

fn bench_advisor(c: &mut Criterion) {
    let db = generate_nref(NrefParams {
        proteins: 1_000,
        seed: 2,
    });
    let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
    let workload: Vec<_> = (0..20)
        .map(|i| {
            parse(&format!(
                "SELECT t.lineage, COUNT(*) FROM taxonomy t, source s \
                 WHERE t.taxon_id = s.taxon_id AND s.p_id = {} GROUP BY t.lineage",
                i % 3
            ))
            .unwrap()
        })
        .collect();

    c.bench_function("candidate_generation_covering", |b| {
        b.iter(|| black_box(generate_candidates(&db, &workload, CandidateStyle::Covering).len()))
    });
    c.bench_function("greedy_whatif_selection", |b| {
        let cands = generate_candidates(&db, &workload, CandidateStyle::Covering);
        b.iter(|| {
            black_box(
                greedy_select(
                    &db,
                    &p,
                    &workload,
                    cands.clone(),
                    64 << 20,
                    "R",
                    GreedyOptions::default(),
                )
                .indexes
                .len(),
            )
        })
    });
}

fn configured() -> Criterion {
    // Keep full-workspace bench runs to minutes, not hours: these are
    // coarse-grained operations (whole queries, whole advisor searches),
    // so ten samples at ~3 s each is plenty to see regressions.
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group!(name = benches; config = configured(); targets = bench_advisor);
criterion_main!(benches);
