//! Recommender search benchmarks: candidate generation and greedy
//! what-if selection, sequential and with the 8-thread candidate
//! fan-out, plus a one-shot report of the what-if cache's planner-call
//! reduction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use tab_advisor::{
    generate_candidates, greedy_select, greedy_select_with_stats, p_configuration, CandidateStyle,
    GreedyOptions,
};
use tab_datagen::{generate_nref, NrefParams};
use tab_sqlq::parse;
use tab_storage::{BuiltConfiguration, Parallelism};

fn bench_advisor(c: &mut Criterion) {
    let db = generate_nref(NrefParams {
        proteins: 4_000,
        seed: 2,
    });
    let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
    // A mixed workload shaped like real tuning inputs: a join family
    // with a deep ladder of distinct index opportunities, plus broad
    // single-table report traffic that no new structure can improve
    // (its covering candidates duplicate the primary keys). The cost
    // cache lives off that split — every pick lands on the join
    // family's tables, so the report traffic's cache signatures never
    // change and its re-pricing never re-invokes the planner.
    let mut shapes: Vec<String> = Vec::new();
    // The pick ladder: NREF3J-style protein self-joins against source,
    // whose distinct filter and group-by column combinations yield many
    // distinct covering candidates, each with its own incremental gain.
    // Three relations per query keeps the per-plan work substantial, so
    // the candidate fan-out has something to parallelize.
    for (filter, group) in [
        ("p1.length = 120", "p1.p_name"),
        ("p1.length = 130", "p1.last_updated"),
        ("p1.last_updated = 30", "p1.p_name"),
        ("s.p_id = 0", "s.source"),
        ("s.p_id = 1", "s.accession"),
        ("s.taxon_id = 77", "s.source"),
        ("p1.length = 140", "s.accession"),
        ("s.p_id = 2", "p1.p_name"),
    ] {
        shapes.push(format!(
            "SELECT {group}, COUNT(*) FROM protein p1, protein p2, source s \
             WHERE p1.length = p2.length AND p1.nref_id = s.nref_id \
             AND {filter} GROUP BY {group}"
        ));
        shapes.push(format!(
            "SELECT {group}, COUNT(*) FROM protein p1, protein p2, source s \
             WHERE p1.last_updated = p2.last_updated AND p1.nref_id = s.nref_id \
             AND {filter} GROUP BY {group}"
        ));
    }
    // The report traffic: primary-key lookups on the other four tables.
    // Their covering candidates equal the existing primary-key indexes,
    // so they are never picked — but the search still re-prices every
    // (candidate, query) pair each round.
    for i in 0..192 {
        shapes.push(format!(
            "SELECT t.taxon_id, COUNT(*) FROM taxonomy t \
             WHERE t.nref_id = {} GROUP BY t.taxon_id",
            i * 41
        ));
        shapes.push(format!(
            "SELECT n.ordinal, COUNT(*) FROM neighboring_seq n \
             WHERE n.nref_id_1 = {} GROUP BY n.ordinal",
            i * 37
        ));
        shapes.push(format!(
            "SELECT o.ordinal, COUNT(*) FROM organism o \
             WHERE o.nref_id = {} GROUP BY o.ordinal",
            i * 31
        ));
        shapes.push(format!(
            "SELECT i.ordinal, COUNT(*) FROM identical_seq i \
             WHERE i.nref_id_1 = {} GROUP BY i.ordinal",
            i * 29
        ));
    }
    let workload: Vec<_> = shapes.iter().map(|q| parse(q).unwrap()).collect();
    let cands = generate_candidates(&db, &workload, CandidateStyle::Covering);

    // One-shot report: planner invocations with the what-if cost cache
    // off vs on (uncached, every what-if call plans). The selected
    // configuration must be identical either way.
    {
        let run = |opts: GreedyOptions| {
            greedy_select_with_stats(&db, &p, &workload, cands.clone(), 512 << 20, "R", opts)
        };
        let (cfg_off, off) = run(GreedyOptions {
            cache: false,
            ..GreedyOptions::default()
        });
        let (cfg_on, on) = run(GreedyOptions::default());
        assert_eq!(cfg_off, cfg_on, "cache must not change the recommendation");
        assert_eq!(off.whatif_calls, on.whatif_calls);
        eprintln!(
            "[advisor_search] {} what-if calls: {} planner invocations uncached \
             vs {} cached ({:.1}x fewer, {:.0}% hit rate); {} cores available \
             (the 8-thread fan-out only beats sequential wall-clock on multi-core hosts)",
            on.whatif_calls,
            off.planner_calls,
            on.planner_calls,
            off.planner_calls as f64 / on.planner_calls.max(1) as f64,
            on.cache_hit_rate() * 100.0,
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        );
    }

    c.bench_function("candidate_generation_covering", |b| {
        b.iter(|| black_box(generate_candidates(&db, &workload, CandidateStyle::Covering).len()))
    });
    c.bench_function("greedy_whatif_selection", |b| {
        b.iter(|| {
            black_box(
                greedy_select(
                    &db,
                    &p,
                    &workload,
                    cands.clone(),
                    512 << 20,
                    "R",
                    GreedyOptions::default(),
                )
                .indexes
                .len(),
            )
        })
    });
    c.bench_function("greedy_whatif_selection_8threads", |b| {
        b.iter(|| {
            black_box(
                greedy_select(
                    &db,
                    &p,
                    &workload,
                    cands.clone(),
                    512 << 20,
                    "R",
                    GreedyOptions {
                        par: Parallelism::new(8),
                        ..GreedyOptions::default()
                    },
                )
                .indexes
                .len(),
            )
        })
    });
}

fn configured() -> Criterion {
    // Keep full-workspace bench runs to minutes, not hours: these are
    // coarse-grained operations (whole queries, whole advisor searches),
    // so ten samples at ~3 s each is plenty to see regressions.
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group!(name = benches; config = configured(); targets = bench_advisor);
criterion_main!(benches);
