//! # tab-bench-harness
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper (see `DESIGN.md` §4 for the experiment index). The heavy
//! lifting lives in [`repro`]; the `repro` binary is a thin CLI over it,
//! and the Criterion benches reuse the same helpers.

#![warn(missing_docs)]

pub mod chaos;
pub mod converge;
pub mod replay;
pub mod repro;
pub mod serve_bench;
pub mod trace_summary;
