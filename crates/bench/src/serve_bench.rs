//! The serving throughput benchmark behind `tab bench serve`.
//!
//! Boots an in-process [`tab_server::Server`] over a [`SharedEngine`]
//! serving the paper's `P` and `1C` configurations, then drives it with
//! a deterministic load generator in one of two shapes:
//!
//! - **closed loop** — `N` persistent clients, each sending its next
//!   request the moment the previous response lands (the classic
//!   think-time-zero closed system);
//! - **open loop** — requests arrive on a fixed schedule regardless of
//!   completions, each on its own connection (an arrival process, so
//!   response time does not throttle offered load).
//!
//! Determinism contract (`tab-serve-bench-v1`): request `i` always runs
//! workload query `i mod W` under configuration `p`/`1c` by parity, on
//! client `i mod N`. Because the benchmark issues no writes, every
//! request executes against generation 0 and its verdict and cost units
//! are a pure function of the request index — independent of
//! interleaving, client count, and loop shape. The benchmark *proves*
//! that per run: every wire result is compared against a direct
//! [`Session`] execution of the same query, requiring the verdict to
//! match and the cost units to be **bit-identical** after their trip
//! through the wire's shortest-roundtrip float formatting. Only
//! `wall_seconds` and `qps` vary run to run, and they live on dedicated
//! JSON lines so byte-compares can drop them (DESIGN.md §14).

use std::sync::Arc;
use std::time::{Duration, Instant};

use tab_core::{build_1c, build_p, Parallelism};
use tab_engine::{EngineState, Outcome, Session, SharedEngine};
use tab_families::{sample_preserving_par, Family};
use tab_server::{Client, ServeOptions, Server};
use tab_sqlq::Query;
use tab_storage::Database;

/// How the load generator paces requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// `N` persistent connections, zero think time.
    Closed,
    /// Fixed arrival schedule, one connection per request.
    Open {
        /// Gap between consecutive request launches.
        interarrival: Duration,
    },
}

impl LoadMode {
    /// The mode's name as it appears in reports.
    pub fn name(&self) -> &'static str {
        match self {
            LoadMode::Closed => "closed",
            LoadMode::Open { .. } => "open",
        }
    }
}

/// Load-generator knobs. `Default` is the small CI shape: 4 clients,
/// 32 requests over a 16-query workload, closed loop.
#[derive(Debug, Clone)]
pub struct ServeBenchOptions {
    /// Number of concurrent clients (closed loop) or dispatcher lanes
    /// (open loop).
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Workload sample size; requests cycle through it.
    pub workload: usize,
    /// Loop shape.
    pub mode: LoadMode,
    /// Per-query budget in cost units.
    pub timeout_units: f64,
    /// Thread budget for family enumeration and sampling.
    pub par: Parallelism,
    /// Armed fault plan handed to the in-process server's wire sites
    /// (`delay:conn` perturbs timing without harming the result proof;
    /// `drop:conn`/`torn:wire` will fail requests by design — the
    /// chaos harness, not this benchmark, is where retries absorb
    /// those). `None` (the default) is the byte-identical PR 9 path.
    pub faults: Option<Arc<tab_storage::FaultPlan>>,
}

impl Default for ServeBenchOptions {
    fn default() -> Self {
        ServeBenchOptions {
            clients: 4,
            requests: 32,
            workload: 16,
            mode: LoadMode::Closed,
            timeout_units: tab_engine::DEFAULT_TIMEOUT_UNITS,
            par: Parallelism::new(0),
            faults: None,
        }
    }
}

/// One request's result as observed over the wire (and re-proved
/// against a direct session).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Workload query index this request ran (`i mod W`).
    pub query: usize,
    /// Configuration it ran under (`p` or `1c`, by request parity).
    pub config: &'static str,
    /// Client lane that carried it (`i mod N`).
    pub client: usize,
    /// `done` or `timeout`.
    pub verdict: &'static str,
    /// Cost units (actual when done, the budget lower bound on
    /// timeout), parsed back from the wire bit-identically.
    pub units: f64,
}

/// Everything `tab bench serve` reports: per-request outcomes in
/// request order plus the run's wall-clock.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Database label (e.g. `NREF`).
    pub db: String,
    /// Workload family name.
    pub family: &'static str,
    /// Loop shape name (`closed` / `open`).
    pub mode: &'static str,
    /// Client count the load ran with.
    pub clients: usize,
    /// Workload sample size.
    pub workload: usize,
    /// Per-query budget in cost units.
    pub timeout_units: f64,
    /// Outcomes indexed by request number.
    pub outcomes: Vec<RequestOutcome>,
    /// How many wire results matched the direct-session baseline
    /// exactly (always `outcomes.len()` — a mismatch fails the run).
    pub baseline_matches: usize,
    /// Wall-clock of the load phase (excluded from byte-compares).
    pub wall_seconds: f64,
}

/// The per-request claim a wire result must reproduce exactly.
fn direct_outcome(session: &Session<'_>, q: &Query, timeout_units: f64) -> (&'static str, f64) {
    let r = session
        .run(q, Some(timeout_units))
        .expect("workload query binds");
    match r.outcome {
        Outcome::Done { units, .. } => ("done", units),
        Outcome::Timeout { budget } => ("timeout", budget),
    }
}

/// Extract (verdict, units) from a wire response. Shared with the
/// chaos harness, whose post-recovery read-back uses the same claim.
pub(crate) fn wire_outcome(r: &tab_server::Response) -> Result<(&'static str, f64), String> {
    if !r.is_ok() {
        return Err(r.error().unwrap_or_else(|| "unlabelled error".into()));
    }
    match r.str_field("verdict").as_deref() {
        Some("done") => Ok((
            "done",
            r.num_field("units")
                .ok_or_else(|| format!("done response without units: {}", r.line()))?,
        )),
        Some("timeout") => Ok((
            "timeout",
            r.num_field("budget_units")
                .ok_or_else(|| format!("timeout response without budget: {}", r.line()))?,
        )),
        other => Err(format!("unexpected verdict {other:?}: {}", r.line())),
    }
}

/// Run the serving benchmark: build the engine, boot a server on a
/// loopback port, drive it with the configured load, and verify every
/// wire result against a direct [`Session`] run of the same query.
///
/// The returned report is deterministic apart from `wall_seconds`; any
/// wire/direct divergence (verdict or non-bit-identical units) is an
/// `Err`, not a quietly different report.
pub fn run_serve_bench(
    db: &Database,
    label: &str,
    family: Family,
    opts: &ServeBenchOptions,
) -> Result<ServeBenchReport, String> {
    if opts.clients == 0 || opts.requests == 0 {
        return Err("serve bench needs at least one client and one request".into());
    }
    let p = build_p(db, label);
    let c1 = build_1c(db, label);
    let all = family.enumerate_with(db, opts.par);
    if all.is_empty() {
        return Err(format!(
            "family {} is empty on this database",
            family.name()
        ));
    }
    let estimator = Session::new(db, &p);
    let workload = sample_preserving_par(
        &all,
        |q| estimator.estimate(q).unwrap_or(f64::INFINITY),
        opts.workload,
        2005,
        opts.par,
    );

    // The request plan: everything about request i is a function of i.
    let sql: Vec<String> = workload.iter().map(Query::to_string).collect();
    let plan: Vec<(usize, &'static str)> = (0..opts.requests)
        .map(|i| (i % sql.len(), if i % 2 == 0 { "p" } else { "1c" }))
        .collect();

    let engine = Arc::new(SharedEngine::new(
        EngineState::new(db.clone())
            .with_config("p", p.clone())
            .with_config("1c", c1.clone()),
    ));
    let mut server = Server::start(
        Arc::clone(&engine),
        ServeOptions {
            label: label.to_string(),
            timeout_units: opts.timeout_units,
            faults: opts.faults.clone(),
            ..ServeOptions::default()
        },
    )
    .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = server.addr();

    let t0 = Instant::now();
    let wire = drive(addr, &sql, &plan, opts)?;
    let wall_seconds = t0.elapsed().as_secs_f64();
    server.shutdown();

    // Re-prove every wire result against a direct session: same query,
    // same configuration, same budget, bit-identical units.
    let mut outcomes = Vec::with_capacity(opts.requests);
    let mut baseline_matches = 0;
    for (i, ((qi, config), (verdict, units))) in plan.iter().zip(&wire).enumerate() {
        let built = if *config == "p" { &p } else { &c1 };
        let session = Session::new(db, built);
        let (want_verdict, want_units) =
            direct_outcome(&session, &workload[*qi], opts.timeout_units);
        if *verdict != want_verdict || units.to_bits() != want_units.to_bits() {
            return Err(format!(
                "request {i} diverged from direct session: wire ({verdict}, {units}) \
                 vs direct ({want_verdict}, {want_units})"
            ));
        }
        baseline_matches += 1;
        outcomes.push(RequestOutcome {
            query: *qi,
            config,
            client: i % opts.clients,
            verdict,
            units: *units,
        });
    }

    Ok(ServeBenchReport {
        db: label.to_string(),
        family: family.name(),
        mode: opts.mode.name(),
        clients: opts.clients,
        workload: sql.len(),
        timeout_units: opts.timeout_units,
        outcomes,
        baseline_matches,
        wall_seconds,
    })
}

/// A per-request result slot, filled by whichever thread carried it.
type ResultSlot = std::sync::Mutex<Option<Result<(&'static str, f64), String>>>;

/// Issue every planned request and collect `(verdict, units)` per
/// request index, in the configured loop shape.
fn drive(
    addr: std::net::SocketAddr,
    sql: &[String],
    plan: &[(usize, &'static str)],
    opts: &ServeBenchOptions,
) -> Result<Vec<(&'static str, f64)>, String> {
    let results: Vec<ResultSlot> = (0..plan.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    std::thread::scope(|scope| {
        match opts.mode {
            LoadMode::Closed => {
                // N persistent clients; client c owns requests c, c+N, …
                for c in 0..opts.clients {
                    let results = &results;
                    scope.spawn(move || {
                        let mut client = match Client::connect(addr) {
                            Ok(cl) => cl,
                            Err(e) => {
                                for i in (c..plan.len()).step_by(opts.clients) {
                                    *results[i].lock().unwrap() =
                                        Some(Err(format!("client {c}: connect: {e}")));
                                }
                                return;
                            }
                        };
                        for i in (c..plan.len()).step_by(opts.clients) {
                            let (qi, config) = plan[i];
                            let out = client
                                .query(config, &sql[qi])
                                .and_then(|r| wire_outcome(&r));
                            *results[i].lock().unwrap() = Some(out);
                        }
                        let _ = client.quit();
                    });
                }
            }
            LoadMode::Open { interarrival } => {
                // Fixed arrival schedule; connection per request, so a
                // slow response never delays the next arrival.
                let t0 = Instant::now();
                for (i, &(qi, config)) in plan.iter().enumerate() {
                    let results = &results;
                    let sql = &sql[qi];
                    scope.spawn(move || {
                        let due = interarrival * i as u32;
                        if let Some(wait) = due.checked_sub(t0.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let out = Client::connect(addr)
                            .map_err(|e| format!("request {i}: connect: {e}"))
                            .and_then(|mut cl| {
                                let r = cl.query(config, sql).and_then(|r| wire_outcome(&r));
                                let _ = cl.quit();
                                r
                            });
                        *results[i].lock().unwrap() = Some(out);
                    });
                }
            }
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap()
                .unwrap_or_else(|| Err(format!("request {i} was never issued")))
        })
        .collect()
}

impl ServeBenchReport {
    /// Requests per second over the load phase.
    pub fn qps(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.outcomes.len() as f64 / self.wall_seconds
        } else {
            f64::INFINITY
        }
    }

    /// Count of `done` verdicts.
    pub fn done(&self) -> usize {
        self.outcomes.iter().filter(|o| o.verdict == "done").count()
    }

    /// Count of `timeout` verdicts.
    pub fn timeouts(&self) -> usize {
        self.outcomes.len() - self.done()
    }

    /// The `tab-serve-bench-v1` JSON document (`BENCH_serve.json`).
    ///
    /// Deterministic for a fixed database, family, and load shape —
    /// except the final `"wall_seconds"` and `"qps"` lines, which live
    /// alone on their lines precisely so a byte-compare can drop them
    /// (`grep -v wall_seconds | grep -v qps`, the contract DESIGN.md
    /// §14 documents and `tests/serving.rs` enforces).
    pub fn json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"tab-serve-bench-v1\",\n");
        s.push_str(&format!("  \"db\": \"{}\",\n", self.db));
        s.push_str(&format!("  \"family\": \"{}\",\n", self.family));
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str(&format!("  \"clients\": {},\n", self.clients));
        s.push_str(&format!("  \"requests\": {},\n", self.outcomes.len()));
        s.push_str(&format!("  \"workload\": {},\n", self.workload));
        s.push_str(&format!("  \"timeout_units\": {},\n", self.timeout_units));
        s.push_str(&format!(
            "  \"baseline_matches\": {},\n",
            self.baseline_matches
        ));
        s.push_str(&format!(
            "  \"verdicts\": {{\"done\": {}, \"timeout\": {}}},\n",
            self.done(),
            self.timeouts()
        ));
        s.push_str("  \"per_client\": [\n");
        for c in 0..self.clients {
            let mine: Vec<&RequestOutcome> =
                self.outcomes.iter().filter(|o| o.client == c).collect();
            let done = mine.iter().filter(|o| o.verdict == "done").count();
            let units: f64 = mine.iter().map(|o| o.units).sum();
            s.push_str(&format!(
                "    {{\"client\": {c}, \"requests\": {}, \"done\": {done}, \
                 \"timeout\": {}, \"units\": {units}}}{}\n",
                mine.len(),
                mine.len() - done,
                if c + 1 == self.clients { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        let total: f64 = self.outcomes.iter().map(|o| o.units).sum();
        s.push_str(&format!("  \"total_units\": {total},\n"));
        s.push_str(&format!("  \"wall_seconds\": {:.3},\n", self.wall_seconds));
        s.push_str(&format!("  \"qps\": {:.1}\n", self.qps()));
        s.push_str("}\n");
        s
    }

    /// Per-request claims as CSV rows (`query,config,verdict,units`),
    /// in request order. Free of client, mode, and wall-clock columns,
    /// so the same database and load plan produce a byte-identical
    /// file at *any* client count and in *either* loop shape — one
    /// committed baseline (`ci/expected_serve_small.csv`) gates all of
    /// them.
    pub fn requests_csv(&self) -> String {
        let mut s = String::from("query,config,verdict,units\n");
        for o in &self.outcomes {
            s.push_str(&format!(
                "{},{},{},{}\n",
                o.query, o.config, o.verdict, o.units
            ));
        }
        s
    }

    /// One human-readable summary table (printed by the CLI and into
    /// the CI step summary).
    pub fn render_table(&self) -> String {
        format!(
            "{:>8} {:>7} {:>9} {:>6} {:>8} {:>8} {:>8}\n\
             {:>8} {:>7} {:>9} {:>6} {:>8} {:>8.2} {:>8.1}\n",
            "clients",
            "mode",
            "requests",
            "done",
            "timeout",
            "wall_s",
            "qps",
            self.clients,
            self.mode,
            self.outcomes.len(),
            self.done(),
            self.timeouts(),
            self.wall_seconds,
            self.qps()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_datagen::{generate_nref, NrefParams};

    fn small_db() -> Database {
        generate_nref(NrefParams {
            proteins: 300,
            seed: 2005,
        })
    }

    #[test]
    fn closed_loop_report_is_deterministic_and_client_count_free() {
        let db = small_db();
        let opts = ServeBenchOptions {
            clients: 1,
            requests: 8,
            workload: 4,
            ..ServeBenchOptions::default()
        };
        let one = run_serve_bench(&db, "NREF", Family::Nref2J, &opts).expect("bench runs");
        let four = run_serve_bench(
            &db,
            "NREF",
            Family::Nref2J,
            &ServeBenchOptions { clients: 4, ..opts },
        )
        .expect("bench runs");
        assert_eq!(one.baseline_matches, 8);
        assert_eq!(four.baseline_matches, 8);
        // The per-request CSV ignores the client dimension entirely.
        assert_eq!(one.requests_csv(), four.requests_csv());
        // The JSON is byte-identical minus the wall-clock lines and the
        // client grouping.
        let strip = |r: &ServeBenchReport| {
            r.json()
                .lines()
                .filter(|l| {
                    !l.contains("wall_seconds") && !l.contains("qps") && !l.contains("client")
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&one), strip(&four));
    }

    #[test]
    fn open_loop_matches_closed_loop_claims() {
        let db = small_db();
        let base = ServeBenchOptions {
            clients: 2,
            requests: 6,
            workload: 3,
            ..ServeBenchOptions::default()
        };
        let closed = run_serve_bench(&db, "NREF", Family::Nref2J, &base).expect("closed runs");
        let open = run_serve_bench(
            &db,
            "NREF",
            Family::Nref2J,
            &ServeBenchOptions {
                mode: LoadMode::Open {
                    interarrival: Duration::from_millis(1),
                },
                ..base
            },
        )
        .expect("open runs");
        assert_eq!(closed.requests_csv(), open.requests_csv());
        assert_eq!(open.mode, "open");
    }
}
