//! The recommender convergence harness (`tab converge`).
//!
//! A [`ConvergenceSpec`] declares recommender profiles × a what-if
//! budget ladder × an iteration cap — the shape of Baybe's
//! `RecommenderConvergenceAnalysis`, transplanted to configuration
//! advisors: instead of comparing profiles only by their final
//! recommendation, [`run_convergence`] re-runs each profile's greedy
//! search under successively larger what-if budgets and keeps the whole
//! objective trajectory. The result is a set of
//! [`ConvergenceCurve`]s — objective vs. accepted round and vs.
//! cumulative planner budget — rendered to `convergence.csv` and
//! `BENCH_convergence.json` by `tab-core`'s convergence module.
//!
//! Budgeted searches are *prefixes* of the unbudgeted search (the
//! budget gates round entry on deterministic counters), so the curves
//! are byte-identical at any thread count and CI can diff them across
//! commits.

use tab_advisor::{AdvisorInput, Recommender, SearchLimits, SystemA, SystemB, SystemC};
use tab_core::convergence::ConvergenceCurve;
use tab_sqlq::Query;
use tab_storage::{BuiltConfiguration, Database, Parallelism, Trace};

/// What to sweep: profiles × what-if budget rungs, each search capped
/// at `max_structures` rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceSpec {
    /// Profile names to drive (`A`, `B`, `C`).
    pub profiles: Vec<String>,
    /// What-if budget rungs; `None` is the unbudgeted reference curve.
    pub budget_ladder: Vec<Option<u64>>,
    /// Optional cap on accepted structures per search (`None` keeps
    /// each profile's default stopping rules).
    pub max_structures: Option<usize>,
}

impl Default for ConvergenceSpec {
    /// Profiles A/B/C over a geometric what-if ladder plus the
    /// unbudgeted reference.
    fn default() -> Self {
        ConvergenceSpec {
            profiles: vec!["A".into(), "B".into(), "C".into()],
            budget_ladder: vec![Some(50), Some(200), Some(800), None],
            max_structures: None,
        }
    }
}

/// Look up a recommender profile by name.
pub fn profile(name: &str) -> Option<Box<dyn Recommender>> {
    match name {
        "A" => Some(Box::new(SystemA::default())),
        "B" => Some(Box::new(SystemB)),
        "C" => Some(Box::new(SystemC)),
        _ => None,
    }
}

/// Drive every (profile, budget rung) pair of `spec` over one workload,
/// returning the curves in spec order (profiles outer, ladder inner).
/// Fails on an unknown profile name. Tracing is passed through to the
/// greedy searches and remains observational only.
#[allow(clippy::too_many_arguments)]
pub fn run_convergence(
    db: &Database,
    current: &BuiltConfiguration,
    family: &str,
    workload: &[Query],
    budget_bytes: u64,
    par: Parallelism,
    trace: Trace<'_>,
    spec: &ConvergenceSpec,
) -> Result<Vec<ConvergenceCurve>, String> {
    let mut curves = Vec::with_capacity(spec.profiles.len() * spec.budget_ladder.len());
    for name in &spec.profiles {
        let rec = profile(name).ok_or_else(|| format!("unknown profile {name:?} (try A, B, C)"))?;
        for &rung in &spec.budget_ladder {
            let input = AdvisorInput {
                db,
                current,
                workload,
                budget_bytes,
                par,
                trace,
            };
            let limits = SearchLimits {
                max_structures: spec.max_structures,
                max_whatif_calls: rung,
            };
            let (cfg, stats) = rec.recommend_budgeted(&input, limits);
            curves.push(match cfg {
                Some(_) => ConvergenceCurve::from_stats(name, family, rung, &stats),
                None => ConvergenceCurve::gave_up(name, family, rung),
            });
        }
    }
    Ok(curves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_advisor::p_configuration;
    use tab_sqlq::parse;
    use tab_storage::{ColType, ColumnDef, Table, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColType::Int),
                    ColumnDef::new("a", ColType::Int),
                    ColumnDef::new("g", ColType::Int),
                ],
            )
            .primary_key(&["id"]),
        );
        for i in 0..20_000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 2000), Value::Int(i % 5)]);
        }
        db.add_table(t);
        db.collect_stats();
        db
    }

    fn workload() -> Vec<Query> {
        (0..5)
            .map(|i| {
                parse(&format!(
                    "SELECT t.g, COUNT(*) FROM t WHERE t.a = {i} GROUP BY t.g"
                ))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn sweeps_profiles_by_ladder_and_is_thread_count_invariant() {
        let db = db();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let w = workload();
        let spec = ConvergenceSpec {
            profiles: vec!["A".into(), "B".into(), "C".into()],
            budget_ladder: vec![Some(10), None],
            max_structures: Some(4),
        };
        let run = |threads| {
            run_convergence(
                &db,
                &p,
                "T",
                &w,
                50 * 1024 * 1024,
                Parallelism::new(threads),
                Trace::disabled(),
                &spec,
            )
            .expect("profiles are valid")
        };
        let c1 = run(1);
        assert_eq!(c1.len(), 6, "3 profiles x 2 rungs");
        // The budgeted curve is a prefix of the unbudgeted one.
        for pair in c1.chunks(2) {
            assert!(pair[0].points.len() <= pair[1].points.len());
            for (a, b) in pair[0].points.iter().zip(&pair[1].points) {
                assert_eq!(a.candidate, b.candidate);
            }
        }
        // Unbudgeted curves converge somewhere: B picks something here.
        let b_full = &c1[3];
        assert_eq!(b_full.profile, "B");
        assert!(b_full.whatif_budget.is_none());
        assert!(!b_full.points.is_empty());
        assert!(b_full.final_objective() < b_full.initial_objective);

        // Byte-identical artifacts at 1 vs 8 threads.
        let c8 = run(8);
        assert_eq!(c1, c8);
        assert_eq!(
            tab_core::convergence_json(&c1),
            tab_core::convergence_json(&c8)
        );
    }

    #[test]
    fn unknown_profile_is_an_error() {
        let db = db();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let err = run_convergence(
            &db,
            &p,
            "T",
            &workload(),
            1024,
            Parallelism::sequential(),
            Trace::disabled(),
            &ConvergenceSpec {
                profiles: vec!["Z".into()],
                ..ConvergenceSpec::default()
            },
        )
        .expect_err("Z is not a profile");
        assert!(err.contains("Z"), "{err}");
    }
}
