//! Quality ablations: how much of the recommenders' failure is
//! estimation error, and what a CFC-goal objective would buy.
//!
//! Runs System-B-style recommendations on the NREF3J workload under
//! three variants and compares *actual* workload costs against `P` and
//! `1C`:
//!
//! 1. baseline: uniform what-if estimates, total-cost objective;
//! 2. `observe`: perfect distribution statistics for hypothetical
//!    structures (the paper's proposed observe step);
//! 3. `p90`: percentile objective (the paper's CFC-style goal).
//!
//! ```sh
//! cargo run --release -p tab-bench-harness --bin ablation
//! ```

use tab_advisor::{generate_candidates, greedy_select, CandidateStyle, GreedyOptions, Objective};
use tab_core::{
    build_1c, build_p, prepare_workload, run_workload, space_budget, Suite, SuiteParams,
};
use tab_families::Family;
use tab_storage::BuiltConfiguration;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let params = if small {
        SuiteParams::small()
    } else {
        SuiteParams::default()
    };
    let suite = Suite::build(params);
    let db = &suite.nref;
    let p = build_p(db, "NREF");
    let c1 = build_1c(db, "NREF");
    let budget = space_budget(db, "NREF");
    let w = prepare_workload(&suite, Family::Nref3J, &p);
    let cands = generate_candidates(db, &w, CandidateStyle::Covering);

    let run_p = run_workload(db, &p, &w, params.timeout_units);
    let run_1c = run_workload(db, &c1, &w, params.timeout_units);
    println!(
        "{:<22} total_lb(s) {:>9.0}  timeouts {:>3}",
        "P",
        run_p.total_lower_bound_sim_seconds(),
        run_p.timeout_count()
    );
    println!(
        "{:<22} total_lb(s) {:>9.0}  timeouts {:>3}",
        "1C",
        run_1c.total_lower_bound_sim_seconds(),
        run_1c.timeout_count()
    );

    let variants: [(&str, GreedyOptions); 3] = [
        ("R (baseline)", GreedyOptions::default()),
        (
            "R (observe/perfect)",
            GreedyOptions {
                perfect_estimates: true,
                ..Default::default()
            },
        ),
        (
            "R (p90 objective)",
            GreedyOptions {
                objective: Objective::Percentile(0.9),
                ..Default::default()
            },
        ),
    ];
    for (name, opts) in variants {
        let cfg = greedy_select(db, &p, &w, cands.clone(), budget, name, opts);
        let n_idx = cfg.indexes.len();
        let built = BuiltConfiguration::build(cfg, db);
        let run = run_workload(db, &built, &w, params.timeout_units);
        println!(
            "{:<22} total_lb(s) {:>9.0}  timeouts {:>3}  indexes {:>2}",
            name,
            run.total_lower_bound_sim_seconds(),
            run.timeout_count(),
            n_idx
        );
    }
}
