//! Quality ablations: how much of the recommenders' failure is
//! estimation error, and what a CFC-goal objective would buy.
//!
//! Runs System-B-style recommendations on the NREF3J workload under
//! three variants and compares *actual* workload costs against `P` and
//! `1C`:
//!
//! 1. baseline: uniform what-if estimates, total-cost objective;
//! 2. `observe`: perfect distribution statistics for hypothetical
//!    structures (the paper's proposed observe step);
//! 3. `p90`: percentile objective (the paper's CFC-style goal).
//!
//! ```sh
//! cargo run --release -p tab-bench-harness --bin ablation
//! ```

use tab_advisor::{
    generate_candidates, greedy_select_with_stats, CandidateStyle, GreedyOptions, Objective,
};
use tab_core::{
    build_1c, build_p, prepare_workload, run_workload, space_budget, Suite, SuiteParams,
};
use tab_families::Family;
use tab_storage::BuiltConfiguration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    // `--threads N` sets the advisor fan-out width (0 = all cores); the
    // recommendations are identical at any setting.
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a number"))
        .unwrap_or(0usize);
    let params = if small {
        SuiteParams::small()
    } else {
        SuiteParams::default()
    }
    .with_threads(threads);
    let suite = Suite::build(params);
    let db = &suite.nref;
    let p = build_p(db, "NREF");
    let c1 = build_1c(db, "NREF");
    let budget = space_budget(db, "NREF");
    let w = prepare_workload(&suite, Family::Nref3J, &p);
    let cands = generate_candidates(db, &w, CandidateStyle::Covering);

    let run_p = run_workload(db, &p, &w, params.timeout_units);
    let run_1c = run_workload(db, &c1, &w, params.timeout_units);
    println!(
        "{:<22} total_lb(s) {:>9.0}  timeouts {:>3}",
        "P",
        run_p.total_lower_bound_sim_seconds(),
        run_p.timeout_count()
    );
    println!(
        "{:<22} total_lb(s) {:>9.0}  timeouts {:>3}",
        "1C",
        run_1c.total_lower_bound_sim_seconds(),
        run_1c.timeout_count()
    );

    let base = GreedyOptions {
        par: params.par,
        ..GreedyOptions::default()
    };
    let variants: [(&str, GreedyOptions); 3] = [
        ("R (baseline)", base),
        (
            "R (observe/perfect)",
            GreedyOptions {
                perfect_estimates: true,
                ..base
            },
        ),
        (
            "R (p90 objective)",
            GreedyOptions {
                objective: Objective::Percentile(0.9),
                ..base
            },
        ),
    ];
    for (name, opts) in variants {
        let (cfg, stats) = greedy_select_with_stats(db, &p, &w, cands.clone(), budget, name, opts);
        let n_idx = cfg.indexes.len();
        let built = BuiltConfiguration::build(cfg, db);
        let run = run_workload(db, &built, &w, params.timeout_units);
        println!(
            "{:<22} total_lb(s) {:>9.0}  timeouts {:>3}  indexes {:>2}               whatif {:>6} (planner {:>6}, {:>3.0}% cached, {:.2}s)",
            name,
            run.total_lower_bound_sim_seconds(),
            run.timeout_count(),
            n_idx,
            stats.whatif_calls,
            stats.planner_calls,
            stats.cache_hit_rate() * 100.0,
            stats.wall_seconds
        );
    }
}
