//! Quick end-to-end pilot: validates the headline dynamics (1C vs P vs R)
//! on one family before the full reproduction runs.

use std::time::Instant;

use tab_advisor::{AdvisorInput, Recommender, SystemA, SystemB};
use tab_core::{
    build_1c, build_p, prepare_workload, run_workload, space_budget, FileTraceSink, Suite,
    SuiteParams, Trace,
};
use tab_families::Family;
use tab_storage::BuiltConfiguration;

fn main() {
    let t0 = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    // `--threads N` sets the advisor fan-out width (0 = all cores); the
    // recommendations are identical at any setting.
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a number"))
        .unwrap_or(0usize);
    // `--trace FILE` captures advisor round events as tab-trace-v1 JSONL.
    let sink = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(|path| {
            FileTraceSink::create(std::path::Path::new(path))
                .unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"))
        });
    let trace = sink
        .as_ref()
        .map(|s| Trace::to(s))
        .unwrap_or_else(Trace::disabled);
    // The sink stages at `<path>.tmp`; publishing (rename to the final
    // path) only happens here, after a complete run.
    let publish = |sink: Option<FileTraceSink>| {
        if let Some(s) = sink {
            match s.finish() {
                Ok(path) => eprintln!("trace published to {}", path.display()),
                Err(e) => {
                    eprintln!("trace sink failed: {e}");
                    std::process::exit(2);
                }
            }
        }
    };
    let params = SuiteParams::default().with_threads(threads);
    let tpch = args.iter().any(|a| a == "tpch");
    let suite = Suite::build(params);
    eprintln!("[{:?}] suite built", t0.elapsed());
    if tpch {
        tpch_pilot(&suite, params, t0, trace);
        publish(sink);
        return;
    }
    for t in suite.nref.tables() {
        eprintln!(
            "  nref.{}: {} rows {} pages",
            t.schema().name,
            t.n_rows(),
            t.n_pages()
        );
    }

    let db = &suite.nref;
    let p = build_p(db, "NREF");
    eprintln!(
        "[{:?}] P built (aux {} MiB)",
        t0.elapsed(),
        p.report.aux_bytes() / 1048576
    );
    let c1 = build_1c(db, "NREF");
    eprintln!(
        "[{:?}] 1C built (aux {} MiB)",
        t0.elapsed(),
        c1.report.aux_bytes() / 1048576
    );
    let budget = space_budget(db, "NREF");
    eprintln!("budget = {} MiB", budget / 1048576);

    for fam in [Family::Nref2J, Family::Nref3J] {
        let all = fam.enumerate(db);
        eprintln!(
            "[{:?}] {} family size = {}",
            t0.elapsed(),
            fam.name(),
            all.len()
        );
        let w = prepare_workload(&suite, fam, &p);
        eprintln!("[{:?}] workload sampled: {}", t0.elapsed(), w.len());

        let run_p = run_workload(db, &p, &w, params.timeout_units);
        eprintln!(
            "[{:?}] P run: timeouts {}, total_lb {:.0}s",
            t0.elapsed(),
            run_p.timeout_count(),
            run_p.total_lower_bound_sim_seconds()
        );
        let run_1c = run_workload(db, &c1, &w, params.timeout_units);
        eprintln!(
            "[{:?}] 1C run: timeouts {}, total_lb {:.0}s",
            t0.elapsed(),
            run_1c.timeout_count(),
            run_1c.total_lower_bound_sim_seconds()
        );

        // quantiles
        let cp = run_p.cfc();
        let c1c = run_1c.cfc();
        for x in [1.0, 10.0, 31.6, 100.0, 1000.0] {
            eprintln!("  CFC({x:7.1}s): P={:.2} 1C={:.2}", cp.at(x), c1c.at(x));
        }

        // System A and B candidate counts + recommendation
        for (name, rec) in [
            ("A", &SystemA::default() as &dyn Recommender),
            ("B", &SystemB),
        ] {
            let cands = tab_advisor::generate_candidates(
                db,
                &w,
                match name {
                    "A" => tab_advisor::CandidateStyle::SingleColumn,
                    _ => tab_advisor::CandidateStyle::Covering,
                },
            );
            eprintln!(
                "[{:?}] system {name} candidates = {} (x workload = {})",
                t0.elapsed(),
                cands.len(),
                cands.len() * w.len()
            );
            let input = AdvisorInput {
                db,
                current: &p,
                workload: &w,
                budget_bytes: budget,
                par: params.par,
                trace,
            };
            let (cfg, stats) = rec.recommend_with_stats(&input);
            eprintln!(
                "  {name}: what-if calls {} (planner {}, cache hits {}, {:.0}% hit rate), {:.2}s",
                stats.whatif_calls,
                stats.planner_calls,
                stats.cache_hits,
                stats.cache_hit_rate() * 100.0,
                stats.wall_seconds
            );
            match cfg {
                None => eprintln!("  {name}: NO RECOMMENDATION"),
                Some(cfg) => {
                    eprintln!(
                        "  {name}: {} indexes {:?}",
                        cfg.indexes.len(),
                        cfg.indexes
                            .iter()
                            .map(|i| i.to_string())
                            .collect::<Vec<_>>()
                    );
                    let built = BuiltConfiguration::build(cfg, db);
                    let run_r = run_workload(db, &built, &w, params.timeout_units);
                    eprintln!(
                        "[{:?}]  {name} R run: timeouts {}, total_lb {:.0}s",
                        t0.elapsed(),
                        run_r.timeout_count(),
                        run_r.total_lower_bound_sim_seconds()
                    );
                    let cr = run_r.cfc();
                    for x in [1.0, 10.0, 31.6, 100.0, 1000.0] {
                        eprintln!("   CFC({x:7.1}s): R={:.2}", cr.at(x));
                    }
                }
            }
        }
    }
    publish(sink);
    eprintln!("[{:?}] pilot done", t0.elapsed());
}

fn tpch_pilot(suite: &Suite, params: SuiteParams, t0: Instant, trace: Trace<'_>) {
    use tab_advisor::SystemC;
    for (db, label, fams) in [
        (&suite.skth, "SkTH", vec![Family::SkTH3Js, Family::SkTH3J]),
        (&suite.unth, "UnTH", vec![Family::UnTH3J]),
    ] {
        for t in db.tables() {
            eprintln!(
                "  {label}.{}: {} rows {} pages",
                t.schema().name,
                t.n_rows(),
                t.n_pages()
            );
        }
        let p = build_p(db, label);
        let c1 = build_1c(db, label);
        let budget = space_budget(db, label);
        eprintln!(
            "[{:?}] {label}: P/1C built, budget {} MiB",
            t0.elapsed(),
            budget / 1048576
        );
        for fam in fams {
            let all = fam.enumerate(db);
            eprintln!(
                "[{:?}] {} family size = {}",
                t0.elapsed(),
                fam.name(),
                all.len()
            );
            let w = prepare_workload(suite, fam, &p);
            let run_p = run_workload(db, &p, &w, params.timeout_units);
            eprintln!(
                "[{:?}] P run: timeouts {}, total_lb {:.0}s",
                t0.elapsed(),
                run_p.timeout_count(),
                run_p.total_lower_bound_sim_seconds()
            );
            let run_1c = run_workload(db, &c1, &w, params.timeout_units);
            eprintln!(
                "[{:?}] 1C run: timeouts {}, total_lb {:.0}s",
                t0.elapsed(),
                run_1c.timeout_count(),
                run_1c.total_lower_bound_sim_seconds()
            );
            let input = AdvisorInput {
                db,
                current: &p,
                workload: &w,
                budget_bytes: budget,
                par: params.par,
                trace,
            };
            let (cfg, stats) = SystemC.recommend_with_stats(&input);
            eprintln!(
                "  C: what-if calls {} (planner {}, cache hits {}, {:.0}% hit rate), {:.2}s",
                stats.whatif_calls,
                stats.planner_calls,
                stats.cache_hits,
                stats.cache_hit_rate() * 100.0,
                stats.wall_seconds
            );
            match cfg {
                None => eprintln!("  C: NO RECOMMENDATION"),
                Some(cfg) => {
                    eprintln!(
                        "[{:?}]  C: {} indexes {:?}, {} views {:?}",
                        t0.elapsed(),
                        cfg.indexes.len(),
                        cfg.indexes
                            .iter()
                            .map(|i| i.to_string())
                            .collect::<Vec<_>>(),
                        cfg.mviews.len(),
                        cfg.mviews
                            .iter()
                            .map(|m| (m.spec.name.clone(), m.indexes.len()))
                            .collect::<Vec<_>>()
                    );
                    let built = BuiltConfiguration::build(cfg, db);
                    let run_r = run_workload(db, &built, &w, params.timeout_units);
                    eprintln!(
                        "[{:?}]  C R run: timeouts {}, total_lb {:.0}s",
                        t0.elapsed(),
                        run_r.timeout_count(),
                        run_r.total_lower_bound_sim_seconds()
                    );
                    let (cp, cc, cr) = (run_p.cfc(), run_1c.cfc(), run_r.cfc());
                    for x in [1.0, 10.0, 31.6, 100.0, 1000.0] {
                        eprintln!(
                            "  CFC({x:7.1}s): P={:.2} 1C={:.2} R={:.2}",
                            cp.at(x),
                            cc.at(x),
                            cr.at(x)
                        );
                    }
                }
            }
        }
    }
    eprintln!("[{:?}] tpch pilot done", t0.elapsed());
}
