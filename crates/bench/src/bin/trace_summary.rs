//! Aggregate a `tab-trace-v1` JSONL trace (from `repro --trace FILE`)
//! into per-(family, config) operator cost tables.
//!
//! ```sh
//! cargo run --release -p tab-bench-harness --bin repro -- --small --trace trace.jsonl
//! cargo run --release -p tab-bench-harness --bin trace_summary -- trace.jsonl
//! ```
//!
//! Exits 1 when the trace has malformed lines or a torn tail — the
//! summary is still printed (with a trailing `WARNING:` damage report),
//! but scripts get a signal that the input was not fully parsed.

use std::process::ExitCode;

use tab_bench_harness::trace_summary::summarize;
use tab_storage::read_trace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: trace_summary TRACE.jsonl");
        return ExitCode::from(2);
    };
    match std::fs::read_to_string(path) {
        Ok(input) => {
            print!("{}", summarize(&input));
            match read_trace(&input).damage_report() {
                Some(_) => ExitCode::FAILURE,
                None => ExitCode::SUCCESS,
            }
        }
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
