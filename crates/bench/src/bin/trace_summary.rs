//! Aggregate a `tab-trace-v1` JSONL trace (from `repro --trace FILE`)
//! into per-(family, config) operator cost tables.
//!
//! ```sh
//! cargo run --release -p tab-bench-harness --bin repro -- --small --trace trace.jsonl
//! cargo run --release -p tab-bench-harness --bin trace_summary -- trace.jsonl
//! ```

use std::process::ExitCode;

use tab_bench_harness::trace_summary::summarize;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: trace_summary TRACE.jsonl");
        return ExitCode::from(2);
    };
    match std::fs::read_to_string(path) {
        Ok(input) => {
            print!("{}", summarize(&input));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
