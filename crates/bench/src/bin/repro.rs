//! Regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p tab-bench-harness --bin repro            # full scale
//! cargo run --release -p tab-bench-harness --bin repro -- --small # smoke run
//! ```
//!
//! Flags:
//!
//! - `--small`        small-scale smoke run into `results-small/`
//! - `--threads N`    worker threads (0 or absent = all cores); results
//!   are identical at any setting
//! - `--query-threads N`  intra-query morsel workers (default 1: the
//!   grid fan-out already saturates cores; 0 = all cores); results are
//!   identical at any setting
//! - `--morsel-rows N`    rows per morsel for the parallel executor
//!   (default 4096); results are identical at any setting
//! - `--check`        exit non-zero if any shape claim diverges (CI mode)
//! - `--expect FILE`  with `--check`: compare claim verdicts against an
//!   `id,status` baseline instead of demanding all-HOLDS (some paper
//!   claims diverge by design at reduced scale — see EXPERIMENTS.md)
//! - `--out DIR`      override the output directory
//! - `--trace FILE`   write a `tab-trace-v1` JSONL trace of every grid
//!   query (per-operator estimates vs. actuals) and advisor round;
//!   observational only — all outputs are byte-identical without it.
//!   Summarize with `cargo run -p tab-bench-harness --bin trace_summary`.
//! - `--faults SPEC`  arm a deterministic fault plan (also read from
//!   `TAB_FAULTS` when the flag is absent). Arms are comma-separated:
//!   `enospc:<file>[:N]` fails the Nth write of a named artifact,
//!   `panic:cell:<family>/<config>` poisons one grid cell,
//!   `truncate:trace:N` tears the trace after N lines. See DESIGN.md §10.
//! - `--resume`       replay the grid cells checkpointed by a previous
//!   interrupted run in the same `--out` directory; outputs are
//!   byte-identical to an uninterrupted run.
//! - `--buffer-pages N`  run every grid query through an N-frame buffer
//!   pool with clock eviction and spill-to-disk (0 = off, the default).
//!   Eviction is a pure function of the logical access stream, so all
//!   outputs stay byte-identical at any thread count and `BENCH_io.json`
//!   reports the per-cell hit/miss/eviction traffic.
//! - `--charge observed|metered`  how the cost meter prices pool
//!   traffic. `observed` (default): hits free, misses charged as
//!   seq/random page reads — totals depend on `--buffer-pages`.
//!   `metered`: legacy model-based charges — totals byte-identical to a
//!   pool-less run at any capacity, while the pool still reports traffic.

use std::process::ExitCode;

use tab_bench_harness::repro::{run_all, ReproConfig};
use tab_core::FaultPlan;
use tab_engine::ChargePolicy;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--small] [--threads N] [--query-threads N] [--morsel-rows N] \
         [--buffer-pages N] [--charge observed|metered] \
         [--check] [--expect FILE] [--out DIR] [--trace FILE] [--faults SPEC] [--resume]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut small = false;
    let mut check = false;
    let mut resume = false;
    let mut threads: usize = 0;
    let mut query_threads: Option<usize> = None;
    let mut morsel_rows: Option<usize> = None;
    let mut buffer_pages: Option<usize> = None;
    let mut charge: Option<ChargePolicy> = None;
    let mut out: Option<String> = None;
    let mut expect: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut faults: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => small = true,
            "--check" => check = true,
            "--resume" => resume = true,
            "--threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                threads = v.parse().unwrap_or_else(|_| usage());
            }
            "--query-threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                query_threads = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--morsel-rows" => {
                let v = args.next().unwrap_or_else(|| usage());
                let n: usize = v.parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                morsel_rows = Some(n);
            }
            "--buffer-pages" => {
                let v = args.next().unwrap_or_else(|| usage());
                buffer_pages = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--charge" => {
                let v = args.next().unwrap_or_else(|| usage());
                charge = Some(ChargePolicy::parse(&v).unwrap_or_else(|e| {
                    eprintln!("--charge: {e}");
                    std::process::exit(2);
                }));
            }
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--expect" => expect = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace = Some(args.next().unwrap_or_else(|| usage())),
            "--faults" => faults = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let mut cfg = if small {
        ReproConfig::small()
    } else {
        ReproConfig::full()
    }
    .with_threads(threads);
    if let Some(n) = query_threads {
        cfg.params = cfg.params.with_query_threads(n);
    }
    if let Some(n) = morsel_rows {
        cfg.params = cfg.params.with_morsel_rows(n);
    }
    if let Some(n) = buffer_pages {
        cfg.params = cfg.params.with_buffer_pages(n);
    }
    if let Some(c) = charge {
        cfg.params = cfg.params.with_charge(c);
    }
    if let Some(dir) = out {
        cfg.out_dir = dir.into();
    }
    if let Some(path) = trace {
        cfg = cfg.with_trace(path.into());
    }
    if resume {
        cfg = cfg.with_resume();
    }
    // Flag wins over the environment, so a plan baked into a CI job can
    // be overridden per invocation.
    let spec = faults.or_else(|| std::env::var("TAB_FAULTS").ok().filter(|s| !s.is_empty()));
    if let Some(spec) = spec {
        match FaultPlan::parse(&spec) {
            Ok(plan) => cfg = cfg.with_faults(plan),
            Err(e) => {
                eprintln!("--faults: {e}");
                return ExitCode::from(2);
            }
        }
    }
    eprintln!(
        "tab-bench reproduction ({} scale, {} threads) -> {}",
        if small { "small" } else { "full" },
        cfg.params.par.threads(),
        cfg.out_dir.display()
    );
    let summary = match run_all(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("repro failed: {e}");
            eprintln!(
                "completed grid cells are checkpointed in {}; rerun with --resume to continue",
                cfg.out_dir.display()
            );
            return ExitCode::from(2);
        }
    };
    println!("{}", summary.figures_text);
    println!("claims: {}/{} hold", summary.passed(), summary.claims.len());
    for c in &summary.claims {
        println!(
            "  [{}] {} -- {}",
            if c.holds { "HOLDS   " } else { "DIVERGES" },
            c.id,
            c.evidence
        );
    }
    if check {
        match &expect {
            Some(path) => {
                let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("--expect: cannot read {path}: {e}");
                    std::process::exit(2);
                });
                let expected: std::collections::BTreeMap<&str, &str> = baseline
                    .lines()
                    .skip(1)
                    .filter(|l| !l.trim().is_empty())
                    .filter_map(|l| l.split_once(','))
                    .collect();
                let mut bad = 0usize;
                for c in &summary.claims {
                    let got = if c.holds { "HOLDS" } else { "DIVERGES" };
                    match expected.get(c.id.as_str()) {
                        Some(&want) if want == got => {}
                        Some(&want) => {
                            eprintln!("--check: claim {} is {got}, baseline says {want}", c.id);
                            bad += 1;
                        }
                        None => {
                            eprintln!("--check: claim {} missing from baseline {path}", c.id);
                            bad += 1;
                        }
                    }
                }
                if expected.len() != summary.claims.len() {
                    eprintln!(
                        "--check: baseline has {} claims, run produced {}",
                        expected.len(),
                        summary.claims.len()
                    );
                    bad += 1;
                }
                if bad > 0 {
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "--check: all {} claim verdicts match {path}",
                    summary.claims.len()
                );
            }
            None if summary.passed() != summary.claims.len() => {
                eprintln!(
                    "--check: {} claim(s) diverged",
                    summary.claims.len() - summary.passed()
                );
                return ExitCode::FAILURE;
            }
            None => {}
        }
    }
    ExitCode::SUCCESS
}
