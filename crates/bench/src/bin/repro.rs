//! Regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p tab-bench-harness --bin repro            # full scale
//! cargo run --release -p tab-bench-harness --bin repro -- --small # smoke run
//! ```

use tab_bench_harness::repro::{run_all, ReproConfig};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small {
        ReproConfig::small()
    } else {
        ReproConfig::full()
    };
    eprintln!(
        "tab-bench reproduction ({} scale) -> {}",
        if small { "small" } else { "full" },
        cfg.out_dir.display()
    );
    let summary = run_all(&cfg);
    println!("{}", summary.figures_text);
    println!("claims: {}/{} hold", summary.passed(), summary.claims.len());
    for c in &summary.claims {
        println!(
            "  [{}] {} -- {}",
            if c.holds { "HOLDS   " } else { "DIVERGES" },
            c.id,
            c.evidence
        );
    }
}
