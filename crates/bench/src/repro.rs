//! The reproduction driver: regenerates every table and figure of the
//! paper into an output directory, and checks the paper's qualitative
//! claims ("shape claims") along the way.
//!
//! See DESIGN.md §4 for the experiment ↔ module ↔ output index.

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::time::Instant;

use crate::converge::{run_convergence, ConvergenceSpec};
use tab_advisor::{AdvisorInput, Recommender, SearchStats, SystemA, SystemB, SystemC};
use tab_core::convergence::{
    convergence_csv_rows, convergence_json, fig12_csv_rows, render_convergence_curve,
    render_convergence_table, CSV_HEADER, FIG12_HEADER,
};
use tab_core::exec_bench::{exec_bench_json, measure_exec};
use tab_core::report::{
    cfc_csv_rows, render_cfc_ascii, render_histogram_ascii, write_bytes_with, write_csv_with,
};
use tab_core::{
    advisor_bench_json, bench_json, build_1c, build_p, estimate_workload_hypothetical_with,
    estimate_workload_with, improvement_ratios, insertion_breakeven, io_bench_json,
    prepare_workload_db_with, run_grid_checkpointed, space_budget, table1_row, timings_json,
    AdvisorBenchRecord, CellTiming, Cfc, CheckpointError, CheckpointJournal, FaultPlan, Faults,
    FileTraceSink, Goal, GridCell, GridError, IoBenchCell, LogHistogram, PhaseTiming,
    RatioHistogram, SuiteParams, Trace, WorkloadRun,
};
use tab_datagen::{
    generate_nref_checked, generate_tpch_checked, Distribution, NrefParams, TpchParams,
};
use tab_families::Family;
use tab_sqlq::Query;
use tab_storage::{BuiltConfiguration, Configuration, Database, Pager};

/// Configuration of a reproduction run.
pub struct ReproConfig {
    /// Suite scales, seeds, and parallelism.
    pub params: SuiteParams,
    /// Output directory for CSVs and rendered figures.
    pub out_dir: PathBuf,
    /// Optional `tab-trace-v1` JSONL trace file capturing per-query and
    /// per-operator events for every grid cell plus advisor rounds.
    /// Tracing is observational only: every file under `out_dir` is
    /// byte-identical with or without it (`tests/observability.rs`).
    pub trace: Option<PathBuf>,
    /// Optional deterministic fault plan (`--faults` / `TAB_FAULTS`) —
    /// see [`FaultPlan::parse`] for the spec grammar. `None` costs one
    /// branch per probe site.
    pub faults: Option<FaultPlan>,
    /// Resume an interrupted run: grid cells journaled by a previous
    /// (crashed or fault-killed) run in the same `out_dir` are replayed
    /// bit-exactly; only the missing cells execute.
    pub resume: bool,
}

impl ReproConfig {
    /// Default full-scale run writing to `results/`.
    pub fn full() -> Self {
        ReproConfig {
            params: SuiteParams::default(),
            out_dir: PathBuf::from("results"),
            trace: None,
            faults: None,
            resume: false,
        }
    }

    /// Small-scale smoke run.
    pub fn small() -> Self {
        ReproConfig {
            params: SuiteParams::small(),
            out_dir: PathBuf::from("results-small"),
            trace: None,
            faults: None,
            resume: false,
        }
    }

    /// The same run with an explicit thread count (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.params = self.params.with_threads(threads);
        self
    }

    /// The same run writing a structured trace to `path`.
    pub fn with_trace(mut self, path: PathBuf) -> Self {
        self.trace = Some(path);
        self
    }

    /// The same run with `plan` armed at every fault site.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The same run resuming from the checkpoint journal in `out_dir`.
    pub fn with_resume(mut self) -> Self {
        self.resume = true;
        self
    }
}

/// Why a reproduction run could not produce its full output set. Every
/// variant names the artifact or subsystem that failed, so an operator
/// (or CI log reader) knows exactly what is missing and whether
/// `--resume` will help.
#[derive(Debug)]
pub enum ReproError {
    /// An artifact under `out_dir` could not be written. The underlying
    /// error names the injected fault site when one fired.
    Artifact {
        /// Final path of the artifact that failed to write.
        path: PathBuf,
        /// Underlying I/O failure.
        source: io::Error,
    },
    /// A database generator crashed (`panic:build:<table>`, caught) or
    /// hit an injected I/O failure (`enospc:datagen`). Generators are
    /// deterministic for a fixed seed, so a rerun resumes bit-exactly.
    Datagen {
        /// Label of the database being generated (NREF, SkTH, UnTH).
        label: String,
        /// The caught panic message or injected I/O error.
        message: String,
    },
    /// One or more grid cells panicked (injected poisoned cell or a
    /// real bug); completed sibling cells were checkpointed, so
    /// `--resume` re-executes only the failed ones.
    Grid {
        /// Rendered [`GridError`] listing the failed cells.
        message: String,
    },
    /// The checkpoint journal could not be written or read — crash
    /// consistency is compromised.
    Journal {
        /// The journal's path.
        path: PathBuf,
        /// Underlying I/O failure.
        source: io::Error,
    },
    /// `--resume` was refused (parameter fingerprint mismatch).
    Resume {
        /// What disagreed.
        message: String,
    },
    /// The trace sink swallowed a write failure (injected or real); the
    /// partial trace is left at `<path>.tmp` and the run fails *after*
    /// writing its artifacts but *before* discarding the journal.
    TraceSink {
        /// Final path the trace would have been published to.
        path: PathBuf,
        /// What went wrong, including the line count written so far.
        message: String,
    },
}

impl std::fmt::Display for ReproError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReproError::Artifact { path, source } => {
                write!(f, "cannot write artifact {}: {source}", path.display())
            }
            ReproError::Datagen { label, message } => {
                write!(f, "generating {label} failed: {message}")
            }
            ReproError::Grid { message } => write!(f, "measurement grid failed: {message}"),
            ReproError::Journal { path, source } => write!(
                f,
                "cannot write checkpoint journal {}: {source}",
                path.display()
            ),
            ReproError::Resume { message } => write!(f, "cannot resume: {message}"),
            ReproError::TraceSink { path, message } => {
                write!(f, "trace sink {} failed: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for ReproError {}

/// The journal's parameter fingerprint: everything that shapes the
/// grid's *outcomes*. Thread count is deliberately excluded — results
/// are identical at any parallelism, so a run interrupted at 4 threads
/// may resume at 1 (and `tests/fault_injection.rs` holds us to it).
fn fingerprint(params: &SuiteParams) -> String {
    let mut fp = format!(
        "seed={};nref={};tpch_scale_bits={};workload={};timeout_bits={}",
        params.seed,
        params.nref_proteins,
        params.tpch_scale.to_bits(),
        params.workload_size,
        params.timeout_units.to_bits()
    );
    // The buffer pool changes charged units (Observed mode) and the
    // journalled I/O counters, so pooled runs get their own journal
    // lineage. Pool-less runs keep the historical fingerprint so old
    // journals stay resumable.
    if params.buffer_pages > 0 {
        fp.push_str(&format!(
            ";pool={};charge={}",
            params.buffer_pages,
            params.charge.name()
        ));
    }
    fp
}

/// Stand up the spill-to-disk pager for one database, materialising
/// every base-table heap so evicted clean pages can be re-read. Only
/// built when the pool is on; `None` keeps the zero-cost legacy path.
fn build_pager(label: &str, db: &Database, pages: usize) -> Result<Option<Pager>, ReproError> {
    if pages == 0 {
        return Ok(None);
    }
    let mut pager = Pager::new(label).map_err(|source| ReproError::Artifact {
        path: std::env::temp_dir(),
        source,
    })?;
    for name in db.table_names().collect::<Vec<_>>() {
        let table = db.table(name).expect("listed table exists");
        pager
            .materialize_table(name, table)
            .map_err(|source| ReproError::Artifact {
                path: pager.dir().join(name),
                source,
            })?;
    }
    Ok(Some(pager))
}

/// One checked qualitative claim from the paper.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Short identifier, e.g. `fig3-1c-beats-p`.
    pub id: String,
    /// What the paper asserts.
    pub statement: String,
    /// Whether our reproduction observes it.
    pub holds: bool,
    /// Measured evidence.
    pub evidence: String,
}

/// Collected results of a full reproduction.
#[derive(Debug)]
pub struct ReproSummary {
    /// All checked claims.
    pub claims: Vec<Claim>,
    /// Rendered ASCII figures (also written to `figures.txt`).
    pub figures_text: String,
}

impl ReproSummary {
    /// Number of claims that held.
    pub fn passed(&self) -> usize {
        self.claims.iter().filter(|c| c.holds).count()
    }
}

struct Ctx<'a> {
    out: PathBuf,
    timeout: f64,
    /// Fault handle threaded to every artifact write (one branch when
    /// no plan is armed).
    faults: Faults<'a>,
    claims: Vec<Claim>,
    figures: String,
    timings: Vec<CellTiming>,
    /// Coarse (phase name, wall seconds) spans for `BENCH_repro_*.json`,
    /// in first-seen order, accumulated across sections.
    phases: Vec<(&'static str, f64)>,
    /// Per-recommendation what-if search instrumentation for
    /// `BENCH_advisor.json`.
    advisor: Vec<AdvisorBenchRecord>,
    /// Per-cell buffer-pool traffic for `BENCH_io.json`, in grid
    /// completion order (deterministic: cells finish in issue order).
    io_cells: Vec<IoBenchCell>,
    t0: Instant,
    /// When the span being attributed to the *next* [`Ctx::mark`] began.
    last_mark: Instant,
}

impl Ctx<'_> {
    /// Write one CSV artifact atomically, with the per-file fault probe.
    fn csv(&self, file: &str, header: &[&str], rows: &[Vec<String>]) -> Result<(), ReproError> {
        let path = self.out.join(file);
        write_csv_with(&path, header, rows, self.faults)
            .map_err(|source| ReproError::Artifact { path, source })
    }

    /// Write one non-CSV artifact atomically, with the fault probe.
    fn bytes(&self, file: &str, bytes: &[u8]) -> Result<(), ReproError> {
        let path = self.out.join(file);
        write_bytes_with(&path, bytes, self.faults)
            .map_err(|source| ReproError::Artifact { path, source })
    }

    fn log(&self, msg: &str) {
        eprintln!("[{:8.1?}] {msg}", self.t0.elapsed());
    }

    /// Attribute the wall-clock since the previous mark to `phase`. The
    /// NREF and TPC-H sections run the same phases in turn, so repeated
    /// marks accumulate into one entry per phase name.
    fn mark(&mut self, phase: &'static str) {
        let now = Instant::now();
        let secs = now.duration_since(self.last_mark).as_secs_f64();
        self.last_mark = now;
        match self.phases.iter_mut().find(|(n, _)| *n == phase) {
            Some(e) => e.1 += secs,
            None => self.phases.push((phase, secs)),
        }
    }

    fn claim(&mut self, id: &str, statement: &str, holds: bool, evidence: String) {
        self.log(&format!(
            "claim {id}: {} ({evidence})",
            if holds { "HOLDS" } else { "DIVERGES" }
        ));
        self.claims.push(Claim {
            id: id.to_string(),
            statement: statement.to_string(),
            holds,
            evidence,
        });
    }

    /// Record one recommendation's what-if instrumentation.
    fn advisor_record(&mut self, system: &str, family: &str, recommended: bool, s: &SearchStats) {
        self.advisor.push(AdvisorBenchRecord {
            system: system.to_string(),
            family: family.to_string(),
            recommended,
            candidates: s.candidates,
            picks: s.rounds.len(),
            whatif_calls: s.whatif_calls,
            planner_calls: s.planner_calls,
            cache_hits: s.cache_hits,
            wall_seconds: s.wall_seconds,
        });
    }

    fn figure(&mut self, title: &str, body: &str) {
        self.figures
            .push_str(&format!("\n=== {title} ===\n{body}\n"));
    }

    fn write_cfc_figure(
        &mut self,
        file: &str,
        title: &str,
        curves: &[(&str, &Cfc)],
        max_x: f64,
    ) -> Result<(), ReproError> {
        let (header, rows) = cfc_csv_rows(curves, 0.1, max_x, 60);
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        self.csv(file, &header_refs, &rows)?;
        let ascii = render_cfc_ascii(curves, 0.1, max_x, 64, 16);
        self.figure(title, &ascii);
        Ok(())
    }
}

/// Run a database generator through its fault-checked path, catching a
/// fired `panic:build:<table>` crash and translating it (or an injected
/// `enospc:datagen`) into [`ReproError::Datagen`]. `AssertUnwindSafe`
/// is sound here: on panic the half-built tables are dropped and the
/// error propagates — nothing broken is observed afterwards.
fn generate_step<F>(label: &str, generate: F) -> Result<Database, ReproError>
where
    F: FnOnce() -> io::Result<Database>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(generate)) {
        Ok(Ok(db)) => Ok(db),
        Ok(Err(e)) => Err(ReproError::Datagen {
            label: label.to_string(),
            message: e.to_string(),
        }),
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "generator panicked".to_string());
            Err(ReproError::Datagen {
                label: label.to_string(),
                message,
            })
        }
    }
}

/// Run one checkpointed grid, translating grid failures to
/// [`ReproError`].
fn grid_step(
    cells: &[GridCell<'_>],
    par: tab_core::Parallelism,
    trace: Trace<'_>,
    faults: Faults<'_>,
    journal: &CheckpointJournal,
) -> Result<Vec<(WorkloadRun, CellTiming)>, ReproError> {
    run_grid_checkpointed(cells, par, trace, faults, Some(journal)).map_err(|e| match e {
        GridError::Poisoned { .. } => ReproError::Grid {
            message: e.to_string(),
        },
        GridError::Journal(source) => ReproError::Journal {
            path: journal.path().to_path_buf(),
            source,
        },
    })
}

/// Run the full reproduction.
///
/// On success every artifact is in place and the checkpoint journal is
/// removed. On failure the journal (listing every completed grid cell)
/// stays in `out_dir`, so a rerun with [`ReproConfig::resume`] replays
/// the journaled cells bit-exactly and executes only the missing ones.
pub fn run_all(cfg: &ReproConfig) -> Result<ReproSummary, ReproError> {
    std::fs::create_dir_all(&cfg.out_dir).map_err(|source| ReproError::Artifact {
        path: cfg.out_dir.clone(),
        source,
    })?;
    let faults = match &cfg.faults {
        Some(plan) => Faults::to(plan),
        None => Faults::disabled(),
    };

    // The journal is always armed — crash consistency is the default,
    // not an opt-in. With `resume` it additionally loads the cells a
    // previous interrupted run completed.
    let journal_path = cfg.out_dir.join("repro.checkpoint.jsonl");
    let journal = CheckpointJournal::open(&journal_path, &fingerprint(&cfg.params), cfg.resume)
        .map_err(|e| match e {
            CheckpointError::Io(source) => ReproError::Journal {
                path: journal_path.clone(),
                source,
            },
            CheckpointError::Mismatch { message } => ReproError::Resume { message },
        })?;

    let t0 = Instant::now();
    let mut ctx = Ctx {
        out: cfg.out_dir.clone(),
        timeout: cfg.params.timeout_units,
        faults,
        claims: Vec::new(),
        figures: String::new(),
        timings: Vec::new(),
        phases: Vec::new(),
        advisor: Vec::new(),
        io_cells: Vec::new(),
        t0,
        last_mark: t0,
    };
    let timeout_s = tab_engine::units_to_sim_seconds(cfg.params.timeout_units);
    let par = cfg.params.par;
    ctx.log(&format!("parallelism: {} threads", par.threads()));
    if let Some(plan) = &cfg.faults {
        ctx.log(&format!("fault plan armed: {plan}"));
    }
    if cfg.resume {
        ctx.log(&format!(
            "resume: replaying {} journaled grid cell(s) from {}",
            journal.cells(),
            journal_path.display()
        ));
    }

    // Optional structured trace, staged at `<path>.tmp` and published
    // by `finish()` only if the whole run (and the sink itself)
    // succeeds. The sink lives for the whole run; the `Trace` handle it
    // backs is `Copy` and threads through the grids and advisor calls
    // below. Disabled (`None`) costs one branch per emission site.
    let sink = match cfg.trace.as_deref() {
        Some(path) => Some(
            match &cfg.faults {
                Some(plan) => FileTraceSink::create_with_faults(path, plan),
                None => FileTraceSink::create(path),
            }
            .map_err(|e| ReproError::TraceSink {
                path: path.to_path_buf(),
                message: e.to_string(),
            })?,
        ),
        None => None,
    };
    let trace = sink
        .as_ref()
        .map(|s| Trace::to(s))
        .unwrap_or_else(Trace::disabled);

    let mut table1: Vec<Vec<String>> = Vec::new();
    let mut table2: Vec<Vec<String>> = Vec::new();
    let mut table3: Vec<Vec<String>> = Vec::new();
    let mut runs_csv: Vec<Vec<String>> = Vec::new();
    let mut totals_csv: Vec<Vec<String>> = Vec::new();

    let record_run = |runs_csv: &mut Vec<Vec<String>>,
                      totals_csv: &mut Vec<Vec<String>>,
                      family: &str,
                      run: &WorkloadRun| {
        for (i, s) in run.sim_seconds().iter().enumerate() {
            runs_csv.push(vec![
                family.to_string(),
                run.config.clone(),
                i.to_string(),
                if s.is_finite() {
                    format!("{s:.3}")
                } else {
                    "timeout".to_string()
                },
            ]);
        }
        totals_csv.push(vec![
            family.to_string(),
            run.config.clone(),
            format!("{:.1}", run.total_lower_bound_sim_seconds()),
            run.timeout_count().to_string(),
        ]);
    };

    // ================= NREF (Systems A and B) =================
    // Databases are generated one at a time and dropped at section end
    // to bound resident memory.
    trace.span_begin("NREF");
    ctx.log("NREF: generating database");
    let nref_db = generate_step("NREF", || {
        generate_nref_checked(
            NrefParams {
                proteins: cfg.params.nref_proteins,
                seed: cfg.params.seed,
            },
            &faults,
        )
    })?;
    let nref = &nref_db;
    ctx.mark("generate");
    ctx.log("NREF: building P and 1C");
    let p = build_p(nref, "NREF");
    let c1 = build_1c(nref, "NREF");
    let budget = space_budget(nref, "NREF");
    ctx.log(&format!("NREF budget = {} MiB", budget / (1 << 20)));

    ctx.log("NREF: preparing workloads");
    let w2 = prepare_workload_db_with(
        nref,
        Family::Nref2J,
        &p,
        cfg.params.workload_size,
        cfg.params.seed,
        par,
    );
    let w3 = prepare_workload_db_with(
        nref,
        Family::Nref3J,
        &p,
        cfg.params.workload_size,
        cfg.params.seed,
        par,
    );
    ctx.mark("prepare");

    let input2 = AdvisorInput {
        db: nref,
        current: &p,
        workload: &w2,
        budget_bytes: budget,
        par,
        trace,
    };
    let input3 = AdvisorInput {
        db: nref,
        current: &p,
        workload: &w3,
        budget_bytes: budget,
        par,
        trace,
    };

    ctx.log("NREF: System A recommending for NREF2J");
    let (a2_cfg, a2_stats) = SystemA::default().recommend_with_stats(&input2);
    ctx.advisor_record("A", "NREF2J", a2_cfg.is_some(), &a2_stats);
    ctx.log("NREF: System A recommending for NREF3J (expected to fail)");
    let (a3_cfg, a3_stats) = SystemA::default().recommend_with_stats(&input3);
    ctx.advisor_record("A", "NREF3J", a3_cfg.is_some(), &a3_stats);
    ctx.claim(
        "sec4.2-a-fails-nref3j",
        "System A produces no recommendation for the 100-query NREF3J workload",
        a3_cfg.is_none(),
        format!(
            "A on NREF3J returned {}",
            if a3_cfg.is_some() { "Some" } else { "None" }
        ),
    );
    // ... but succeeds on smaller NREF3J workloads (the paper tried 25/12/6/3).
    let small3: Vec<Query> = w3.iter().take(25).cloned().collect();
    let (a3_small, a3_small_stats) = SystemA::default().recommend_with_stats(&AdvisorInput {
        db: nref,
        current: &p,
        workload: &small3,
        budget_bytes: budget,
        par,
        trace,
    });
    ctx.advisor_record("A", "NREF3J-25q", a3_small.is_some(), &a3_small_stats);
    ctx.claim(
        "sec4.2-a-small-workloads",
        "System A can produce recommendations for smaller NREF3J workloads",
        a3_small.is_some(),
        format!(
            "A on 25-query NREF3J returned {}",
            if a3_small.is_some() { "Some" } else { "None" }
        ),
    );

    ctx.log("NREF: System B recommending for NREF2J and NREF3J");
    let (b2_cfg, b2_stats) = SystemB.recommend_with_stats(&input2);
    ctx.advisor_record("B", "NREF2J", b2_cfg.is_some(), &b2_stats);
    let b2_cfg = b2_cfg.expect("B always recommends");
    let (b3_cfg, b3_stats) = SystemB.recommend_with_stats(&input3);
    ctx.advisor_record("B", "NREF3J", b3_cfg.is_some(), &b3_stats);
    let b3_cfg = b3_cfg.expect("B always recommends");

    let named = |mut c: Configuration, name: &str| {
        c.name = name.to_string();
        c
    };
    let a2 = a2_cfg.map(|c| BuiltConfiguration::build(named(c, "A_NREF2J_R"), nref));
    let b2 = BuiltConfiguration::build(named(b2_cfg, "B_NREF2J_R"), nref);
    let b3 = BuiltConfiguration::build(named(b3_cfg, "B_NREF3J_R"), nref);
    ctx.mark("recommend");

    ctx.log("NREF: running the NREF2J/NREF3J x P/1C/R grid");
    let timeout = ctx.timeout;
    let query_par = cfg.params.query_par;
    let morsel_rows = cfg.params.morsel_rows;
    let buffer_pages = cfg.params.buffer_pages;
    let charge = cfg.params.charge;
    let nref_pager = build_pager("nref", nref, buffer_pages)?;
    let pager = nref_pager.as_ref();
    let cell = move |family: &'static str, built, workload| GridCell {
        family,
        db: nref,
        built,
        workload,
        timeout_units: timeout,
        query_par,
        morsel_rows,
        buffer_pages,
        charge,
        pager,
    };
    let mut cells = vec![
        cell("NREF2J", &p, w2.as_slice()),
        cell("NREF2J", &c1, &w2),
        cell("NREF2J", &b2, &w2),
        cell("NREF3J", &p, &w3),
        cell("NREF3J", &c1, &w3),
        cell("NREF3J", &b3, &w3),
    ];
    if let Some(a) = &a2 {
        cells.push(cell("NREF2J", a, &w2));
    }
    let mut grid: std::collections::VecDeque<(WorkloadRun, CellTiming)> =
        grid_step(&cells, par, trace, faults, &journal)?.into();
    drop(cells);
    ctx.mark("measurement-grid");
    let mut take = |ctx: &mut Ctx| -> WorkloadRun {
        let (run, timing) = grid.pop_front().expect("one result per grid cell");
        ctx.io_cells.push(IoBenchCell {
            family: timing.family.clone(),
            config: run.config.clone(),
            io: run.io,
        });
        ctx.timings.push(timing);
        run
    };
    let r2_p = take(&mut ctx);
    let r2_1c = take(&mut ctx);
    let r2_b = take(&mut ctx);
    let r3_p = take(&mut ctx);
    let r3_1c = take(&mut ctx);
    let r3_b = take(&mut ctx);
    let r2_a = a2.as_ref().map(|_| take(&mut ctx));

    for (fam, run) in [
        ("NREF2J", &r2_p),
        ("NREF2J", &r2_1c),
        ("NREF2J", &r2_b),
        ("NREF3J", &r3_p),
        ("NREF3J", &r3_1c),
        ("NREF3J", &r3_b),
    ] {
        record_run(&mut runs_csv, &mut totals_csv, fam, run);
    }
    if let Some(r) = &r2_a {
        record_run(&mut runs_csv, &mut totals_csv, "NREF2J", r);
    }

    // Figures 1 and 2: histograms of NREF2J on A's initial and
    // recommended configurations.
    let max_x = timeout_s * 1.1;
    {
        let h1 = LogHistogram::new(&r2_p.sim_seconds(), 0.1, timeout_s, 2);
        let h2 = LogHistogram::new(
            &r2_a.as_ref().unwrap_or(&r2_b).sim_seconds(),
            0.1,
            timeout_s,
            2,
        );
        for (file, title, h) in [
            (
                "fig01_hist_nref2j_P.csv",
                "Figure 1: NREF2J on A_NREF_P (histogram)",
                &h1,
            ),
            (
                "fig02_hist_nref2j_R.csv",
                "Figure 2: NREF2J on A_NREF2J_R (histogram)",
                &h2,
            ),
        ] {
            let mut rows: Vec<Vec<String>> = Vec::new();
            let labels = h.labels();
            let mut counts = h.counts.clone();
            counts.push(h.timeout_count);
            let cums = h.cumulative_fractions();
            for (i, l) in labels.iter().enumerate() {
                rows.push(vec![
                    l.clone(),
                    counts[i].to_string(),
                    if i < cums.len() {
                        format!("{:.3}", cums[i])
                    } else {
                        String::new()
                    },
                ]);
            }
            ctx.csv(file, &["bin", "count", "cumulative"], &rows)?;
            ctx.figure(title, &render_histogram_ascii(h, 40));
        }
    }

    // Figure 3: CFC of P / 1C / R (System A) on NREF2J.
    let cfc2_p = r2_p.cfc();
    let cfc2_1c = r2_1c.cfc();
    let cfc2_b = r2_b.cfc();
    {
        let cfc_a;
        let mut curves: Vec<(&str, &Cfc)> = vec![("P", &cfc2_p), ("1C", &cfc2_1c)];
        if let Some(ra) = &r2_a {
            cfc_a = ra.cfc();
            curves.push(("R", &cfc_a));
        }
        ctx.write_cfc_figure(
            "fig03_cfc_A_nref2j.csv",
            "Figure 3: System A on NREF2J",
            &curves,
            max_x,
        )?;
        let x = 31.6;
        ctx.claim(
            "fig3-1c-best-at-31s",
            "On NREF2J, 1C completes the largest fraction under 31.6 s (paper: 41% vs 27% R vs 7% P)",
            cfc2_1c.at(x) > cfc2_p.at(x),
            format!(
                "CFC(31.6s): P={:.2} 1C={:.2} R(A)={:.2}",
                cfc2_p.at(x),
                cfc2_1c.at(x),
                r2_a.as_ref().map(|r| r.cfc().at(x)).unwrap_or(f64::NAN)
            ),
        );
    }

    // Figure 4: System A on NREF3J — only P and 1C (no recommendation).
    let cfc3_p = r3_p.cfc();
    let cfc3_1c = r3_1c.cfc();
    ctx.write_cfc_figure(
        "fig04_cfc_A_nref3j.csv",
        "Figure 4: System A on NREF3J (no R: recommender failed)",
        &[("P", &cfc3_p), ("1C", &cfc3_1c)],
        max_x,
    )?;
    {
        // The paper's own arithmetic: "it takes 98 seconds to complete
        // 60% of the queries on 1C, while it takes 4 hours and 45
        // minutes to complete 60% of the queries on P: an improvement of
        // 174 times!" — i.e. the sum of the fastest 60% of times.
        let sum60 = |run: &WorkloadRun| -> f64 {
            let mut v: Vec<f64> = run.sim_seconds();
            v.sort_by(|a, b| a.partial_cmp(b).expect("comparable"));
            let k = (v.len() * 6) / 10;
            v.iter().take(k).filter(|x| x.is_finite()).sum()
        };
        let (s_p, s_1c) = (sum60(&r3_p), sum60(&r3_1c));
        let ratio = s_p / s_1c.max(1e-9);
        // The paper's 174x rides on its 65 MB-3.9 GB table-size spread;
        // scaled down, the spread (and with it the achievable ratio)
        // compresses — see EXPERIMENTS.md. The claim checks that the
        // gap is large and in the paper's direction at our scale.
        ctx.claim(
            "fig4-large-gap",
            "On NREF3J, completing 60% of the workload takes substantially longer on P than on 1C (paper: 174x at full scale)",
            ratio > 1.5,
            format!("time to complete 60%: P={s_p:.0}s 1C={s_1c:.0}s ratio={ratio:.1}x"),
        );
    }

    // Figures 5 and 6: System B.
    let cfc3_b = r3_b.cfc();
    ctx.write_cfc_figure(
        "fig05_cfc_B_nref2j.csv",
        "Figure 5: System B on NREF2J",
        &[("P", &cfc2_p), ("1C", &cfc2_1c), ("R", &cfc2_b)],
        max_x,
    )?;
    ctx.write_cfc_figure(
        "fig06_cfc_B_nref3j.csv",
        "Figure 6: System B on NREF3J",
        &[("P", &cfc3_p), ("1C", &cfc3_1c), ("R", &cfc3_b)],
        max_x,
    )?;
    ctx.claim(
        "fig5-B-R-near-P",
        "System B's NREF2J recommendation performs close to P, far from 1C",
        r2_b.total_lower_bound_sim_seconds() > 0.5 * r2_p.total_lower_bound_sim_seconds()
            && r2_1c.total_lower_bound_sim_seconds() < 0.8 * r2_b.total_lower_bound_sim_seconds(),
        format!(
            "totals: P={:.0}s R={:.0}s 1C={:.0}s",
            r2_p.total_lower_bound_sim_seconds(),
            r2_b.total_lower_bound_sim_seconds(),
            r2_1c.total_lower_bound_sim_seconds()
        ),
    );
    ctx.claim(
        "fig6-B-R-between",
        "System B's NREF3J recommendation improves on P but a gap to 1C remains",
        r3_b.total_lower_bound_sim_seconds() <= r3_p.total_lower_bound_sim_seconds()
            && r3_1c.total_lower_bound_sim_seconds() <= r3_b.total_lower_bound_sim_seconds(),
        format!(
            "totals: P={:.0}s R={:.0}s 1C={:.0}s",
            r3_p.total_lower_bound_sim_seconds(),
            r3_b.total_lower_bound_sim_seconds(),
            r3_1c.total_lower_bound_sim_seconds()
        ),
    );

    // Example 2 / §2.2: the performance goal, scaled to this timeout.
    {
        let goal = Goal::from_steps(vec![
            (timeout_s / 180.0, 0.1),
            (timeout_s / 30.0, 0.5),
            (timeout_s, 0.9),
        ]);
        let sat = |c: &Cfc| goal.satisfied_by(c);
        let rows: Vec<Vec<String>> = [("P", &cfc2_p), ("1C", &cfc2_1c), ("R_B", &cfc2_b)]
            .iter()
            .map(|(n, c)| vec![n.to_string(), sat(c).to_string()])
            .collect();
        ctx.csv("goal_example2.csv", &["config", "satisfied"], &rows)?;
        ctx.claim(
            "ex2-goal-separates",
            "The Example-2-style goal is satisfied by 1C but not by P (Figure 3 reading)",
            sat(&cfc2_1c) && !sat(&cfc2_p),
            format!("P={} 1C={} R={}", sat(&cfc2_p), sat(&cfc2_1c), sat(&cfc2_b)),
        );
    }

    // Figure 10: estimate curves for NREF3J on System B.
    ctx.log("NREF: computing Figure 10 estimate curves");
    {
        let ep = estimate_workload_with(nref, &p, &w3, par);
        let er = estimate_workload_with(nref, &b3, &w3, par);
        let e1c = estimate_workload_with(nref, &c1, &w3, par);
        let hr = estimate_workload_hypothetical_with(nref, &p, &b3.config, &w3, par);
        let h1c = estimate_workload_hypothetical_with(nref, &p, &c1.config, &w3, par);
        let curves: Vec<(&str, Cfc)> = vec![
            ("EP", Cfc::from_values(&ep)),
            ("ER", Cfc::from_values(&er)),
            ("E1C", Cfc::from_values(&e1c)),
            ("HR", Cfc::from_values(&hr)),
            ("H1C", Cfc::from_values(&h1c)),
        ];
        let refs: Vec<(&str, &Cfc)> = curves.iter().map(|(l, c)| (*l, c)).collect();
        let lo = 1.0;
        let hi = ep
            .iter()
            .chain(&hr)
            .chain(&h1c)
            .copied()
            .fold(10.0f64, f64::max)
            * 1.2;
        let (header, rows) = cfc_csv_rows(&refs, lo, hi, 60);
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        ctx.csv("fig10_estimates_nref3j.csv", &header_refs, &rows)?;
        ctx.figure(
            "Figure 10: estimate curves for NREF3J on System B (estimation units)",
            &render_cfc_ascii(&refs, lo, hi, 64, 16),
        );
        // Figure 10 contrasts paired per-query estimates; unpaired
        // quantiles of the vectors can mask the effect, so the claims
        // use the paired median ratio.
        let q25 = |v: &[f64]| {
            let mut s: Vec<f64> = v.iter().copied().filter(|x| x.is_finite()).collect();
            s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            s[(s.len() / 4).min(s.len() - 1)]
        };
        let paired_median_ratio = |num: &[f64], den: &[f64]| {
            let mut r: Vec<f64> = num
                .iter()
                .zip(den)
                .filter(|(a, b)| a.is_finite() && b.is_finite() && **b > 0.0)
                .map(|(a, b)| a / b)
                .collect();
            r.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            r[r.len() / 2]
        };
        ctx.claim(
            "fig10-ordering",
            "Optimizer estimates improve from P to the indexed configurations (EP above ER and E1C at the selective quartile)",
            q25(&ep) >= q25(&er) * 0.99 && q25(&ep) >= q25(&e1c) * 0.99,
            format!(
                "q25: EP={:.0} ER={:.0} E1C={:.0} (paper additionally has ER >= E1C; our R's covering indexes estimate below 1C)",
                q25(&ep),
                q25(&er),
                q25(&e1c)
            ),
        );
        ctx.claim(
            "fig10-h1c-conservative",
            "H1C is more conservative about 1C than E1C for the typical query (paired)",
            paired_median_ratio(&h1c, &e1c) > 1.05,
            format!(
                "paired median H1C/E1C = {:.2}, HR/ER = {:.2}",
                paired_median_ratio(&h1c, &e1c),
                paired_median_ratio(&hr, &er)
            ),
        );

        // Figure 11: improvement-ratio histograms (R vs 1C).
        let a_r: Vec<f64> = r3_b.sim_seconds();
        let a_1c: Vec<f64> = r3_1c.sim_seconds();
        let air = improvement_ratios(&a_r, &a_1c);
        let eir = improvement_ratios(&er, &e1c);
        let hir = improvement_ratios(&hr, &h1c);
        let mut rows: Vec<Vec<String>> = Vec::new();
        let hists = [
            ("AIR", RatioHistogram::new(&air, 3)),
            ("EIR", RatioHistogram::new(&eir, 3)),
            ("HIR", RatioHistogram::new(&hir, 3)),
        ];
        for d in -3i32..=3 {
            rows.push(vec![
                format!("10^{d}"),
                hists[0].1.at_decade(d).to_string(),
                hists[1].1.at_decade(d).to_string(),
                hists[2].1.at_decade(d).to_string(),
            ]);
        }
        ctx.csv(
            "fig11_improvement_ratios_nref3j.csv",
            &["ratio", "AIR", "EIR", "HIR"],
            &rows,
        )?;
        let mut fig11 = String::new();
        for d in -3i32..=3 {
            fig11.push_str(&format!(
                "ratio 10^{d:>2}: AIR={:>3} EIR={:>3} HIR={:>3}\n",
                hists[0].1.at_decade(d),
                hists[1].1.at_decade(d),
                hists[2].1.at_decade(d)
            ));
        }
        ctx.figure(
            "Figure 11: improvement ratios R vs 1C on NREF3J (B)",
            &fig11,
        );
        let mass_above_one = |h: &RatioHistogram| -> f64 {
            let above: usize = (1..=3).map(|d| h.at_decade(d)).sum();
            let total: usize = h.counts.iter().sum();
            above as f64 / total.max(1) as f64
        };
        ctx.claim(
            "fig11-hir-flatter",
            "HIR shows fewer queries improved by 1C than AIR does (hypothetical estimates understate 1C)",
            mass_above_one(&hists[2].1) <= mass_above_one(&hists[0].1) + 1e-9,
            format!(
                "fraction of ratios > 1: AIR={:.2} EIR={:.2} HIR={:.2}",
                mass_above_one(&hists[0].1),
                mass_above_one(&hists[1].1),
                mass_above_one(&hists[2].1)
            ),
        );
    }

    // §4.4: insertions into neighboring_seq.
    {
        let analysis = insertion_breakeven(&p, &b2, &c1, &r2_b, &r2_1c, "neighboring_seq");
        let rows = vec![vec![
            format!("{:.1}", analysis.per_insert_p),
            format!("{:.1}", analysis.per_insert_r),
            format!("{:.1}", analysis.per_insert_1c),
            format!("{:.0}", analysis.workload_r),
            format!("{:.0}", analysis.workload_1c),
            analysis
                .breakeven_tuples
                .map(|b| format!("{b:.0}"))
                .unwrap_or_else(|| "none".into()),
        ]];
        ctx.csv(
            "sec4_4_insertions.csv",
            &[
                "per_insert_P_units",
                "per_insert_R_units",
                "per_insert_1C_units",
                "workload_R_s",
                "workload_1C_s",
                "breakeven_tuples",
            ],
            &rows,
        )?;
        ctx.claim(
            "sec4.4-breakeven",
            "1C pays more per insert than R, yielding a finite break-even insert count (paper: ~400k tuples)",
            analysis.per_insert_1c > analysis.per_insert_r
                && analysis.breakeven_tuples.is_some(),
            format!(
                "per-insert P/R/1C = {:.1}/{:.1}/{:.1} units, breakeven = {:?} tuples",
                analysis.per_insert_p,
                analysis.per_insert_r,
                analysis.per_insert_1c,
                analysis.breakeven_tuples.map(|b| b.round())
            ),
        );
    }

    // Table 1 rows for the NREF configurations (A and B share the
    // engine, hence the same P and 1C builds, listed under both names as
    // the paper lists them per system).
    for (name, built) in [
        ("A_NREF_P", &p),
        ("A_NREF_1C", &c1),
        ("B_NREF_P", &p),
        ("B_NREF_1C", &c1),
        ("B_NREF2J_R", &b2),
        ("B_NREF3J_R", &b3),
    ] {
        let row = table1_row(nref, built);
        table1.push(vec![
            name.to_string(),
            format!("{:.1}", row.size_mib),
            format!("{:.1}", row.build_sim_minutes),
        ]);
    }
    if let Some(a) = &a2 {
        let row = table1_row(nref, a);
        table1.push(vec![
            "A_NREF2J_R".into(),
            format!("{:.1}", row.size_mib),
            format!("{:.1}", row.build_sim_minutes),
        ]);
    }

    // Table 2: index width counts per table for the NREF recommendations.
    {
        let mut recs: Vec<(&str, &Configuration)> = Vec::new();
        if let Some(a) = &a2 {
            recs.push(("A_NREF2J_R", &a.config));
        }
        recs.push(("B_NREF2J_R", &b2.config));
        recs.push(("B_NREF3J_R", &b3.config));
        table2.extend(index_width_rows(&recs, &p.config));
    }

    drop(a2);
    drop(b2);
    drop(b3);
    drop(c1);
    ctx.mark("analysis");

    // Convergence harness: profiles A/B/C over the default what-if
    // budget ladder on NREF2J (the one family every profile can
    // handle). Each budgeted search picks a prefix of the unbudgeted
    // one, so the curves — unlike the `BENCH_*` timing records — carry
    // no wall-clock and byte-compare across runs and thread counts.
    ctx.log("NREF: convergence harness (profiles A/B/C x what-if ladder on NREF2J)");
    trace.span_begin("convergence");
    let convergence = run_convergence(
        nref,
        &p,
        "NREF2J",
        &w2,
        budget,
        par,
        trace,
        &ConvergenceSpec::default(),
    )
    .expect("default spec names valid profiles");
    trace.span_end("convergence");
    ctx.figure(
        "Convergence: objective vs what-if budget, NREF2J (profiles A/B/C)",
        &render_convergence_table(&convergence),
    );
    ctx.mark("convergence");

    // Executor micro-bench: wall-clock the morsel-driven executor on a
    // sample of NREF queries under P (scalar/1t vs vectorized/1t vs
    // vectorized/Nt). The record carries wall-clock, so it lands in
    // `BENCH_exec.json` and is excluded from determinism byte-compares;
    // `measure_exec` itself asserts that every variant produces the
    // same outcome.
    ctx.log("NREF: executor bench (morsel parallelism + vectorization)");
    trace.span_begin("exec-bench");
    let exec_bench_queries: Vec<(String, Query)> = w2
        .iter()
        .take(2)
        .enumerate()
        .map(|(i, q)| (format!("NREF2J/q{i}"), q.clone()))
        .chain(
            w3.iter()
                .take(2)
                .enumerate()
                .map(|(i, q)| (format!("NREF3J/q{i}"), q.clone())),
        )
        .collect();
    let exec_bench_threads = par.threads().max(cfg.params.query_par.threads());
    let exec_bench = measure_exec(
        nref,
        &p,
        &exec_bench_queries,
        exec_bench_threads,
        cfg.params.morsel_rows,
        3,
    );
    trace.span_end("exec-bench");
    ctx.mark("exec-bench");

    drop(p);
    drop(nref_pager);
    drop(nref_db);
    trace.span_end("NREF");

    // ================= TPC-H (System C) =================
    for (dist, label, families) in [
        (
            Distribution::Zipf(1.0),
            "SkTH",
            vec![Family::SkTH3J, Family::SkTH3Js],
        ),
        (Distribution::Uniform, "UnTH", vec![Family::UnTH3J]),
    ] {
        trace.span_begin(label);
        ctx.log(&format!("{label}: generating database"));
        let tpch_db = generate_step(label, || {
            generate_tpch_checked(
                TpchParams {
                    scale: cfg.params.tpch_scale,
                    distribution: dist,
                    seed: cfg.params.seed + if label == "SkTH" { 1 } else { 2 },
                },
                &faults,
            )
        })?;
        let db = &tpch_db;
        ctx.mark("generate");
        ctx.log(&format!("{label}: building P and 1C"));
        let p = build_p(db, label);
        let c1 = build_1c(db, label);
        let budget = space_budget(db, label);
        let tpch_pager = build_pager(label, db, cfg.params.buffer_pages)?;
        ctx.mark("prepare");
        let mut family_runs: BTreeMap<&'static str, (WorkloadRun, WorkloadRun, WorkloadRun)> =
            BTreeMap::new();

        // Phase 1: per family, sample the workload and let System C
        // recommend (enumeration and stratification are parallel inside).
        let mut preps: Vec<(Family, Vec<Query>, BuiltConfiguration)> = Vec::new();
        for fam in families {
            ctx.log(&format!("{label}: preparing {}", fam.name()));
            let w = prepare_workload_db_with(
                db,
                fam,
                &p,
                cfg.params.workload_size,
                cfg.params.seed,
                par,
            );
            ctx.mark("prepare");
            ctx.log(&format!(
                "{label}: System C recommending for {}",
                fam.name()
            ));
            let (rec, rec_stats) = SystemC.recommend_with_stats(&AdvisorInput {
                db,
                current: &p,
                workload: &w,
                budget_bytes: budget,
                par,
                trace,
            });
            ctx.advisor_record("C", fam.name(), rec.is_some(), &rec_stats);
            let rec = rec.expect("C always recommends");
            let rec_name = format!("C_{}_R", fam.name());
            let built = BuiltConfiguration::build(named(rec, &rec_name), db);
            ctx.mark("recommend");
            preps.push((fam, w, built));
        }

        // Phase 2: one flat family x {P, 1C, R} grid per database.
        ctx.log(&format!("{label}: running the family x P/1C/R grid"));
        let cells: Vec<GridCell> = preps
            .iter()
            .flat_map(|(fam, w, built)| {
                [&p, &c1, built].map(|b| GridCell {
                    family: fam.name(),
                    db,
                    built: b,
                    workload: w,
                    timeout_units: ctx.timeout,
                    query_par: cfg.params.query_par,
                    morsel_rows: cfg.params.morsel_rows,
                    buffer_pages: cfg.params.buffer_pages,
                    charge: cfg.params.charge,
                    pager: tpch_pager.as_ref(),
                })
            })
            .collect();
        let mut grid = grid_step(&cells, par, trace, faults, &journal)?.into_iter();
        drop(cells);
        ctx.mark("measurement-grid");

        for (fam, _w, built) in &preps {
            let mut next = || {
                let (run, timing) = grid.next().expect("one result per grid cell");
                ctx.io_cells.push(IoBenchCell {
                    family: timing.family.clone(),
                    config: run.config.clone(),
                    io: run.io,
                });
                ctx.timings.push(timing);
                run
            };
            let run_p = next();
            let run_1c = next();
            let run_r = next();
            for r in [&run_p, &run_1c, &run_r] {
                record_run(&mut runs_csv, &mut totals_csv, fam.name(), r);
            }

            let (file, title) = match fam {
                Family::SkTH3Js => ("fig07_cfc_C_skth3js.csv", "Figure 7: System C on SkTH3Js"),
                Family::SkTH3J => ("fig08_cfc_C_skth3j.csv", "Figure 8: System C on SkTH3J"),
                _ => ("fig09_cfc_C_unth3j.csv", "Figure 9: System C on UnTH3J"),
            };
            let (cp, cc, cr) = (run_p.cfc(), run_1c.cfc(), run_r.cfc());
            ctx.write_cfc_figure(file, title, &[("P", &cp), ("1C", &cc), ("R", &cr)], max_x)?;

            let row = table1_row(db, built);
            table1.push(vec![
                built.config.name.clone(),
                format!("{:.1}", row.size_mib),
                format!("{:.1}", row.build_sim_minutes),
            ]);
            table3.extend(index_width_rows(
                &[(built.config.name.as_str(), &built.config)],
                &p.config,
            ));

            family_runs.insert(fam.name(), (run_p, run_1c, run_r));
        }

        for (name, built) in [(format!("C_{label}_P"), &p), (format!("C_{label}_1C"), &c1)] {
            let row = table1_row(db, built);
            table1.push(vec![
                name,
                format!("{:.1}", row.size_mib),
                format!("{:.1}", row.build_sim_minutes),
            ]);
        }

        // §4.3 totals for SkTH3J, and the Figure 7/8/9 claims.
        if label == "SkTH" {
            if let Some((run_p, run_1c, run_r)) = family_runs.get("SkTH3J") {
                let (tp, t1, tr) = (
                    run_p.total_lower_bound_sim_seconds(),
                    run_1c.total_lower_bound_sim_seconds(),
                    run_r.total_lower_bound_sim_seconds(),
                );
                ctx.claim(
                    "sec4.3-1c-vs-r-totals",
                    "On SkTH3J the conservative totals favour 1C over R by a large factor (paper: ~17x)",
                    t1 * 2.0 < tr,
                    format!(
                        "lower bounds: P={tp:.0}s 1C={t1:.0}s R={tr:.0}s (1C {:.1}x better than R)",
                        tr / t1.max(1e-9)
                    ),
                );
                ctx.claim(
                    "fig8-timeout-ordering",
                    "Timeout counts on SkTH3J order as 1C < R < P (paper: 1 / 50 / 78)",
                    run_1c.timeout_count() <= run_r.timeout_count()
                        && run_r.timeout_count() <= run_p.timeout_count(),
                    format!(
                        "timeouts: P={} R={} 1C={}",
                        run_p.timeout_count(),
                        run_r.timeout_count(),
                        run_1c.timeout_count()
                    ),
                );
            }
            if let Some((_, run_1c, run_r)) = family_runs.get("SkTH3Js") {
                let (c1c, cr) = (run_1c.cfc(), run_r.cfc());
                // Does R beat 1C anywhere on the expensive tail?
                let crosses = c1c
                    .breakpoints()
                    .iter()
                    .chain(cr.breakpoints())
                    .any(|&x| cr.at(x * 1.0001) > c1c.at(x * 1.0001) + 1e-9);
                ctx.claim(
                    "fig7-r-wins-tail",
                    "On SkTH3Js the recommendation outperforms 1C on part of the workload (the only such case)",
                    crosses,
                    format!(
                        "curves cross: {crosses} (R timeouts {}, 1C timeouts {})",
                        run_r.timeout_count(),
                        run_1c.timeout_count()
                    ),
                );
            }
        } else if let Some((run_p, run_1c, run_r)) = family_runs.get("UnTH3J") {
            let gap = run_r.total_lower_bound_sim_seconds()
                / run_1c.total_lower_bound_sim_seconds().max(1e-9);
            ctx.claim(
                "fig9-uniform-better",
                "On uniform data the recommender performs relatively better, yet 1C remains best overall",
                gap < 4.0 && run_1c.total_lower_bound_sim_seconds()
                    <= run_r.total_lower_bound_sim_seconds() * 1.05,
                format!(
                    "totals: P={:.0}s R={:.0}s 1C={:.0}s (R/1C = {gap:.2})",
                    run_p.total_lower_bound_sim_seconds(),
                    run_r.total_lower_bound_sim_seconds(),
                    run_1c.total_lower_bound_sim_seconds()
                ),
            );
        }
        ctx.mark("analysis");
        trace.span_end(label);
    }

    // ================= Tables and summary files =================
    ctx.csv(
        "table1_configurations.csv",
        &["configuration", "size_mib", "build_sim_minutes"],
        &table1,
    )?;
    ctx.csv(
        "table2_nref_indexes.csv",
        &["configuration", "table", "w1", "w2", "w3", "w4"],
        &table2,
    )?;
    ctx.csv(
        "table3_tpch_indexes.csv",
        &["configuration", "table", "w1", "w2", "w3", "w4"],
        &table3,
    )?;
    ctx.csv(
        "runs_raw.csv",
        &["family", "configuration", "query", "sim_seconds"],
        &runs_csv,
    )?;
    ctx.csv(
        "totals_lower_bounds.csv",
        &["family", "configuration", "total_lb_s", "timeouts"],
        &totals_csv,
    )?;

    // Convergence curves (profiles x what-if ladder). Both artifacts
    // carry no wall-clock: `convergence.csv` participates in the
    // determinism byte-compare like every other CSV, and
    // `BENCH_convergence.json` is the one `BENCH_*` file that is
    // deterministic too (covered by an explicit test, since `BENCH_*`
    // names are skipped by the generic byte-compare).
    ctx.csv(
        "convergence.csv",
        &CSV_HEADER,
        &convergence_csv_rows(&convergence),
    )?;
    ctx.bytes(
        "BENCH_convergence.json",
        convergence_json(&convergence).as_bytes(),
    )?;

    // Figure 12 companion artifacts: the convergence trajectories as a
    // dedicated CSV (objective scaled to % of initial) and an ASCII
    // step plot in `figures.txt`. Both derive purely from the what-if
    // ladder data above, so they byte-compare across runs and thread
    // counts like `convergence.csv` does.
    ctx.csv(
        "fig12_convergence_curve.csv",
        &FIG12_HEADER,
        &fig12_csv_rows(&convergence),
    )?;
    ctx.figure(
        "Figure 12: convergence curves, objective vs what-if calls (NREF2J)",
        &render_convergence_curve(&convergence),
    );

    // Executor bench record (schema `tab-exec-bench-v1`): wall-clock of
    // the morsel-driven executor variants measured in the NREF section.
    // Wall-clock ⇒ `BENCH_` prefix ⇒ excluded from byte-compares.
    ctx.bytes(
        "BENCH_exec.json",
        exec_bench_json(exec_bench_threads, cfg.params.morsel_rows, &exec_bench).as_bytes(),
    )?;

    let claim_rows: Vec<Vec<String>> = ctx
        .claims
        .iter()
        .map(|c| {
            vec![
                c.id.clone(),
                c.statement.clone(),
                if c.holds { "HOLDS" } else { "DIVERGES" }.to_string(),
                c.evidence.clone(),
            ]
        })
        .collect();
    ctx.csv(
        "claims.csv",
        &["id", "paper_claim", "status", "evidence"],
        &claim_rows,
    )?;
    let figures = std::mem::take(&mut ctx.figures);
    ctx.bytes("figures.txt", figures.as_bytes())?;
    ctx.figures = figures;

    // Per-grid-cell timings. Wall-clock varies run to run, so this file
    // is excluded from determinism comparisons (see tests/determinism.rs).
    let timings = timings_json(par.threads(), ctx.t0.elapsed().as_secs_f64(), &ctx.timings);
    ctx.bytes("timings.json", timings.as_bytes())?;

    // Per-phase performance record (schema documented on `bench_json`).
    // The measurement grid is the only phase running metered queries,
    // so it carries the run's entire cost-unit total; the remaining
    // wall-clock since the last mark (tables, summary files) is folded
    // into `report`. Like `timings.json`, `BENCH_*` files hold
    // wall-clock and are skipped by determinism comparisons.
    ctx.mark("report");
    let scale = if cfg.params.nref_proteins < SuiteParams::default().nref_proteins {
        "small"
    } else {
        "full"
    };
    let grid_units: f64 = ctx.timings.iter().map(|t| t.cost_units).sum();
    let phases: Vec<PhaseTiming> = ctx
        .phases
        .iter()
        .map(|&(name, wall_seconds)| PhaseTiming {
            name: name.to_string(),
            wall_seconds,
            cost_units: if name == "measurement-grid" {
                grid_units
            } else {
                0.0
            },
        })
        .collect();
    let bench = bench_json(
        scale,
        par.threads(),
        ctx.t0.elapsed().as_secs_f64(),
        &phases,
    );
    ctx.bytes(&format!("BENCH_repro_{scale}.json"), bench.as_bytes())?;

    // Per-recommendation what-if instrumentation (schema documented on
    // `advisor_bench_json`). Also a `BENCH_*` file: wall-clock varies,
    // everything else is deterministic at any thread count.
    let advisor = advisor_bench_json(par.threads(), &ctx.advisor);
    ctx.bytes("BENCH_advisor.json", advisor.as_bytes())?;

    // Buffer-pool traffic per grid cell (schema `tab-io-bench-v1`,
    // documented on `io_bench_json`). Unlike most `BENCH_*` artifacts
    // this one is wall-clock-free: eviction is a pure function of the
    // logical access stream, so the file byte-compares across thread
    // counts (`tests/determinism.rs` holds us to it, like
    // `BENCH_convergence.json`).
    let io_bench = io_bench_json(cfg.params.buffer_pages, cfg.params.charge, &ctx.io_cells);
    ctx.bytes("BENCH_io.json", io_bench.as_bytes())?;

    // Publish the trace before discarding the journal: a sink that
    // silently swallowed a write failure (injected `enospc:trace` /
    // `truncate:trace`, or a real full disk) must fail the run while a
    // `--resume` is still possible. The partial trace stays at
    // `<path>.tmp`.
    if let Some(s) = sink {
        let path = s.finish().map_err(|e| ReproError::TraceSink {
            path: cfg.trace.clone().unwrap_or_default(),
            message: e.to_string(),
        })?;
        ctx.log(&format!("trace published to {}", path.display()));
    }

    // Every artifact is on disk; the run is no longer resumable because
    // there is nothing left to redo. Drop the journal so output
    // directories of successful runs stay snapshot-clean.
    journal.finish().map_err(|source| ReproError::Journal {
        path: journal_path,
        source,
    })?;

    ctx.log(&format!(
        "done: {}/{} claims hold",
        ctx.claims.iter().filter(|c| c.holds).count(),
        ctx.claims.len()
    ));
    Ok(ReproSummary {
        claims: ctx.claims,
        figures_text: ctx.figures,
    })
}

/// Rows of Tables 2/3: per-table counts of 1..4-column indexes in a
/// recommended configuration, excluding the `P` baseline's primary-key
/// indexes; materialized-view indexes appear as `view:<name>` rows.
fn index_width_rows(recs: &[(&str, &Configuration)], p_config: &Configuration) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    for (name, cfg) in recs {
        let mut per_table: BTreeMap<String, [usize; 4]> = BTreeMap::new();
        for idx in &cfg.indexes {
            if p_config.indexes.contains(idx) {
                continue; // pre-existing PK index
            }
            let w = idx.columns.len().min(4);
            per_table.entry(idx.table.clone()).or_default()[w - 1] += 1;
        }
        for def in &cfg.mviews {
            let entry = per_table
                .entry(format!("view:{}", def.spec.name))
                .or_default();
            for cols in &def.indexes {
                entry[cols.len().min(4) - 1] += 1;
            }
        }
        for (table, widths) in per_table {
            out.push(vec![
                name.to_string(),
                table,
                widths[0].to_string(),
                widths[1].to_string(),
                widths[2].to_string(),
                widths[3].to_string(),
            ]);
        }
    }
    out
}
