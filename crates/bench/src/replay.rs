//! Trace replay and structural diff (`tab replay` / `tab tracediff`).
//!
//! A `tab-trace-v1` document from a traced grid run carries enough to
//! reconstruct what happened without re-executing anything: every
//! `operator` event names its (family, config, query, op) slot with
//! estimates and actuals, every `query` event its outcome and metered
//! units, and the advisor events a full round-by-round search history.
//! [`replay`] folds a parsed [`TraceDoc`] back into that shape — a
//! [`Replay`] of per-cell operator trees plus advisor runs — and
//! [`diff`] compares two replays *structurally*.
//!
//! Structural, not byte-level: parallel grid workers interleave trace
//! lines nondeterministically, so two traces of the same commit are
//! line-permutations of each other. Every event carries its identifying
//! fields precisely so this module can aggregate order-independently
//! and compare the aggregates. The diff reports plan-shape changes
//! (operator label sequences), probe/row/unit drift beyond a relative
//! tolerance, outcome changes, and advisor divergences (round counts,
//! picks, gains) — each finding naming the (family, config, query, op)
//! or (advisor run, round) it anchors to. [`report_json`] renders the
//! findings as a machine-readable `tab-tracediff-v1` document; the CI
//! trace gate fails on any finding.
//!
//! A torn trace (the crash signature of `FileTraceSink` or an injected
//! `truncate:trace` fault) refuses to replay — [`ReplayError::Torn`] —
//! rather than silently half-replaying; DESIGN.md §10's fault matrix
//! exercises exactly this path.

use std::collections::BTreeMap;
use std::fmt;

use tab_storage::trace::json_escape;
use tab_storage::trace_reader::{read_trace, TraceDoc, TraceRecord};

/// One reconstructed operator slot of an executed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedOp {
    /// Operator slot index within the plan.
    pub op: u64,
    /// Operator label, e.g. `IndexScan(protein cols=[2])`.
    pub label: String,
    /// Planner-estimated cost.
    pub est_cost: Option<f64>,
    /// Planner-estimated output rows.
    pub est_rows: Option<f64>,
    /// Actual input rows (absent past a timeout cutoff).
    pub rows_in: Option<u64>,
    /// Actual output rows.
    pub rows_out: Option<u64>,
    /// Actual index probes.
    pub probes: Option<u64>,
    /// Actual metered cost units.
    pub units: Option<f64>,
}

/// One reconstructed (cell, query) execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayedQuery {
    /// `"done"` or `"timeout"` (empty if only operator events arrived).
    pub outcome: String,
    /// Units charged to the query.
    pub units: Option<f64>,
    /// Operator slots in slot order.
    pub ops: BTreeMap<u64, ReplayedOp>,
}

impl ReplayedQuery {
    /// The plan shape: operator labels in slot order.
    pub fn plan_shape(&self) -> Vec<&str> {
        self.ops.values().map(|o| o.label.as_str()).collect()
    }

    /// Sum of operator actual units (operators past a timeout cutoff
    /// contribute nothing, matching the live meter).
    pub fn op_units(&self) -> f64 {
        self.ops.values().filter_map(|o| o.units).sum()
    }
}

/// All queries of one (family, config) grid cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellReplay {
    /// Queries by workload index.
    pub queries: BTreeMap<u64, ReplayedQuery>,
}

impl CellReplay {
    /// Number of queries that timed out.
    pub fn timeouts(&self) -> u64 {
        self.queries
            .values()
            .filter(|q| q.outcome == "timeout")
            .count() as u64
    }

    /// Total units charged across the cell's queries.
    pub fn units(&self) -> f64 {
        self.queries.values().filter_map(|q| q.units).sum()
    }
}

/// One reconstructed advisor round.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedRound {
    /// Zero-based round index.
    pub round: u64,
    /// Picked candidate index.
    pub candidate: u64,
    /// Human-readable candidate description.
    pub desc: String,
    /// Estimated gain of the pick.
    pub gain: Option<f64>,
    /// Objective after the pick.
    pub objective_after: Option<f64>,
    /// What-if requests this round.
    pub whatif_calls: u64,
    /// Planner invocations this round.
    pub planner_calls: u64,
}

/// One reconstructed greedy search (an `advisor_begin` … `advisor_end`
/// block; the harness runs searches sequentially, so blocks never
/// interleave).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdvisorRun {
    /// Advisor name from the events.
    pub advisor: String,
    /// Candidate structures considered.
    pub candidates: u64,
    /// Storage budget in MiB.
    pub budget_mib: u64,
    /// Objective value before the first round.
    pub initial_total: Option<f64>,
    /// Accepted rounds in order.
    pub rounds: Vec<ReplayedRound>,
    /// Stop reason, when the search stopped early with one.
    pub stop_reason: Option<String>,
    /// Final objective from `advisor_end`.
    pub objective_final: Option<f64>,
    /// Total what-if requests from `advisor_end`.
    pub whatif_calls: u64,
    /// Total planner invocations from `advisor_end`.
    pub planner_calls: u64,
}

/// A structurally reconstructed trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Replay {
    /// Grid cells by (family, config).
    pub cells: BTreeMap<(String, String), CellReplay>,
    /// Advisor searches in begin order.
    pub advisor_runs: Vec<AdvisorRun>,
    /// Spans seen, with begin/end counts.
    pub spans: BTreeMap<String, (u64, u64)>,
    /// Malformed lines skipped by the reader.
    pub skipped: usize,
    /// Advisor round/stop/end events with no matching `advisor_begin`.
    pub stray_advisor_events: usize,
}

/// Why a trace refused to replay.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The document ends mid-line: the writer crashed or the file was
    /// truncated. Refusing beats silently replaying half a run.
    Torn,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Torn => write!(
                f,
                "trace is torn (ends mid-line): refusing to replay a partial document"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replay a parsed trace document into its structural aggregate.
pub fn replay(doc: &TraceDoc) -> Result<Replay, ReplayError> {
    if doc.torn_tail {
        return Err(ReplayError::Torn);
    }
    let mut r = Replay {
        skipped: doc.skipped.len(),
        ..Replay::default()
    };
    // The currently open advisor block, if any. Advisor events are
    // emitted sequentially by the harness thread, so one slot suffices.
    let mut open: Option<AdvisorRun> = None;
    for rec in &doc.records {
        match rec {
            TraceRecord::SpanBegin { span } => r.spans.entry(span.clone()).or_default().0 += 1,
            TraceRecord::SpanEnd { span } => r.spans.entry(span.clone()).or_default().1 += 1,
            TraceRecord::Query {
                family,
                config,
                query,
                outcome,
                units,
            } => {
                let q = r
                    .cells
                    .entry((family.clone(), config.clone()))
                    .or_default()
                    .queries
                    .entry(*query)
                    .or_default();
                q.outcome = outcome.clone();
                q.units = *units;
            }
            TraceRecord::Operator {
                family,
                config,
                query,
                op,
                label,
                est_cost,
                est_rows,
                rows_in,
                rows_out,
                probes,
                units,
            } => {
                r.cells
                    .entry((family.clone(), config.clone()))
                    .or_default()
                    .queries
                    .entry(*query)
                    .or_default()
                    .ops
                    .insert(
                        *op,
                        ReplayedOp {
                            op: *op,
                            label: label.clone(),
                            est_cost: *est_cost,
                            est_rows: *est_rows,
                            rows_in: *rows_in,
                            rows_out: *rows_out,
                            probes: *probes,
                            units: *units,
                        },
                    );
            }
            TraceRecord::AdvisorBegin {
                advisor,
                candidates,
                budget_mib,
                initial_total,
                ..
            } => {
                if let Some(prev) = open.take() {
                    // A begin with no end: close the dangling run.
                    r.advisor_runs.push(prev);
                }
                open = Some(AdvisorRun {
                    advisor: advisor.clone(),
                    candidates: *candidates,
                    budget_mib: *budget_mib,
                    initial_total: *initial_total,
                    ..AdvisorRun::default()
                });
            }
            TraceRecord::AdvisorRound {
                round,
                candidate,
                desc,
                gain,
                objective_after,
                whatif_calls,
                planner_calls,
                ..
            } => match open.as_mut() {
                Some(run) => run.rounds.push(ReplayedRound {
                    round: *round,
                    candidate: *candidate,
                    desc: desc.clone(),
                    gain: *gain,
                    objective_after: *objective_after,
                    whatif_calls: *whatif_calls,
                    planner_calls: *planner_calls,
                }),
                None => r.stray_advisor_events += 1,
            },
            TraceRecord::AdvisorStop { reason, .. } => match open.as_mut() {
                Some(run) => {
                    run.stop_reason = Some(reason.clone().unwrap_or_else(|| "threshold".into()))
                }
                None => r.stray_advisor_events += 1,
            },
            TraceRecord::AdvisorEnd {
                objective_final,
                whatif_calls,
                planner_calls,
                ..
            } => match open.take() {
                Some(mut run) => {
                    run.objective_final = *objective_final;
                    run.whatif_calls = *whatif_calls;
                    run.planner_calls = *planner_calls;
                    r.advisor_runs.push(run);
                }
                None => r.stray_advisor_events += 1,
            },
            // Page events are per-access detail under a keyed stream the
            // cell totals already summarize; replay tolerates them and
            // diffs stay at operator granularity.
            TraceRecord::Page { .. } | TraceRecord::Other { .. } => {}
        }
    }
    if let Some(run) = open.take() {
        r.advisor_runs.push(run);
    }
    Ok(r)
}

/// [`replay`] straight from document text.
pub fn replay_str(input: &str) -> Result<Replay, ReplayError> {
    replay(&read_trace(input))
}

/// Options for the structural diff.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Relative tolerance for float comparisons (units, gains,
    /// objectives, estimates): values `a`, `b` diverge when
    /// `|a − b| > tolerance × max(|a|, |b|, 1)`. Plan shapes, row and
    /// probe counts, outcomes, and advisor picks are always exact. The
    /// default is `0.0` — byte-faithful floats, which a same-machine
    /// rerun of a deterministic run satisfies; CI uses a small
    /// tolerance to absorb cross-libm rounding.
    pub tolerance: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions { tolerance: 0.0 }
    }
}

/// One structural divergence between two replays, anchored to the
/// entity it names.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Divergence kind, e.g. `plan_shape`, `units`, `advisor_pick`.
    pub kind: String,
    /// Workload family (grid findings).
    pub family: Option<String>,
    /// Configuration name (grid findings).
    pub config: Option<String>,
    /// Query index (grid findings).
    pub query: Option<u64>,
    /// Operator slot (operator-level findings).
    pub op: Option<u64>,
    /// Advisor run index (advisor findings).
    pub advisor_run: Option<usize>,
    /// Advisor round index (advisor findings).
    pub round: Option<u64>,
    /// Human-readable golden-vs-fresh detail.
    pub detail: String,
}

impl Finding {
    fn grid(kind: &str, family: &str, config: &str, detail: String) -> Finding {
        Finding {
            kind: kind.into(),
            family: Some(family.into()),
            config: Some(config.into()),
            query: None,
            op: None,
            advisor_run: None,
            round: None,
            detail,
        }
    }

    fn query(kind: &str, family: &str, config: &str, query: u64, detail: String) -> Finding {
        Finding {
            query: Some(query),
            ..Finding::grid(kind, family, config, detail)
        }
    }

    fn op(kind: &str, family: &str, config: &str, query: u64, op: u64, detail: String) -> Finding {
        Finding {
            op: Some(op),
            ..Finding::query(kind, family, config, query, detail)
        }
    }

    fn advisor(kind: &str, run: usize, round: Option<u64>, detail: String) -> Finding {
        Finding {
            kind: kind.into(),
            family: None,
            config: None,
            query: None,
            op: None,
            advisor_run: Some(run),
            round,
            detail,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if let (Some(fam), Some(cfg)) = (&self.family, &self.config) {
            write!(f, " {fam}/{cfg}")?;
            if let Some(q) = self.query {
                write!(f, " q{q}")?;
            }
            if let Some(op) = self.op {
                write!(f, " op{op}")?;
            }
        }
        if let Some(run) = self.advisor_run {
            write!(f, " advisor#{run}")?;
            if let Some(rd) = self.round {
                write!(f, " round{rd}")?;
            }
        }
        write!(f, ": {}", self.detail)
    }
}

/// Whether two optional floats diverge beyond the relative tolerance.
/// `None` (absent or non-finite in the trace) only matches `None`.
fn float_diverges(a: Option<f64>, b: Option<f64>, tol: f64) -> bool {
    match (a, b) {
        (None, None) => false,
        (Some(a), Some(b)) => (a - b).abs() > tol * a.abs().max(b.abs()).max(1.0),
        _ => true,
    }
}

/// Render an optional float for finding details.
fn show_f(v: Option<f64>) -> String {
    v.map_or_else(|| "absent".into(), |v| format!("{v:.3}"))
}

/// Render an optional integer for finding details.
fn show_u(v: Option<u64>) -> String {
    v.map_or_else(|| "absent".into(), |v| v.to_string())
}

/// Structurally diff two replays: `golden` is the committed reference,
/// `fresh` the run under test. Any returned finding is a regression the
/// trace gate fails on — including cells or advisor runs that exist on
/// only one side (a stale golden must fail loudly, pointing at the
/// regeneration recipe, never pass by accident).
pub fn diff(golden: &Replay, fresh: &Replay, opts: DiffOptions) -> Vec<Finding> {
    let tol = opts.tolerance;
    let mut out = Vec::new();

    let keys: std::collections::BTreeSet<_> =
        golden.cells.keys().chain(fresh.cells.keys()).collect();
    for key in keys {
        let (family, config) = key;
        match (golden.cells.get(key), fresh.cells.get(key)) {
            (Some(_), None) => out.push(Finding::grid(
                "missing_cell",
                family,
                config,
                "cell present in golden, absent in fresh".into(),
            )),
            (None, Some(_)) => out.push(Finding::grid(
                "extra_cell",
                family,
                config,
                "cell absent in golden, present in fresh".into(),
            )),
            (Some(g), Some(f)) => diff_cell(family, config, g, f, tol, &mut out),
            (None, None) => unreachable!("key came from one of the maps"),
        }
    }

    let runs = golden.advisor_runs.len().max(fresh.advisor_runs.len());
    for i in 0..runs {
        match (golden.advisor_runs.get(i), fresh.advisor_runs.get(i)) {
            (Some(_), None) => out.push(Finding::advisor(
                "missing_advisor_run",
                i,
                None,
                "advisor run present in golden, absent in fresh".into(),
            )),
            (None, Some(_)) => out.push(Finding::advisor(
                "extra_advisor_run",
                i,
                None,
                "advisor run absent in golden, present in fresh".into(),
            )),
            (Some(g), Some(f)) => diff_advisor(i, g, f, tol, &mut out),
            (None, None) => {}
        }
    }
    out
}

/// Diff one shared (family, config) cell.
fn diff_cell(
    family: &str,
    config: &str,
    golden: &CellReplay,
    fresh: &CellReplay,
    tol: f64,
    out: &mut Vec<Finding>,
) {
    let keys: std::collections::BTreeSet<_> =
        golden.queries.keys().chain(fresh.queries.keys()).collect();
    for qi in keys {
        match (golden.queries.get(qi), fresh.queries.get(qi)) {
            (Some(_), None) => out.push(Finding::query(
                "missing_query",
                family,
                config,
                *qi,
                "query present in golden, absent in fresh".into(),
            )),
            (None, Some(_)) => out.push(Finding::query(
                "extra_query",
                family,
                config,
                *qi,
                "query absent in golden, present in fresh".into(),
            )),
            (Some(g), Some(f)) => diff_query(family, config, *qi, g, f, tol, out),
            (None, None) => unreachable!("key came from one of the maps"),
        }
    }
}

/// Diff one shared (cell, query) execution.
fn diff_query(
    family: &str,
    config: &str,
    qi: u64,
    golden: &ReplayedQuery,
    fresh: &ReplayedQuery,
    tol: f64,
    out: &mut Vec<Finding>,
) {
    if golden.outcome != fresh.outcome {
        out.push(Finding::query(
            "outcome",
            family,
            config,
            qi,
            format!("golden {:?}, fresh {:?}", golden.outcome, fresh.outcome),
        ));
    }
    if float_diverges(golden.units, fresh.units, tol) {
        out.push(Finding::query(
            "query_units",
            family,
            config,
            qi,
            format!(
                "golden {}, fresh {}",
                show_f(golden.units),
                show_f(fresh.units)
            ),
        ));
    }
    // Plan shape: the operator label sequence must match exactly. A
    // shape change subsumes per-op comparisons, so stop here.
    let gs = golden.plan_shape();
    let fs = fresh.plan_shape();
    if gs != fs {
        out.push(Finding::query(
            "plan_shape",
            family,
            config,
            qi,
            format!("golden [{}], fresh [{}]", gs.join(" | "), fs.join(" | ")),
        ));
        return;
    }
    for (op, g) in &golden.ops {
        let f = &fresh.ops[op]; // same shape ⇒ same slots
        if g.rows_in != f.rows_in || g.rows_out != f.rows_out {
            out.push(Finding::op(
                "rows",
                family,
                config,
                qi,
                *op,
                format!(
                    "{}: rows_in golden {} fresh {}, rows_out golden {} fresh {}",
                    g.label,
                    show_u(g.rows_in),
                    show_u(f.rows_in),
                    show_u(g.rows_out),
                    show_u(f.rows_out)
                ),
            ));
        }
        if g.probes != f.probes {
            out.push(Finding::op(
                "probes",
                family,
                config,
                qi,
                *op,
                format!(
                    "{}: golden {}, fresh {}",
                    g.label,
                    show_u(g.probes),
                    show_u(f.probes)
                ),
            ));
        }
        if float_diverges(g.units, f.units, tol) {
            out.push(Finding::op(
                "op_units",
                family,
                config,
                qi,
                *op,
                format!(
                    "{}: golden {}, fresh {}",
                    g.label,
                    show_f(g.units),
                    show_f(f.units)
                ),
            ));
        }
        if float_diverges(g.est_cost, f.est_cost, tol)
            || float_diverges(g.est_rows, f.est_rows, tol)
        {
            out.push(Finding::op(
                "estimates",
                family,
                config,
                qi,
                *op,
                format!(
                    "{}: est_cost golden {} fresh {}, est_rows golden {} fresh {}",
                    g.label,
                    show_f(g.est_cost),
                    show_f(f.est_cost),
                    show_f(g.est_rows),
                    show_f(f.est_rows)
                ),
            ));
        }
    }
}

/// Diff one shared advisor run.
fn diff_advisor(
    i: usize,
    golden: &AdvisorRun,
    fresh: &AdvisorRun,
    tol: f64,
    out: &mut Vec<Finding>,
) {
    if golden.candidates != fresh.candidates {
        out.push(Finding::advisor(
            "advisor_candidates",
            i,
            None,
            format!("golden {}, fresh {}", golden.candidates, fresh.candidates),
        ));
    }
    if float_diverges(golden.initial_total, fresh.initial_total, tol) {
        out.push(Finding::advisor(
            "advisor_initial_objective",
            i,
            None,
            format!(
                "golden {}, fresh {}",
                show_f(golden.initial_total),
                show_f(fresh.initial_total)
            ),
        ));
    }
    if golden.rounds.len() != fresh.rounds.len() {
        out.push(Finding::advisor(
            "advisor_rounds",
            i,
            None,
            format!(
                "golden {} rounds, fresh {} rounds",
                golden.rounds.len(),
                fresh.rounds.len()
            ),
        ));
    }
    for (g, f) in golden.rounds.iter().zip(&fresh.rounds) {
        if g.candidate != f.candidate || g.desc != f.desc {
            out.push(Finding::advisor(
                "advisor_pick",
                i,
                Some(g.round),
                format!(
                    "golden #{} ({}), fresh #{} ({})",
                    g.candidate, g.desc, f.candidate, f.desc
                ),
            ));
            // A different pick makes the rest of this run incomparable.
            break;
        }
        if float_diverges(g.gain, f.gain, tol)
            || float_diverges(g.objective_after, f.objective_after, tol)
        {
            out.push(Finding::advisor(
                "advisor_gain",
                i,
                Some(g.round),
                format!(
                    "{}: gain golden {} fresh {}, objective golden {} fresh {}",
                    g.desc,
                    show_f(g.gain),
                    show_f(f.gain),
                    show_f(g.objective_after),
                    show_f(f.objective_after)
                ),
            ));
        }
        if g.whatif_calls != f.whatif_calls || g.planner_calls != f.planner_calls {
            out.push(Finding::advisor(
                "advisor_calls",
                i,
                Some(g.round),
                format!(
                    "whatif golden {} fresh {}, planner golden {} fresh {}",
                    g.whatif_calls, f.whatif_calls, g.planner_calls, f.planner_calls
                ),
            ));
        }
    }
    if float_diverges(golden.objective_final, fresh.objective_final, tol) {
        out.push(Finding::advisor(
            "advisor_final_objective",
            i,
            None,
            format!(
                "golden {}, fresh {}",
                show_f(golden.objective_final),
                show_f(fresh.objective_final)
            ),
        ));
    }
}

/// Render findings as a machine-readable `tab-tracediff-v1` document:
/// one JSON object with a `findings` array, `clean` verdict, and the
/// inputs it compared.
pub fn report_json(
    golden_name: &str,
    fresh_name: &str,
    tolerance: f64,
    findings: &[Finding],
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"tab-tracediff-v1\",\n");
    out.push_str(&format!(
        "  \"golden\": \"{}\",\n  \"fresh\": \"{}\",\n",
        json_escape(golden_name),
        json_escape(fresh_name)
    ));
    out.push_str(&format!("  \"tolerance\": {tolerance:e},\n"));
    out.push_str(&format!(
        "  \"clean\": {},\n  \"finding_count\": {},\n",
        findings.is_empty(),
        findings.len()
    ));
    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"kind\": \"{}\"", json_escape(&f.kind)));
        if let Some(v) = &f.family {
            out.push_str(&format!(", \"family\": \"{}\"", json_escape(v)));
        }
        if let Some(v) = &f.config {
            out.push_str(&format!(", \"config\": \"{}\"", json_escape(v)));
        }
        if let Some(v) = f.query {
            out.push_str(&format!(", \"query\": {v}"));
        }
        if let Some(v) = f.op {
            out.push_str(&format!(", \"op\": {v}"));
        }
        if let Some(v) = f.advisor_run {
            out.push_str(&format!(", \"advisor_run\": {v}"));
        }
        if let Some(v) = f.round {
            out.push_str(&format!(", \"round\": {v}"));
        }
        out.push_str(&format!(", \"detail\": \"{}\"", json_escape(&f.detail)));
        out.push('}');
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render a human-readable replay summary: per-cell totals and advisor
/// runs — what `tab replay` prints.
pub fn render_summary(r: &Replay) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<14} {:>7} {:>8} {:>7} {:>14}",
        "family", "config", "queries", "timeouts", "ops", "units"
    );
    for ((family, config), cell) in &r.cells {
        let ops: usize = cell.queries.values().map(|q| q.ops.len()).sum();
        let _ = writeln!(
            out,
            "{family:<10} {config:<14} {:>7} {:>8} {ops:>7} {:>14.3}",
            cell.queries.len(),
            cell.timeouts(),
            cell.units()
        );
    }
    if !r.advisor_runs.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<4} {:<8} {:>10} {:>7} {:>14} {:>14} {:>12}",
            "run", "advisor", "candidates", "rounds", "initial", "final", "whatif"
        );
        for (i, run) in r.advisor_runs.iter().enumerate() {
            let _ = writeln!(
                out,
                "{i:<4} {:<8} {:>10} {:>7} {:>14} {:>14} {:>12}",
                run.advisor,
                run.candidates,
                run.rounds.len(),
                show_f(run.initial_total),
                show_f(run.objective_final),
                run.whatif_calls
            );
        }
    }
    if r.skipped > 0 {
        let _ = writeln!(out, "\nskipped {} malformed line(s)", r.skipped);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> String {
        concat!(
            r#"{"schema":"tab-trace-v1","event":"span_begin","span":"NREF"}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"operator","family":"F","config":"P","query":0,"op":0,"label":"FreqSetup","est_cost":0.000,"est_rows":0.000,"rows_in":0,"rows_out":0,"probes":0,"units":0.000}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"operator","family":"F","config":"P","query":0,"op":1,"label":"SeqScan(t)","est_cost":4.000,"est_rows":2.000,"rows_in":0,"rows_out":5,"probes":0,"units":4.250}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"query","family":"F","config":"P","query":0,"outcome":"done","units":4.250}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"advisor_begin","advisor":"R","candidates":3,"budget_mib":10,"initial_total":100.000,"threshold":0.200}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"advisor_round","advisor":"R","round":0,"candidate":2,"desc":"INDEX t(a)","gain":40.000,"density":0.001,"size_bytes":4096,"objective_after":60.000,"whatif_calls":9,"planner_calls":6,"cache_hits":3}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"advisor_end","advisor":"R","rounds":1,"objective_final":60.000,"whatif_calls":9,"planner_calls":6,"cache_hits":3}"#,
            "\n",
        )
        .to_string()
    }

    #[test]
    fn replays_cells_and_advisor_runs() {
        let r = replay_str(&sample_trace()).expect("replay");
        assert_eq!(r.cells.len(), 1);
        let cell = &r.cells[&("F".to_string(), "P".to_string())];
        assert_eq!(cell.queries.len(), 1);
        let q = &cell.queries[&0];
        assert_eq!(q.outcome, "done");
        assert_eq!(q.plan_shape(), vec!["FreqSetup", "SeqScan(t)"]);
        assert!((q.op_units() - 4.25).abs() < 1e-9);
        assert_eq!(r.advisor_runs.len(), 1);
        let run = &r.advisor_runs[0];
        assert_eq!(run.advisor, "R");
        assert_eq!(run.rounds.len(), 1);
        assert_eq!(run.rounds[0].candidate, 2);
        assert_eq!(run.objective_final, Some(60.0));
        assert_eq!(r.spans["NREF"], (1, 0));
    }

    #[test]
    fn torn_trace_refuses_to_replay() {
        let mut torn = sample_trace();
        torn.truncate(torn.len() - 20); // cut mid-line, no trailing \n
        assert_eq!(replay_str(&torn), Err(ReplayError::Torn));
    }

    #[test]
    fn self_diff_is_empty_and_line_order_is_irrelevant() {
        let r = replay_str(&sample_trace()).expect("replay");
        assert!(diff(&r, &r, DiffOptions::default()).is_empty());
        // Permute the grid lines (parallel workers interleave them
        // arbitrarily); advisor blocks stay in order, as in a real
        // trace, where the harness emits them sequentially.
        let text = sample_trace();
        let (grid, advisor): (Vec<&str>, Vec<&str>) = text
            .lines()
            .partition(|l| !l.contains("\"event\":\"advisor"));
        let mut lines: Vec<&str> = grid;
        lines.reverse();
        lines.extend(advisor);
        let permuted = lines.join("\n") + "\n";
        let rp = replay_str(&permuted).expect("replay permuted");
        assert!(diff(&r, &rp, DiffOptions::default()).is_empty());
    }

    #[test]
    fn perturbations_are_detected_and_named() {
        let r = replay_str(&sample_trace()).expect("replay");

        // Plan-shape perturbation: a different operator label.
        let shape = sample_trace().replace("SeqScan(t)", "IndexScan(t cols=[1])");
        let rs = replay_str(&shape).expect("replay");
        let fs = diff(&r, &rs, DiffOptions::default());
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].kind, "plan_shape");
        assert_eq!(fs[0].family.as_deref(), Some("F"));
        assert_eq!(fs[0].config.as_deref(), Some("P"));
        assert_eq!(fs[0].query, Some(0));
        assert!(fs[0].to_string().contains("F/P"), "{}", fs[0]);

        // Unit drift beyond tolerance, caught at op and query level.
        let units = sample_trace().replace("\"units\":4.250", "\"units\":5.000");
        let ru = replay_str(&units).expect("replay");
        let fu = diff(&r, &ru, DiffOptions { tolerance: 1e-6 });
        assert!(fu.iter().any(|f| f.kind == "op_units"), "{fu:?}");
        // ... while a generous tolerance absorbs it.
        assert!(diff(&r, &ru, DiffOptions { tolerance: 0.5 }).is_empty());

        // Advisor pick perturbation.
        let pick = sample_trace().replace("\"candidate\":2", "\"candidate\":1");
        let rp = replay_str(&pick).expect("replay");
        let fp = diff(&r, &rp, DiffOptions::default());
        assert!(fp.iter().any(|f| f.kind == "advisor_pick"), "{fp:?}");

        // A missing cell (stale golden) fails, both directions.
        let empty = Replay::default();
        assert!(diff(&r, &empty, DiffOptions::default())
            .iter()
            .any(|f| f.kind == "missing_cell"));
        assert!(diff(&empty, &r, DiffOptions::default())
            .iter()
            .any(|f| f.kind == "extra_cell"));
    }

    #[test]
    fn report_json_is_schema_tagged() {
        let r = replay_str(&sample_trace()).expect("replay");
        let shape = sample_trace().replace("SeqScan(t)", "HashJoin(x)");
        let rs = replay_str(&shape).expect("replay");
        let findings = diff(&r, &rs, DiffOptions::default());
        let doc = report_json("golden.jsonl", "fresh.jsonl", 0.0, &findings);
        assert!(doc.contains("\"schema\": \"tab-tracediff-v1\""), "{doc}");
        assert!(doc.contains("\"clean\": false"), "{doc}");
        assert!(doc.contains("\"kind\": \"plan_shape\""), "{doc}");
        assert!(doc.contains("\"family\": \"F\""), "{doc}");
        let clean = report_json("a", "b", 1e-6, &[]);
        assert!(clean.contains("\"clean\": true"), "{clean}");
    }
}
