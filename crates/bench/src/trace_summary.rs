//! Aggregate a `tab-trace-v1` JSONL trace into per-(family, config)
//! operator cost tables.
//!
//! A traced repro run emits one `operator` event per executed plan
//! operator and one `query` event per (cell, query) job. This module
//! folds those into the per-operator evidence tables EXPERIMENTS.md's
//! divergence post-mortem is built from: for every (family, config,
//! operator kind), the number of instances, total metered cost units,
//! and total rows produced.
//!
//! Parsing is delegated to `tab-storage`'s typed
//! [`read_trace`] reader — the same layer under
//! `tab replay` and `tab tracediff` — so malformed lines and torn tails
//! are *counted and reported* at the end of the summary instead of
//! silently dropped.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tab_storage::{read_trace, TraceRecord};

/// The operator kind of a label: its leading alphanumeric run, so
/// `IndexScan(protein cols=[2])` and `IndexScan(source ...)` aggregate
/// together as `IndexScan`.
fn op_kind(label: &str) -> &str {
    let end = label
        .find(|c: char| !c.is_ascii_alphanumeric())
        .unwrap_or(label.len());
    &label[..end]
}

#[derive(Default)]
struct OpAgg {
    count: u64,
    units: f64,
    rows_out: u64,
    probes: u64,
}

#[derive(Default)]
struct CellAgg {
    queries: u64,
    timeouts: u64,
    units: f64,
}

/// Summarize a full `tab-trace-v1` document: one row per (family,
/// config, operator kind) with instance counts, metered units, rows, and
/// probes, followed by per-(family, config) query/timeout totals.
/// Events other than `operator` and `query` are ignored; lines that fail
/// to parse (and a torn tail) are accounted for in a trailing damage
/// report rather than silently skipped.
pub fn summarize(input: &str) -> String {
    let doc = read_trace(input);
    let mut ops: BTreeMap<(String, String, String), OpAgg> = BTreeMap::new();
    let mut cells: BTreeMap<(String, String), CellAgg> = BTreeMap::new();
    for rec in &doc.records {
        match rec {
            TraceRecord::Operator {
                family,
                config,
                label,
                rows_out,
                probes,
                units,
                ..
            } => {
                let agg = ops
                    .entry((family.clone(), config.clone(), op_kind(label).to_string()))
                    .or_default();
                agg.count += 1;
                // `units`/`rows_out`/`probes` are absent past the point
                // where a timed-out query stopped executing.
                agg.units += units.unwrap_or(0.0);
                agg.rows_out += rows_out.unwrap_or(0);
                agg.probes += probes.unwrap_or(0);
            }
            TraceRecord::Query {
                family,
                config,
                outcome,
                units,
                ..
            } => {
                let agg = cells.entry((family.clone(), config.clone())).or_default();
                agg.queries += 1;
                if outcome == "timeout" {
                    agg.timeouts += 1;
                }
                agg.units += units.unwrap_or(0.0);
            }
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<14} {:<14} {:>7} {:>14} {:>12} {:>10}",
        "family", "config", "operator", "count", "units", "rows_out", "probes"
    );
    for ((family, config, op), a) in &ops {
        let _ = writeln!(
            out,
            "{family:<10} {config:<14} {op:<14} {:>7} {:>14.3} {:>12} {:>10}",
            a.count, a.units, a.rows_out, a.probes
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<10} {:<14} {:>7} {:>8} {:>14}",
        "family", "config", "queries", "timeouts", "units"
    );
    for ((family, config), a) in &cells {
        let _ = writeln!(
            out,
            "{family:<10} {config:<14} {:>7} {:>8} {:>14.3}",
            a.queries, a.timeouts, a.units
        );
    }
    if let Some(report) = doc.damage_report() {
        let _ = writeln!(out);
        let _ = writeln!(out, "WARNING: {report}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_aggregates_by_family_config_and_op_kind() {
        let trace = concat!(
            r#"{"schema":"tab-trace-v1","event":"span_begin","span":"NREF"}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"operator","family":"F","config":"P","query":0,"op":1,"label":"SeqScan(t)","est_cost":4.0,"est_rows":2.0,"rows_in":0,"rows_out":5,"probes":0,"units":4.250}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"operator","family":"F","config":"P","query":1,"op":1,"label":"SeqScan(u)","est_cost":1.0,"est_rows":1.0,"rows_in":0,"rows_out":3,"probes":0,"units":0.750}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"operator","family":"F","config":"1C","query":0,"op":1,"label":"IndexScan(t cols=[2])","est_cost":2.0,"est_rows":2.0,"rows_in":0,"rows_out":5,"probes":0,"units":1.500}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"query","family":"F","config":"P","query":0,"outcome":"done","units":4.252}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"query","family":"F","config":"P","query":1,"outcome":"timeout","units":500.000}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"query","family":"F","config":"1C","query":0,"outcome":"done","units":1.502}"#,
            "\n",
        );
        let s = summarize(trace);
        // The two P SeqScans fold into one row; the 1C IndexScan keeps
        // its own (family, config, kind) row.
        assert!(s.contains("SeqScan"), "{s}");
        let seq_row = s.lines().find(|l| l.contains("SeqScan")).unwrap();
        assert!(seq_row.contains("2"), "count of 2: {seq_row}");
        assert!(seq_row.contains("5.000"), "4.25+0.75 units: {seq_row}");
        assert!(s.contains("IndexScan"), "{s}");
        // Query totals: P has 2 queries 1 timeout, 1C has 1 query.
        let p_cell = s
            .lines()
            .rfind(|l| l.split_whitespace().nth(1) == Some("P"))
            .unwrap();
        assert!(p_cell.contains("504.252"), "{p_cell}");
        assert!(!s.contains("WARNING"), "clean input: {s}");
    }

    #[test]
    fn malformed_and_torn_input_is_reported_not_dropped() {
        let trace = concat!(
            r#"{"schema":"tab-trace-v1","event":"query","family":"F","config":"P","query":0,"outcome":"done","units":1.000}"#,
            "\n",
            "garbage line\n",
            r#"{"schema":"tab-trace-v1","event":"query","fam"#, // torn
        );
        let s = summarize(trace);
        assert!(s.contains("WARNING"), "{s}");
        assert!(s.contains("skipped 1 malformed line(s)"), "{s}");
        assert!(s.contains("line 2"), "{s}");
        assert!(s.contains("torn tail"), "{s}");
    }
}
