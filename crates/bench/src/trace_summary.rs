//! Aggregate a `tab-trace-v1` JSONL trace into per-(family, config)
//! operator cost tables.
//!
//! A traced repro run emits one `operator` event per executed plan
//! operator and one `query` event per (cell, query) job. This module
//! folds those into the per-operator evidence tables EXPERIMENTS.md's
//! divergence post-mortem is built from: for every (family, config,
//! operator kind), the number of instances, total metered cost units,
//! and total rows produced.
//!
//! The parser is deliberately narrow: it only reads lines produced by
//! [`tab_core::TraceEvent`], whose rendering never puts a space after
//! the `"key":` colon, so scalar fields can be extracted with a string
//! scan instead of a JSON dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Extract the raw scalar value of `key` from one flat JSONL event line
/// (`None` when absent). Handles the string/number/null forms
/// [`tab_core::TraceEvent`] emits; not a general JSON parser.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(s) = rest.strip_prefix('"') {
        // String value: trace keys never contain escaped quotes, and
        // label values escape them as \" — scan for the bare quote.
        let mut prev = b' ';
        for (i, b) in s.bytes().enumerate() {
            if b == b'"' && prev != b'\\' {
                return Some(&s[..i]);
            }
            prev = b;
        }
        None
    } else {
        Some(rest.split([',', '}']).next().unwrap_or(rest).trim())
    }
}

/// The operator kind of a label: its leading alphanumeric run, so
/// `IndexScan(protein cols=[2])` and `IndexScan(source ...)` aggregate
/// together as `IndexScan`.
fn op_kind(label: &str) -> &str {
    let end = label
        .find(|c: char| !c.is_ascii_alphanumeric())
        .unwrap_or(label.len());
    &label[..end]
}

#[derive(Default)]
struct OpAgg {
    count: u64,
    units: f64,
    rows_out: u64,
    probes: u64,
}

#[derive(Default)]
struct CellAgg {
    queries: u64,
    timeouts: u64,
    units: f64,
}

/// Summarize a full `tab-trace-v1` document: one row per (family,
/// config, operator kind) with instance counts, metered units, rows, and
/// probes, followed by per-(family, config) query/timeout totals. Lines
/// that are not `operator` or `query` events are ignored.
pub fn summarize(input: &str) -> String {
    let mut ops: BTreeMap<(String, String, String), OpAgg> = BTreeMap::new();
    let mut cells: BTreeMap<(String, String), CellAgg> = BTreeMap::new();
    for line in input.lines() {
        let (Some(event), Some(family), Some(config)) = (
            field(line, "event"),
            field(line, "family"),
            field(line, "config"),
        ) else {
            continue;
        };
        match event {
            "operator" => {
                let label = field(line, "label").unwrap_or("");
                let agg = ops
                    .entry((
                        family.to_string(),
                        config.to_string(),
                        op_kind(label).to_string(),
                    ))
                    .or_default();
                agg.count += 1;
                // `units`/`rows_out`/`probes` are absent past the point
                // where a timed-out query stopped executing.
                if let Some(u) = field(line, "units").and_then(|v| v.parse::<f64>().ok()) {
                    agg.units += u;
                }
                if let Some(r) = field(line, "rows_out").and_then(|v| v.parse::<u64>().ok()) {
                    agg.rows_out += r;
                }
                if let Some(p) = field(line, "probes").and_then(|v| v.parse::<u64>().ok()) {
                    agg.probes += p;
                }
            }
            "query" => {
                let agg = cells
                    .entry((family.to_string(), config.to_string()))
                    .or_default();
                agg.queries += 1;
                if field(line, "outcome") == Some("timeout") {
                    agg.timeouts += 1;
                }
                if let Some(u) = field(line, "units").and_then(|v| v.parse::<f64>().ok()) {
                    agg.units += u;
                }
            }
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<14} {:<14} {:>7} {:>14} {:>12} {:>10}",
        "family", "config", "operator", "count", "units", "rows_out", "probes"
    );
    for ((family, config, op), a) in &ops {
        let _ = writeln!(
            out,
            "{family:<10} {config:<14} {op:<14} {:>7} {:>14.3} {:>12} {:>10}",
            a.count, a.units, a.rows_out, a.probes
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<10} {:<14} {:>7} {:>8} {:>14}",
        "family", "config", "queries", "timeouts", "units"
    );
    for ((family, config), a) in &cells {
        let _ = writeln!(
            out,
            "{family:<10} {config:<14} {:>7} {:>8} {:>14.3}",
            a.queries, a.timeouts, a.units
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extracts_strings_numbers_and_null() {
        let line = r#"{"schema":"tab-trace-v1","event":"operator","family":"NREF2J","label":"SeqScan(\"t\")","units":1.250,"bad":null,"rows_out":7}"#;
        assert_eq!(field(line, "event"), Some("operator"));
        assert_eq!(field(line, "family"), Some("NREF2J"));
        assert_eq!(field(line, "label"), Some(r#"SeqScan(\"t\")"#));
        assert_eq!(field(line, "units"), Some("1.250"));
        assert_eq!(field(line, "bad"), Some("null"));
        assert_eq!(field(line, "rows_out"), Some("7"));
        assert_eq!(field(line, "missing"), None);
    }

    #[test]
    fn summarize_aggregates_by_family_config_and_op_kind() {
        let trace = concat!(
            r#"{"schema":"tab-trace-v1","event":"span_begin","span":"NREF"}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"operator","family":"F","config":"P","query":0,"op":1,"label":"SeqScan(t)","est_cost":4.0,"est_rows":2.0,"rows_in":0,"rows_out":5,"probes":0,"units":4.250}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"operator","family":"F","config":"P","query":1,"op":1,"label":"SeqScan(u)","est_cost":1.0,"est_rows":1.0,"rows_in":0,"rows_out":3,"probes":0,"units":0.750}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"operator","family":"F","config":"1C","query":0,"op":1,"label":"IndexScan(t cols=[2])","est_cost":2.0,"est_rows":2.0,"rows_in":0,"rows_out":5,"probes":0,"units":1.500}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"query","family":"F","config":"P","query":0,"outcome":"done","units":4.252}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"query","family":"F","config":"P","query":1,"outcome":"timeout","units":500.000}"#,
            "\n",
            r#"{"schema":"tab-trace-v1","event":"query","family":"F","config":"1C","query":0,"outcome":"done","units":1.502}"#,
            "\n",
        );
        let s = summarize(trace);
        // The two P SeqScans fold into one row; the 1C IndexScan keeps
        // its own (family, config, kind) row.
        assert!(s.contains("SeqScan"), "{s}");
        let seq_row = s.lines().find(|l| l.contains("SeqScan")).unwrap();
        assert!(seq_row.contains("2"), "count of 2: {seq_row}");
        assert!(seq_row.contains("5.000"), "4.25+0.75 units: {seq_row}");
        assert!(s.contains("IndexScan"), "{s}");
        // Query totals: P has 2 queries 1 timeout, 1C has 1 query.
        let p_cell = s
            .lines()
            .filter(|l| l.split_whitespace().nth(1) == Some("P"))
            .last()
            .unwrap();
        assert!(p_cell.contains("504.252"), "{p_cell}");
    }
}
