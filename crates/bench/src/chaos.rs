//! The kill -9 chaos serving benchmark behind `tab bench chaos`.
//!
//! This is the durability proof of DESIGN.md §15 run against a **real
//! server process**, not an in-process harness:
//!
//! 1. **Baseline** — an uninterrupted in-process engine applies the
//!    same deterministic insert sequence and answers the same read-back
//!    workload; its acknowledgements and query results are the claims
//!    the served run must reproduce bit-exactly.
//! 2. **Load with a lost ack** — a `tab serve --wal …` child process is
//!    spawned with a `drop:conn:<i>` wire fault armed, so exactly one
//!    INSERT is applied server-side but its acknowledgement never
//!    arrives. The [`RetryClient`] resends the same sequence number and
//!    must receive the cached ack (`"deduped":true`) — the retry
//!    converges without double-applying.
//! 3. **kill -9 mid-load** — after a deterministic number of acked
//!    inserts the child is SIGKILLed. No flush, no shutdown hook: the
//!    only survivor is the WAL's fsynced tail.
//! 4. **Recover and resume** — a fresh child opens the same WAL,
//!    replays it, and reports the count; the client re-targets the new
//!    port (sequence numbering intact) and drives the remaining
//!    inserts. Every acknowledgement — before the kill, after the
//!    restart — must match the baseline's generation, row id, and
//!    bit-identical maintenance units.
//! 5. **Read-back** — sampled workload queries run over the wire and
//!    must match direct sessions on the baseline engine: same verdict,
//!    same row count, bit-identical cost units. An acked write that
//!    vanished, or a row applied twice, shows up here as a divergence.
//!
//! The emitted `BENCH_chaos.json` (`tab-chaos-bench-v1`) is
//! deterministic except for the wall-clock lines, which live alone on
//! dedicated lines so byte-compares can drop them — the same contract
//! as `BENCH_serve.json` (DESIGN.md §14).

use std::io::{BufRead, Read};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

use tab_core::{build_1c, build_p, Parallelism};
use tab_engine::{EngineState, Session, SharedEngine, SharedInsert};
use tab_families::{sample_preserving_par, Family};
use tab_server::{Response, RetryClient};
use tab_sqlq::{parse_statement, Query, Statement};
use tab_storage::Database;

use crate::serve_bench::wire_outcome;

/// Chaos harness knobs. `Default` is the small CI shape.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Binary exposing the `serve` subcommand (the `tab` CLI; the
    /// driver passes its own `current_exe`).
    pub server_bin: PathBuf,
    /// Database spec forwarded to the child's `--db` (must be an
    /// `nref` spec — the insert template targets NREF's `source`
    /// table).
    pub db_spec: String,
    /// Where the WAL lives across the kill. Removed at the start of a
    /// run so every run starts from generation 0.
    pub wal_path: PathBuf,
    /// Total inserts to drive (and prove acknowledged).
    pub inserts: usize,
    /// SIGKILL the server after this many acknowledged inserts
    /// (`0 < kill_after < inserts`).
    pub kill_after: usize,
    /// Response index at which the armed `drop:conn` fault swallows
    /// one acknowledgement (must land before the kill).
    pub drop_at: u64,
    /// Post-recovery read-back queries (cycled over the sampled
    /// workload, `p`/`1c` by parity).
    pub queries: usize,
    /// Workload sample size for the read-back phase.
    pub workload: usize,
    /// Thread budget for family enumeration and sampling.
    pub par: Parallelism,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            server_bin: PathBuf::from("tab"),
            db_spec: "nref:300".into(),
            wal_path: std::env::temp_dir().join("tab_chaos.wal"),
            inserts: 12,
            kill_after: 5,
            drop_at: 2,
            queries: 6,
            workload: 4,
            par: Parallelism::new(0),
        }
    }
}

/// Everything `tab bench chaos` reports. Every count in here is also a
/// proof obligation — the run fails loudly rather than reporting a
/// divergent number.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Database spec the child served.
    pub db_spec: String,
    /// Read-back workload family.
    pub family: &'static str,
    /// Total inserts acknowledged across both server lives.
    pub inserts: usize,
    /// Acknowledged inserts when the SIGKILL landed.
    pub acks_before_kill: usize,
    /// WAL records the restarted server replayed (must equal
    /// `acks_before_kill`).
    pub recovered: u64,
    /// Whether recovery truncated a torn tail.
    pub torn_tail: bool,
    /// The generation the engine reached after every insert (must
    /// equal `inserts` — a double-applied retry would overshoot).
    pub generation: u64,
    /// Acknowledgements swallowed by the armed `drop:conn` fault.
    pub wire_dropped: u64,
    /// Retries the server answered from its dedup table.
    pub deduped: u64,
    /// Requests the client resent after retryable failures.
    pub client_retries: u64,
    /// Connections the client re-established (fault + restart).
    pub client_reconnects: u64,
    /// Read-back queries proven identical to the baseline.
    pub baseline_matches: usize,
    /// Replay time reported by the restarted server (WAL open +
    /// replay only).
    pub recovery_seconds: f64,
    /// Spawn-to-serving time of the restarted child (datagen, config
    /// build, recovery, bind).
    pub restart_seconds: f64,
    /// Whole-run wall clock.
    pub wall_seconds: f64,
}

/// The deterministic insert sequence: row `i` of the chaos load. Keys
/// start at 100_000 so they can never collide with generated NREF data.
pub fn insert_sql(i: usize) -> String {
    format!(
        "INSERT INTO source VALUES ({}, 1, 562, 'CHAOS{i:04}', 'chaos row {i}', 'chaosdb')",
        100_000 + i
    )
}

/// A spawned `tab serve` child with its parsed boot lines.
struct ServerProc {
    child: Child,
    /// Kept open so the child's final prints never hit a closed pipe.
    stdout: std::io::BufReader<std::process::ChildStdout>,
    addr: SocketAddr,
    /// `(replayed, torn_tail, seconds)` from the child's recovery line.
    recovery: Option<(u64, bool, f64)>,
}

impl ServerProc {
    /// Spawn `server_bin serve --db … --wal … --addr 127.0.0.1:0`
    /// (plus `--faults` when armed) and block until it prints its
    /// serving line.
    fn spawn(opts: &ChaosOptions, faults: Option<&str>) -> Result<ServerProc, String> {
        let wal = opts.wal_path.to_string_lossy().into_owned();
        let mut cmd = Command::new(&opts.server_bin);
        cmd.arg("serve")
            .args(["--db", &opts.db_spec])
            .args(["--addr", "127.0.0.1:0"])
            .args(["--wal", &wal])
            .stdout(Stdio::piped());
        if let Some(f) = faults {
            cmd.args(["--faults", f]);
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", opts.server_bin.display()))?;
        let mut stdout = std::io::BufReader::new(child.stdout.take().expect("stdout was piped"));
        let mut recovery = None;
        let mut line = String::new();
        let addr = loop {
            line.clear();
            let n = stdout
                .read_line(&mut line)
                .map_err(|e| format!("reading server stdout: {e}"))?;
            if n == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err("server exited before printing its serving line".into());
            }
            if let Some(rest) = line.strip_prefix("wal: recovered ") {
                recovery = Some(parse_recovery_line(rest)?);
            }
            if line.starts_with("serving ") {
                let addr = line
                    .rsplit(" on ")
                    .next()
                    .unwrap_or("")
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad serving line `{}`: {e}", line.trim()))?;
                break addr;
            }
        };
        Ok(ServerProc {
            child,
            stdout,
            addr,
            recovery,
        })
    }

    /// SIGKILL — the point of the exercise. No shutdown hook runs; the
    /// WAL's fsynced tail is the only survivor.
    fn kill9(mut self) -> Result<(), String> {
        self.child
            .kill()
            .and_then(|()| self.child.wait().map(|_| ()))
            .map_err(|e| format!("cannot kill server: {e}"))
    }

    /// Graceful end of the run: the caller already sent `SHUTDOWN`;
    /// drain stdout and reap the child.
    fn wait(mut self) -> Result<(), String> {
        let mut rest = String::new();
        let _ = self.stdout.read_to_string(&mut rest);
        self.child
            .wait()
            .map(|_| ())
            .map_err(|e| format!("cannot reap server: {e}"))
    }
}

/// Parse `"N records (torn tail: yes|no) in S.SSSs"`.
fn parse_recovery_line(rest: &str) -> Result<(u64, bool, f64), String> {
    let bad = || format!("bad recovery line `wal: recovered {}`", rest.trim());
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    let [n, _records, _torn, _tail, yesno, _in, secs] = tokens.as_slice() else {
        return Err(bad());
    };
    let replayed = n.parse().map_err(|_| bad())?;
    let torn = yesno.starts_with("yes");
    let seconds = secs.trim_end_matches('s').parse().map_err(|_| bad())?;
    Ok((replayed, torn, seconds))
}

/// One acknowledged insert must reproduce the baseline's ack exactly:
/// same generation (so nothing was lost or double-applied), same row id
/// (so the heap placement is identical), bit-identical maintenance
/// units (so every index descent matched).
fn check_ack(i: usize, r: &Response, want: &SharedInsert) -> Result<(), String> {
    if !r.is_ok() {
        return Err(format!(
            "insert {i} failed: {}",
            r.error().unwrap_or_else(|| "unlabelled".into())
        ));
    }
    let generation = r.int_field("generation").unwrap_or(0);
    let row_id = r.int_field("row_id").unwrap_or(u64::MAX);
    let units = r.num_field("units").unwrap_or(f64::NAN);
    if generation != want.generation
        || row_id != u64::from(want.row_id)
        || units.to_bits() != want.units.to_bits()
    {
        return Err(format!(
            "insert {i} ack diverged from the uninterrupted baseline: \
             wire (gen {generation}, row {row_id}, units {units}) vs \
             baseline (gen {}, row {}, units {})",
            want.generation, want.row_id, want.units
        ));
    }
    Ok(())
}

/// Run the chaos benchmark. `db` must be the same database the child's
/// `--db` spec regenerates (same spec, same seed) — determinism of the
/// generators is what lets the baseline and the served run share a
/// starting state without shipping bytes between processes.
pub fn run_chaos_bench(
    db: &Database,
    label: &str,
    family: Family,
    opts: &ChaosOptions,
) -> Result<ChaosReport, String> {
    if opts.kill_after == 0 || opts.kill_after >= opts.inserts {
        return Err("chaos needs 0 < kill_after < inserts".into());
    }
    if opts.drop_at >= opts.kill_after as u64 {
        return Err("the drop:conn fault must land before the kill".into());
    }
    if label != "NREF" {
        return Err("chaos drives NREF's `source` table; use an nref db spec".into());
    }
    let t0 = Instant::now();
    if let Some(dir) = opts.wal_path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    let _ = std::fs::remove_file(&opts.wal_path);

    // Phase 0 — the uninterrupted baseline, entirely in-process.
    let p = build_p(db, label);
    let c1 = build_1c(db, label);
    let baseline = SharedEngine::new(
        EngineState::new(db.clone())
            .with_config("p", p.clone())
            .with_config("1c", c1),
    );
    let stmts: Vec<String> = (0..opts.inserts).map(insert_sql).collect();
    let mut expected = Vec::with_capacity(opts.inserts);
    for (i, sql) in stmts.iter().enumerate() {
        let Statement::Insert(ins) = parse_statement(sql).map_err(|e| e.to_string())? else {
            unreachable!("insert_sql renders INSERT statements");
        };
        expected.push(
            baseline
                .insert(&ins, "p")
                .map_err(|e| format!("baseline insert {i}: {}", e.message))?,
        );
    }
    let all = family.enumerate_with(db, opts.par);
    if all.is_empty() {
        return Err(format!(
            "family {} is empty on this database",
            family.name()
        ));
    }
    let estimator = Session::new(db, &p);
    let workload = sample_preserving_par(
        &all,
        |q| estimator.estimate(q).unwrap_or(f64::INFINITY),
        opts.workload,
        2005,
        opts.par,
    );
    let sql: Vec<String> = workload.iter().map(Query::to_string).collect();

    // Phase 1 — load with a lost ack armed, then SIGKILL.
    let server = ServerProc::spawn(opts, Some(&format!("drop:conn:{}", opts.drop_at)))?;
    let mut client = RetryClient::new(server.addr.to_string(), "chaos-loader");
    for i in 0..opts.kill_after {
        let r = client.insert("p", &stmts[i])?;
        check_ack(i, &r, &expected[i])?;
    }
    let stats1 = client.stats()?;
    let wire_dropped = stats1.int_field("wire_dropped").unwrap_or(0);
    let deduped = stats1.int_field("deduped").unwrap_or(0);
    if wire_dropped == 0 || deduped == 0 || client.retries() == 0 {
        return Err(format!(
            "the lost-ack path was not exercised: wire_dropped={wire_dropped} \
             deduped={deduped} client_retries={}",
            client.retries()
        ));
    }
    server.kill9()?;

    // Phase 2 — restart on the same WAL, resume the load.
    let restart0 = Instant::now();
    let server = ServerProc::spawn(opts, None)?;
    let restart_seconds = restart0.elapsed().as_secs_f64();
    let (recovered, torn_tail, recovery_seconds) = server
        .recovery
        .ok_or("restarted server printed no recovery line")?;
    if recovered != opts.kill_after as u64 {
        return Err(format!(
            "recovery replayed {recovered} records, expected {} — \
             an acked INSERT did not survive the kill",
            opts.kill_after
        ));
    }
    client.set_addr(server.addr.to_string());
    for i in opts.kill_after..opts.inserts {
        let r = client.insert("p", &stmts[i])?;
        check_ack(i, &r, &expected[i])?;
    }
    let ping = client.ping()?;
    let generation = ping.int_field("generation").unwrap_or(0);
    if generation != opts.inserts as u64 {
        return Err(format!(
            "post-recovery generation is {generation}, expected {} — \
             a retry double-applied or a write was lost",
            opts.inserts
        ));
    }

    // Phase 3 — read-back: wire results vs direct sessions on the
    // uninterrupted baseline.
    let snap = baseline.snapshot();
    let mut baseline_matches = 0;
    for i in 0..opts.queries {
        let qi = i % sql.len();
        let config = if i % 2 == 0 { "p" } else { "1c" };
        let r = client.query(config, &sql[qi])?;
        let (verdict, units) = wire_outcome(&r).map_err(|e| format!("read-back {i}: {e}"))?;
        let wire_rows = r.int_field("rows");
        let session = snap.session(config).expect("baseline serves p and 1c");
        let direct = session
            .run(&workload[qi], Some(tab_engine::DEFAULT_TIMEOUT_UNITS))
            .map_err(|e| e.message)?;
        let (want_verdict, want_units, want_rows) = match direct.outcome {
            tab_engine::Outcome::Done { units, rows } => ("done", units, Some(rows)),
            tab_engine::Outcome::Timeout { budget } => ("timeout", budget, None),
        };
        if verdict != want_verdict
            || units.to_bits() != want_units.to_bits()
            || wire_rows != want_rows
        {
            return Err(format!(
                "read-back {i} (query {qi}, {config}) diverged from the \
                 uninterrupted baseline: wire ({verdict}, {units}, rows \
                 {wire_rows:?}) vs direct ({want_verdict}, {want_units}, \
                 rows {want_rows:?})"
            ));
        }
        baseline_matches += 1;
    }

    // Graceful end: SHUTDOWN over the wire, reap the child.
    let mut end = tab_server::Client::connect(server.addr)
        .map_err(|e| format!("cannot connect for shutdown: {e}"))?;
    end.request("SHUTDOWN")?;
    server.wait()?;

    Ok(ChaosReport {
        db_spec: opts.db_spec.clone(),
        family: family.name(),
        inserts: opts.inserts,
        acks_before_kill: opts.kill_after,
        recovered,
        torn_tail,
        generation,
        wire_dropped,
        deduped,
        client_retries: client.retries(),
        client_reconnects: client.reconnects(),
        baseline_matches,
        recovery_seconds,
        restart_seconds,
        wall_seconds: t0.elapsed().as_secs_f64(),
    })
}

impl ChaosReport {
    /// The `tab-chaos-bench-v1` JSON document (`BENCH_chaos.json`).
    /// Deterministic except the trailing `*_seconds` lines, which live
    /// alone on dedicated lines so byte-compares can drop them.
    pub fn json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"tab-chaos-bench-v1\",\n");
        s.push_str(&format!("  \"db\": \"{}\",\n", self.db_spec));
        s.push_str(&format!("  \"family\": \"{}\",\n", self.family));
        s.push_str(&format!("  \"inserts\": {},\n", self.inserts));
        s.push_str(&format!(
            "  \"acks_before_kill\": {},\n",
            self.acks_before_kill
        ));
        s.push_str(&format!("  \"recovered\": {},\n", self.recovered));
        s.push_str(&format!("  \"torn_tail\": {},\n", self.torn_tail));
        s.push_str(&format!("  \"generation\": {},\n", self.generation));
        s.push_str(&format!("  \"wire_dropped\": {},\n", self.wire_dropped));
        s.push_str(&format!("  \"deduped\": {},\n", self.deduped));
        s.push_str(&format!("  \"client_retries\": {},\n", self.client_retries));
        s.push_str(&format!(
            "  \"client_reconnects\": {},\n",
            self.client_reconnects
        ));
        s.push_str(&format!(
            "  \"baseline_matches\": {},\n",
            self.baseline_matches
        ));
        s.push_str(&format!(
            "  \"recovery_seconds\": {:.3},\n",
            self.recovery_seconds
        ));
        s.push_str(&format!(
            "  \"restart_seconds\": {:.3},\n",
            self.restart_seconds
        ));
        s.push_str(&format!("  \"wall_seconds\": {:.3}\n", self.wall_seconds));
        s.push_str("}\n");
        s
    }

    /// Human-readable summary (printed by the CLI and into the CI step
    /// summary).
    pub fn render_table(&self) -> String {
        format!(
            "kill -9 after {} acks: recovered {} records (torn tail: {}), \
             resumed to generation {}\n\
             lost-ack retry: {} dropped, {} deduped, {} client retries, \
             {} reconnects\n\
             read-back: {}/{} queries bit-identical to the uninterrupted \
             baseline\n\
             recovery {:.3}s (replay) / {:.3}s (restart to serving)\n",
            self.acks_before_kill,
            self.recovered,
            if self.torn_tail { "yes" } else { "no" },
            self.generation,
            self.wire_dropped,
            self.deduped,
            self.client_retries,
            self.client_reconnects,
            self.baseline_matches,
            self.baseline_matches,
            self.recovery_seconds,
            self.restart_seconds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_sequence_is_deterministic_and_collision_free() {
        assert_eq!(
            insert_sql(0),
            "INSERT INTO source VALUES (100000, 1, 562, 'CHAOS0000', 'chaos row 0', 'chaosdb')"
        );
        assert_eq!(insert_sql(7), insert_sql(7));
        let Ok(Statement::Insert(ins)) = parse_statement(&insert_sql(3)) else {
            panic!("insert_sql must parse as an INSERT");
        };
        assert_eq!(ins.table, "source");
        assert_eq!(ins.values.len(), 6);
    }

    #[test]
    fn recovery_line_round_trips() {
        assert_eq!(
            parse_recovery_line("5 records (torn tail: no) in 0.012s").unwrap(),
            (5, false, 0.012)
        );
        assert_eq!(
            parse_recovery_line("12 records (torn tail: yes) in 1.5s").unwrap(),
            (12, true, 1.5)
        );
        assert!(parse_recovery_line("garbage").is_err());
    }

    #[test]
    fn report_json_isolates_wall_clock_lines() {
        let report = ChaosReport {
            db_spec: "nref:300".into(),
            family: "NREF2J",
            inserts: 12,
            acks_before_kill: 5,
            recovered: 5,
            torn_tail: false,
            generation: 12,
            wire_dropped: 1,
            deduped: 1,
            client_retries: 1,
            client_reconnects: 2,
            baseline_matches: 6,
            recovery_seconds: 0.01,
            restart_seconds: 1.0,
            wall_seconds: 3.0,
        };
        let json = report.json();
        assert!(json.starts_with("{\n  \"schema\": \"tab-chaos-bench-v1\""));
        for line in json.lines() {
            if line.contains("seconds") {
                // Each wall-clock value owns its line, so byte-compares
                // can drop all of them with one grep.
                assert!(line.trim_start().starts_with("\""));
                assert_eq!(line.matches(':').count(), 1, "{line}");
            }
        }
        let stable: Vec<&str> = json.lines().filter(|l| !l.contains("seconds")).collect();
        // Braces + schema line + the 12 deterministic counter fields.
        assert_eq!(stable.len(), 15);
    }
}
