//! The session facade: the paper's three cost functions in one place.
//!
//! - [`Session::run`] → `A(q, C)`: actual execution cost, with timeout;
//! - [`Session::estimate`] → `E(q, C)`: the optimizer's estimate using
//!   statistics collected in the current (built) configuration;
//! - [`estimate_hypothetical`] → `H(q, Ch, Ca)`: a what-if estimate of a
//!   configuration that was never built, produced from the current one.

use tab_sqlq::Query;
use tab_storage::{
    BuiltConfiguration, Configuration, Database, IndexSpec, MViewDef, PoolStats, Value,
};

use crate::catalog::{bind, BindError};
use crate::cost::{CostMeter, Outcome};
use crate::exec::{execute_instrumented_pooled, ExecOpts, OpActuals, Resolver};
use crate::plan::PhysicalPlan;
use crate::planner::{plan, plan_explained, PlanExplanation};
use crate::stats_view::{HypotheticalStats, RealStats};

/// Result of an actual execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Cost outcome (done with units, or timeout).
    pub outcome: Outcome,
    /// Result rows if the query completed (select-list order, unsorted).
    pub rows: Option<Vec<Vec<Value>>>,
    /// The plan that was executed.
    pub plan: PhysicalPlan,
    /// Buffer-pool traffic for this query. All-zero when the session
    /// runs without a pool ([`ExecOpts::pool`] unset) and on timeout —
    /// a timed-out query's partial traffic is discarded so outputs
    /// never depend on *where* the budget trip happened.
    pub io: PoolStats,
}

/// A query session over one database in one built configuration.
///
/// Sessions are cheap borrows, opened per query (or per request): the
/// parallel grid opens one per worker over shared `&Database`, and the
/// serving front end opens one per wire request over an
/// [`crate::EngineSnapshot`], which pins an immutable generation so
/// concurrent writers never perturb an in-flight scan. A session never
/// mutates what it borrows — writes go through [`crate::apply_insert`]
/// (single-owner) or [`crate::SharedEngine::insert`] (concurrent,
/// copy-on-write).
pub struct Session<'a> {
    db: &'a Database,
    built: &'a BuiltConfiguration,
    exec: ExecOpts<'a>,
}

impl<'a> Session<'a> {
    /// Open a session. `db.collect_stats()` must have been called.
    /// Queries execute with the default [`ExecOpts`] (sequential,
    /// vectorized); see [`Session::with_exec`].
    pub fn new(db: &'a Database, built: &'a BuiltConfiguration) -> Self {
        Session {
            db,
            built,
            exec: ExecOpts::default(),
        }
    }

    /// Replace the execution options (intra-query threads, morsel size,
    /// vectorization, fault injection). Any setting produces identical
    /// results, costs, and outcomes — see the `exec` module docs.
    pub fn with_exec(mut self, exec: ExecOpts<'a>) -> Self {
        self.exec = exec;
        self
    }

    /// The underlying database.
    pub fn database(&self) -> &'a Database {
        self.db
    }

    /// The current configuration.
    pub fn configuration(&self) -> &'a BuiltConfiguration {
        self.built
    }

    /// Plan a query with the current configuration's real statistics.
    pub fn plan_query(&self, q: &Query) -> Result<PhysicalPlan, BindError> {
        let bound = bind(q, self.db)?;
        let stats = RealStats::new(self.db, self.built);
        Ok(plan(&bound, &stats))
    }

    /// Execute a query with an optional cost budget (the timeout).
    pub fn run(&self, q: &Query, budget: Option<f64>) -> Result<RunResult, BindError> {
        self.run_inner(q, budget, None)
    }

    /// Execute a query like [`Session::run`], additionally returning the
    /// executor's per-operator actuals (layout
    /// `[FreqSetup, driver, step…, output]`, matching
    /// [`PhysicalPlan::op_labels`]). On timeout the vector holds only the
    /// operators that completed. Costs and results are identical to an
    /// uninstrumented run.
    pub fn run_instrumented(
        &self,
        q: &Query,
        budget: Option<f64>,
    ) -> Result<(RunResult, Vec<OpActuals>), BindError> {
        let mut ops = Vec::new();
        let r = self.run_inner(q, budget, Some(&mut ops))?;
        Ok((r, ops))
    }

    fn run_inner(
        &self,
        q: &Query,
        budget: Option<f64>,
        ops: Option<&mut Vec<OpActuals>>,
    ) -> Result<RunResult, BindError> {
        let p = self.plan_query(q)?;
        let mut meter = match budget {
            Some(b) => CostMeter::with_budget(b),
            None => CostMeter::unbounded(),
        };
        let resolver = Resolver::new(self.db, self.built);
        let mut io = PoolStats::default();
        match execute_instrumented_pooled(&p, &resolver, &mut meter, ops, &self.exec, Some(&mut io))
        {
            Ok(rows) => Ok(RunResult {
                outcome: Outcome::Done {
                    units: meter.units(),
                    rows: rows.len() as u64,
                },
                rows: Some(rows),
                plan: p,
                io,
            }),
            Err(_) => Ok(RunResult {
                outcome: Outcome::Timeout {
                    budget: budget.expect("only budgeted runs can time out"),
                },
                rows: None,
                plan: p,
                // Deliberately zeroed: `io` is only written on success.
                io: PoolStats::default(),
            }),
        }
    }

    /// Plan a query and record the planner's decision trace (candidate
    /// rewrites and every access path priced per operator slot of the
    /// winner). Used by `tab explain`.
    pub fn plan_query_explained(
        &self,
        q: &Query,
    ) -> Result<(PhysicalPlan, PlanExplanation), BindError> {
        let bound = bind(q, self.db)?;
        let stats = RealStats::new(self.db, self.built);
        Ok(plan_explained(&bound, &stats))
    }

    /// The optimizer's cost estimate `E(q, C)` for the current
    /// configuration.
    pub fn estimate(&self, q: &Query) -> Result<f64, BindError> {
        Ok(self.plan_query(q)?.est_cost)
    }
}

/// The what-if estimate `H(q, Ch, Ca)`: cost of `q` under hypothetical
/// configuration `hyp`, estimated while `current` is the built
/// configuration (statistics for `hyp`'s structures are synthesized).
pub fn estimate_hypothetical(
    db: &Database,
    current: &BuiltConfiguration,
    hyp: &Configuration,
    q: &Query,
) -> Result<f64, BindError> {
    let bound = bind(q, db)?;
    let stats = HypotheticalStats::new(db, current, hyp);
    Ok(plan(&bound, &stats).est_cost)
}

/// Ablation variant of [`estimate_hypothetical`]: hypothetical
/// structures get full distribution statistics (the "observe" step the
/// paper's conclusion calls for).
pub fn estimate_hypothetical_perfect(
    db: &Database,
    current: &BuiltConfiguration,
    hyp: &Configuration,
    q: &Query,
) -> Result<f64, BindError> {
    let bound = bind(q, db)?;
    let stats = HypotheticalStats::with_perfect_distributions(db, current, hyp);
    Ok(plan(&bound, &stats).est_cost)
}

/// Incremental what-if estimate for an already-bound query: `H(q, base +
/// extras, current)`. The advisor's hot loop prices hundreds of trial
/// configurations per round that differ from a shared base by one
/// structure; this entry point skips both the per-call re-bind (the
/// caller binds each workload query once) and the per-trial clone of the
/// base configuration (the extras are layered on via
/// [`HypotheticalStats::layered`]). Produces bit-identical costs to
/// [`estimate_hypothetical`] on the materialized `base + extras`
/// configuration.
pub fn estimate_hypothetical_layered(
    db: &Database,
    current: &BuiltConfiguration,
    base: &Configuration,
    extra_indexes: &[IndexSpec],
    extra_mviews: &[MViewDef],
    bound: &crate::catalog::BoundQuery,
    perfect_distributions: bool,
) -> f64 {
    let stats = HypotheticalStats::layered(
        db,
        current,
        base,
        extra_indexes,
        extra_mviews,
        perfect_distributions,
    );
    plan(bound, &stats).est_cost
}

/// Sessions are created per worker thread (grid fan-out) and per wire
/// request (serving front end) over shared `&Database` /
/// `&BuiltConfiguration`; this compile-time audit keeps them that way.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<Session<'static>>();

#[cfg(test)]
mod tests {
    use super::*;
    use tab_sqlq::parse;
    use tab_storage::{ColType, ColumnDef, IndexSpec, Table, TableSchema, Value};

    /// A small two-table database with skew on `fact.k`.
    fn db() -> Database {
        let mut db = Database::new();
        let mut fact = Table::new(TableSchema::new(
            "fact",
            vec![
                ColumnDef::new("id", ColType::Int),
                ColumnDef::new("k", ColType::Int),
                ColumnDef::new("g", ColType::Int),
            ],
        ));
        for i in 0..50_000i64 {
            // k: value 0 hot (half the rows), the rest ~10 rows each.
            let k = if i % 2 == 0 { 0 } else { 1 + ((i / 2) % 2500) };
            fact.insert(vec![Value::Int(i), Value::Int(k), Value::Int(i % 7)]);
        }
        let mut dim = Table::new(TableSchema::new(
            "dim",
            vec![
                ColumnDef::new("k", ColType::Int),
                ColumnDef::new("name", ColType::Str),
            ],
        ));
        // Large enough that hashing it loses to a single index probe.
        for i in 0..60_000i64 {
            dim.insert(vec![Value::Int(i % 6000), Value::str(format!("n{i}"))]);
        }
        db.add_table(fact);
        db.add_table(dim);
        db.collect_stats();
        db
    }

    fn built(db: &Database, specs: Vec<IndexSpec>) -> BuiltConfiguration {
        let mut cfg = Configuration::named("t");
        cfg.indexes = specs;
        BuiltConfiguration::build(cfg, db)
    }

    #[test]
    fn run_produces_correct_counts() {
        let db = db();
        let p = built(&db, vec![]);
        let s = Session::new(&db, &p);
        let q = parse("SELECT f.g, COUNT(*) FROM fact f WHERE f.k = 0 GROUP BY f.g").unwrap();
        let r = s.run(&q, None).unwrap();
        let rows = r.rows.unwrap();
        let total: i64 = rows.iter().map(|r| r[1].as_int().unwrap()).sum();
        assert_eq!(total, 25_000);
        assert_eq!(rows.len(), 7);
    }

    #[test]
    fn index_reduces_actual_cost_for_selective_query() {
        let db = db();
        let p = built(&db, vec![]);
        let ix = built(&db, vec![IndexSpec::new("fact", vec![1])]);
        let q = parse("SELECT f.g, COUNT(*) FROM fact f WHERE f.k = 42 GROUP BY f.g").unwrap();
        let a_p = Session::new(&db, &p)
            .run(&q, None)
            .unwrap()
            .outcome
            .units()
            .unwrap();
        let a_ix = Session::new(&db, &ix)
            .run(&q, None)
            .unwrap()
            .outcome
            .units()
            .unwrap();
        assert!(
            a_ix * 2.0 < a_p,
            "selective probe should beat scan: {a_ix} vs {a_p}"
        );
    }

    #[test]
    fn plans_identical_results_across_configs() {
        let db = db();
        let p = built(&db, vec![]);
        let ix = built(
            &db,
            vec![
                IndexSpec::new("fact", vec![1]),
                IndexSpec::new("dim", vec![0]),
            ],
        );
        let q = parse(
            "SELECT f.g, COUNT(*) FROM fact f, dim d \
             WHERE f.k = d.k AND f.k = 3 GROUP BY f.g",
        )
        .unwrap();
        let mut r1 = Session::new(&db, &p).run(&q, None).unwrap().rows.unwrap();
        let mut r2 = Session::new(&db, &ix).run(&q, None).unwrap().rows.unwrap();
        r1.sort();
        r2.sort();
        assert_eq!(r1, r2);
        assert!(!r1.is_empty());
    }

    #[test]
    fn join_uses_index_nested_loops_when_cheap() {
        let db = db();
        let ix = built(
            &db,
            vec![
                IndexSpec::new("fact", vec![1]),
                IndexSpec::new("dim", vec![0]),
            ],
        );
        let s = Session::new(&db, &ix);
        // Highly selective driver -> index NL join into dim should win.
        let q = parse(
            "SELECT f.g, COUNT(*) FROM fact f, dim d \
             WHERE f.k = d.k AND f.id = 77 GROUP BY f.g",
        )
        .unwrap();
        let plan = s.plan_query(&q).unwrap();
        assert!(
            plan.describe().contains("IndexNLJoin"),
            "got: {}",
            plan.describe()
        );
    }

    #[test]
    fn timeout_fires_on_tiny_budget() {
        let db = db();
        let p = built(&db, vec![]);
        let s = Session::new(&db, &p);
        let q = parse("SELECT f.g, COUNT(*) FROM fact f GROUP BY f.g").unwrap();
        let r = s.run(&q, Some(0.5)).unwrap();
        assert!(r.outcome.is_timeout());
        assert!(r.rows.is_none());
    }

    #[test]
    fn estimate_orders_configurations() {
        let db = db();
        let p = built(&db, vec![]);
        let ix = built(&db, vec![IndexSpec::new("fact", vec![1])]);
        let q = parse("SELECT f.g, COUNT(*) FROM fact f WHERE f.k = 42 GROUP BY f.g").unwrap();
        let e_p = Session::new(&db, &p).estimate(&q).unwrap();
        let e_ix = Session::new(&db, &ix).estimate(&q).unwrap();
        assert!(e_ix < e_p, "E should prefer the indexed config");
    }

    #[test]
    fn hypothetical_estimate_is_conservative_under_skew() {
        // For a *rare* value on a skewed column, H (uniform) overestimates
        // the probe's result size and therefore its cost relative to E.
        let db = db();
        let p = built(&db, vec![]);
        let ixcfg = {
            let mut c = Configuration::named("ix");
            c.indexes.push(IndexSpec::new("fact", vec![1]));
            c
        };
        let ix = BuiltConfiguration::build(ixcfg.clone(), &db);
        let q = parse("SELECT f.g, COUNT(*) FROM fact f WHERE f.k = 42 GROUP BY f.g").unwrap();
        let e = Session::new(&db, &ix).estimate(&q).unwrap();
        let h = estimate_hypothetical(&db, &p, &ixcfg, &q).unwrap();
        assert!(
            h > e,
            "uniform hypothetical stats should be more conservative: H={h} E={e}"
        );
    }

    #[test]
    fn range_scan_uses_index_and_matches_naive() {
        let db = db();
        let ix = built(&db, vec![IndexSpec::new("fact", vec![0])]);
        let q = parse(
            "SELECT f.g, COUNT(*) FROM fact f WHERE f.id >= 49900 AND f.id < 49950 GROUP BY f.g",
        )
        .unwrap();
        let s = Session::new(&db, &ix);
        let plan = s.plan_query(&q).unwrap();
        assert!(
            plan.describe().contains("IndexRangeScan"),
            "selective leading-column range should use the index: {}",
            plan.describe()
        );
        let bound = crate::catalog::bind(&q, &db).unwrap();
        let mut expect = crate::naive::evaluate(&bound, &db);
        let mut got = s.run(&q, None).unwrap().rows.unwrap();
        expect.sort();
        got.sort();
        assert_eq!(expect, got);
        let total: i64 = got.iter().map(|r| r[1].as_int().unwrap()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn const_filter_on_probed_join_column_is_enforced() {
        // Regression: an index-NL probe that binds a column from the
        // outer join value must still re-check a constant filter on that
        // same column (found by the executor-vs-naive property test).
        let mut db = Database::new();
        let mut r = Table::new(TableSchema::new(
            "r",
            vec![ColumnDef::new("b", ColType::Int)],
        ));
        r.insert(vec![Value::Int(0)]);
        let mut s = Table::new(TableSchema::new(
            "s",
            vec![ColumnDef::new("d", ColType::Int)],
        ));
        for _ in 0..100 {
            s.insert(vec![Value::Int(0)]);
        }
        db.add_table(r);
        db.add_table(s);
        db.collect_stats();
        let ix = built(&db, vec![IndexSpec::new("s", vec![0])]);
        // Join binds s.d from r.b (= 0); the filter s.d = 1 must yield 0.
        let q = parse("SELECT COUNT(*) FROM r, s WHERE r.b = s.d AND s.d = 1").unwrap();
        let rows = Session::new(&db, &ix).run(&q, None).unwrap().rows.unwrap();
        assert_eq!(rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn order_by_and_limit_produce_topk() {
        let db = db();
        let p = built(&db, vec![]);
        let s = Session::new(&db, &p);
        let q = parse("SELECT f.g, COUNT(*) FROM fact f GROUP BY f.g ORDER BY f.g DESC LIMIT 3")
            .unwrap();
        let rows = s.run(&q, None).unwrap().rows.unwrap();
        assert_eq!(rows.len(), 3);
        let gs: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(gs, vec![6, 5, 4], "descending top-3 of g in 0..7");
    }

    #[test]
    fn metered_pool_preserves_units_rows_and_reports_io() {
        // Metered charge policy: the pool runs (frames, eviction, stats)
        // but the meter charges the legacy modeled amounts, so units and
        // rows are byte-identical to a pool-less session even under
        // heavy eviction pressure (16-frame pool, 50k-row tables).
        let db = db();
        let ix = built(
            &db,
            vec![
                IndexSpec::new("fact", vec![1]),
                IndexSpec::new("dim", vec![0]),
            ],
        );
        let queries = [
            "SELECT f.g, COUNT(*) FROM fact f GROUP BY f.g",
            "SELECT f.g, COUNT(*) FROM fact f WHERE f.k = 42 GROUP BY f.g",
            "SELECT f.g, COUNT(*) FROM fact f, dim d WHERE f.k = d.k AND f.k = 3 GROUP BY f.g",
        ];
        for sql in queries {
            let q = parse(sql).unwrap();
            let plain = Session::new(&db, &ix).run(&q, None).unwrap();
            let mut pool = crate::exec::PoolOpts::new(16);
            pool.policy = crate::cost::ChargePolicy::Metered;
            let exec = ExecOpts {
                pool: Some(pool),
                ..ExecOpts::default()
            };
            let pooled = Session::new(&db, &ix)
                .with_exec(exec)
                .run(&q, None)
                .unwrap();
            assert_eq!(plain.outcome.units(), pooled.outcome.units(), "{sql}");
            assert_eq!(plain.rows, pooled.rows, "{sql}");
            assert!(plain.io.is_zero(), "no pool -> zero io: {sql}");
            assert!(pooled.io.misses() > 0, "cold pool must miss: {sql}");
        }
    }

    #[test]
    fn observed_pool_cold_seq_scan_matches_compat_units() {
        // A cold sequential scan misses once per page under the Observed
        // policy, which is exactly the modeled seq-page charge — so a
        // query with no page reuse costs the same with and without the
        // pool (pool large enough that the spill threshold also agrees).
        let db = db();
        let p = built(&db, vec![]);
        let q = parse("SELECT f.g, COUNT(*) FROM fact f GROUP BY f.g").unwrap();
        let plain = Session::new(&db, &p).run(&q, None).unwrap();
        let exec = ExecOpts {
            pool: Some(crate::exec::PoolOpts::new(1024)),
            ..ExecOpts::default()
        };
        let pooled = Session::new(&db, &p).with_exec(exec).run(&q, None).unwrap();
        assert_eq!(plain.outcome.units(), pooled.outcome.units());
        assert_eq!(plain.rows, pooled.rows);
        assert_eq!(pooled.io.hits, 0, "single cold scan has no reuse");
        assert!(pooled.io.misses_seq > 0);
    }

    #[test]
    fn timed_out_pooled_run_reports_zero_io() {
        let db = db();
        let p = built(&db, vec![]);
        let exec = ExecOpts {
            pool: Some(crate::exec::PoolOpts::new(16)),
            ..ExecOpts::default()
        };
        let s = Session::new(&db, &p).with_exec(exec);
        let q = parse("SELECT f.g, COUNT(*) FROM fact f GROUP BY f.g").unwrap();
        let r = s.run(&q, Some(0.5)).unwrap();
        assert!(r.outcome.is_timeout());
        assert!(r.io.is_zero(), "partial traffic must be discarded");
    }

    #[test]
    fn pooled_results_identical_across_pool_sizes_and_threads() {
        // The eviction decision is a pure function of the access stream,
        // so rows and units agree between a thrashing pool and a pool
        // that holds the working set, at 1 and at 8 threads.
        let db = db();
        let ix = built(
            &db,
            vec![
                IndexSpec::new("fact", vec![1]),
                IndexSpec::new("dim", vec![0]),
            ],
        );
        let q = parse(
            "SELECT f.g, COUNT(*) FROM fact f, dim d \
             WHERE f.k = d.k AND f.k = 3 GROUP BY f.g",
        )
        .unwrap();
        type UnitsAndRows = (Option<f64>, Option<Vec<Vec<Value>>>);
        let mut seen: Option<UnitsAndRows> = None;
        for pages in [16usize, 4096] {
            for threads in [1usize, 8] {
                let mut pool = crate::exec::PoolOpts::new(pages);
                pool.policy = crate::cost::ChargePolicy::Metered;
                let exec = ExecOpts {
                    pool: Some(pool),
                    par: tab_storage::Parallelism::new(threads),
                    ..ExecOpts::default()
                };
                let r = Session::new(&db, &ix)
                    .with_exec(exec)
                    .run(&q, None)
                    .unwrap();
                let got = (r.outcome.units(), r.rows);
                match &seen {
                    None => seen = Some(got),
                    Some(first) => {
                        assert_eq!(*first, got, "pages={pages} threads={threads} diverged")
                    }
                }
            }
        }
    }

    #[test]
    fn freq_filter_execution_matches_naive() {
        let db = db();
        let p = built(&db, vec![]);
        let q = parse(
            "SELECT f.k, COUNT(*) FROM fact f WHERE f.k IN \
             (SELECT k FROM fact GROUP BY k HAVING COUNT(*) < 11) GROUP BY f.k",
        )
        .unwrap();
        let bound = crate::catalog::bind(&q, &db).unwrap();
        let mut expect = crate::naive::evaluate(&bound, &db);
        let mut got = Session::new(&db, &p).run(&q, None).unwrap().rows.unwrap();
        expect.sort();
        got.sort();
        assert_eq!(expect, got);
        assert!(!got.is_empty());
    }

    #[test]
    fn mview_rewrite_is_used_and_correct() {
        let db = db();
        let mut cfg = Configuration::named("mv");
        // fact(k) join dim(k), projecting fact.g and dim.name.
        cfg.mviews.push(tab_storage::MViewDef {
            spec: tab_storage::MViewSpec::join_of(
                "fact_dim",
                "fact",
                "dim",
                vec![(1, 0)],
                vec![(0, 1), (0, 2), (1, 1)],
            ),
            indexes: vec![vec![0]],
        });
        let built_mv = BuiltConfiguration::build(cfg, &db);
        let plain = built(&db, vec![]);
        let q = parse(
            "SELECT f.g, COUNT(*) FROM fact f, dim d \
             WHERE f.k = d.k AND f.k = 3 GROUP BY f.g",
        )
        .unwrap();
        let s_mv = Session::new(&db, &built_mv);
        let plan = s_mv.plan_query(&q).unwrap();
        assert_eq!(plan.mviews_used, vec!["fact_dim".to_string()]);
        let mut r1 = s_mv.run(&q, None).unwrap().rows.unwrap();
        let mut r2 = Session::new(&db, &plain)
            .run(&q, None)
            .unwrap()
            .rows
            .unwrap();
        r1.sort();
        r2.sort();
        assert_eq!(r1, r2);
    }
}
