//! The concurrent multi-session engine: snapshot reads, latched writes.
//!
//! [`Session`] is a borrow over one database and one built
//! configuration — deliberately cheap, created per request. What it
//! borrows *from* in a concurrent setting is this module:
//! [`SharedEngine`] owns an [`EngineState`] (the database plus every
//! built configuration served under a name) published through a
//! [`GenerationCell`], so
//!
//! - any number of reader threads take an [`EngineSnapshot`] without
//!   blocking and open plain [`Session`]s against it — a snapshot pins
//!   one generation end to end, so a scan never observes a half-applied
//!   write, and two queries on the same snapshot see identical data;
//! - writes ([`SharedEngine::insert`]) serialize on the cell's writer
//!   latch, clone the current generation, apply the mutation to the
//!   heap *and* to every built configuration, and publish the copy
//!   atomically — heaps and indexes can never diverge within a
//!   generation.
//!
//! Costs stay deterministic per request: a query's plan, cost units,
//! and verdict are a pure function of the generation it ran against,
//! so concurrent serving reproduces single-session results exactly
//! (the serving smoke test and `tab bench serve` both enforce this).
//! What *is* interleaving-dependent is only which generation a given
//! request observes when writers are active — see DESIGN.md §14.

use std::collections::BTreeMap;

use tab_sqlq::Insert;
use tab_storage::{BuiltConfiguration, Database, GenerationCell, RowId, Snapshot};

use crate::catalog::BindError;
use crate::cost::RANDOM_PAGE_COST;
use crate::dml::validate_insert;
use crate::session::Session;

/// One immutable generation of the engine: a database plus the built
/// configurations served under their lookup names (e.g. `"p"`, `"1c"`).
#[derive(Debug, Clone)]
pub struct EngineState {
    /// The database (statistics collected).
    pub db: Database,
    /// Built configurations by serving name, in deterministic order.
    pub configs: BTreeMap<String, BuiltConfiguration>,
}

impl EngineState {
    /// A state over `db` with no configurations yet.
    pub fn new(db: Database) -> Self {
        EngineState {
            db,
            configs: BTreeMap::new(),
        }
    }

    /// Add a built configuration under a serving name (builder-style).
    pub fn with_config(mut self, name: impl Into<String>, built: BuiltConfiguration) -> Self {
        self.configs.insert(name.into(), built);
        self
    }
}

/// A pinned generation of the engine. Opens [`Session`]s whose borrows
/// are tied to this snapshot, so everything a request does sees one
/// consistent (database, configurations) pair.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    snap: Snapshot<EngineState>,
}

impl EngineSnapshot {
    /// The pinned generation number.
    pub fn seq(&self) -> u64 {
        self.snap.seq()
    }

    /// The pinned state.
    pub fn state(&self) -> &EngineState {
        self.snap.get()
    }

    /// Serving names of the available configurations.
    pub fn config_names(&self) -> impl Iterator<Item = &str> {
        self.state().configs.keys().map(String::as_str)
    }

    /// Open a session over this snapshot's database and the named
    /// configuration (`None` if no configuration is served under
    /// `config`).
    pub fn session(&self, config: &str) -> Option<Session<'_>> {
        let state = self.state();
        state
            .configs
            .get(config)
            .map(|built| Session::new(&state.db, built))
    }
}

/// Outcome of a write published through [`SharedEngine::insert`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedInsert {
    /// The generation the write created (snapshots taken after the
    /// call see at least this generation).
    pub generation: u64,
    /// The new row's heap id.
    pub row_id: RowId,
    /// Maintenance cost in cost units, charged for the configuration
    /// named in the request (heap write + its index descents + its
    /// view deltas) — the same quantity [`crate::apply_insert`]
    /// reports for a single-session insert.
    pub units: f64,
}

/// The concurrent engine: an [`EngineState`] behind an epoch-published
/// [`GenerationCell`]. Shared across serving threads as
/// `Arc<SharedEngine>`; see the module docs for the isolation contract.
#[derive(Debug)]
pub struct SharedEngine {
    cell: GenerationCell<EngineState>,
}

impl SharedEngine {
    /// A shared engine serving `state` as generation 0.
    pub fn new(state: EngineState) -> Self {
        SharedEngine {
            cell: GenerationCell::new(state),
        }
    }

    /// The newest published generation number.
    pub fn generation(&self) -> u64 {
        self.cell.seq()
    }

    /// Pin the newest generation for reading. Never blocks.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            snap: self.cell.snapshot(),
        }
    }

    /// Apply one insertion and publish the result as a new generation.
    ///
    /// Copy-on-write under the writer latch: the current generation is
    /// cloned, the row is appended to the copy's heap, **every** built
    /// configuration of the copy is maintained (indexes descended,
    /// dependent views marked stale), and the copy is published with
    /// one atomic store. Readers keep their pinned snapshots; snapshots
    /// taken after this call returns see the new row everywhere.
    ///
    /// `charge_config` names the configuration whose maintenance cost
    /// is reported (it must be served); statistics are *not* refreshed,
    /// matching the benchmark protocol.
    pub fn insert(&self, insert: &Insert, charge_config: &str) -> Result<SharedInsert, BindError> {
        let (generation, (row_id, units)) = self.cell.update(|state| {
            validate_insert(insert, &state.db)?;
            if !state.configs.contains_key(charge_config) {
                return Err(BindError {
                    message: format!("unknown configuration `{charge_config}`"),
                });
            }
            let mut next = state.clone();
            let table = next
                .db
                .table_mut(&insert.table)
                .expect("validated table exists");
            let row_id = table.insert(insert.values.clone());
            let mut charged = 0.0;
            for (name, built) in next.configs.iter_mut() {
                let pages = built.apply_insert(&insert.table, &insert.values, row_id);
                if name == charge_config {
                    charged = pages as f64 * RANDOM_PAGE_COST;
                }
            }
            Ok((next, (row_id, charged)))
        })?;
        Ok(SharedInsert {
            generation,
            row_id,
            units,
        })
    }
}

/// Serving threads share one engine and pin snapshots concurrently;
/// this compile-time audit keeps the whole stack that way.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<SharedEngine>();
    _assert_send_sync::<EngineSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use tab_sqlq::{parse, parse_statement, Statement};
    use tab_storage::{ColType, ColumnDef, Configuration, IndexSpec, Table, TableSchema, Value};

    fn state() -> EngineState {
        let mut db = Database::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColType::Int),
                ColumnDef::new("g", ColType::Int),
            ],
        ));
        for i in 0..1_000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 5)]);
        }
        db.add_table(t);
        db.collect_stats();
        let p = BuiltConfiguration::build(Configuration::named("p"), &db);
        let mut cfg = Configuration::named("ix");
        cfg.indexes.push(IndexSpec::new("t", vec![0]));
        let ix = BuiltConfiguration::build(cfg, &db);
        EngineState::new(db)
            .with_config("p", p)
            .with_config("ix", ix)
    }

    fn insert_of(sql: &str) -> Insert {
        match parse_statement(sql).unwrap() {
            Statement::Insert(i) => i,
            other => panic!("expected insert: {other:?}"),
        }
    }

    fn count(snap: &EngineSnapshot, config: &str) -> i64 {
        let q = parse("SELECT COUNT(*) FROM t").unwrap();
        let rows = snap
            .session(config)
            .expect("config served")
            .run(&q, None)
            .unwrap()
            .rows
            .unwrap();
        rows[0][0].as_int().unwrap()
    }

    #[test]
    fn snapshots_pin_their_generation_across_writes() {
        let engine = SharedEngine::new(state());
        let before = engine.snapshot();
        assert_eq!(before.seq(), 0);
        let out = engine
            .insert(&insert_of("INSERT INTO t VALUES (1000, 0)"), "ix")
            .unwrap();
        assert_eq!(out.generation, 1);
        assert!(out.units > 0.0, "index maintenance is charged");
        // The pinned snapshot still sees 1000 rows; a fresh one sees
        // the insert in *both* configurations.
        assert_eq!(count(&before, "p"), 1_000);
        let after = engine.snapshot();
        assert_eq!(after.seq(), 1);
        assert_eq!(count(&after, "p"), 1_001);
        assert_eq!(count(&after, "ix"), 1_001);
    }

    #[test]
    fn same_snapshot_answers_identically_twice() {
        let engine = SharedEngine::new(state());
        let snap = engine.snapshot();
        let q = parse("SELECT t.g, COUNT(*) FROM t GROUP BY t.g").unwrap();
        let s = snap.session("p").unwrap();
        let r1 = s.run(&q, None).unwrap();
        engine
            .insert(&insert_of("INSERT INTO t VALUES (1000, 0)"), "p")
            .unwrap();
        let r2 = snap.session("p").unwrap().run(&q, None).unwrap();
        assert_eq!(r1.rows, r2.rows, "a snapshot is immutable");
        assert_eq!(r1.outcome.units(), r2.outcome.units());
    }

    #[test]
    fn failed_insert_publishes_nothing() {
        let engine = SharedEngine::new(state());
        let err = engine
            .insert(&insert_of("INSERT INTO nope VALUES (1)"), "p")
            .unwrap_err();
        assert!(err.message.contains("nope"));
        let err = engine
            .insert(&insert_of("INSERT INTO t VALUES (1, 2)"), "ghost")
            .unwrap_err();
        assert!(err.message.contains("ghost"));
        assert_eq!(engine.generation(), 0);
    }

    #[test]
    fn unknown_config_yields_no_session() {
        let engine = SharedEngine::new(state());
        let snap = engine.snapshot();
        assert!(snap.session("ghost").is_none());
        let names: Vec<&str> = snap.config_names().collect();
        assert_eq!(names, vec!["ix", "p"]);
    }

    #[test]
    fn inserted_row_is_reachable_through_maintained_index() {
        // A table big enough that a selective probe beats the scan, so
        // the query below only finds the row if the index was really
        // maintained by the copy-on-write insert.
        let mut db = Database::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColType::Int),
                ColumnDef::new("g", ColType::Int),
            ],
        ));
        for i in 0..50_000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 7)]);
        }
        db.add_table(t);
        db.collect_stats();
        let mut cfg = Configuration::named("ix");
        cfg.indexes.push(IndexSpec::new("t", vec![0]));
        let ix = BuiltConfiguration::build(cfg, &db);
        let engine = SharedEngine::new(EngineState::new(db).with_config("ix", ix));
        engine
            .insert(&insert_of("INSERT INTO t VALUES (90000, 3)"), "ix")
            .unwrap();
        let snap = engine.snapshot();
        let q = parse("SELECT t.g, COUNT(*) FROM t WHERE t.a = 90000 GROUP BY t.g").unwrap();
        let s = snap.session("ix").unwrap();
        let plan = s.plan_query(&q).unwrap();
        assert!(
            plan.describe().contains("Index"),
            "probe should use the maintained index: {}",
            plan.describe()
        );
        let rows = s.run(&q, None).unwrap().rows.unwrap();
        assert_eq!(rows, vec![vec![Value::Int(3), Value::Int(1)]]);
    }
}
