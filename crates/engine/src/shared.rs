//! The concurrent multi-session engine: snapshot reads, latched writes.
//!
//! [`Session`] is a borrow over one database and one built
//! configuration — deliberately cheap, created per request. What it
//! borrows *from* in a concurrent setting is this module:
//! [`SharedEngine`] owns an [`EngineState`] (the database plus every
//! built configuration served under a name) published through a
//! [`GenerationCell`], so
//!
//! - any number of reader threads take an [`EngineSnapshot`] without
//!   blocking and open plain [`Session`]s against it — a snapshot pins
//!   one generation end to end, so a scan never observes a half-applied
//!   write, and two queries on the same snapshot see identical data;
//! - writes ([`SharedEngine::insert`]) serialize on the cell's writer
//!   latch, clone the current generation, apply the mutation to the
//!   heap *and* to every built configuration, and publish the copy
//!   atomically — heaps and indexes can never diverge within a
//!   generation.
//!
//! Costs stay deterministic per request: a query's plan, cost units,
//! and verdict are a pure function of the generation it ran against,
//! so concurrent serving reproduces single-session results exactly
//! (the serving smoke test and `tab bench serve` both enforce this).
//! What *is* interleaving-dependent is only which generation a given
//! request observes when writers are active — see DESIGN.md §14.
//!
//! # Durability (DESIGN.md §15)
//!
//! An engine opened through [`SharedEngine::with_wal`] appends one
//! [`tab_storage::WalRecord`] per insert *inside* the writer latch,
//! fsynced **before** the generation is published — so by the time any
//! client can observe (or be acked) a write, it is on disk. On
//! restart, [`SharedEngine::with_wal`] replays the log through the
//! exact same apply path and *proves* the reconstruction: every
//! replayed record must reproduce the generation number, heap row id,
//! and bit-identical maintenance cost that were originally
//! acknowledged, or recovery refuses with [`RecoverError::Replay`].
//!
//! Idempotency is engine-level, not wire-level: sequence-keyed inserts
//! ([`SharedEngine::insert_keyed`]) remember the last acknowledged
//! `(client, cseq)` pair and replay the cached ack for a duplicate —
//! so a client that never saw its ack (dropped connection) can resend
//! without double-applying. The dedup table is rebuilt from the WAL on
//! recovery, which is what makes retries safe *across* a crash.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use tab_sqlq::Insert;
use tab_storage::{
    BuiltConfiguration, Database, FaultPlan, Faults, GenerationCell, RowId, Snapshot, Wal,
    WalError, WalRecord,
};

use crate::catalog::BindError;
use crate::cost::RANDOM_PAGE_COST;
use crate::dml::validate_insert;
use crate::session::Session;

/// One immutable generation of the engine: a database plus the built
/// configurations served under their lookup names (e.g. `"p"`, `"1c"`).
#[derive(Debug, Clone)]
pub struct EngineState {
    /// The database (statistics collected).
    pub db: Database,
    /// Built configurations by serving name, in deterministic order.
    pub configs: BTreeMap<String, BuiltConfiguration>,
}

impl EngineState {
    /// A state over `db` with no configurations yet.
    pub fn new(db: Database) -> Self {
        EngineState {
            db,
            configs: BTreeMap::new(),
        }
    }

    /// Add a built configuration under a serving name (builder-style).
    pub fn with_config(mut self, name: impl Into<String>, built: BuiltConfiguration) -> Self {
        self.configs.insert(name.into(), built);
        self
    }
}

/// A pinned generation of the engine. Opens [`Session`]s whose borrows
/// are tied to this snapshot, so everything a request does sees one
/// consistent (database, configurations) pair.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    snap: Snapshot<EngineState>,
}

impl EngineSnapshot {
    /// The pinned generation number.
    pub fn seq(&self) -> u64 {
        self.snap.seq()
    }

    /// The pinned state.
    pub fn state(&self) -> &EngineState {
        self.snap.get()
    }

    /// Serving names of the available configurations.
    pub fn config_names(&self) -> impl Iterator<Item = &str> {
        self.state().configs.keys().map(String::as_str)
    }

    /// Open a session over this snapshot's database and the named
    /// configuration (`None` if no configuration is served under
    /// `config`).
    pub fn session(&self, config: &str) -> Option<Session<'_>> {
        let state = self.state();
        state
            .configs
            .get(config)
            .map(|built| Session::new(&state.db, built))
    }
}

/// Outcome of a write published through [`SharedEngine::insert`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedInsert {
    /// The generation the write created (snapshots taken after the
    /// call see at least this generation).
    pub generation: u64,
    /// The new row's heap id.
    pub row_id: RowId,
    /// Maintenance cost in cost units, charged for the configuration
    /// named in the request (heap write + its index descents + its
    /// view deltas) — the same quantity [`crate::apply_insert`]
    /// reports for a single-session insert.
    pub units: f64,
}

/// Outcome of a sequence-keyed write ([`SharedEngine::insert_keyed`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyedInsert {
    /// The acknowledged write (cached on a duplicate, fresh otherwise).
    pub out: SharedInsert,
    /// `true` when the sequence number had already been applied and the
    /// cached acknowledgement was replayed instead of the insert.
    pub deduped: bool,
}

/// What [`SharedEngine::with_wal`] reconstructed on boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecoveryReport {
    /// Records replayed from the log.
    pub replayed: u64,
    /// Whether a torn tail (crash mid-append) was truncated away.
    pub torn_tail: bool,
    /// The generation the engine serves after replay.
    pub generation: u64,
}

/// Why a WAL-backed engine could not boot.
#[derive(Debug)]
pub enum RecoverError {
    /// The log itself could not be opened (I/O or mid-file corruption).
    Wal(WalError),
    /// A replayed record did not reproduce what was acknowledged —
    /// the base state does not match the log.
    Replay {
        /// Generation of the record that failed to reproduce.
        gen: u64,
        /// What diverged.
        message: String,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Wal(e) => write!(f, "{e}"),
            RecoverError::Replay { gen, message } => {
                write!(f, "wal replay diverged at generation {gen}: {message}")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<WalError> for RecoverError {
    fn from(e: WalError) -> Self {
        RecoverError::Wal(e)
    }
}

/// The concurrent engine: an [`EngineState`] behind an epoch-published
/// [`GenerationCell`]. Shared across serving threads as
/// `Arc<SharedEngine>`; see the module docs for the isolation contract.
#[derive(Debug)]
pub struct SharedEngine {
    cell: GenerationCell<EngineState>,
    /// The write-ahead log, when this engine is durable. Locked inside
    /// the cell's writer latch, so append order equals publish order.
    wal: Option<Mutex<Wal>>,
    /// Last acknowledged `(cseq, ack)` per client — the idempotency
    /// table behind [`SharedEngine::insert_keyed`].
    dedup: Mutex<BTreeMap<String, (u64, SharedInsert)>>,
    /// Armed fault plan for the WAL's `enospc:wal` / `panic:wal:append`
    /// sites (the server arms its own wire sites separately).
    faults: Option<Arc<FaultPlan>>,
    /// Records replayed at boot (0 for a non-durable engine).
    recovered: u64,
    /// Duplicate sequence-keyed inserts answered from the dedup table.
    deduped: AtomicU64,
}

impl SharedEngine {
    /// A shared engine serving `state` as generation 0 (no durability:
    /// generations live only in memory, as before PR 10).
    pub fn new(state: EngineState) -> Self {
        SharedEngine {
            cell: GenerationCell::new(state),
            wal: None,
            dedup: Mutex::new(BTreeMap::new()),
            faults: None,
            recovered: 0,
            deduped: AtomicU64::new(0),
        }
    }

    /// A durable engine: open (or create) the `tab-wal-v1` log at
    /// `path`, replay every committed record on top of `state`, and
    /// append all future inserts to it before publishing them.
    ///
    /// `state` must be the engine state as of the log's base generation
    /// — for serving that is the deterministically regenerated database
    /// at generation 0. Replay re-applies each record through the exact
    /// insert path and refuses ([`RecoverError::Replay`]) unless the
    /// recomputed generation, row id, and bit-identical maintenance
    /// units match what was originally acknowledged, so a recovered
    /// engine is byte-equivalent to one that never crashed.
    pub fn with_wal(
        state: EngineState,
        path: &Path,
        faults: Option<Arc<FaultPlan>>,
    ) -> Result<(SharedEngine, WalRecoveryReport), RecoverError> {
        let recovery = Wal::open(path)?;
        let mut engine = SharedEngine {
            cell: GenerationCell::new(state),
            wal: None,
            dedup: Mutex::new(BTreeMap::new()),
            faults,
            recovered: 0,
            deduped: AtomicU64::new(0),
        };
        for rec in &recovery.records {
            let insert = Insert {
                table: rec.table.clone(),
                values: rec.values.clone(),
            };
            let out = engine
                .apply(&insert, &rec.config)
                .map_err(|e| RecoverError::Replay {
                    gen: rec.gen,
                    message: e.message,
                })?;
            let divergence = if out.generation != rec.gen {
                Some(format!(
                    "published generation {} (logged {})",
                    out.generation, rec.gen
                ))
            } else if out.row_id != rec.row_id {
                Some(format!("row id {} (logged {})", out.row_id, rec.row_id))
            } else if out.units.to_bits() != rec.units.to_bits() {
                Some(format!(
                    "maintenance units {} (logged {}) — bit-exact match required",
                    out.units, rec.units
                ))
            } else {
                None
            };
            if let Some(message) = divergence {
                return Err(RecoverError::Replay {
                    gen: rec.gen,
                    message,
                });
            }
            if !rec.client.is_empty() {
                engine
                    .dedup_table()
                    .insert(rec.client.clone(), (rec.cseq, out));
            }
        }
        engine.recovered = recovery.records.len() as u64;
        engine.wal = Some(Mutex::new(recovery.wal));
        let report = WalRecoveryReport {
            replayed: engine.recovered,
            torn_tail: recovery.torn_tail,
            generation: engine.generation(),
        };
        Ok((engine, report))
    }

    /// The newest published generation number.
    pub fn generation(&self) -> u64 {
        self.cell.seq()
    }

    /// Records replayed from the WAL when this engine booted.
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Duplicate sequence-keyed inserts answered from the dedup table
    /// since boot.
    pub fn deduped(&self) -> u64 {
        self.deduped.load(Ordering::Relaxed)
    }

    /// Whether inserts are logged to a WAL before publication.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Pin the newest generation for reading. Never blocks.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            snap: self.cell.snapshot(),
        }
    }

    /// Apply one insertion and publish the result as a new generation.
    ///
    /// Copy-on-write under the writer latch: the current generation is
    /// cloned, the row is appended to the copy's heap, **every** built
    /// configuration of the copy is maintained (indexes descended,
    /// dependent views marked stale), and the copy is published with
    /// one atomic store. On a durable engine the record is appended to
    /// the WAL and fsynced *before* that store — ack implies durable.
    /// Readers keep their pinned snapshots; snapshots taken after this
    /// call returns see the new row everywhere.
    ///
    /// `charge_config` names the configuration whose maintenance cost
    /// is reported (it must be served); statistics are *not* refreshed,
    /// matching the benchmark protocol.
    pub fn insert(&self, insert: &Insert, charge_config: &str) -> Result<SharedInsert, BindError> {
        self.apply_logged(insert, charge_config, None)
    }

    /// A sequence-keyed insert: idempotent under client retries.
    ///
    /// `cseq` must be strictly increasing per `client` (gaps allowed).
    /// A resend of the last acknowledged sequence returns the cached
    /// acknowledgement without touching the engine — exactly what a
    /// client whose connection died before the ack arrived needs; a
    /// sequence *behind* the last acknowledged one is refused as stale.
    /// The `(client, cseq)` key rides in the WAL record, so the dedup
    /// table survives a crash and retries stay safe across recovery.
    pub fn insert_keyed(
        &self,
        insert: &Insert,
        charge_config: &str,
        client: &str,
        cseq: u64,
    ) -> Result<KeyedInsert, BindError> {
        if client.is_empty() {
            return Err(BindError {
                message: "sequence-keyed insert needs a client id".into(),
            });
        }
        // Hold the dedup latch across check-apply-remember so two
        // concurrent resends of one sequence cannot both apply (writers
        // serialize on the cell latch anyway; this adds no contention).
        let mut dedup = self.dedup_table();
        if let Some(&(last, ack)) = dedup.get(client) {
            if cseq == last {
                self.deduped.fetch_add(1, Ordering::Relaxed);
                return Ok(KeyedInsert {
                    out: ack,
                    deduped: true,
                });
            }
            if cseq < last {
                return Err(BindError {
                    message: format!(
                        "stale sequence {cseq} for client `{client}` \
                         (last acknowledged {last})"
                    ),
                });
            }
        }
        let out = self.apply_logged(insert, charge_config, Some((client, cseq)))?;
        dedup.insert(client.to_string(), (cseq, out));
        Ok(KeyedInsert {
            out,
            deduped: false,
        })
    }

    /// The dedup table, tolerating a poisoned latch (a panicking WAL
    /// append unwinds through it; entries are only inserted *after* a
    /// successful apply, so the table is never torn).
    fn dedup_table(&self) -> MutexGuard<'_, BTreeMap<String, (u64, SharedInsert)>> {
        self.dedup.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The copy-on-write insert cycle, with the WAL append (when
    /// configured) inside the latch: log, fsync, then publish.
    fn apply_logged(
        &self,
        insert: &Insert,
        charge_config: &str,
        key: Option<(&str, u64)>,
    ) -> Result<SharedInsert, BindError> {
        let (generation, (row_id, units)) = self.cell.update(|state| {
            let (next, row_id, units) = Self::build_next(state, insert, charge_config)?;
            if let Some(wal) = &self.wal {
                let (client, cseq) = key.unwrap_or(("", 0));
                let rec = WalRecord {
                    // The latch is held: the publish that follows this
                    // append gets exactly seq + 1.
                    gen: self.cell.seq() + 1,
                    client: client.to_string(),
                    cseq,
                    config: charge_config.to_string(),
                    table: insert.table.clone(),
                    values: insert.values.clone(),
                    row_id,
                    units,
                };
                let faults = self
                    .faults
                    .as_deref()
                    .map(Faults::to)
                    .unwrap_or_else(Faults::disabled);
                // A poisoned WAL latch means an earlier append panicked
                // mid-frame: the log's tail is torn and further appends
                // would corrupt it. Refuse writes (reads are unaffected)
                // until a restart recovers the log.
                let mut wal = wal.lock().map_err(|_| BindError {
                    message: "wal poisoned by an earlier crash; insert refused".into(),
                })?;
                wal.append(&rec, faults).map_err(|e| BindError {
                    message: format!("wal append failed: {e}"),
                })?;
            }
            Ok((next, (row_id, units)))
        })?;
        Ok(SharedInsert {
            generation,
            row_id,
            units,
        })
    }

    /// Validate and apply one insert to a copy of `state` (no publish,
    /// no logging) — the single apply path normal serving, keyed
    /// serving, and recovery replay all share.
    fn build_next(
        state: &EngineState,
        insert: &Insert,
        charge_config: &str,
    ) -> Result<(EngineState, RowId, f64), BindError> {
        validate_insert(insert, &state.db)?;
        if !state.configs.contains_key(charge_config) {
            return Err(BindError {
                message: format!("unknown configuration `{charge_config}`"),
            });
        }
        let mut next = state.clone();
        let table = next
            .db
            .table_mut(&insert.table)
            .expect("validated table exists");
        let row_id = table.insert(insert.values.clone());
        let mut charged = 0.0;
        for (name, built) in next.configs.iter_mut() {
            let pages = built.apply_insert(&insert.table, &insert.values, row_id);
            if name == charge_config {
                charged = pages as f64 * RANDOM_PAGE_COST;
            }
        }
        Ok((next, row_id, charged))
    }

    /// Apply one insert without logging — the recovery replay path (the
    /// record being replayed *is* the log).
    fn apply(&self, insert: &Insert, charge_config: &str) -> Result<SharedInsert, BindError> {
        let (generation, (row_id, units)) = self.cell.update(|state| {
            let (next, row_id, units) = Self::build_next(state, insert, charge_config)?;
            Ok((next, (row_id, units)))
        })?;
        Ok(SharedInsert {
            generation,
            row_id,
            units,
        })
    }
}

/// Serving threads share one engine and pin snapshots concurrently;
/// this compile-time audit keeps the whole stack that way.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<SharedEngine>();
    _assert_send_sync::<EngineSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use tab_sqlq::{parse, parse_statement, Statement};
    use tab_storage::{ColType, ColumnDef, Configuration, IndexSpec, Table, TableSchema, Value};

    fn state() -> EngineState {
        let mut db = Database::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColType::Int),
                ColumnDef::new("g", ColType::Int),
            ],
        ));
        for i in 0..1_000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 5)]);
        }
        db.add_table(t);
        db.collect_stats();
        let p = BuiltConfiguration::build(Configuration::named("p"), &db);
        let mut cfg = Configuration::named("ix");
        cfg.indexes.push(IndexSpec::new("t", vec![0]));
        let ix = BuiltConfiguration::build(cfg, &db);
        EngineState::new(db)
            .with_config("p", p)
            .with_config("ix", ix)
    }

    fn insert_of(sql: &str) -> Insert {
        match parse_statement(sql).unwrap() {
            Statement::Insert(i) => i,
            other => panic!("expected insert: {other:?}"),
        }
    }

    fn count(snap: &EngineSnapshot, config: &str) -> i64 {
        let q = parse("SELECT COUNT(*) FROM t").unwrap();
        let rows = snap
            .session(config)
            .expect("config served")
            .run(&q, None)
            .unwrap()
            .rows
            .unwrap();
        rows[0][0].as_int().unwrap()
    }

    #[test]
    fn snapshots_pin_their_generation_across_writes() {
        let engine = SharedEngine::new(state());
        let before = engine.snapshot();
        assert_eq!(before.seq(), 0);
        let out = engine
            .insert(&insert_of("INSERT INTO t VALUES (1000, 0)"), "ix")
            .unwrap();
        assert_eq!(out.generation, 1);
        assert!(out.units > 0.0, "index maintenance is charged");
        // The pinned snapshot still sees 1000 rows; a fresh one sees
        // the insert in *both* configurations.
        assert_eq!(count(&before, "p"), 1_000);
        let after = engine.snapshot();
        assert_eq!(after.seq(), 1);
        assert_eq!(count(&after, "p"), 1_001);
        assert_eq!(count(&after, "ix"), 1_001);
    }

    #[test]
    fn same_snapshot_answers_identically_twice() {
        let engine = SharedEngine::new(state());
        let snap = engine.snapshot();
        let q = parse("SELECT t.g, COUNT(*) FROM t GROUP BY t.g").unwrap();
        let s = snap.session("p").unwrap();
        let r1 = s.run(&q, None).unwrap();
        engine
            .insert(&insert_of("INSERT INTO t VALUES (1000, 0)"), "p")
            .unwrap();
        let r2 = snap.session("p").unwrap().run(&q, None).unwrap();
        assert_eq!(r1.rows, r2.rows, "a snapshot is immutable");
        assert_eq!(r1.outcome.units(), r2.outcome.units());
    }

    #[test]
    fn failed_insert_publishes_nothing() {
        let engine = SharedEngine::new(state());
        let err = engine
            .insert(&insert_of("INSERT INTO nope VALUES (1)"), "p")
            .unwrap_err();
        assert!(err.message.contains("nope"));
        let err = engine
            .insert(&insert_of("INSERT INTO t VALUES (1, 2)"), "ghost")
            .unwrap_err();
        assert!(err.message.contains("ghost"));
        assert_eq!(engine.generation(), 0);
    }

    #[test]
    fn unknown_config_yields_no_session() {
        let engine = SharedEngine::new(state());
        let snap = engine.snapshot();
        assert!(snap.session("ghost").is_none());
        let names: Vec<&str> = snap.config_names().collect();
        assert_eq!(names, vec!["ix", "p"]);
    }

    #[test]
    fn inserted_row_is_reachable_through_maintained_index() {
        // A table big enough that a selective probe beats the scan, so
        // the query below only finds the row if the index was really
        // maintained by the copy-on-write insert.
        let mut db = Database::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColType::Int),
                ColumnDef::new("g", ColType::Int),
            ],
        ));
        for i in 0..50_000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 7)]);
        }
        db.add_table(t);
        db.collect_stats();
        let mut cfg = Configuration::named("ix");
        cfg.indexes.push(IndexSpec::new("t", vec![0]));
        let ix = BuiltConfiguration::build(cfg, &db);
        let engine = SharedEngine::new(EngineState::new(db).with_config("ix", ix));
        engine
            .insert(&insert_of("INSERT INTO t VALUES (90000, 3)"), "ix")
            .unwrap();
        let snap = engine.snapshot();
        let q = parse("SELECT t.g, COUNT(*) FROM t WHERE t.a = 90000 GROUP BY t.g").unwrap();
        let s = snap.session("ix").unwrap();
        let plan = s.plan_query(&q).unwrap();
        assert!(
            plan.describe().contains("Index"),
            "probe should use the maintained index: {}",
            plan.describe()
        );
        let rows = s.run(&q, None).unwrap().rows.unwrap();
        assert_eq!(rows, vec![vec![Value::Int(3), Value::Int(1)]]);
    }

    fn temp_wal(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tab_shared_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir.join("engine.wal")
    }

    #[test]
    fn recovery_is_byte_identical_to_an_uninterrupted_run() {
        let path = temp_wal("recover");
        let inserts = [
            "INSERT INTO t VALUES (1000, 0)",
            "INSERT INTO t VALUES (1001, 3)",
            "INSERT INTO t VALUES (1002, 1)",
        ];
        // The uninterrupted baseline: same state, no WAL.
        let baseline = SharedEngine::new(state());
        let mut expected = Vec::new();
        for sql in &inserts {
            expected.push(baseline.insert(&insert_of(sql), "ix").unwrap());
        }

        let (engine, report) = SharedEngine::with_wal(state(), &path, None).unwrap();
        assert_eq!(report.replayed, 0);
        assert!(engine.is_durable());
        for (i, sql) in inserts.iter().enumerate() {
            let out = engine.insert(&insert_of(sql), "ix").unwrap();
            assert_eq!(out, expected[i], "durable run matches in-memory run");
        }
        drop(engine); // "crash": nothing flushed beyond the per-record fsyncs

        let (revived, report) = SharedEngine::with_wal(state(), &path, None).unwrap();
        assert_eq!(
            (report.replayed, report.torn_tail, report.generation),
            (3, false, 3)
        );
        assert_eq!(revived.recovered(), 3);
        let (snap_a, snap_b) = (baseline.snapshot(), revived.snapshot());
        assert_eq!(snap_a.seq(), snap_b.seq());
        assert_eq!(count(&snap_b, "p"), 1_003);
        let q = parse("SELECT t.g, COUNT(*) FROM t GROUP BY t.g").unwrap();
        let (ra, rb) = (
            snap_a.session("ix").unwrap().run(&q, None).unwrap(),
            snap_b.session("ix").unwrap().run(&q, None).unwrap(),
        );
        assert_eq!(ra.rows, rb.rows);
        assert_eq!(
            ra.outcome.units().unwrap().to_bits(),
            rb.outcome.units().unwrap().to_bits(),
            "recovered engine answers bit-identically"
        );
    }

    #[test]
    fn keyed_inserts_dedup_and_survive_recovery() {
        let path = temp_wal("keyed");
        let (engine, _) = SharedEngine::with_wal(state(), &path, None).unwrap();
        let ins = insert_of("INSERT INTO t VALUES (1000, 0)");
        let first = engine.insert_keyed(&ins, "ix", "c1", 1).unwrap();
        assert!(!first.deduped);
        // A retry of the same sequence replays the cached ack.
        let retry = engine.insert_keyed(&ins, "ix", "c1", 1).unwrap();
        assert!(retry.deduped);
        assert_eq!(retry.out, first.out);
        assert_eq!(engine.generation(), 1, "the retry applied nothing");
        assert_eq!(engine.deduped(), 1);
        // A stale sequence is refused; a fresh one applies.
        let err = engine.insert_keyed(&ins, "ix", "c1", 0).unwrap_err();
        assert!(err.message.contains("stale"), "{}", err.message);
        let second = engine
            .insert_keyed(&insert_of("INSERT INTO t VALUES (1001, 1)"), "ix", "c1", 2)
            .unwrap();
        assert!(!second.deduped);
        assert_eq!(second.out.generation, 2);
        drop(engine);

        // The dedup table is rebuilt from the log: the retry of the
        // last acknowledged sequence is still answered from cache.
        let (revived, report) = SharedEngine::with_wal(state(), &path, None).unwrap();
        assert_eq!(report.replayed, 2);
        let replayed_retry = revived
            .insert_keyed(&insert_of("INSERT INTO t VALUES (1001, 1)"), "ix", "c1", 2)
            .unwrap();
        assert!(replayed_retry.deduped, "dedup survives kill -9");
        assert_eq!(replayed_retry.out, second.out);
        assert_eq!(revived.generation(), 2);
    }

    #[test]
    fn failed_wal_append_acknowledges_nothing() {
        let path = temp_wal("enospc");
        let plan = Arc::new(tab_storage::FaultPlan::parse("enospc:wal:1").unwrap());
        let (engine, _) = SharedEngine::with_wal(state(), &path, Some(plan)).unwrap();
        let ok = engine
            .insert(&insert_of("INSERT INTO t VALUES (1000, 0)"), "p")
            .unwrap();
        assert_eq!(ok.generation, 1);
        let err = engine
            .insert(&insert_of("INSERT INTO t VALUES (1001, 1)"), "p")
            .unwrap_err();
        assert!(err.message.contains("wal append failed"), "{}", err.message);
        assert_eq!(engine.generation(), 1, "nothing published past the fault");
        drop(engine);
        let (revived, report) = SharedEngine::with_wal(state(), &path, None).unwrap();
        assert_eq!(report.replayed, 1, "only the acked insert is replayed");
        assert_eq!(revived.generation(), 1);
    }

    #[test]
    fn panicking_wal_append_leaves_a_recoverable_torn_tail() {
        let path = temp_wal("torn");
        let plan = Arc::new(tab_storage::FaultPlan::parse("panic:wal:append:1").unwrap());
        let (engine, _) = SharedEngine::with_wal(state(), &path, Some(plan)).unwrap();
        let engine = Arc::new(engine);
        engine
            .insert(&insert_of("INSERT INTO t VALUES (1000, 0)"), "p")
            .unwrap();
        let doomed = Arc::clone(&engine);
        let panicked = std::thread::spawn(move || {
            doomed
                .insert(&insert_of("INSERT INTO t VALUES (1001, 1)"), "p")
                .ok();
        })
        .join();
        assert!(panicked.is_err(), "the armed append panics mid-frame");
        // The half-written frame was never acknowledged and never
        // published; reads keep working, but further writes are refused
        // (an append after the torn frame would corrupt the log).
        assert_eq!(engine.generation(), 1);
        assert_eq!(count(&engine.snapshot(), "p"), 1_001);
        let err = engine
            .insert(&insert_of("INSERT INTO t VALUES (1002, 2)"), "p")
            .unwrap_err();
        assert!(err.message.contains("poisoned"), "{}", err.message);
        assert_eq!(engine.generation(), 1);
        drop(engine);
        // Recovery truncates the torn tail and replays the acked chain.
        let (revived, report) = SharedEngine::with_wal(state(), &path, None).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.replayed, 1, "only cleanly framed acks replay");
        assert_eq!(revived.generation(), 1);
        // The recovered log accepts appends again.
        revived
            .insert(&insert_of("INSERT INTO t VALUES (1002, 2)"), "p")
            .unwrap();
        assert_eq!(revived.generation(), 2);
    }
}
