//! # tab-engine
//!
//! The relational query engine substrate for `tab-bench`: name binding,
//! a cost-based optimizer (access paths, join order, materialized-view
//! rewrites), a page-charging executor with timeout support, and the
//! *what-if* estimation interface that configuration recommenders build
//! on.
//!
//! The paper's three cost functions map onto this crate as:
//!
//! | paper | here |
//! |-------|------|
//! | `A(q, C)` | [`Session::run`] — actual execution, metered |
//! | `E(q, C)` | [`Session::estimate`] — real statistics |
//! | `H(q, Ch, Ca)` | [`estimate_hypothetical`] — synthesized statistics |

#![deny(missing_docs)]

pub mod catalog;
pub mod cost;
pub mod dml;
pub mod exec;
pub mod explain;
pub mod naive;
pub mod plan;
pub mod planner;
pub mod session;
pub mod shared;
pub mod stats_view;

pub use catalog::{bind, BindError, BoundQuery};
pub use cost::{
    units_to_sim_seconds, ChargePolicy, CostMeter, Outcome, TimedOut, DEFAULT_TIMEOUT_UNITS,
    RANDOM_PAGE_COST, ROW_COST, SEQ_PAGE_COST, SIM_SECONDS_PER_UNIT,
};
pub use dml::{apply_insert, validate_insert, InsertOutcome};
pub use exec::{
    execute, execute_instrumented, execute_instrumented_pooled, execute_instrumented_with,
    execute_with, ExecOpts, OpActuals, PoolOpts, Resolver, DEFAULT_MORSEL_ROWS,
};
pub use explain::render_explain;
pub use plan::{OpEstimate, PhysicalPlan};
pub use planner::{plan, plan_explained, PlanChoice, PlanExplanation};
pub use session::{
    estimate_hypothetical, estimate_hypothetical_layered, estimate_hypothetical_perfect, RunResult,
    Session,
};
pub use shared::{
    EngineSnapshot, EngineState, KeyedInsert, RecoverError, SharedEngine, SharedInsert,
    WalRecoveryReport,
};
pub use stats_view::{HypotheticalStats, RealStats, StatsView};
