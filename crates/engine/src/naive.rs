//! A brute-force reference interpreter.
//!
//! Evaluates a [`BoundQuery`] by materializing the full cartesian product
//! of its relations and filtering — no indexes, no join ordering, no cost
//! model. It exists solely as ground truth for testing the optimizer and
//! executor (property tests compare [`crate::exec::execute`]'s output
//! against this on random queries over small tables).

use std::collections::{HashMap, HashSet};

use tab_sqlq::CmpOp;
use tab_storage::{Database, Value};

use crate::catalog::{BoundAgg, BoundItem, BoundQuery};

/// Evaluate `q` against base tables only (no views), brute force.
///
/// Results are in select-list order; row order is unspecified unless
/// the query has an ORDER BY (then it matches the executor's total
/// ordering, including the full-row tie-break).
pub fn evaluate(q: &BoundQuery, db: &Database) -> Vec<Vec<Value>> {
    let mut rows = evaluate_unordered(q, db);
    if !q.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for &(pos, desc) in &q.order_by {
                let ord = a[pos].cmp(&b[pos]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(b)
        });
    }
    if let Some(limit) = q.limit {
        rows.truncate(limit as usize);
    }
    rows
}

fn evaluate_unordered(q: &BoundQuery, db: &Database) -> Vec<Vec<Value>> {
    // Frequency-filter value sets.
    let mut freq_sets: Vec<HashSet<Value>> = Vec::new();
    for f in &q.freqs {
        let t = db.table(&f.sub_table).expect("bound table exists");
        let mut counts: HashMap<Value, u64> = HashMap::new();
        for (_, row) in t.iter() {
            if !row[f.sub_col].is_null() {
                *counts.entry(row[f.sub_col].clone()).or_insert(0) += 1;
            }
        }
        freq_sets.push(
            counts
                .into_iter()
                .filter(|(_, c)| match f.op {
                    CmpOp::Lt => (*c as i64) < f.k,
                    CmpOp::Eq => (*c as i64) == f.k,
                })
                .map(|(v, _)| v)
                .collect(),
        );
    }

    let tables: Vec<_> = q
        .rels
        .iter()
        .map(|r| db.table(&r.source).expect("bound table exists"))
        .collect();

    // Enumerate the cartesian product with a simple odometer.
    let sizes: Vec<usize> = tables.iter().map(|t| t.n_rows()).collect();
    let mut matched: Vec<Vec<&[Value]>> = Vec::new();
    if sizes.iter().all(|&s| s > 0) {
        let mut idx = vec![0usize; sizes.len()];
        'outer: loop {
            let rows: Vec<&[Value]> = idx
                .iter()
                .zip(&tables)
                .map(|(&i, t)| t.row(i as u32).as_ref())
                .collect();
            if passes(q, &rows, &freq_sets) {
                matched.push(rows);
            }
            // Advance odometer.
            for d in (0..idx.len()).rev() {
                idx[d] += 1;
                if idx[d] < sizes[d] {
                    continue 'outer;
                }
                idx[d] = 0;
                if d == 0 {
                    break 'outer;
                }
            }
        }
    }

    // Group and aggregate.
    if q.aggs.is_empty() && q.group_by.is_empty() {
        return matched
            .iter()
            .map(|rows| {
                q.select
                    .iter()
                    .map(|s| match s {
                        BoundItem::Column(r, c) => rows[*r][*c].clone(),
                        BoundItem::Agg(_) => unreachable!(),
                    })
                    .collect()
            })
            .collect();
    }

    struct G {
        count: u64,
        distincts: Vec<HashSet<Value>>,
    }
    let mut groups: HashMap<Vec<Value>, G> = HashMap::new();
    for rows in &matched {
        let key: Vec<Value> = q
            .group_by
            .iter()
            .map(|&(r, c)| rows[r][c].clone())
            .collect();
        let g = groups.entry(key).or_insert_with(|| G {
            count: 0,
            distincts: vec![HashSet::new(); q.aggs.len()],
        });
        g.count += 1;
        for (ai, a) in q.aggs.iter().enumerate() {
            if let BoundAgg::CountDistinct(r, c) = a {
                let v = rows[*r][*c].clone();
                if !v.is_null() {
                    g.distincts[ai].insert(v);
                }
            }
        }
    }
    if groups.is_empty() && q.group_by.is_empty() {
        groups.insert(
            Vec::new(),
            G {
                count: 0,
                distincts: vec![HashSet::new(); q.aggs.len()],
            },
        );
    }
    groups
        .into_iter()
        .map(|(key, g)| {
            q.select
                .iter()
                .map(|s| match s {
                    BoundItem::Column(r, c) => {
                        let pos = q
                            .group_by
                            .iter()
                            .position(|x| x == &(*r, *c))
                            .expect("grouped");
                        key[pos].clone()
                    }
                    BoundItem::Agg(k) => match &q.aggs[*k] {
                        BoundAgg::CountStar => Value::Int(g.count as i64),
                        BoundAgg::CountDistinct(..) => Value::Int(g.distincts[*k].len() as i64),
                    },
                })
                .collect()
        })
        .collect()
}

fn passes(q: &BoundQuery, rows: &[&[Value]], freq_sets: &[HashSet<Value>]) -> bool {
    for e in &q.joins {
        for &(ca, cb) in &e.cols {
            let a = &rows[e.a][ca];
            let b = &rows[e.b][cb];
            if a.is_null() || b.is_null() || a != b {
                return false;
            }
        }
    }
    for f in &q.filters {
        let v = &rows[f.rel][f.col];
        if v.is_null() || *v != f.value {
            return false;
        }
    }
    for f in &q.ranges {
        if !f.op.eval(&rows[f.rel][f.col], &f.value) {
            return false;
        }
    }
    for (fi, f) in q.freqs.iter().enumerate() {
        if !freq_sets[fi].contains(&rows[f.rel][f.col]) {
            return false;
        }
    }
    true
}
