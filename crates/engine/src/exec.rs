//! The physical-plan executor.
//!
//! Executes a [`PhysicalPlan`] against real storage, charging every page
//! and row to a [`CostMeter`]. The meter's total is the paper's actual
//! cost `A(q, C)`; when a budget is set, exceeding it aborts execution —
//! the 30-minute timeout of the paper's protocol.
//!
//! # Late materialization
//!
//! Intermediate tuples are **not** vectors of values. A tuple is a
//! fixed-width array of [`RowId`]s — one `u32` slot per relation in the
//! bound query — stored back to back in a flat `Arena`. Joins append
//! row ids; column values are fetched from base tables (or materialized
//! views) only at predicate evaluation, join-key extraction, and final
//! projection/aggregation, through [`Table::value`]. This removes the
//! per-step `clone` + `extend` of value vectors that dominated the old
//! executor's profile.
//!
//! Join and group-by keys are interned to dense `u64` ids via a
//! per-operation value dictionary (`KeyInterner`); hash buckets and
//! group states are indexed by id. Single-column integer equi-joins —
//! every join in the NREF2J/NREF3J/TH3J families — take a
//! zero-allocation fast path keyed directly on `i64`.
//!
//! # Cost accounting is execution-strategy independent
//!
//! The meter's totals are *what* the plan touches, not *how* the
//! executor iterates: n pages for a scan, one row per tuple entering an
//! operator, one row per emitted match. Charges here are batched (one
//! `charge_rows(n)` per operator input, a pending counter flushed every
//! `ROW_CHARGE_BATCH` emitted matches), which is safe because charges
//! are non-negative and the budget check is monotone — see the invariant
//! note on [`CostMeter`].

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use tab_sqlq::{CmpOp, RangeOp};
use tab_storage::{BTreeIndex, BuiltConfiguration, Database, RowId, Table, Value};

use crate::catalog::{BoundAgg, BoundItem, BoundQuery, FreqFilter};
use crate::cost::{CostMeter, TimedOut};
use crate::plan::{Access, JoinMethod, PhysicalPlan, ProbeSource, RelOp};

/// Resolves plan references to physical structures.
pub struct Resolver<'a> {
    db: &'a Database,
    built: &'a BuiltConfiguration,
}

impl<'a> Resolver<'a> {
    /// A resolver over a database and a built configuration.
    pub fn new(db: &'a Database, built: &'a BuiltConfiguration) -> Self {
        Resolver { db, built }
    }

    fn table(&self, source: &str) -> &'a Table {
        if let Some(t) = self.db.table(source) {
            return t;
        }
        self.built
            .mviews
            .iter()
            .find(|(mv, _)| mv.spec.name == source)
            .map(|(mv, _)| &mv.table)
            .unwrap_or_else(|| panic!("unknown source `{source}`"))
    }

    fn index(&self, source: &str, columns: &[usize]) -> &'a BTreeIndex {
        self.built
            .indexes_on(source)
            .find(|i| i.spec().columns == columns)
            .unwrap_or_else(|| panic!("no index on `{source}` with columns {columns:?}"))
    }
}

/// Flush granularity for row charges that are only known as matches are
/// emitted. Large enough to amortize the budget check, small enough that
/// a timed-out join cannot materialize an unbounded intermediate before
/// the meter notices (cf. [`crate::cost::BUDGET_ROW_CAP`]).
const ROW_CHARGE_BATCH: u64 = 4096;

/// Largest magnitude whose `i64 -> f64` cast is exact; the integer fast
/// path is restricted to keys in this range so `Int`/`Float` cross-type
/// equality (which compares through `f64`) cannot diverge from exact
/// `i64` equality.
const INT_EXACT_ABS: u64 = 1 << 53;

/// Flat arena of late-materialized tuples: `stride` row-id slots per
/// tuple, slot `r` holding the row id of bound relation `r` (slots of
/// not-yet-joined relations are zero and never read).
struct Arena {
    ids: Vec<RowId>,
    stride: usize,
}

impl Arena {
    fn new(stride: usize) -> Self {
        Arena {
            ids: Vec::new(),
            stride,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.ids.len() / self.stride
    }

    #[inline]
    fn tuple(&self, i: usize) -> &[RowId] {
        &self.ids[i * self.stride..(i + 1) * self.stride]
    }

    /// Append a driver tuple: only `slot` is meaningful.
    fn push_single(&mut self, slot: usize, id: RowId) {
        let start = self.ids.len();
        self.ids.resize(start + self.stride, 0);
        self.ids[start + slot] = id;
    }

    /// Append a joined tuple: `outer`'s slots plus `id` at `slot`.
    #[inline]
    fn push_joined(&mut self, outer: &[RowId], slot: usize, id: RowId) {
        let start = self.ids.len();
        self.ids.extend_from_slice(outer);
        self.ids[start + slot] = id;
    }
}

/// Per-operation dictionary interning composite key values to dense ids.
///
/// Lookups take a borrowed `&[Value]` (the caller's reused scratch
/// buffer), so probing allocates nothing; a key is copied into the
/// dictionary only the first time it is seen.
struct KeyInterner {
    dict: HashMap<Arc<[Value]>, u64>,
    keys: Vec<Arc<[Value]>>,
}

impl KeyInterner {
    fn new() -> Self {
        KeyInterner {
            dict: HashMap::new(),
            keys: Vec::new(),
        }
    }

    /// Id for `key`, assigning the next dense id on first sight.
    fn intern(&mut self, key: &[Value]) -> u64 {
        if let Some(&id) = self.dict.get(key) {
            return id;
        }
        let stored: Arc<[Value]> = key.to_vec().into();
        let id = self.keys.len() as u64;
        self.keys.push(Arc::clone(&stored));
        self.dict.insert(stored, id);
        id
    }

    /// Id for `key` if it has been interned.
    #[inline]
    fn lookup(&self, key: &[Value]) -> Option<u64> {
        self.dict.get(key).copied()
    }

    /// The key values behind an id (first-seen order).
    fn key(&self, id: u64) -> &[Value] {
        &self.keys[id as usize]
    }
}

/// Hash-join build table: interned general keys, or the zero-allocation
/// single-column integer fast path.
enum BuildTable {
    /// All build keys are `Int` with magnitude ≤ 2^53.
    Int(HashMap<i64, Vec<RowId>>),
    /// Arbitrary composite keys, interned.
    General {
        interner: KeyInterner,
        buckets: Vec<Vec<RowId>>,
    },
}

/// Build-side admission to the integer fast path: exact small ints only.
#[inline]
fn build_int_key(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) if i.unsigned_abs() <= INT_EXACT_ABS => Some(*i),
        _ => None,
    }
}

/// Probe-side conversion for the integer fast path. A probe value can
/// only match an admitted build key if it equals a small integer under
/// the cross-type numeric equality of [`Value`]; anything else — a
/// fractional or non-finite float, a string — matches nothing.
#[inline]
fn probe_int_key(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        Value::Float(f) if f.is_finite() && *f == f.trunc() && f.abs() <= INT_EXACT_ABS as f64 => {
            Some(*f as i64)
        }
        _ => None,
    }
}

/// Shared read-only execution state: the bound query, one resolved table
/// per relation, and the frequency-filter value sets.
struct Exec<'a> {
    q: &'a BoundQuery,
    tables: Vec<&'a Table>,
    freq_sets: Vec<HashSet<Value>>,
}

impl<'a> Exec<'a> {
    /// Borrow the value of `(rel, col)` for a tuple.
    #[inline]
    fn val(&self, tuple: &[RowId], rel: usize, col: usize) -> &'a Value {
        self.tables[rel].value(tuple[rel], col)
    }
}

/// Measured per-operator actuals, in the operator-slot layout shared
/// with [`PhysicalPlan::op_ests`]: `[FreqSetup, driver, step…, output]`.
/// Units are the [`CostMeter`] delta across the operator's execution, so
/// the slots sum to the run's total cost.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpActuals {
    /// Rows entering the operator (outer tuples for joins, rows examined
    /// for scans; zero for the frequency setup).
    pub rows_in: u64,
    /// Rows flowing out of the operator.
    pub rows_out: u64,
    /// Hash-bucket lookups or index probes performed (zero for scans).
    pub probes: u64,
    /// Cost units charged while this operator ran.
    pub units: f64,
}

/// Execute `plan`, returning the result rows in select-list order.
///
/// Row order is unspecified (hash-based operators); callers that compare
/// results should sort.
pub fn execute(
    plan: &PhysicalPlan,
    resolver: &Resolver<'_>,
    meter: &mut CostMeter,
) -> Result<Vec<Vec<Value>>, TimedOut> {
    execute_instrumented(plan, resolver, meter, None)
}

/// Execute `plan` like [`execute`], additionally recording one
/// [`OpActuals`] per operator slot when `ops` is supplied (layout
/// `[FreqSetup, driver, step…, output]`, matching
/// [`PhysicalPlan::op_labels`]). On timeout the vector holds the slots
/// that completed before the budget ran out. Instrumentation is
/// observational only: the meter sees identical charges either way.
pub fn execute_instrumented(
    plan: &PhysicalPlan,
    resolver: &Resolver<'_>,
    meter: &mut CostMeter,
    mut ops: Option<&mut Vec<OpActuals>>,
) -> Result<Vec<Vec<Value>>, TimedOut> {
    let q = &plan.query;

    // 1. Frequency-filter value sets, evaluated once each.
    let mut at = meter.units();
    let freq_sets = eval_freq_sets(q, resolver, meter)?;
    if let Some(v) = ops.as_deref_mut() {
        v.push(OpActuals {
            rows_in: 0,
            rows_out: freq_sets.iter().map(|s| s.len() as u64).sum(),
            probes: 0,
            units: meter.units() - at,
        });
    }
    let exec = Exec {
        q,
        tables: q.rels.iter().map(|r| resolver.table(&r.source)).collect(),
        freq_sets,
    };

    // 2. Driver.
    at = meter.units();
    let stride = q.rels.len();
    let mut tuples = Arena::new(stride);
    let (driver_ids, driver_examined) = scan_rel(&plan.driver, &exec, resolver, meter)?;
    for id in driver_ids {
        tuples.push_single(plan.driver.rel, id);
    }
    if let Some(v) = ops.as_deref_mut() {
        v.push(OpActuals {
            rows_in: driver_examined,
            rows_out: tuples.len() as u64,
            probes: 0,
            units: meter.units() - at,
        });
    }

    // 3. Join steps.
    for step in &plan.steps {
        at = meter.units();
        let rows_in = tuples.len() as u64;
        let mut probes = 0u64;
        let rel = step.inner.rel;
        match &step.method {
            JoinMethod::Hash => {
                let (inner_ids, _) = scan_rel(&step.inner, &exec, resolver, meter)?;
                // Grace-style spill when the build side exceeds memory.
                meter.charge_seq_pages(crate::cost::spill_pages(
                    inner_ids.len() as u64,
                    tuples.len() as u64,
                ))?;
                // Build on inner join cols; one row of work per inner
                // tuple, charged up front.
                meter.charge_rows(inner_ids.len() as u64)?;
                let inner_table = exec.tables[rel];
                let ht = build_hash_table(&inner_ids, inner_table, step.inner_cols());
                // Probe with the outer arena; one row of work per outer
                // tuple up front, one per emitted match (batched).
                meter.charge_rows(tuples.len() as u64)?;
                let mut out = Arena::new(stride);
                let mut pending = 0u64;
                let mut scratch: Vec<Value> = Vec::with_capacity(step.pairs.len());
                for i in 0..tuples.len() {
                    let t = tuples.tuple(i);
                    let bucket = match &ht {
                        BuildTable::Int(map) => {
                            let ((orel, ocol), _) = step.pairs[0];
                            let v = exec.val(t, orel, ocol);
                            if v.is_null() {
                                continue;
                            }
                            probes += 1;
                            probe_int_key(v).and_then(|k| map.get(&k))
                        }
                        BuildTable::General { interner, buckets } => {
                            scratch.clear();
                            scratch.extend(
                                step.outer_cols()
                                    .map(|(orel, ocol)| exec.val(t, orel, ocol).clone()),
                            );
                            if scratch.iter().any(Value::is_null) {
                                continue;
                            }
                            probes += 1;
                            interner.lookup(&scratch).map(|id| &buckets[id as usize])
                        }
                    };
                    if let Some(ids) = bucket {
                        for &id in ids {
                            out.push_joined(t, rel, id);
                            pending += 1;
                            if pending >= ROW_CHARGE_BATCH {
                                meter.charge_rows(pending)?;
                                pending = 0;
                            }
                        }
                    }
                }
                meter.charge_rows(pending)?;
                tuples = out;
            }
            JoinMethod::IndexNl {
                columns,
                probe,
                covering,
            } => {
                let table = exec.tables[rel];
                let index = resolver.index(&q.rels[rel].source, columns);
                // Residual join pairs not enforced by the probe prefix.
                let probed: BTreeSet<usize> = columns[..probe.len()].iter().copied().collect();
                let residual_pairs: Vec<((usize, usize), usize)> = step
                    .pairs
                    .iter()
                    .filter(|(_, ic)| !probed.contains(ic))
                    .cloned()
                    .collect();
                // One row of work per outer tuple, charged up front.
                meter.charge_rows(tuples.len() as u64)?;
                let mut out = Arena::new(stride);
                let mut scratch: Vec<Value> = Vec::with_capacity(probe.len());
                for i in 0..tuples.len() {
                    let t = tuples.tuple(i);
                    scratch.clear();
                    scratch.extend(probe.iter().map(|p| match p {
                        ProbeSource::Outer(orel, ocol) => exec.val(t, *orel, *ocol).clone(),
                        ProbeSource::Const(v) => v.clone(),
                    }));
                    if scratch.iter().any(Value::is_null) {
                        continue;
                    }
                    probes += 1;
                    let pr = index.probe(&scratch);
                    meter.charge_random_pages(pr.pages_touched)?;
                    if !covering && !pr.row_ids.is_empty() {
                        let pages: BTreeSet<u64> =
                            pr.row_ids.iter().map(|&id| table.page_of(id)).collect();
                        meter.charge_random_pages(pages.len() as u64)?;
                    }
                    meter.charge_rows(pr.row_ids.len() as u64)?;
                    for &id in &pr.row_ids {
                        let row = table.row(id);
                        if !passes_filters(row, &step.inner.filters)
                            || !passes_ranges(row, &step.inner.ranges)
                            || !passes_freqs(row, &step.inner.freqs, q, &exec.freq_sets)
                        {
                            continue;
                        }
                        // Residual join checks.
                        let ok = residual_pairs.iter().all(|&((orel, ocol), icol)| {
                            let ov = exec.val(t, orel, ocol);
                            !ov.is_null() && *ov == row[icol]
                        });
                        if !ok {
                            continue;
                        }
                        out.push_joined(t, rel, id);
                    }
                }
                tuples = out;
            }
        }
        if let Some(v) = ops.as_deref_mut() {
            v.push(OpActuals {
                rows_in,
                rows_out: tuples.len() as u64,
                probes,
                units: meter.units() - at,
            });
        }
    }

    // 4. Aggregation / projection.
    at = meter.units();
    let rows_in = tuples.len() as u64;
    let result = finish(&exec, &tuples, meter)?;
    if let Some(v) = ops {
        v.push(OpActuals {
            rows_in,
            rows_out: result.len() as u64,
            probes: 0,
            units: meter.units() - at,
        });
    }
    Ok(result)
}

/// Build the hash-join build side over the inner relation's filtered row
/// ids, picking the integer fast path when every non-null build key
/// admits it (a deterministic pre-scan decides, so the path — and any
/// future cost attached to it — cannot depend on hash iteration order).
fn build_hash_table<'c>(
    inner_ids: &[RowId],
    inner_table: &Table,
    mut inner_cols: impl Iterator<Item = usize> + Clone + 'c,
) -> BuildTable {
    let cols: Vec<usize> = inner_cols.by_ref().collect();
    if cols.len() == 1 {
        let c = cols[0];
        let all_int = inner_ids
            .iter()
            .map(|&id| inner_table.value(id, c))
            .all(|v| v.is_null() || build_int_key(v).is_some());
        if all_int {
            let mut map: HashMap<i64, Vec<RowId>> = HashMap::new();
            for &id in inner_ids {
                if let Some(k) = build_int_key(inner_table.value(id, c)) {
                    map.entry(k).or_default().push(id);
                }
            }
            return BuildTable::Int(map);
        }
    }
    let mut interner = KeyInterner::new();
    let mut buckets: Vec<Vec<RowId>> = Vec::new();
    let mut scratch: Vec<Value> = Vec::with_capacity(cols.len());
    for &id in inner_ids {
        scratch.clear();
        scratch.extend(cols.iter().map(|&c| inner_table.value(id, c).clone()));
        if scratch.iter().any(Value::is_null) {
            continue;
        }
        let key_id = interner.intern(&scratch) as usize;
        if key_id == buckets.len() {
            buckets.push(Vec::new());
        }
        buckets[key_id].push(id);
    }
    BuildTable::General { interner, buckets }
}

/// Evaluate the distinct-value sets for the query's frequency filters.
fn eval_freq_sets(
    q: &BoundQuery,
    resolver: &Resolver<'_>,
    meter: &mut CostMeter,
) -> Result<Vec<HashSet<Value>>, TimedOut> {
    let mut sets = Vec::with_capacity(q.freqs.len());
    for f in &q.freqs {
        let table = resolver.table(&f.sub_table);
        // Index-only evaluation when a built index leads with the column.
        let idx = resolver
            .built
            .indexes_on(&f.sub_table)
            .find(|i| i.spec().columns.first() == Some(&f.sub_col));
        let mut counts: HashMap<Value, u64> = HashMap::new();
        match idx {
            Some(idx) => {
                // Group sizes read off the leaf level: one operation per
                // distinct key (id-list lengths are stored), not per row.
                meter.charge_seq_pages(idx.n_pages())?;
                meter.charge_rows(idx.n_distinct_keys() as u64)?;
                for (key, ids) in idx.scan() {
                    *counts.entry(key[0].clone()).or_insert(0) += ids.len() as u64;
                }
            }
            None => {
                meter.charge_seq_pages(table.n_pages())?;
                meter.charge_rows(table.n_rows() as u64)?;
                for (_, row) in table.iter() {
                    let v = &row[f.sub_col];
                    if !v.is_null() {
                        *counts.entry(v.clone()).or_insert(0) += 1;
                    }
                }
            }
        }
        let set: HashSet<Value> = counts
            .into_iter()
            .filter(|(_, c)| qualifies(f.op, *c, f.k))
            .map(|(v, _)| v)
            .collect();
        sets.push(set);
    }
    Ok(sets)
}

fn qualifies(op: CmpOp, count: u64, k: i64) -> bool {
    match op {
        CmpOp::Lt => (count as i64) < k,
        CmpOp::Eq => (count as i64) == k,
    }
}

fn passes_filters(row: &[Value], filters: &[(usize, Value)]) -> bool {
    filters
        .iter()
        .all(|(c, v)| !row[*c].is_null() && row[*c] == *v)
}

fn passes_ranges(row: &[Value], ranges: &[(usize, RangeOp, Value)]) -> bool {
    ranges.iter().all(|(c, op, v)| op.eval(&row[*c], v))
}

fn passes_freqs(row: &[Value], freqs: &[usize], q: &BoundQuery, sets: &[HashSet<Value>]) -> bool {
    freqs.iter().all(|&fi| {
        let f: &FreqFilter = &q.freqs[fi];
        sets[fi].contains(&row[f.col])
    })
}

/// Scan one relation per its `RelOp`, returning the ids of the rows
/// that survive its residual filters plus the number of rows examined
/// (for instrumentation). Values are not materialized.
fn scan_rel(
    op: &RelOp,
    exec: &Exec<'_>,
    resolver: &Resolver<'_>,
    meter: &mut CostMeter,
) -> Result<(Vec<RowId>, u64), TimedOut> {
    let q = exec.q;
    let source = &q.rels[op.rel].source;
    let table = exec.tables[op.rel];
    let keep = |row: &[Value]| {
        passes_filters(row, &op.filters)
            && passes_ranges(row, &op.ranges)
            && passes_freqs(row, &op.freqs, q, &exec.freq_sets)
    };
    let mut out = Vec::new();
    let examined;
    match &op.access {
        Access::Seq => {
            meter.charge_seq_pages(table.n_pages())?;
            meter.charge_rows(table.n_rows() as u64)?;
            examined = table.n_rows() as u64;
            for (id, row) in table.iter() {
                if keep(row) {
                    out.push(id);
                }
            }
        }
        Access::Index {
            columns,
            prefix,
            covering,
        } => {
            let index = resolver.index(source, columns);
            let pr = index.probe(prefix);
            charge_probe(&pr, table, *covering, meter)?;
            examined = pr.row_ids.len() as u64;
            for &id in &pr.row_ids {
                if keep(table.row(id)) {
                    out.push(id);
                }
            }
        }
        Access::IndexRange {
            columns,
            lo,
            hi,
            covering,
        } => {
            let index = resolver.index(source, columns);
            let pr = index.probe_leading_range(
                lo.as_ref().map(|(v, s)| (v, *s)),
                hi.as_ref().map(|(v, s)| (v, *s)),
            );
            charge_probe(&pr, table, *covering, meter)?;
            examined = pr.row_ids.len() as u64;
            for &id in &pr.row_ids {
                if keep(table.row(id)) {
                    out.push(id);
                }
            }
        }
        Access::IndexFreqScan {
            columns,
            freq,
            covering,
        } => {
            let index = resolver.index(source, columns);
            let set = &exec.freq_sets[*freq];
            // One pass over the leaf level; only qualifying keys' rows
            // are examined and (if not covering) fetched.
            meter.charge_seq_pages(index.n_pages())?;
            meter.charge_rows(index.n_distinct_keys() as u64)?;
            let mut matched: Vec<RowId> = Vec::new();
            for (key, ids) in index.scan() {
                if set.contains(&key[0]) {
                    matched.extend_from_slice(ids);
                }
            }
            meter.charge_rows(matched.len() as u64)?;
            if !covering && !matched.is_empty() {
                let pages: BTreeSet<u64> = matched.iter().map(|&id| table.page_of(id)).collect();
                meter.charge_random_pages(pages.len() as u64)?;
            }
            examined = matched.len() as u64;
            for &id in &matched {
                if keep(table.row(id)) {
                    out.push(id);
                }
            }
        }
    }
    Ok((out, examined))
}

/// Charge an index probe: index pages touched, plus the distinct heap
/// pages fetched when the index does not cover the relation.
fn charge_probe(
    pr: &tab_storage::Probe,
    table: &Table,
    covering: bool,
    meter: &mut CostMeter,
) -> Result<(), TimedOut> {
    meter.charge_random_pages(pr.pages_touched)?;
    if !covering && !pr.row_ids.is_empty() {
        let pages: BTreeSet<u64> = pr.row_ids.iter().map(|&id| table.page_of(id)).collect();
        meter.charge_random_pages(pages.len() as u64)?;
    }
    meter.charge_rows(pr.row_ids.len() as u64)
}

/// Group, aggregate, and project in select-list order.
fn finish(
    exec: &Exec<'_>,
    tuples: &Arena,
    meter: &mut CostMeter,
) -> Result<Vec<Vec<Value>>, TimedOut> {
    let q = exec.q;
    let n = tuples.len();
    if q.aggs.is_empty() && q.group_by.is_empty() {
        // Plain projection.
        meter.charge_rows(n as u64)?;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let t = tuples.tuple(i);
            out.push(
                q.select
                    .iter()
                    .map(|s| match s {
                        BoundItem::Column(r, c) => exec.val(t, *r, *c).clone(),
                        BoundItem::Agg(_) => unreachable!("no aggs"),
                    })
                    .collect(),
            );
        }
        return order_and_limit(q, out, meter);
    }

    struct GroupState {
        count: u64,
        distincts: Vec<HashSet<Value>>,
    }
    // Hash aggregation spills when its input exceeds working memory.
    meter.charge_seq_pages(crate::cost::spill_pages(n as u64, 0))?;
    // One row of work per input tuple, plus one per tuple for every
    // COUNT(DISTINCT) aggregate maintained — identical to the per-tuple
    // charges of a tuple-at-a-time pass, paid up front.
    let n_distinct_aggs = q
        .aggs
        .iter()
        .filter(|a| matches!(a, BoundAgg::CountDistinct(..)))
        .count() as u64;
    meter.charge_rows(n as u64)?;
    meter.charge_rows(n as u64 * n_distinct_aggs)?;

    let mut interner = KeyInterner::new();
    let mut states: Vec<GroupState> = Vec::new();
    let mut scratch: Vec<Value> = Vec::with_capacity(q.group_by.len());
    for i in 0..n {
        let t = tuples.tuple(i);
        scratch.clear();
        scratch.extend(q.group_by.iter().map(|&(r, c)| exec.val(t, r, c).clone()));
        let gid = interner.intern(&scratch) as usize;
        if gid == states.len() {
            states.push(GroupState {
                count: 0,
                distincts: vec![HashSet::new(); q.aggs.len()],
            });
        }
        let st = &mut states[gid];
        st.count += 1;
        for (ai, agg) in q.aggs.iter().enumerate() {
            if let BoundAgg::CountDistinct(r, c) = agg {
                let v = exec.val(t, *r, *c);
                if !v.is_null() && !st.distincts[ai].contains(v) {
                    st.distincts[ai].insert(v.clone());
                }
            }
        }
    }
    // COUNT over an empty input with no GROUP BY still yields one row.
    if states.is_empty() && q.group_by.is_empty() {
        interner.intern(&[]);
        states.push(GroupState {
            count: 0,
            distincts: vec![HashSet::new(); q.aggs.len()],
        });
    }

    // One row of work per output group; groups emit in first-seen order,
    // which is deterministic (the old executor's hash-map order was not,
    // though callers may still not rely on unordered output order).
    meter.charge_rows(states.len() as u64)?;
    let mut out = Vec::with_capacity(states.len());
    for (gid, st) in states.iter().enumerate() {
        let key = interner.key(gid as u64);
        let row: Vec<Value> = q
            .select
            .iter()
            .map(|s| match s {
                BoundItem::Column(r, c) => {
                    let pos = q
                        .group_by
                        .iter()
                        .position(|g| g == &(*r, *c))
                        .expect("select column is grouped");
                    key[pos].clone()
                }
                BoundItem::Agg(k) => match &q.aggs[*k] {
                    BoundAgg::CountStar => Value::Int(st.count as i64),
                    BoundAgg::CountDistinct(..) => Value::Int(st.distincts[*k].len() as i64),
                },
            })
            .collect();
        out.push(row);
    }
    order_and_limit(q, out, meter)
}

/// Apply the bound query's ORDER BY (ties broken by the full row, so
/// the result is total) and LIMIT, charging sort work.
fn order_and_limit(
    q: &BoundQuery,
    mut rows: Vec<Vec<Value>>,
    meter: &mut CostMeter,
) -> Result<Vec<Vec<Value>>, TimedOut> {
    if !q.order_by.is_empty() {
        // n log n comparisons' worth of row work, plus sort spill.
        let n = rows.len() as u64;
        let log = (n.max(2) as f64).log2().ceil() as u64;
        meter.charge_rows(n.saturating_mul(log))?;
        meter.charge_seq_pages(crate::cost::spill_pages(n, 0))?;
        rows.sort_by(|a, b| {
            for &(pos, desc) in &q.order_by {
                let ord = a[pos].cmp(&b[pos]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(b) // total tie-break
        });
    }
    if let Some(limit) = q.limit {
        rows.truncate(limit as usize);
    }
    Ok(rows)
}
