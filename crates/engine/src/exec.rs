//! The physical-plan executor.
//!
//! Executes a [`PhysicalPlan`] against real storage, charging every page
//! and row to a [`CostMeter`]. The meter's total is the paper's actual
//! cost `A(q, C)`; when a budget is set, exceeding it aborts execution —
//! the 30-minute timeout of the paper's protocol.

use std::collections::{BTreeSet, HashMap, HashSet};

use tab_sqlq::{CmpOp, RangeOp};
use tab_storage::{BTreeIndex, BuiltConfiguration, Database, Table, Value};

use crate::catalog::{BoundAgg, BoundItem, BoundQuery, FreqFilter};
use crate::cost::{CostMeter, TimedOut};
use crate::plan::{Access, JoinMethod, PhysicalPlan, ProbeSource, RelOp};

/// Resolves plan references to physical structures.
pub struct Resolver<'a> {
    db: &'a Database,
    built: &'a BuiltConfiguration,
}

impl<'a> Resolver<'a> {
    /// A resolver over a database and a built configuration.
    pub fn new(db: &'a Database, built: &'a BuiltConfiguration) -> Self {
        Resolver { db, built }
    }

    fn table(&self, source: &str) -> &'a Table {
        if let Some(t) = self.db.table(source) {
            return t;
        }
        self.built
            .mviews
            .iter()
            .find(|(mv, _)| mv.spec.name == source)
            .map(|(mv, _)| &mv.table)
            .unwrap_or_else(|| panic!("unknown source `{source}`"))
    }

    fn index(&self, source: &str, columns: &[usize]) -> &'a BTreeIndex {
        self.built
            .indexes_on(source)
            .find(|i| i.spec().columns == columns)
            .unwrap_or_else(|| panic!("no index on `{source}` with columns {columns:?}"))
    }
}

/// Column layout of intermediate tuples: `(rel, col) -> position`.
#[derive(Debug, Default)]
struct Layout {
    pos: HashMap<(usize, usize), usize>,
}

impl Layout {
    fn add_rel(&mut self, rel: usize, cols: &BTreeSet<usize>) {
        for &c in cols {
            let next = self.pos.len();
            self.pos.insert((rel, c), next);
        }
    }

    fn get(&self, rel: usize, col: usize) -> usize {
        *self
            .pos
            .get(&(rel, col))
            .unwrap_or_else(|| panic!("column ({rel},{col}) not in tuple layout"))
    }
}

type Tuple = Vec<Value>;

/// Execute `plan`, returning the result rows in select-list order.
///
/// Row order is unspecified (hash-based operators); callers that compare
/// results should sort.
pub fn execute(
    plan: &PhysicalPlan,
    resolver: &Resolver<'_>,
    meter: &mut CostMeter,
) -> Result<Vec<Vec<Value>>, TimedOut> {
    let q = &plan.query;
    let need = q.needed_columns();

    // 1. Frequency-filter value sets, evaluated once each.
    let freq_sets = eval_freq_sets(q, resolver, meter)?;

    // 2. Driver.
    let mut layout = Layout::default();
    layout.add_rel(plan.driver.rel, &need[plan.driver.rel]);
    let mut tuples = scan_rel(&plan.driver, q, resolver, meter, &freq_sets, &need)?;

    // 3. Join steps.
    for step in &plan.steps {
        let rel = step.inner.rel;
        match &step.method {
            JoinMethod::Hash => {
                let mut inner_layout = Layout::default();
                inner_layout.add_rel(rel, &need[rel]);
                let inner_tuples = scan_rel(&step.inner, q, resolver, meter, &freq_sets, &need)?;
                // Grace-style spill when the build side exceeds memory.
                meter.charge_seq_pages(crate::cost::spill_pages(
                    inner_tuples.len() as u64,
                    tuples.len() as u64,
                ))?;
                // Build on inner join cols.
                let inner_cols: Vec<usize> = step.pairs.iter().map(|&(_, ic)| ic).collect();
                let mut ht: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for (i, t) in inner_tuples.iter().enumerate() {
                    meter.charge_rows(1)?;
                    let key: Vec<Value> = inner_cols
                        .iter()
                        .map(|&c| t[inner_layout.get(rel, c)].clone())
                        .collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    ht.entry(key).or_default().push(i);
                }
                let mut out = Vec::new();
                for t in &tuples {
                    meter.charge_rows(1)?;
                    let key: Vec<Value> = step
                        .pairs
                        .iter()
                        .map(|&((orel, ocol), _)| t[layout.get(orel, ocol)].clone())
                        .collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(ids) = ht.get(&key) {
                        for &i in ids {
                            meter.charge_rows(1)?;
                            let mut combined = t.clone();
                            combined.extend_from_slice(&inner_tuples[i]);
                            out.push(combined);
                        }
                    }
                }
                layout.add_rel(rel, &need[rel]);
                tuples = out;
            }
            JoinMethod::IndexNl {
                columns,
                probe,
                covering,
            } => {
                let source = &q.rels[rel].source;
                let table = resolver.table(source);
                let index = resolver.index(source, columns);
                let mut out = Vec::new();
                // Residual join pairs not enforced by the probe prefix.
                let probed: BTreeSet<usize> = columns[..probe.len()].iter().copied().collect();
                let residual_pairs: Vec<((usize, usize), usize)> = step
                    .pairs
                    .iter()
                    .filter(|(_, ic)| !probed.contains(ic))
                    .cloned()
                    .collect();
                for t in &tuples {
                    meter.charge_rows(1)?;
                    let key: Vec<Value> = probe
                        .iter()
                        .map(|p| match p {
                            ProbeSource::Outer(orel, ocol) => t[layout.get(*orel, *ocol)].clone(),
                            ProbeSource::Const(v) => v.clone(),
                        })
                        .collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    let pr = index.probe(&key);
                    meter.charge_random_pages(pr.pages_touched)?;
                    if !covering && !pr.row_ids.is_empty() {
                        let pages: BTreeSet<u64> =
                            pr.row_ids.iter().map(|&id| table.page_of(id)).collect();
                        meter.charge_random_pages(pages.len() as u64)?;
                    }
                    for &id in &pr.row_ids {
                        meter.charge_rows(1)?;
                        let row = table.row(id);
                        if !passes_filters(row, &step.inner.filters)
                            || !passes_ranges(row, &step.inner.ranges)
                            || !passes_freqs(row, &step.inner.freqs, q, &freq_sets)
                        {
                            continue;
                        }
                        // Residual join checks.
                        let ok = residual_pairs.iter().all(|&((orel, ocol), icol)| {
                            let ov = &t[layout.get(orel, ocol)];
                            !ov.is_null() && *ov == row[icol]
                        });
                        if !ok {
                            continue;
                        }
                        let mut combined = t.clone();
                        combined.extend(need[rel].iter().map(|&c| row[c].clone()));
                        out.push(combined);
                    }
                }
                layout.add_rel(rel, &need[rel]);
                tuples = out;
            }
        }
    }

    // 4. Aggregation / projection.
    finish(q, &layout, tuples, meter)
}

/// Evaluate the distinct-value sets for the query's frequency filters.
fn eval_freq_sets(
    q: &BoundQuery,
    resolver: &Resolver<'_>,
    meter: &mut CostMeter,
) -> Result<Vec<HashSet<Value>>, TimedOut> {
    let mut sets = Vec::with_capacity(q.freqs.len());
    for f in &q.freqs {
        let table = resolver.table(&f.sub_table);
        // Index-only evaluation when a built index leads with the column.
        let idx = resolver
            .built
            .indexes_on(&f.sub_table)
            .find(|i| i.spec().columns.first() == Some(&f.sub_col));
        let mut counts: HashMap<Value, u64> = HashMap::new();
        match idx {
            Some(idx) => {
                // Group sizes read off the leaf level: one operation per
                // distinct key (id-list lengths are stored), not per row.
                meter.charge_seq_pages(idx.n_pages())?;
                meter.charge_rows(idx.n_distinct_keys() as u64)?;
                for (key, ids) in idx.scan() {
                    *counts.entry(key[0].clone()).or_insert(0) += ids.len() as u64;
                }
            }
            None => {
                meter.charge_seq_pages(table.n_pages())?;
                meter.charge_rows(table.n_rows() as u64)?;
                for (_, row) in table.iter() {
                    let v = &row[f.sub_col];
                    if !v.is_null() {
                        *counts.entry(v.clone()).or_insert(0) += 1;
                    }
                }
            }
        }
        let set: HashSet<Value> = counts
            .into_iter()
            .filter(|(_, c)| qualifies(f.op, *c, f.k))
            .map(|(v, _)| v)
            .collect();
        sets.push(set);
    }
    Ok(sets)
}

fn qualifies(op: CmpOp, count: u64, k: i64) -> bool {
    match op {
        CmpOp::Lt => (count as i64) < k,
        CmpOp::Eq => (count as i64) == k,
    }
}

fn passes_filters(row: &[Value], filters: &[(usize, Value)]) -> bool {
    filters
        .iter()
        .all(|(c, v)| !row[*c].is_null() && row[*c] == *v)
}

fn passes_ranges(row: &[Value], ranges: &[(usize, RangeOp, Value)]) -> bool {
    ranges.iter().all(|(c, op, v)| op.eval(&row[*c], v))
}

fn passes_freqs(row: &[Value], freqs: &[usize], q: &BoundQuery, sets: &[HashSet<Value>]) -> bool {
    freqs.iter().all(|&fi| {
        let f: &FreqFilter = &q.freqs[fi];
        sets[fi].contains(&row[f.col])
    })
}

/// Scan one relation per its `RelOp`, returning projected tuples of the
/// relation's needed columns (in `BTreeSet` order).
fn scan_rel(
    op: &RelOp,
    q: &BoundQuery,
    resolver: &Resolver<'_>,
    meter: &mut CostMeter,
    freq_sets: &[HashSet<Value>],
    need: &[BTreeSet<usize>],
) -> Result<Vec<Tuple>, TimedOut> {
    let source = &q.rels[op.rel].source;
    let table = resolver.table(source);
    let cols: Vec<usize> = need[op.rel].iter().copied().collect();
    let mut out = Vec::new();
    match &op.access {
        Access::Seq => {
            meter.charge_seq_pages(table.n_pages())?;
            for (_, row) in table.iter() {
                meter.charge_rows(1)?;
                if passes_filters(row, &op.filters)
                    && passes_ranges(row, &op.ranges)
                    && passes_freqs(row, &op.freqs, q, freq_sets)
                {
                    out.push(cols.iter().map(|&c| row[c].clone()).collect());
                }
            }
        }
        Access::Index {
            columns,
            prefix,
            covering,
        } => {
            let index = resolver.index(source, columns);
            let pr = index.probe(prefix);
            meter.charge_random_pages(pr.pages_touched)?;
            if !covering && !pr.row_ids.is_empty() {
                let pages: BTreeSet<u64> = pr.row_ids.iter().map(|&id| table.page_of(id)).collect();
                meter.charge_random_pages(pages.len() as u64)?;
            }
            for &id in &pr.row_ids {
                meter.charge_rows(1)?;
                let row = table.row(id);
                if passes_filters(row, &op.filters)
                    && passes_ranges(row, &op.ranges)
                    && passes_freqs(row, &op.freqs, q, freq_sets)
                {
                    out.push(cols.iter().map(|&c| row[c].clone()).collect());
                }
            }
        }
        Access::IndexRange {
            columns,
            lo,
            hi,
            covering,
        } => {
            let index = resolver.index(source, columns);
            let pr = index.probe_leading_range(
                lo.as_ref().map(|(v, s)| (v, *s)),
                hi.as_ref().map(|(v, s)| (v, *s)),
            );
            meter.charge_random_pages(pr.pages_touched)?;
            if !covering && !pr.row_ids.is_empty() {
                let pages: BTreeSet<u64> = pr.row_ids.iter().map(|&id| table.page_of(id)).collect();
                meter.charge_random_pages(pages.len() as u64)?;
            }
            for &id in &pr.row_ids {
                meter.charge_rows(1)?;
                let row = table.row(id);
                if passes_filters(row, &op.filters)
                    && passes_ranges(row, &op.ranges)
                    && passes_freqs(row, &op.freqs, q, freq_sets)
                {
                    out.push(cols.iter().map(|&c| row[c].clone()).collect());
                }
            }
        }
        Access::IndexFreqScan {
            columns,
            freq,
            covering,
        } => {
            let index = resolver.index(source, columns);
            let set = &freq_sets[*freq];
            // One pass over the leaf level; only qualifying keys' rows
            // are examined and (if not covering) fetched.
            meter.charge_seq_pages(index.n_pages())?;
            meter.charge_rows(index.n_distinct_keys() as u64)?;
            let mut matched: Vec<RowIdLocal> = Vec::new();
            for (key, ids) in index.scan() {
                if set.contains(&key[0]) {
                    matched.extend_from_slice(ids);
                }
            }
            meter.charge_rows(matched.len() as u64)?;
            if !covering && !matched.is_empty() {
                let pages: BTreeSet<u64> = matched.iter().map(|&id| table.page_of(id)).collect();
                meter.charge_random_pages(pages.len() as u64)?;
            }
            for &id in &matched {
                let row = table.row(id);
                if passes_filters(row, &op.filters)
                    && passes_ranges(row, &op.ranges)
                    && passes_freqs(row, &op.freqs, q, freq_sets)
                {
                    out.push(cols.iter().map(|&c| row[c].clone()).collect());
                }
            }
        }
    }
    Ok(out)
}

type RowIdLocal = tab_storage::RowId;

/// Group, aggregate, and project in select-list order.
fn finish(
    q: &BoundQuery,
    layout: &Layout,
    tuples: Vec<Tuple>,
    meter: &mut CostMeter,
) -> Result<Vec<Vec<Value>>, TimedOut> {
    if q.aggs.is_empty() && q.group_by.is_empty() {
        // Plain projection.
        let mut out = Vec::with_capacity(tuples.len());
        for t in tuples {
            meter.charge_rows(1)?;
            out.push(
                q.select
                    .iter()
                    .map(|s| match s {
                        BoundItem::Column(r, c) => t[layout.get(*r, *c)].clone(),
                        BoundItem::Agg(_) => unreachable!("no aggs"),
                    })
                    .collect(),
            );
        }
        return order_and_limit(q, out, meter);
    }

    struct GroupState {
        count: u64,
        distincts: Vec<HashSet<Value>>,
    }
    // Hash aggregation spills when its input exceeds working memory.
    meter.charge_seq_pages(crate::cost::spill_pages(tuples.len() as u64, 0))?;
    let mut groups: HashMap<Vec<Value>, GroupState> = HashMap::new();
    for t in &tuples {
        meter.charge_rows(1)?;
        let key: Vec<Value> = q
            .group_by
            .iter()
            .map(|&(r, c)| t[layout.get(r, c)].clone())
            .collect();
        let st = groups.entry(key).or_insert_with(|| GroupState {
            count: 0,
            distincts: vec![HashSet::new(); q.aggs.len()],
        });
        st.count += 1;
        for (ai, agg) in q.aggs.iter().enumerate() {
            if let BoundAgg::CountDistinct(r, c) = agg {
                meter.charge_rows(1)?;
                let v = t[layout.get(*r, *c)].clone();
                if !v.is_null() {
                    st.distincts[ai].insert(v);
                }
            }
        }
    }
    // COUNT over an empty input with no GROUP BY still yields one row.
    if groups.is_empty() && q.group_by.is_empty() {
        groups.insert(
            Vec::new(),
            GroupState {
                count: 0,
                distincts: vec![HashSet::new(); q.aggs.len()],
            },
        );
    }

    let mut out = Vec::with_capacity(groups.len());
    for (key, st) in groups {
        meter.charge_rows(1)?;
        let row: Vec<Value> = q
            .select
            .iter()
            .map(|s| match s {
                BoundItem::Column(r, c) => {
                    let pos = q
                        .group_by
                        .iter()
                        .position(|g| g == &(*r, *c))
                        .expect("select column is grouped");
                    key[pos].clone()
                }
                BoundItem::Agg(k) => match &q.aggs[*k] {
                    BoundAgg::CountStar => Value::Int(st.count as i64),
                    BoundAgg::CountDistinct(..) => Value::Int(st.distincts[*k].len() as i64),
                },
            })
            .collect();
        out.push(row);
    }
    order_and_limit(q, out, meter)
}

/// Apply the bound query's ORDER BY (ties broken by the full row, so
/// the result is total) and LIMIT, charging sort work.
fn order_and_limit(
    q: &BoundQuery,
    mut rows: Vec<Vec<Value>>,
    meter: &mut CostMeter,
) -> Result<Vec<Vec<Value>>, TimedOut> {
    if !q.order_by.is_empty() {
        // n log n comparisons' worth of row work, plus sort spill.
        let n = rows.len() as u64;
        let log = (n.max(2) as f64).log2().ceil() as u64;
        meter.charge_rows(n.saturating_mul(log))?;
        meter.charge_seq_pages(crate::cost::spill_pages(n, 0))?;
        rows.sort_by(|a, b| {
            for &(pos, desc) in &q.order_by {
                let ord = a[pos].cmp(&b[pos]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(b) // total tie-break
        });
    }
    if let Some(limit) = q.limit {
        rows.truncate(limit as usize);
    }
    Ok(rows)
}
