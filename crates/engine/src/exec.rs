//! The physical-plan executor.
//!
//! Executes a [`PhysicalPlan`] against real storage, charging every page
//! and row to a [`CostMeter`]. The meter's total is the paper's actual
//! cost `A(q, C)`; when a budget is set, exceeding it aborts execution —
//! the 30-minute timeout of the paper's protocol.
//!
//! # Late materialization
//!
//! Intermediate tuples are **not** vectors of values. A tuple is a
//! fixed-width array of [`RowId`]s — one `u32` slot per relation in the
//! bound query — stored back to back in a flat `Arena`. Joins append
//! row ids; column values are fetched from base tables (or materialized
//! views) only at predicate evaluation, join-key extraction, and final
//! projection/aggregation, through [`Table::value`]. This removes the
//! per-step `clone` + `extend` of value vectors that dominated the old
//! executor's profile.
//!
//! Join and group-by keys are interned to dense `u64` ids via a
//! per-operation value dictionary (`KeyInterner`); hash buckets and
//! group states are indexed by id. Single-column integer equi-joins —
//! every join in the NREF2J/NREF3J/TH3J families — take a
//! zero-allocation fast path keyed directly on `i64`.
//!
//! # Morsel-driven intra-query parallelism
//!
//! Every bulk loop — scan filtering, hash build, hash probe, index
//! nested-loop probing, grouping, projection — runs over fixed-size
//! **morsels** (contiguous row-id ranges of [`ExecOpts::morsel_rows`]
//! rows) dispatched on the deterministic `par_map` pool from
//! `tab-storage`. Workers produce per-morsel outputs and per-morsel
//! `LocalCounters`; the coordinator concatenates outputs **in morsel
//! index order** and reduces counters into the meter in that same
//! order. Because the meter derives units from counter totals and its
//! budget check is monotone (see [`CostMeter`]), results, cost totals,
//! and the Done/Timeout verdict are byte-identical at any thread count
//! and morsel size — including the sequential in-place path that
//! `par_map` takes at one thread.
//!
//! Budgeted executions keep their early abort through a shared
//! `AbortGate`: workers publish performed charges to atomic counters
//! and stop dispatching work once the published total provably exceeds
//! the budget. Only performed charges are ever published, so the gate
//! can trip **only if** the true total would also trip — the final
//! verdict (from the ordered reduction) is unaffected.
//!
//! Predicate evaluation over a morsel takes a columnar fast path when
//! every constant in the relation's filters and ranges is an `Int`: the
//! referenced columns are gathered into flat `i64` buffers plus a
//! validity mask and the predicates are evaluated branch-reduced over
//! the buffers. A morsel containing any non-`Int`, non-NULL cell in a
//! predicate column falls back to the scalar row-at-a-time path, whose
//! semantics the vectorized path reproduces exactly (`Int`/`Int`
//! comparisons are exact in both).
//!
//! # Cost accounting is execution-strategy independent
//!
//! The meter's totals are *what* the plan touches, not *how* the
//! executor iterates: n pages for a scan, one row per tuple entering an
//! operator, one row per emitted match. Charges here are batched (one
//! `charge_rows(n)` per operator input, per-morsel counters reduced in
//! morsel order), which is safe because charges are non-negative and
//! the budget check is monotone — see the invariant note on
//! [`CostMeter`].

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use tab_sqlq::{CmpOp, RangeOp};
use tab_storage::{
    index_rel_id, par_map, table_rel_id, temp_rel_id, BTreeIndex, BufferPool, BuiltConfiguration,
    Database, Faults, Fetched, PageHint, PageKey, Pager, Parallelism, PoolStats, RowId, Table,
    Trace, Value,
};

use crate::catalog::{BoundAgg, BoundItem, BoundQuery, FreqFilter};
use crate::cost::{
    ChargePolicy, CostMeter, TimedOut, BUDGET_ROW_CAP, HASH_SPILL_ROWS, RANDOM_PAGE_COST, ROW_COST,
    SEQ_PAGE_COST, SPILL_ROWS_PER_PAGE,
};
use crate::plan::{Access, JoinMethod, PhysicalPlan, ProbeSource, RelOp};

/// Resolves plan references to physical structures.
pub struct Resolver<'a> {
    db: &'a Database,
    built: &'a BuiltConfiguration,
}

impl<'a> Resolver<'a> {
    /// A resolver over a database and a built configuration.
    pub fn new(db: &'a Database, built: &'a BuiltConfiguration) -> Self {
        Resolver { db, built }
    }

    fn table(&self, source: &str) -> &'a Table {
        if let Some(t) = self.db.table(source) {
            return t;
        }
        self.built
            .mviews
            .iter()
            .find(|(mv, _)| mv.spec.name == source)
            .map(|(mv, _)| &mv.table)
            .unwrap_or_else(|| panic!("unknown source `{source}`"))
    }

    fn index(&self, source: &str, columns: &[usize]) -> &'a BTreeIndex {
        self.built
            .indexes_on(source)
            .find(|i| i.spec().columns == columns)
            .unwrap_or_else(|| panic!("no index on `{source}` with columns {columns:?}"))
    }
}

/// Flush granularity for row charges that are only known as matches are
/// emitted. Large enough to amortize the budget check, small enough that
/// a timed-out join cannot materialize an unbounded intermediate before
/// the meter notices (cf. [`crate::cost::BUDGET_ROW_CAP`]).
const ROW_CHARGE_BATCH: u64 = 4096;

/// Largest magnitude whose `i64 -> f64` cast is exact; the integer fast
/// path is restricted to keys in this range so `Int`/`Float` cross-type
/// equality (which compares through `f64`) cannot diverge from exact
/// `i64` equality.
const INT_EXACT_ABS: u64 = 1 << 53;

/// Default rows per execution morsel. Large enough that per-morsel
/// bookkeeping is noise, small enough that the dynamic scheduler can
/// balance skewed operators across workers.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Execution knobs for morsel-driven intra-query parallelism.
///
/// The defaults — sequential, [`DEFAULT_MORSEL_ROWS`], vectorization on
/// — reproduce the historical executor byte for byte; so does **every
/// other** setting, because cost totals derive from per-morsel counters
/// reduced in morsel index order (see the module docs). The knobs only
/// change wall-clock.
#[derive(Clone, Copy)]
pub struct ExecOpts<'a> {
    /// Worker threads for intra-query morsel dispatch. Distinct from
    /// the grid-level fan-out across (family, config, query) jobs: this
    /// parallelism lives *inside* one query execution.
    pub par: Parallelism,
    /// Rows per morsel (clamped to at least 1).
    pub morsel_rows: usize,
    /// Columnar `Int` fast path for predicate evaluation. Off forces
    /// the scalar row-at-a-time path everywhere; results and costs are
    /// identical either way (the microbenches flip this to measure the
    /// vectorized speedup).
    pub vectorize: bool,
    /// Fault-injection hook: when `fault_site` is armed in `faults`,
    /// every morsel worker panics at morsel start — the
    /// `panic:morsel:<family>/<config>` site of DESIGN.md §10.
    pub faults: Faults<'a>,
    /// The site string morsel workers check, e.g. `morsel:NREF3J/NREF_1C`.
    pub fault_site: Option<&'a str>,
    /// Buffer-pool configuration; `None` (the default) charges modeled
    /// page counts directly with no pool, exactly as before the pool
    /// existed.
    pub pool: Option<PoolOpts<'a>>,
}

impl Default for ExecOpts<'_> {
    fn default() -> Self {
        ExecOpts {
            par: Parallelism::sequential(),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            vectorize: true,
            faults: Faults::disabled(),
            fault_site: None,
            pool: None,
        }
    }
}

/// Buffer-pool knobs for one query execution.
///
/// A fresh [`BufferPool`] of `pages` frames is created per execution and
/// driven **only by the coordinator** — morsel workers collect page-key
/// access lists that the coordinator replays in morsel index order — so
/// hits, misses, and evictions are a pure function of the logical access
/// stream and every output stays byte-identical at any thread count.
#[derive(Clone, Copy)]
pub struct PoolOpts<'a> {
    /// Pool capacity in 8 KiB frames; `0` disables the pool entirely.
    pub pages: usize,
    /// Whether the meter charges observed pool misses or the modeled
    /// page counts (see [`ChargePolicy`]).
    pub policy: ChargePolicy,
    /// Backing pager for real heap reads and spill writes; `None` runs
    /// the pool over zero-filled frames (identical accounting).
    pub pager: Option<&'a Pager>,
    /// Fault site checked at every eviction, e.g. `evict:NREF3J/NREF_1C`
    /// (the `panic:evict:*` site of DESIGN.md §10).
    pub evict_site: Option<&'a str>,
    /// Trace receiving `page` events (hit/miss/evict).
    pub trace: Trace<'a>,
}

impl<'a> PoolOpts<'a> {
    /// A pool of `pages` frames with default policy and no pager,
    /// tracing, or fault site.
    pub fn new(pages: usize) -> Self {
        PoolOpts {
            pages,
            policy: ChargePolicy::default(),
            pager: None,
            evict_site: None,
            trace: Trace::disabled(),
        }
    }
}

/// Live pool state for one execution: the pool itself, the charge
/// policy, and a bump allocator for spill-stream page numbers (each
/// spilling operator writes a fresh page range of the shared `spill`
/// temp relation).
struct PoolState<'a> {
    pool: BufferPool<'a>,
    policy: ChargePolicy,
    spill_next_page: u64,
}

impl<'a> PoolState<'a> {
    fn of(opts: &ExecOpts<'a>) -> Option<Self> {
        let p = opts.pool.filter(|p| p.pages > 0)?;
        Some(PoolState {
            pool: BufferPool::new(p.pages, p.pager, opts.faults, p.trace, p.evict_site),
            policy: p.policy,
            spill_next_page: 0,
        })
    }
}

/// Pool counters so far (zero when no pool is active).
fn pool_stats_now(ps: &Option<PoolState<'_>>) -> PoolStats {
    ps.as_ref()
        .map_or_else(PoolStats::default, |s| s.pool.stats())
}

/// Charge a sequential sweep of `n` pages `start..start + n` of `rel`.
/// Without a pool this is the historical `charge_seq_pages(n)`; with one,
/// the pages stream through the pool and [`ChargePolicy::Observed`]
/// charges only the misses (on a cold pool every page misses once, so
/// the observed cost of a cold scan equals the modeled cost exactly).
fn pool_charge_seq(
    ps: &mut Option<PoolState<'_>>,
    meter: &mut CostMeter,
    rel: u64,
    start: u64,
    n: u64,
    dirty: bool,
) -> Result<(), TimedOut> {
    match ps {
        None => meter.charge_seq_pages(n),
        Some(st) => {
            let mut misses = 0u64;
            for page in start..start + n {
                if st.pool.fetch(PageKey { rel, page }, PageHint::Seq, dirty) != Fetched::Hit {
                    misses += 1;
                }
            }
            match st.policy {
                ChargePolicy::Metered => meter.charge_seq_pages(n),
                ChargePolicy::Observed => meter.charge_seq_pages(misses),
            }
        }
    }
}

/// Charge `n` random page accesses. `keys` materializes the page
/// identities and is only invoked when a pool is active; it must yield
/// exactly the `n` pages the modeled count stands for.
fn pool_charge_random(
    ps: &mut Option<PoolState<'_>>,
    meter: &mut CostMeter,
    n: u64,
    keys: impl FnOnce() -> Vec<PageKey>,
) -> Result<(), TimedOut> {
    match ps {
        None => meter.charge_random_pages(n),
        Some(st) => {
            let mut misses = 0u64;
            for k in keys() {
                if st.pool.fetch(k, PageHint::Random, false) != Fetched::Hit {
                    misses += 1;
                }
            }
            match st.policy {
                ChargePolicy::Metered => meter.charge_random_pages(n),
                ChargePolicy::Observed => meter.charge_random_pages(misses),
            }
        }
    }
}

/// The build-side row threshold above which a hash operator spills. In
/// [`ChargePolicy::Observed`] mode a pool smaller than the modeled
/// workspace spills earlier — the build side genuinely does not fit —
/// while the metered/compat paths keep the historical constant so golden
/// totals never move.
fn spill_threshold(ps: &Option<PoolState<'_>>) -> u64 {
    match ps {
        Some(st) if st.policy == ChargePolicy::Observed => {
            HASH_SPILL_ROWS.min(st.pool.capacity() as u64 * SPILL_ROWS_PER_PAGE)
        }
        _ => HASH_SPILL_ROWS,
    }
}

/// Charge a spilling operator's partition passes: `n` sequential pages,
/// streamed through the pool as *dirty* writes of a fresh page range of
/// the shared `spill` temp relation (dirty frames evicted under pressure
/// are written to the pager's spill file for real).
fn pool_charge_spill(
    ps: &mut Option<PoolState<'_>>,
    meter: &mut CostMeter,
    build_rows: u64,
    probe_rows: u64,
) -> Result<(), TimedOut> {
    let n = crate::cost::spill_pages_with(build_rows, probe_rows, spill_threshold(ps));
    let Some(st) = ps.as_mut() else {
        return meter.charge_seq_pages(n);
    };
    let start = st.spill_next_page;
    st.spill_next_page += n;
    pool_charge_seq(ps, meter, temp_rel_id("spill"), start, n, true)
}

/// Split `n` items into contiguous `(start, end)` morsel ranges.
fn morsel_ranges(n: usize, morsel_rows: usize) -> Vec<(usize, usize)> {
    let m = morsel_rows.max(1);
    (0..n).step_by(m).map(|s| (s, (s + m).min(n))).collect()
}

/// Minimum items in a parallel region before worker threads are used;
/// below it the scoped-thread spawn cost of [`par_map`] outweighs the
/// work and the region runs on the coordinator. Purely a wall-clock
/// heuristic — morsel boundaries, charge order, and results are
/// computed identically either way, so the gate needs no determinism
/// caveat (and `panic:morsel:*` faults still fire: the sequential
/// fallback runs the same morsel closures in place).
const PAR_MIN_ITEMS: usize = 2 * DEFAULT_MORSEL_ROWS;

/// The parallelism a region of `items` work items should run at.
fn region_par(opts: &ExecOpts<'_>, items: usize) -> Parallelism {
    if items < PAR_MIN_ITEMS {
        Parallelism::sequential()
    } else {
        opts.par
    }
}

/// Fire the armed `panic:morsel:*` fault, if any. Called at the start
/// of every morsel job so a poisoned worker is deterministic at any
/// thread count and morsel size.
#[inline]
fn morsel_prologue(opts: &ExecOpts<'_>) {
    if let Some(site) = opts.fault_site {
        opts.faults.panic_if_armed(site);
    }
}

/// One morsel's charge deltas, reduced into the [`CostMeter`] in morsel
/// index order by [`reduce_locals`]. Keeping raw counters (not units)
/// means the reduction reproduces the sequential executor's counter
/// totals exactly.
#[derive(Debug, Clone, Copy, Default)]
struct LocalCounters {
    seq_pages: u64,
    random_pages: u64,
    rows: u64,
}

/// Charge per-morsel counters into the meter **in morsel index order**.
/// The first morsel whose cumulative total exceeds the budget returns
/// the timeout, exactly as the sequential executor's interleaved
/// charges would (the check is monotone, so grouping does not change
/// the verdict).
fn reduce_locals<'l>(
    meter: &mut CostMeter,
    locals: impl Iterator<Item = &'l LocalCounters>,
) -> Result<(), TimedOut> {
    for l in locals {
        meter.charge_seq_pages(l.seq_pages)?;
        meter.charge_random_pages(l.random_pages)?;
        meter.charge_rows(l.rows)?;
    }
    Ok(())
}

/// Shared early-abort gate for budgeted parallel operators.
///
/// Workers publish *performed* charges to atomic counters; once the
/// published total provably exceeds the budget (or the row cap), the
/// gate trips and workers stop taking new work. Because only performed
/// charges are published, the published total is always a lower bound
/// on the true total — the gate can trip only for executions the
/// sequential path would also time out, and when it never trips the
/// ordered reduction sees the complete counters. The gate therefore
/// affects wall-clock only, never the verdict or the totals.
struct AbortGate {
    budget: Option<f64>,
    base_units: f64,
    base_rows: u64,
    seq_pages: AtomicU64,
    random_pages: AtomicU64,
    rows: AtomicU64,
    tripped: AtomicBool,
}

impl AbortGate {
    fn of(meter: &CostMeter) -> Self {
        AbortGate {
            budget: meter.budget(),
            base_units: meter.units(),
            base_rows: meter.rows(),
            seq_pages: AtomicU64::new(0),
            random_pages: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
        }
    }

    /// Whether workers should stop taking new work.
    #[inline]
    fn tripped(&self) -> bool {
        self.budget.is_some() && self.tripped.load(Ordering::Relaxed)
    }

    /// Publish a worker's performed charge delta and re-check.
    fn publish(&self, delta: LocalCounters) {
        let Some(budget) = self.budget else { return };
        let seq = self.seq_pages.fetch_add(delta.seq_pages, Ordering::Relaxed) + delta.seq_pages;
        let random = self
            .random_pages
            .fetch_add(delta.random_pages, Ordering::Relaxed)
            + delta.random_pages;
        let rows = self.rows.fetch_add(delta.rows, Ordering::Relaxed) + delta.rows;
        let units = self.base_units
            + seq as f64 * SEQ_PAGE_COST
            + random as f64 * RANDOM_PAGE_COST
            + rows as f64 * ROW_COST;
        if units > budget || self.base_rows + rows > BUDGET_ROW_CAP {
            self.tripped.store(true, Ordering::Relaxed);
        }
    }
}

/// Flat arena of late-materialized tuples: `stride` row-id slots per
/// tuple, slot `r` holding the row id of bound relation `r` (slots of
/// not-yet-joined relations are zero and never read).
struct Arena {
    ids: Vec<RowId>,
    stride: usize,
}

impl Arena {
    fn new(stride: usize) -> Self {
        Arena {
            ids: Vec::new(),
            stride,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.ids.len() / self.stride
    }

    #[inline]
    fn tuple(&self, i: usize) -> &[RowId] {
        &self.ids[i * self.stride..(i + 1) * self.stride]
    }

    /// Append a driver tuple: only `slot` is meaningful.
    fn push_single(&mut self, slot: usize, id: RowId) {
        let start = self.ids.len();
        self.ids.resize(start + self.stride, 0);
        self.ids[start + slot] = id;
    }

    /// Append a joined tuple: `outer`'s slots plus `id` at `slot`.
    #[inline]
    fn push_joined(&mut self, outer: &[RowId], slot: usize, id: RowId) {
        let start = self.ids.len();
        self.ids.extend_from_slice(outer);
        self.ids[start + slot] = id;
    }

    /// Append another arena's tuples wholesale (morsel concatenation).
    fn append(&mut self, mut chunk: Arena) {
        debug_assert_eq!(self.stride, chunk.stride);
        self.ids.append(&mut chunk.ids);
    }
}

/// Per-operation dictionary interning composite key values to dense ids.
///
/// Lookups take a borrowed `&[Value]` (the caller's reused scratch
/// buffer), so probing allocates nothing; a key is copied into the
/// dictionary only the first time it is seen.
struct KeyInterner {
    dict: HashMap<Arc<[Value]>, u64>,
    keys: Vec<Arc<[Value]>>,
}

impl KeyInterner {
    fn new() -> Self {
        KeyInterner {
            dict: HashMap::new(),
            keys: Vec::new(),
        }
    }

    /// Id for `key`, assigning the next dense id on first sight.
    fn intern(&mut self, key: &[Value]) -> u64 {
        if let Some(&id) = self.dict.get(key) {
            return id;
        }
        let stored: Arc<[Value]> = key.to_vec().into();
        let id = self.keys.len() as u64;
        self.keys.push(Arc::clone(&stored));
        self.dict.insert(stored, id);
        id
    }

    /// Id for `key` if it has been interned.
    #[inline]
    fn lookup(&self, key: &[Value]) -> Option<u64> {
        self.dict.get(key).copied()
    }

    /// The key values behind an id (first-seen order).
    fn key(&self, id: u64) -> &[Value] {
        &self.keys[id as usize]
    }
}

/// Hash-join build table: interned general keys, or the zero-allocation
/// single-column integer fast path.
enum BuildTable {
    /// All build keys are `Int` with magnitude ≤ 2^53.
    Int(HashMap<i64, Vec<RowId>>),
    /// Arbitrary composite keys, interned.
    General {
        interner: KeyInterner,
        buckets: Vec<Vec<RowId>>,
    },
}

/// Build-side admission to the integer fast path: exact small ints only.
#[inline]
fn build_int_key(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) if i.unsigned_abs() <= INT_EXACT_ABS => Some(*i),
        _ => None,
    }
}

/// Probe-side conversion for the integer fast path. A probe value can
/// only match an admitted build key if it equals a small integer under
/// the cross-type numeric equality of [`Value`]; anything else — a
/// fractional or non-finite float, a string — matches nothing.
#[inline]
fn probe_int_key(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        Value::Float(f) if f.is_finite() && *f == f.trunc() && f.abs() <= INT_EXACT_ABS as f64 => {
            Some(*f as i64)
        }
        _ => None,
    }
}

/// Shared read-only execution state: the bound query, one resolved table
/// per relation, and the frequency-filter value sets.
struct Exec<'a> {
    q: &'a BoundQuery,
    tables: Vec<&'a Table>,
    freq_sets: Vec<HashSet<Value>>,
}

impl<'a> Exec<'a> {
    /// Borrow the value of `(rel, col)` for a tuple.
    #[inline]
    fn val(&self, tuple: &[RowId], rel: usize, col: usize) -> &'a Value {
        self.tables[rel].value(tuple[rel], col)
    }
}

/// Measured per-operator actuals, in the operator-slot layout shared
/// with [`PhysicalPlan::op_ests`]: `[FreqSetup, driver, step…, output]`.
/// Units are the [`CostMeter`] delta across the operator's execution, so
/// the slots sum to the run's total cost.
///
/// Under morsel-driven execution every field aggregates its per-morsel
/// parts order-independently (`u64` sums; units from counter totals),
/// so actuals are identical at any thread count and morsel size.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpActuals {
    /// Rows entering the operator (outer tuples for joins, rows examined
    /// for scans; zero for the frequency setup).
    pub rows_in: u64,
    /// Rows flowing out of the operator.
    pub rows_out: u64,
    /// Hash-bucket lookups or index probes performed (zero for scans).
    pub probes: u64,
    /// Cost units charged while this operator ran.
    pub units: f64,
    /// Morsel jobs dispatched while this operator ran (scan-filter,
    /// build, and probe morsels summed; zero for the frequency setup).
    /// A pure function of data size and [`ExecOpts::morsel_rows`] —
    /// never of the thread count.
    pub morsels: u64,
    /// Buffer-pool hits while this operator ran (zero when no pool is
    /// configured).
    pub page_hits: u64,
    /// Buffer-pool misses (sequential + random) while this operator ran.
    pub page_misses: u64,
}

/// Execute `plan`, returning the result rows in select-list order.
///
/// Row order is deterministic for a fixed plan (morsel outputs are
/// concatenated in morsel index order) but unspecified to callers;
/// callers that compare results should sort.
pub fn execute(
    plan: &PhysicalPlan,
    resolver: &Resolver<'_>,
    meter: &mut CostMeter,
) -> Result<Vec<Vec<Value>>, TimedOut> {
    execute_instrumented_with(plan, resolver, meter, None, &ExecOpts::default())
}

/// [`execute`] with explicit [`ExecOpts`] (intra-query parallelism,
/// morsel size, vectorization, fault injection).
pub fn execute_with(
    plan: &PhysicalPlan,
    resolver: &Resolver<'_>,
    meter: &mut CostMeter,
    opts: &ExecOpts<'_>,
) -> Result<Vec<Vec<Value>>, TimedOut> {
    execute_instrumented_with(plan, resolver, meter, None, opts)
}

/// Execute `plan` like [`execute`], additionally recording one
/// [`OpActuals`] per operator slot when `ops` is supplied (layout
/// `[FreqSetup, driver, step…, output]`, matching
/// [`PhysicalPlan::op_labels`]). On timeout the vector holds the slots
/// that completed before the budget ran out. Instrumentation is
/// observational only: the meter sees identical charges either way.
pub fn execute_instrumented(
    plan: &PhysicalPlan,
    resolver: &Resolver<'_>,
    meter: &mut CostMeter,
    ops: Option<&mut Vec<OpActuals>>,
) -> Result<Vec<Vec<Value>>, TimedOut> {
    execute_instrumented_with(plan, resolver, meter, ops, &ExecOpts::default())
}

/// [`execute_instrumented`] with explicit [`ExecOpts`].
pub fn execute_instrumented_with(
    plan: &PhysicalPlan,
    resolver: &Resolver<'_>,
    meter: &mut CostMeter,
    ops: Option<&mut Vec<OpActuals>>,
    opts: &ExecOpts<'_>,
) -> Result<Vec<Vec<Value>>, TimedOut> {
    execute_instrumented_pooled(plan, resolver, meter, ops, opts, None)
}

/// [`execute_instrumented_with`] additionally reporting buffer-pool
/// counters into `io_out` when [`ExecOpts::pool`] configures a pool.
/// With no pool the counters stay zero and execution is byte-identical
/// to the historical path. On timeout `io_out` is left untouched —
/// partial pool counters are *not* reported, because how far a morsel
/// region progressed past the budget is thread-timing dependent while
/// the verdict itself is not.
pub fn execute_instrumented_pooled(
    plan: &PhysicalPlan,
    resolver: &Resolver<'_>,
    meter: &mut CostMeter,
    mut ops: Option<&mut Vec<OpActuals>>,
    opts: &ExecOpts<'_>,
    io_out: Option<&mut PoolStats>,
) -> Result<Vec<Vec<Value>>, TimedOut> {
    let q = &plan.query;
    let mut ps = PoolState::of(opts);

    // 1. Frequency-filter value sets, evaluated once each.
    let mut at = meter.units();
    let mut io_at = pool_stats_now(&ps);
    let freq_sets = eval_freq_sets(q, resolver, meter, &mut ps)?;
    if let Some(v) = ops.as_deref_mut() {
        let io = pool_stats_now(&ps);
        v.push(OpActuals {
            rows_in: 0,
            rows_out: freq_sets.iter().map(|s| s.len() as u64).sum(),
            probes: 0,
            units: meter.units() - at,
            morsels: 0,
            page_hits: io.hits - io_at.hits,
            page_misses: io.misses() - io_at.misses(),
        });
    }
    let exec = Exec {
        q,
        tables: q.rels.iter().map(|r| resolver.table(&r.source)).collect(),
        freq_sets,
    };

    // 2. Driver.
    at = meter.units();
    io_at = pool_stats_now(&ps);
    let stride = q.rels.len();
    let mut tuples = Arena::new(stride);
    let (driver_ids, driver_examined, driver_morsels) =
        scan_rel(&plan.driver, &exec, resolver, meter, opts, &mut ps)?;
    for id in driver_ids {
        tuples.push_single(plan.driver.rel, id);
    }
    if let Some(v) = ops.as_deref_mut() {
        let io = pool_stats_now(&ps);
        v.push(OpActuals {
            rows_in: driver_examined,
            rows_out: tuples.len() as u64,
            probes: 0,
            units: meter.units() - at,
            morsels: driver_morsels,
            page_hits: io.hits - io_at.hits,
            page_misses: io.misses() - io_at.misses(),
        });
    }

    // 3. Join steps.
    for step in &plan.steps {
        at = meter.units();
        io_at = pool_stats_now(&ps);
        let rows_in = tuples.len() as u64;
        let mut probes = 0u64;
        let mut morsels = 0u64;
        let rel = step.inner.rel;
        match &step.method {
            JoinMethod::Hash => {
                let (inner_ids, _, scan_morsels) =
                    scan_rel(&step.inner, &exec, resolver, meter, opts, &mut ps)?;
                morsels += scan_morsels;
                // Grace-style spill when the build side exceeds memory.
                pool_charge_spill(&mut ps, meter, inner_ids.len() as u64, tuples.len() as u64)?;
                // Build on inner join cols; one row of work per inner
                // tuple, charged up front.
                meter.charge_rows(inner_ids.len() as u64)?;
                let inner_table = exec.tables[rel];
                let (ht, build_morsels) =
                    build_hash_table(&inner_ids, inner_table, step.inner_cols(), opts);
                morsels += build_morsels;
                // Probe with the outer arena; one row of work per outer
                // tuple up front, one per emitted match (per-morsel
                // counters reduced in morsel order).
                meter.charge_rows(tuples.len() as u64)?;
                let ranges = morsel_ranges(tuples.len(), opts.morsel_rows);
                morsels += ranges.len() as u64;
                let gate = AbortGate::of(meter);
                let region = region_par(opts, tuples.len());
                let outs: Vec<(LocalCounters, u64, Arena)> = par_map(region, &ranges, |&(s, e)| {
                    morsel_prologue(opts);
                    let mut local = LocalCounters::default();
                    let mut published = 0u64;
                    let mut m_probes = 0u64;
                    let mut out = Arena::new(stride);
                    if gate.tripped() {
                        return (local, m_probes, out);
                    }
                    let mut scratch: Vec<Value> = Vec::with_capacity(step.pairs.len());
                    'tuples: for i in s..e {
                        let t = tuples.tuple(i);
                        let bucket = match &ht {
                            BuildTable::Int(map) => {
                                let ((orel, ocol), _) = step.pairs[0];
                                let v = exec.val(t, orel, ocol);
                                if v.is_null() {
                                    continue;
                                }
                                m_probes += 1;
                                probe_int_key(v).and_then(|k| map.get(&k))
                            }
                            BuildTable::General { interner, buckets } => {
                                scratch.clear();
                                scratch.extend(
                                    step.outer_cols()
                                        .map(|(orel, ocol)| exec.val(t, orel, ocol).clone()),
                                );
                                if scratch.iter().any(Value::is_null) {
                                    continue;
                                }
                                m_probes += 1;
                                interner.lookup(&scratch).map(|id| &buckets[id as usize])
                            }
                        };
                        if let Some(ids) = bucket {
                            for &id in ids {
                                out.push_joined(t, rel, id);
                                local.rows += 1;
                                if local.rows - published >= ROW_CHARGE_BATCH {
                                    gate.publish(LocalCounters {
                                        rows: local.rows - published,
                                        ..LocalCounters::default()
                                    });
                                    published = local.rows;
                                    if gate.tripped() {
                                        break 'tuples;
                                    }
                                }
                            }
                        }
                    }
                    gate.publish(LocalCounters {
                        rows: local.rows - published,
                        ..LocalCounters::default()
                    });
                    (local, m_probes, out)
                });
                reduce_locals(meter, outs.iter().map(|(l, _, _)| l))?;
                let mut out = Arena::new(stride);
                for (_, m_probes, chunk) in outs {
                    probes += m_probes;
                    out.append(chunk);
                }
                tuples = out;
            }
            JoinMethod::IndexNl {
                columns,
                probe,
                covering,
            } => {
                let table = exec.tables[rel];
                let index = resolver.index(&q.rels[rel].source, columns);
                // Residual join pairs not enforced by the probe prefix.
                let probed: BTreeSet<usize> = columns[..probe.len()].iter().copied().collect();
                let residual_pairs: Vec<((usize, usize), usize)> = step
                    .pairs
                    .iter()
                    .filter(|(_, ic)| !probed.contains(ic))
                    .cloned()
                    .collect();
                // Pool bookkeeping. Workers never touch the pool: they
                // collect the page keys each probe touches, and the
                // coordinator replays the lists in morsel index order
                // below. In Observed mode workers publish rows-only
                // deltas to the gate — a lower bound on the observed
                // charge, so the gate can still trip only for
                // executions the authoritative reduction also times
                // out. Metered mode keeps the historical full deltas.
                let pool_on = ps.is_some();
                let observed = matches!(&ps, Some(st) if st.policy == ChargePolicy::Observed);
                let index_rel = index_rel_id(&index.spec().to_string());
                let table_rel = table_rel_id(&q.rels[rel].source);
                let height = index.height();
                // One row of work per outer tuple, charged up front.
                meter.charge_rows(tuples.len() as u64)?;
                let ranges = morsel_ranges(tuples.len(), opts.morsel_rows);
                morsels += ranges.len() as u64;
                let gate = AbortGate::of(meter);
                let region = region_par(opts, tuples.len());
                type NlOut = (LocalCounters, u64, Arena, Vec<PageKey>);
                let outs: Vec<NlOut> = par_map(region, &ranges, |&(s, e)| {
                    morsel_prologue(opts);
                    let mut local = LocalCounters::default();
                    let mut m_probes = 0u64;
                    let mut out = Arena::new(stride);
                    let mut keys: Vec<PageKey> = Vec::new();
                    if gate.tripped() {
                        return (local, m_probes, out, keys);
                    }
                    let mut scratch: Vec<Value> = Vec::with_capacity(probe.len());
                    for i in s..e {
                        let t = tuples.tuple(i);
                        scratch.clear();
                        scratch.extend(probe.iter().map(|p| match p {
                            ProbeSource::Outer(orel, ocol) => exec.val(t, *orel, *ocol).clone(),
                            ProbeSource::Const(v) => v.clone(),
                        }));
                        if scratch.iter().any(Value::is_null) {
                            continue;
                        }
                        m_probes += 1;
                        let pr = index.probe(&scratch);
                        let mut delta = LocalCounters {
                            random_pages: pr.pages_touched,
                            rows: pr.row_ids.len() as u64,
                            ..LocalCounters::default()
                        };
                        if pool_on {
                            for p in index.descent_pages(pr.first_leaf) {
                                keys.push(PageKey {
                                    rel: index_rel,
                                    page: p,
                                });
                            }
                            for p in pr.first_leaf..pr.first_leaf + (pr.pages_touched - height) {
                                keys.push(PageKey {
                                    rel: index_rel,
                                    page: p,
                                });
                            }
                        }
                        if !covering && !pr.row_ids.is_empty() {
                            let pages: BTreeSet<u64> =
                                pr.row_ids.iter().map(|&id| table.page_of(id)).collect();
                            delta.random_pages += pages.len() as u64;
                            if pool_on {
                                keys.extend(pages.iter().map(|&p| PageKey {
                                    rel: table_rel,
                                    page: p,
                                }));
                            }
                        }
                        local.rows += delta.rows;
                        if observed {
                            gate.publish(LocalCounters {
                                rows: delta.rows,
                                ..LocalCounters::default()
                            });
                        } else {
                            local.seq_pages += delta.seq_pages;
                            local.random_pages += delta.random_pages;
                            gate.publish(delta);
                        }
                        for &id in &pr.row_ids {
                            let row = table.row(id);
                            if !passes_filters(row, &step.inner.filters)
                                || !passes_ranges(row, &step.inner.ranges)
                                || !passes_freqs(row, &step.inner.freqs, q, &exec.freq_sets)
                            {
                                continue;
                            }
                            // Residual join checks.
                            let ok = residual_pairs.iter().all(|&((orel, ocol), icol)| {
                                let ov = exec.val(t, orel, ocol);
                                !ov.is_null() && *ov == row[icol]
                            });
                            if !ok {
                                continue;
                            }
                            out.push_joined(t, rel, id);
                        }
                        if gate.tripped() {
                            break;
                        }
                    }
                    (local, m_probes, out, keys)
                });
                reduce_locals(meter, outs.iter().map(|(l, _, _, _)| l))?;
                // Replay collected page accesses in morsel index order —
                // the pool's access stream is identical at any thread
                // count. Observed mode then charges the misses (the
                // charge order relative to the row reduction above does
                // not matter: the meter's totals are order-independent
                // and its budget check is monotone).
                if let Some(st) = ps.as_mut() {
                    let mut misses = 0u64;
                    for (_, _, _, keys) in &outs {
                        for &k in keys {
                            if st.pool.fetch(k, PageHint::Random, false) != Fetched::Hit {
                                misses += 1;
                            }
                        }
                    }
                    if st.policy == ChargePolicy::Observed {
                        meter.charge_random_pages(misses)?;
                    }
                }
                let mut out = Arena::new(stride);
                for (_, m_probes, chunk, _) in outs {
                    probes += m_probes;
                    out.append(chunk);
                }
                tuples = out;
            }
        }
        if let Some(v) = ops.as_deref_mut() {
            let io = pool_stats_now(&ps);
            v.push(OpActuals {
                rows_in,
                rows_out: tuples.len() as u64,
                probes,
                units: meter.units() - at,
                morsels,
                page_hits: io.hits - io_at.hits,
                page_misses: io.misses() - io_at.misses(),
            });
        }
    }

    // 4. Aggregation / projection.
    at = meter.units();
    io_at = pool_stats_now(&ps);
    let rows_in = tuples.len() as u64;
    let (result, finish_morsels) = finish(&exec, &tuples, meter, opts, &mut ps)?;
    if let Some(v) = ops {
        let io = pool_stats_now(&ps);
        v.push(OpActuals {
            rows_in,
            rows_out: result.len() as u64,
            probes: 0,
            units: meter.units() - at,
            morsels: finish_morsels,
            page_hits: io.hits - io_at.hits,
            page_misses: io.misses() - io_at.misses(),
        });
    }
    if let (Some(st), Some(io_out)) = (&ps, io_out) {
        *io_out = st.pool.stats();
    }
    Ok(result)
}

/// Build the hash-join build side over the inner relation's filtered row
/// ids, picking the integer fast path when every non-null build key
/// admits it (a deterministic pre-scan decides, so the path — and any
/// future cost attached to it — cannot depend on hash iteration order).
///
/// The integer path builds per-morsel maps merged in morsel index
/// order, so every bucket's row-id list is in global input order —
/// identical to a sequential build. The general (interned) path stays
/// sequential: intern ids are assigned in first-seen order, and
/// splitting that across workers would require the same ordered merge
/// the group-by performs for no measured win on the benchmark families
/// (their joins all take the integer path). Returns the table plus the
/// number of morsel jobs dispatched.
fn build_hash_table<'c>(
    inner_ids: &[RowId],
    inner_table: &Table,
    mut inner_cols: impl Iterator<Item = usize> + Clone + 'c,
    opts: &ExecOpts<'_>,
) -> (BuildTable, u64) {
    let cols: Vec<usize> = inner_cols.by_ref().collect();
    if cols.len() == 1 {
        let c = cols[0];
        let ranges = morsel_ranges(inner_ids.len(), opts.morsel_rows);
        let n_morsels = ranges.len() as u64;
        let region = region_par(opts, inner_ids.len());
        let all_int = par_map(region, &ranges, |&(s, e)| {
            morsel_prologue(opts);
            inner_ids[s..e].iter().all(|&id| {
                let v = inner_table.value(id, c);
                v.is_null() || build_int_key(v).is_some()
            })
        })
        .into_iter()
        .all(|b| b);
        if all_int {
            let maps: Vec<HashMap<i64, Vec<RowId>>> = par_map(region, &ranges, |&(s, e)| {
                morsel_prologue(opts);
                let mut map: HashMap<i64, Vec<RowId>> = HashMap::new();
                for &id in &inner_ids[s..e] {
                    if let Some(k) = build_int_key(inner_table.value(id, c)) {
                        map.entry(k).or_default().push(id);
                    }
                }
                map
            });
            // Merge in morsel order: each bucket's ids end up in global
            // input order (hash iteration order inside one morsel's map
            // only decides which *bucket* is appended first, which is
            // unobservable).
            let mut maps = maps.into_iter();
            let mut merged = maps.next().unwrap_or_default();
            for m in maps {
                for (k, mut v) in m {
                    merged.entry(k).or_default().append(&mut v);
                }
            }
            return (BuildTable::Int(merged), 2 * n_morsels);
        }
        let mut interner = KeyInterner::new();
        let mut buckets: Vec<Vec<RowId>> = Vec::new();
        let mut scratch: Vec<Value> = Vec::with_capacity(cols.len());
        for &id in inner_ids {
            scratch.clear();
            scratch.extend(cols.iter().map(|&c| inner_table.value(id, c).clone()));
            if scratch.iter().any(Value::is_null) {
                continue;
            }
            let key_id = interner.intern(&scratch) as usize;
            if key_id == buckets.len() {
                buckets.push(Vec::new());
            }
            buckets[key_id].push(id);
        }
        return (BuildTable::General { interner, buckets }, n_morsels);
    }
    let mut interner = KeyInterner::new();
    let mut buckets: Vec<Vec<RowId>> = Vec::new();
    let mut scratch: Vec<Value> = Vec::with_capacity(cols.len());
    for &id in inner_ids {
        scratch.clear();
        scratch.extend(cols.iter().map(|&c| inner_table.value(id, c).clone()));
        if scratch.iter().any(Value::is_null) {
            continue;
        }
        let key_id = interner.intern(&scratch) as usize;
        if key_id == buckets.len() {
            buckets.push(Vec::new());
        }
        buckets[key_id].push(id);
    }
    (BuildTable::General { interner, buckets }, 0)
}

/// Evaluate the distinct-value sets for the query's frequency filters.
fn eval_freq_sets(
    q: &BoundQuery,
    resolver: &Resolver<'_>,
    meter: &mut CostMeter,
    ps: &mut Option<PoolState<'_>>,
) -> Result<Vec<HashSet<Value>>, TimedOut> {
    let mut sets = Vec::with_capacity(q.freqs.len());
    for f in &q.freqs {
        let table = resolver.table(&f.sub_table);
        // Index-only evaluation when a built index leads with the column.
        let idx = resolver
            .built
            .indexes_on(&f.sub_table)
            .find(|i| i.spec().columns.first() == Some(&f.sub_col));
        let mut counts: HashMap<Value, u64> = HashMap::new();
        match idx {
            Some(idx) => {
                // Group sizes read off the leaf level: one operation per
                // distinct key (id-list lengths are stored), not per row.
                let rel = index_rel_id(&idx.spec().to_string());
                pool_charge_seq(ps, meter, rel, 0, idx.n_pages(), false)?;
                meter.charge_rows(idx.n_distinct_keys() as u64)?;
                for (key, ids) in idx.scan() {
                    *counts.entry(key[0].clone()).or_insert(0) += ids.len() as u64;
                }
            }
            None => {
                let rel = table_rel_id(&f.sub_table);
                pool_charge_seq(ps, meter, rel, 0, table.n_pages(), false)?;
                meter.charge_rows(table.n_rows() as u64)?;
                for (_, row) in table.iter() {
                    let v = &row[f.sub_col];
                    if !v.is_null() {
                        *counts.entry(v.clone()).or_insert(0) += 1;
                    }
                }
            }
        }
        let set: HashSet<Value> = counts
            .into_iter()
            .filter(|(_, c)| qualifies(f.op, *c, f.k))
            .map(|(v, _)| v)
            .collect();
        sets.push(set);
    }
    Ok(sets)
}

fn qualifies(op: CmpOp, count: u64, k: i64) -> bool {
    match op {
        CmpOp::Lt => (count as i64) < k,
        CmpOp::Eq => (count as i64) == k,
    }
}

fn passes_filters(row: &[Value], filters: &[(usize, Value)]) -> bool {
    filters
        .iter()
        .all(|(c, v)| !row[*c].is_null() && row[*c] == *v)
}

fn passes_ranges(row: &[Value], ranges: &[(usize, RangeOp, Value)]) -> bool {
    ranges.iter().all(|(c, op, v)| op.eval(&row[*c], v))
}

fn passes_freqs(row: &[Value], freqs: &[usize], q: &BoundQuery, sets: &[HashSet<Value>]) -> bool {
    freqs.iter().all(|&fi| {
        let f: &FreqFilter = &q.freqs[fi];
        sets[fi].contains(&row[f.col])
    })
}

/// The source of row ids a scan filters: a dense heap prefix (`Seq`
/// scans — ids are `0..n`) or an explicit id list (index probe
/// results). Both morselize the same way: a morsel is a contiguous
/// index range into the source.
enum IdSpan<'s> {
    Dense(usize),
    List(&'s [RowId]),
}

impl IdSpan<'_> {
    fn len(&self) -> usize {
        match self {
            IdSpan::Dense(n) => *n,
            IdSpan::List(ids) => ids.len(),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> RowId {
        match self {
            IdSpan::Dense(_) => i as RowId,
            IdSpan::List(ids) => ids[i],
        }
    }
}

/// The vectorizable part of a relation's residual predicates: every
/// filter and range constant is an `Int`. `Int`/`Int` comparison is
/// exact `i64` comparison under [`Value`]'s ordering, so evaluating
/// over gathered `i64` buffers reproduces the scalar semantics bit for
/// bit; a morsel whose predicate columns hold anything but `Int`/NULL
/// cells bails out to the scalar path wholesale.
struct VecPredicates {
    filters: Vec<(usize, i64)>,
    ranges: Vec<(usize, RangeOp, i64)>,
}

/// Admission check for the columnar path, decided once per scan.
fn vec_predicates(op: &RelOp, vectorize: bool) -> Option<VecPredicates> {
    if !vectorize || (op.filters.is_empty() && op.ranges.is_empty()) {
        return None;
    }
    let mut filters = Vec::with_capacity(op.filters.len());
    for (c, v) in &op.filters {
        match v {
            Value::Int(k) => filters.push((*c, *k)),
            _ => return None,
        }
    }
    let mut ranges = Vec::with_capacity(op.ranges.len());
    for (c, r, v) in &op.ranges {
        match v {
            Value::Int(k) => ranges.push((*c, *r, *k)),
            _ => return None,
        }
    }
    Some(VecPredicates { filters, ranges })
}

/// Scratch buffer for one morsel's columnar evaluation: the survivor
/// mask, reused across the predicate columns evaluated for that morsel.
#[derive(Default)]
struct VecScratch {
    mask: Vec<bool>,
}

/// Evaluate `vp` columnar over one morsel, appending surviving ids to
/// `out`. Each predicate column is swept as one tight `i64` loop over
/// the morsel, ANDing into the survivor mask; rows already dead skip
/// the cell read entirely, so later columns cost only the survivors
/// (the columnar analogue of the scalar path's short-circuit). Returns
/// `false` — with nothing appended — when a live predicate cell holds a
/// non-`Int`, non-NULL value, in which case the caller runs the scalar
/// path over the same morsel.
#[allow(clippy::too_many_arguments)]
fn filter_morsel_vectorized(
    vp: &VecPredicates,
    op: &RelOp,
    exec: &Exec<'_>,
    table: &Table,
    ids: &IdSpan<'_>,
    start: usize,
    end: usize,
    scratch: &mut VecScratch,
    out: &mut Vec<RowId>,
) -> bool {
    let n = end - start;
    scratch.mask.clear();
    scratch.mask.resize(n, true);
    let mask = &mut scratch.mask;
    // One column sweep per predicate: `cmp` sees only `Int` cells.
    macro_rules! sweep {
        ($c:expr, $cmp:expr) => {
            for j in 0..n {
                if mask[j] {
                    match table.value(ids.get(start + j), $c) {
                        Value::Int(v) => mask[j] = $cmp(*v),
                        Value::Null => mask[j] = false,
                        _ => return false,
                    }
                }
            }
        };
    }
    for &(c, k) in &vp.filters {
        sweep!(c, |v: i64| v == k);
    }
    for &(c, r, k) in &vp.ranges {
        match r {
            RangeOp::Lt => sweep!(c, |v: i64| v < k),
            RangeOp::Le => sweep!(c, |v: i64| v <= k),
            RangeOp::Gt => sweep!(c, |v: i64| v > k),
            RangeOp::Ge => sweep!(c, |v: i64| v >= k),
        }
    }
    // Frequency filters stay scalar (HashSet membership), applied only
    // to rows that survived the vectorized predicates.
    for (j, live) in mask.iter().enumerate() {
        if *live {
            let id = ids.get(start + j);
            if op.freqs.is_empty()
                || passes_freqs(table.row(id), &op.freqs, exec.q, &exec.freq_sets)
            {
                out.push(id);
            }
        }
    }
    true
}

/// Filter a scan's candidate rows through the relation's residual
/// predicates, morsel-parallel. Output order equals input order (morsel
/// chunks concatenated in morsel index order), so the result is
/// identical to a sequential pass at any thread count and morsel size.
/// Charges nothing — scan costs are charged up front by the caller from
/// page/row counts that do not depend on the iteration strategy.
/// Returns the surviving ids plus the number of morsel jobs dispatched.
fn filter_rows(
    op: &RelOp,
    exec: &Exec<'_>,
    table: &Table,
    ids: IdSpan<'_>,
    opts: &ExecOpts<'_>,
) -> (Vec<RowId>, u64) {
    let q = exec.q;
    let vp = vec_predicates(op, opts.vectorize);
    let ranges = morsel_ranges(ids.len(), opts.morsel_rows);
    let n_morsels = ranges.len() as u64;
    let chunks: Vec<Vec<RowId>> = par_map(region_par(opts, ids.len()), &ranges, |&(s, e)| {
        morsel_prologue(opts);
        let mut out = Vec::new();
        let vectorized = match &vp {
            Some(vp) => {
                let mut scratch = VecScratch::default();
                filter_morsel_vectorized(vp, op, exec, table, &ids, s, e, &mut scratch, &mut out)
            }
            None => false,
        };
        if !vectorized {
            for i in s..e {
                let id = ids.get(i);
                let row = table.row(id);
                if passes_filters(row, &op.filters)
                    && passes_ranges(row, &op.ranges)
                    && passes_freqs(row, &op.freqs, q, &exec.freq_sets)
                {
                    out.push(id);
                }
            }
        }
        out
    });
    let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
    for c in chunks {
        out.extend(c);
    }
    (out, n_morsels)
}

/// Scan one relation per its `RelOp`, returning the ids of the rows
/// that survive its residual filters plus the number of rows examined
/// (for instrumentation) and morsel jobs dispatched. Values are not
/// materialized.
fn scan_rel(
    op: &RelOp,
    exec: &Exec<'_>,
    resolver: &Resolver<'_>,
    meter: &mut CostMeter,
    opts: &ExecOpts<'_>,
    ps: &mut Option<PoolState<'_>>,
) -> Result<(Vec<RowId>, u64, u64), TimedOut> {
    let q = exec.q;
    let source = &q.rels[op.rel].source;
    let table = exec.tables[op.rel];
    match &op.access {
        Access::Seq => {
            pool_charge_seq(ps, meter, table_rel_id(source), 0, table.n_pages(), false)?;
            meter.charge_rows(table.n_rows() as u64)?;
            let examined = table.n_rows() as u64;
            let (out, morsels) = filter_rows(op, exec, table, IdSpan::Dense(table.n_rows()), opts);
            Ok((out, examined, morsels))
        }
        Access::Index {
            columns,
            prefix,
            covering,
        } => {
            let index = resolver.index(source, columns);
            let pr = index.probe(prefix);
            charge_probe(&pr, table, *covering, meter, ps, index, source)?;
            let examined = pr.row_ids.len() as u64;
            let (out, morsels) = filter_rows(op, exec, table, IdSpan::List(&pr.row_ids), opts);
            Ok((out, examined, morsels))
        }
        Access::IndexRange {
            columns,
            lo,
            hi,
            covering,
        } => {
            let index = resolver.index(source, columns);
            let pr = index.probe_leading_range(
                lo.as_ref().map(|(v, s)| (v, *s)),
                hi.as_ref().map(|(v, s)| (v, *s)),
            );
            charge_probe(&pr, table, *covering, meter, ps, index, source)?;
            let examined = pr.row_ids.len() as u64;
            let (out, morsels) = filter_rows(op, exec, table, IdSpan::List(&pr.row_ids), opts);
            Ok((out, examined, morsels))
        }
        Access::IndexFreqScan {
            columns,
            freq,
            covering,
        } => {
            let index = resolver.index(source, columns);
            let set = &exec.freq_sets[*freq];
            // One pass over the leaf level; only qualifying keys' rows
            // are examined and (if not covering) fetched.
            let index_rel = index_rel_id(&index.spec().to_string());
            pool_charge_seq(ps, meter, index_rel, 0, index.n_pages(), false)?;
            meter.charge_rows(index.n_distinct_keys() as u64)?;
            let mut matched: Vec<RowId> = Vec::new();
            for (key, ids) in index.scan() {
                if set.contains(&key[0]) {
                    matched.extend_from_slice(ids);
                }
            }
            meter.charge_rows(matched.len() as u64)?;
            if !covering && !matched.is_empty() {
                let pages: BTreeSet<u64> = matched.iter().map(|&id| table.page_of(id)).collect();
                let table_rel = table_rel_id(source);
                pool_charge_random(ps, meter, pages.len() as u64, || {
                    pages
                        .iter()
                        .map(|&p| PageKey {
                            rel: table_rel,
                            page: p,
                        })
                        .collect()
                })?;
            }
            let examined = matched.len() as u64;
            let (out, morsels) = filter_rows(op, exec, table, IdSpan::List(&matched), opts);
            Ok((out, examined, morsels))
        }
    }
}

/// Charge an index probe: index pages touched (tree descent + leaf
/// span), plus the distinct heap pages fetched when the index does not
/// cover the relation. With a pool active the same pages stream through
/// it under their stable identities ([`index_rel_id`] descent/leaf
/// pages, [`table_rel_id`] heap pages) — the key count always equals
/// the modeled `pages_touched + heap_pages` charge.
fn charge_probe(
    pr: &tab_storage::Probe,
    table: &Table,
    covering: bool,
    meter: &mut CostMeter,
    ps: &mut Option<PoolState<'_>>,
    index: &BTreeIndex,
    source: &str,
) -> Result<(), TimedOut> {
    if ps.is_none() {
        meter.charge_random_pages(pr.pages_touched)?;
        if !covering && !pr.row_ids.is_empty() {
            let pages: BTreeSet<u64> = pr.row_ids.iter().map(|&id| table.page_of(id)).collect();
            meter.charge_random_pages(pages.len() as u64)?;
        }
        return meter.charge_rows(pr.row_ids.len() as u64);
    }
    let index_rel = index_rel_id(&index.spec().to_string());
    pool_charge_random(ps, meter, pr.pages_touched, || {
        let mut keys: Vec<PageKey> = index
            .descent_pages(pr.first_leaf)
            .into_iter()
            .map(|p| PageKey {
                rel: index_rel,
                page: p,
            })
            .collect();
        let leaf_pages = pr.pages_touched - index.height();
        keys.extend(
            (pr.first_leaf..pr.first_leaf + leaf_pages).map(|p| PageKey {
                rel: index_rel,
                page: p,
            }),
        );
        keys
    })?;
    if !covering && !pr.row_ids.is_empty() {
        let pages: BTreeSet<u64> = pr.row_ids.iter().map(|&id| table.page_of(id)).collect();
        let table_rel = table_rel_id(source);
        pool_charge_random(ps, meter, pages.len() as u64, || {
            pages
                .iter()
                .map(|&p| PageKey {
                    rel: table_rel,
                    page: p,
                })
                .collect()
        })?;
    }
    meter.charge_rows(pr.row_ids.len() as u64)
}

/// Per-group aggregation state.
struct GroupState {
    count: u64,
    distincts: Vec<HashSet<Value>>,
}

/// Group, aggregate, and project in select-list order. Returns the
/// result rows plus the number of morsel jobs dispatched.
///
/// Grouping runs morsel-parallel: each morsel builds a local interner
/// plus local group states, and the coordinator merges the locals **in
/// morsel index order**, interning each local group's key into the
/// global dictionary as it appears. A key's global first sight is its
/// first in-morsel occurrence in the earliest morsel containing it —
/// i.e. exactly its first occurrence in the input — so the merged
/// group order (and therefore the emitted row order) reproduces the
/// sequential first-seen order at any thread count and morsel size.
fn finish(
    exec: &Exec<'_>,
    tuples: &Arena,
    meter: &mut CostMeter,
    opts: &ExecOpts<'_>,
    ps: &mut Option<PoolState<'_>>,
) -> Result<(Vec<Vec<Value>>, u64), TimedOut> {
    let q = exec.q;
    let n = tuples.len();
    let ranges = morsel_ranges(n, opts.morsel_rows);
    let n_morsels = ranges.len() as u64;
    if q.aggs.is_empty() && q.group_by.is_empty() {
        // Plain projection, morsel-parallel: chunks concatenate in
        // morsel order, reproducing the sequential row order.
        meter.charge_rows(n as u64)?;
        let chunks: Vec<Vec<Vec<Value>>> = par_map(region_par(opts, n), &ranges, |&(s, e)| {
            morsel_prologue(opts);
            let mut chunk = Vec::with_capacity(e - s);
            for i in s..e {
                let t = tuples.tuple(i);
                chunk.push(
                    q.select
                        .iter()
                        .map(|s| match s {
                            BoundItem::Column(r, c) => exec.val(t, *r, *c).clone(),
                            BoundItem::Agg(_) => unreachable!("no aggs"),
                        })
                        .collect(),
                );
            }
            chunk
        });
        let mut out = Vec::with_capacity(n);
        for c in chunks {
            out.extend(c);
        }
        return Ok((order_and_limit(q, out, meter, ps)?, n_morsels));
    }

    // Hash aggregation spills when its input exceeds working memory.
    pool_charge_spill(ps, meter, n as u64, 0)?;
    // One row of work per input tuple, plus one per tuple for every
    // COUNT(DISTINCT) aggregate maintained — identical to the per-tuple
    // charges of a tuple-at-a-time pass, paid up front.
    let n_distinct_aggs = q
        .aggs
        .iter()
        .filter(|a| matches!(a, BoundAgg::CountDistinct(..)))
        .count() as u64;
    meter.charge_rows(n as u64)?;
    meter.charge_rows(n as u64 * n_distinct_aggs)?;

    // Per-morsel local aggregation.
    let locals: Vec<(KeyInterner, Vec<GroupState>)> =
        par_map(region_par(opts, n), &ranges, |&(s, e)| {
            morsel_prologue(opts);
            let mut interner = KeyInterner::new();
            let mut states: Vec<GroupState> = Vec::new();
            let mut scratch: Vec<Value> = Vec::with_capacity(q.group_by.len());
            for i in s..e {
                let t = tuples.tuple(i);
                scratch.clear();
                scratch.extend(q.group_by.iter().map(|&(r, c)| exec.val(t, r, c).clone()));
                let gid = interner.intern(&scratch) as usize;
                if gid == states.len() {
                    states.push(GroupState {
                        count: 0,
                        distincts: vec![HashSet::new(); q.aggs.len()],
                    });
                }
                let st = &mut states[gid];
                st.count += 1;
                for (ai, agg) in q.aggs.iter().enumerate() {
                    if let BoundAgg::CountDistinct(r, c) = agg {
                        let v = exec.val(t, *r, *c);
                        if !v.is_null() && !st.distincts[ai].contains(v) {
                            st.distincts[ai].insert(v.clone());
                        }
                    }
                }
            }
            (interner, states)
        });

    // Ordered merge: global ids assigned in input first-seen order.
    let mut interner = KeyInterner::new();
    let mut states: Vec<GroupState> = Vec::new();
    for (local_interner, local_states) in locals {
        for (lid, st) in local_states.into_iter().enumerate() {
            let gid = interner.intern(local_interner.key(lid as u64)) as usize;
            if gid == states.len() {
                states.push(st);
                continue;
            }
            let g = &mut states[gid];
            g.count += st.count;
            for (ai, set) in st.distincts.into_iter().enumerate() {
                if g.distincts[ai].is_empty() {
                    g.distincts[ai] = set;
                } else {
                    g.distincts[ai].extend(set);
                }
            }
        }
    }
    // COUNT over an empty input with no GROUP BY still yields one row.
    if states.is_empty() && q.group_by.is_empty() {
        interner.intern(&[]);
        states.push(GroupState {
            count: 0,
            distincts: vec![HashSet::new(); q.aggs.len()],
        });
    }

    // One row of work per output group; groups emit in first-seen order,
    // which is deterministic (the old executor's hash-map order was not,
    // though callers may still not rely on unordered output order).
    meter.charge_rows(states.len() as u64)?;
    let mut out = Vec::with_capacity(states.len());
    for (gid, st) in states.iter().enumerate() {
        let key = interner.key(gid as u64);
        let row: Vec<Value> = q
            .select
            .iter()
            .map(|s| match s {
                BoundItem::Column(r, c) => {
                    let pos = q
                        .group_by
                        .iter()
                        .position(|g| g == &(*r, *c))
                        .expect("select column is grouped");
                    key[pos].clone()
                }
                BoundItem::Agg(k) => match &q.aggs[*k] {
                    BoundAgg::CountStar => Value::Int(st.count as i64),
                    BoundAgg::CountDistinct(..) => Value::Int(st.distincts[*k].len() as i64),
                },
            })
            .collect();
        out.push(row);
    }
    Ok((order_and_limit(q, out, meter, ps)?, n_morsels))
}

/// Apply the bound query's ORDER BY (ties broken by the full row, so
/// the result is total) and LIMIT, charging sort work.
fn order_and_limit(
    q: &BoundQuery,
    mut rows: Vec<Vec<Value>>,
    meter: &mut CostMeter,
    ps: &mut Option<PoolState<'_>>,
) -> Result<Vec<Vec<Value>>, TimedOut> {
    if !q.order_by.is_empty() {
        // n log n comparisons' worth of row work, plus sort spill.
        let n = rows.len() as u64;
        let log = (n.max(2) as f64).log2().ceil() as u64;
        meter.charge_rows(n.saturating_mul(log))?;
        pool_charge_spill(ps, meter, n, 0)?;
        rows.sort_by(|a, b| {
            for &(pos, desc) in &q.order_by {
                let ord = a[pos].cmp(&b[pos]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(b) // total tie-break
        });
    }
    if let Some(limit) = q.limit {
        rows.truncate(limit as usize);
    }
    Ok(rows)
}
