//! Name resolution: binding a parsed query against a database.

use std::collections::BTreeSet;
use std::fmt;

use tab_sqlq::{CmpOp, ColRef, Predicate, Query, RangeOp, SelectItem};
use tab_storage::{Database, Value};

/// A bound relation: an alias over a base table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundRel {
    /// The alias used in the query.
    pub alias: String,
    /// The base table (or, after MV rewrite, view) it scans.
    pub source: String,
}

/// An equi-join edge between two bound relations (a < b), possibly over
/// several column pairs (composite PK–FK joins).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Lower relation position.
    pub a: usize,
    /// Higher relation position.
    pub b: usize,
    /// Column pairs `(col_of_a, col_of_b)`.
    pub cols: Vec<(usize, usize)>,
}

/// A bound constant-equality filter.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstFilter {
    /// Relation position.
    pub rel: usize,
    /// Column position within the relation.
    pub col: usize,
    /// The constant.
    pub value: Value,
}

/// A bound range filter (`rel.col op value`).
#[derive(Debug, Clone, PartialEq)]
pub struct RangeFilter {
    /// Relation position.
    pub rel: usize,
    /// Column position within the relation.
    pub col: usize,
    /// Comparison operator.
    pub op: RangeOp,
    /// The constant bound.
    pub value: Value,
}

/// A bound frequency filter
/// (`col IN (SELECT c FROM T GROUP BY c HAVING COUNT(*) op k)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqFilter {
    /// Outer relation position.
    pub rel: usize,
    /// Outer column position.
    pub col: usize,
    /// Base table scanned by the subquery.
    pub sub_table: String,
    /// Grouped column position in `sub_table`.
    pub sub_col: usize,
    /// Comparison against the group count.
    pub op: CmpOp,
    /// Count bound.
    pub k: i64,
}

/// A bound aggregate in the select list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundAgg {
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(DISTINCT rel.col)`.
    CountDistinct(usize, usize),
}

/// A bound select-list item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundItem {
    /// A grouped column `(rel, col)`.
    Column(usize, usize),
    /// Position into [`BoundQuery::aggs`].
    Agg(usize),
}

/// A fully bound query, ready for planning.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundQuery {
    /// Relations in `FROM` order.
    pub rels: Vec<BoundRel>,
    /// Join edges (normalized, merged per relation pair).
    pub joins: Vec<JoinEdge>,
    /// Constant filters.
    pub filters: Vec<ConstFilter>,
    /// Range filters.
    pub ranges: Vec<RangeFilter>,
    /// Frequency filters.
    pub freqs: Vec<FreqFilter>,
    /// Group-by columns.
    pub group_by: Vec<(usize, usize)>,
    /// Aggregates.
    pub aggs: Vec<BoundAgg>,
    /// Select-list order for output.
    pub select: Vec<BoundItem>,
    /// Order-by items as `(select position, descending)`.
    pub order_by: Vec<(usize, bool)>,
    /// Row limit applied after ordering.
    pub limit: Option<u64>,
}

impl BoundQuery {
    /// Columns of each relation the plan must carry: select, group-by,
    /// aggregate, join, and filter columns.
    pub fn needed_columns(&self) -> Vec<BTreeSet<usize>> {
        let mut need: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); self.rels.len()];
        for item in &self.select {
            if let BoundItem::Column(r, c) = item {
                need[*r].insert(*c);
            }
        }
        for (r, c) in &self.group_by {
            need[*r].insert(*c);
        }
        for agg in &self.aggs {
            if let BoundAgg::CountDistinct(r, c) = agg {
                need[*r].insert(*c);
            }
        }
        for e in &self.joins {
            for (ca, cb) in &e.cols {
                need[e.a].insert(*ca);
                need[e.b].insert(*cb);
            }
        }
        for f in &self.filters {
            need[f.rel].insert(f.col);
        }
        for f in &self.ranges {
            need[f.rel].insert(f.col);
        }
        for f in &self.freqs {
            need[f.rel].insert(f.col);
        }
        need
    }
}

/// Binding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindError {
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bind error: {}", self.message)
    }
}

impl std::error::Error for BindError {}

fn err(msg: impl Into<String>) -> BindError {
    BindError {
        message: msg.into(),
    }
}

/// Bind `query` against `db`, resolving aliases and column names.
pub fn bind(query: &Query, db: &Database) -> Result<BoundQuery, BindError> {
    let mut rels = Vec::new();
    for tr in &query.from {
        if db.table(&tr.table).is_none() {
            return Err(err(format!("unknown table `{}`", tr.table)));
        }
        if rels.iter().any(|r: &BoundRel| r.alias == tr.alias) {
            return Err(err(format!("duplicate alias `{}`", tr.alias)));
        }
        rels.push(BoundRel {
            alias: tr.alias.clone(),
            source: tr.table.clone(),
        });
    }

    let resolve = |c: &ColRef| -> Result<(usize, usize), BindError> {
        let rel = rels
            .iter()
            .position(|r| r.alias == c.alias)
            .ok_or_else(|| err(format!("unknown alias `{}`", c.alias)))?;
        let table = db.table(&rels[rel].source).expect("checked above");
        let col = table.schema().column_index(&c.column).ok_or_else(|| {
            err(format!(
                "unknown column `{}` on `{}`",
                c.column, rels[rel].source
            ))
        })?;
        Ok((rel, col))
    };

    let mut joins: Vec<JoinEdge> = Vec::new();
    let mut filters = Vec::new();
    let mut ranges = Vec::new();
    let mut freqs = Vec::new();
    for p in &query.predicates {
        match p {
            Predicate::JoinEq(x, y) => {
                let (rx, cx) = resolve(x)?;
                let (ry, cy) = resolve(y)?;
                if rx == ry {
                    return Err(err(format!(
                        "same-alias equality `{x} = {y}` is not a join"
                    )));
                }
                let (a, b, ca, cb) = if rx < ry {
                    (rx, ry, cx, cy)
                } else {
                    (ry, rx, cy, cx)
                };
                match joins.iter_mut().find(|e| e.a == a && e.b == b) {
                    Some(e) => e.cols.push((ca, cb)),
                    None => joins.push(JoinEdge {
                        a,
                        b,
                        cols: vec![(ca, cb)],
                    }),
                }
            }
            Predicate::ConstEq(c, v) => {
                let (rel, col) = resolve(c)?;
                filters.push(ConstFilter {
                    rel,
                    col,
                    value: v.clone(),
                });
            }
            Predicate::ConstRange(c, op, v) => {
                let (rel, col) = resolve(c)?;
                ranges.push(RangeFilter {
                    rel,
                    col,
                    op: *op,
                    value: v.clone(),
                });
            }
            Predicate::InFrequency {
                col,
                sub_table,
                sub_column,
                op,
                k,
            } => {
                let (rel, c) = resolve(col)?;
                let st = db
                    .table(sub_table)
                    .ok_or_else(|| err(format!("unknown subquery table `{sub_table}`")))?;
                let sc = st.schema().column_index(sub_column).ok_or_else(|| {
                    err(format!("unknown column `{sub_column}` on `{sub_table}`"))
                })?;
                freqs.push(FreqFilter {
                    rel,
                    col: c,
                    sub_table: sub_table.clone(),
                    sub_col: sc,
                    op: *op,
                    k: *k,
                });
            }
        }
    }

    let mut group_by = Vec::new();
    for c in &query.group_by {
        group_by.push(resolve(c)?);
    }

    let mut aggs = Vec::new();
    let mut select = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Column(c) => {
                let rc = resolve(c)?;
                if !group_by.contains(&rc) && !query.group_by.is_empty() {
                    return Err(err(format!("selected column {c} is not in GROUP BY")));
                }
                select.push(BoundItem::Column(rc.0, rc.1));
            }
            SelectItem::CountStar => {
                aggs.push(BoundAgg::CountStar);
                select.push(BoundItem::Agg(aggs.len() - 1));
            }
            SelectItem::CountDistinct(c) => {
                let (r, col) = resolve(c)?;
                aggs.push(BoundAgg::CountDistinct(r, col));
                select.push(BoundItem::Agg(aggs.len() - 1));
            }
        }
    }

    // Order-by columns must be selected plain columns; they bind to
    // select-list positions.
    let mut order_by = Vec::new();
    for (c, desc) in &query.order_by {
        let rc = resolve(c)?;
        let pos = select
            .iter()
            .position(|s| matches!(s, BoundItem::Column(r, cc) if (*r, *cc) == rc))
            .ok_or_else(|| err(format!("ORDER BY column {c} is not in the select list")))?;
        order_by.push((pos, *desc));
    }

    Ok(BoundQuery {
        rels,
        joins,
        filters,
        ranges,
        freqs,
        group_by,
        aggs,
        select,
        order_by,
        limit: query.limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_sqlq::parse;
    use tab_storage::{ColType, ColumnDef, Table, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        for (name, cols) in [("r", vec!["a", "b", "c"]), ("s", vec!["a", "d"])] {
            let t = Table::new(TableSchema::new(
                name,
                cols.into_iter()
                    .map(|c| ColumnDef::new(c, ColType::Int))
                    .collect(),
            ));
            db.add_table(t);
        }
        db
    }

    #[test]
    fn binds_self_join() {
        let q = parse(
            "SELECT r1.b, COUNT(DISTINCT r2.c) FROM r r1, r r2, s \
             WHERE r1.a = r2.a AND r1.b = s.a AND s.d = 5 GROUP BY r1.b",
        )
        .unwrap();
        let b = bind(&q, &db()).unwrap();
        assert_eq!(b.rels.len(), 3);
        assert_eq!(b.joins.len(), 2);
        assert_eq!(b.filters.len(), 1);
        assert_eq!(b.aggs, vec![BoundAgg::CountDistinct(1, 2)]);
        // Join edges normalized with a < b.
        assert!(b.joins.iter().all(|e| e.a < e.b));
    }

    #[test]
    fn merges_composite_join_edges() {
        let q = parse("SELECT r.c, COUNT(*) FROM r, s WHERE r.a = s.a AND r.b = s.d GROUP BY r.c")
            .unwrap();
        let b = bind(&q, &db()).unwrap();
        assert_eq!(b.joins.len(), 1);
        assert_eq!(b.joins[0].cols.len(), 2);
    }

    #[test]
    fn rejects_unknown_names() {
        let db = db();
        assert!(bind(&parse("SELECT t.a FROM t").unwrap(), &db).is_err());
        assert!(bind(&parse("SELECT r.zz FROM r").unwrap(), &db).is_err());
        assert!(bind(&parse("SELECT x.a FROM r WHERE x.a = 1").unwrap(), &db).is_err());
    }

    #[test]
    fn rejects_ungrouped_select_column() {
        let q = parse("SELECT r.a, r.b, COUNT(*) FROM r GROUP BY r.a").unwrap();
        assert!(bind(&q, &db()).is_err());
    }

    #[test]
    fn binds_order_by_and_limit() {
        let q =
            parse("SELECT r.a, COUNT(*) FROM r GROUP BY r.a ORDER BY r.a DESC LIMIT 5").unwrap();
        let b = bind(&q, &db()).unwrap();
        assert_eq!(b.order_by, vec![(0, true)]);
        assert_eq!(b.limit, Some(5));
        // Ordering by an unselected column is rejected.
        let bad = parse("SELECT r.a, COUNT(*) FROM r GROUP BY r.a ORDER BY r.b").unwrap();
        assert!(bind(&bad, &db()).is_err());
    }

    #[test]
    fn binds_range_filter() {
        let q =
            parse("SELECT r.c, COUNT(*) FROM r WHERE r.a >= 3 AND r.b < 9 GROUP BY r.c").unwrap();
        let b = bind(&q, &db()).unwrap();
        assert_eq!(b.ranges.len(), 2);
        assert_eq!(b.ranges[0].op, RangeOp::Ge);
        assert_eq!(b.ranges[1].col, 1);
        // Range columns are carried by the plan.
        assert!(b.needed_columns()[0].contains(&0));
        assert!(b.needed_columns()[0].contains(&1));
    }

    #[test]
    fn binds_freq_filter() {
        let q = parse(
            "SELECT r.a, COUNT(*) FROM r WHERE r.a IN \
             (SELECT a FROM s GROUP BY a HAVING COUNT(*) < 4) GROUP BY r.a",
        )
        .unwrap();
        let b = bind(&q, &db()).unwrap();
        assert_eq!(b.freqs.len(), 1);
        assert_eq!(b.freqs[0].sub_table, "s");
        assert_eq!(b.freqs[0].sub_col, 0);
    }

    #[test]
    fn needed_columns_cover_all_uses() {
        let q = parse(
            "SELECT r1.b, COUNT(DISTINCT r2.c) FROM r r1, r r2, s \
             WHERE r1.a = r2.a AND r1.b = s.a AND s.d = 5 GROUP BY r1.b",
        )
        .unwrap();
        let b = bind(&q, &db()).unwrap();
        let need = b.needed_columns();
        assert_eq!(need[0], [0usize, 1].into_iter().collect());
        assert_eq!(need[1], [0usize, 2].into_iter().collect());
        assert_eq!(need[2], [0usize, 1].into_iter().collect());
    }
}
