//! Statistics views: what the optimizer believes about a configuration.
//!
//! The paper's §5 hinges on the difference between three kinds of cost:
//!
//! - `A(q, C)` — actual execution cost (measured by the executor);
//! - `E(q, C)` — the optimizer's estimate *in* configuration `C`, with
//!   statistics collected on `C`'s real structures;
//! - `H(q, Ch, Ca)` — a *hypothetical* estimate of configuration `Ch`
//!   made while the system runs configuration `Ca`, with `Ch`'s
//!   statistics synthesized rather than collected.
//!
//! [`RealStats`] implements the `E` view; [`HypotheticalStats`] the `H`
//! view. The planner is generic over [`StatsView`], so the same search
//! produces both kinds of estimate.
//!
//! The degradation rule (documented in DESIGN.md §1): **value-distribution
//! statistics (MCV lists) are available only for columns that are the
//! leading column of a *built* index**; all other equality selectivities
//! fall back to the uniformity assumption `1 / n_distinct`. Hypothetical
//! indexes are never built, so `H` estimates are uniform — on skewed data
//! this is precisely the estimation error the paper diagnoses.

use tab_sqlq::{CmpOp, RangeOp};
use tab_storage::{
    BuiltConfiguration, ColumnStats, Configuration, Database, IndexSpec, MViewDef, MViewSpec,
    Value, PAGE_SIZE,
};

/// Size and shape of one (real or hypothetical) index, for costing.
#[derive(Debug, Clone)]
pub struct IndexMeta {
    /// Source (table or view) the index is on.
    pub table: String,
    /// Key column positions.
    pub columns: Vec<usize>,
    /// Leaf pages.
    pub pages: f64,
    /// Tree height (random pages per descent).
    pub height: f64,
    /// Leaf entries per page.
    pub entries_per_page: f64,
    /// Heap pages fetched per matching row on a probe (0 = clustered,
    /// 1 = scattered). Measured on built indexes; hypothetical indexes
    /// have never been built, so the what-if view conservatively assumes
    /// fully scattered rows — one more honest source of `H` pessimism.
    pub clustering: f64,
}

/// Size and definition of one (real or hypothetical) materialized view.
#[derive(Debug, Clone)]
pub struct MViewMeta {
    /// The view definition.
    pub spec: MViewSpec,
    /// Row count (actual for built views, estimated for hypothetical).
    pub rows: f64,
    /// Heap pages.
    pub pages: f64,
}

/// What the planner may ask about a configuration's statistics.
pub trait StatsView {
    /// Rows in a source (base table or view).
    fn rel_rows(&self, source: &str) -> f64;

    /// Heap pages of a source.
    fn rel_pages(&self, source: &str) -> f64;

    /// Distinct values in a column of a source.
    fn n_distinct(&self, source: &str, col: usize) -> f64;

    /// Selectivity of `source.col = value`.
    fn eq_selectivity(&self, source: &str, col: usize, value: &Value) -> f64;

    /// Fraction of `source.col`'s rows whose value occurs `op k` times
    /// in that column (the frequency-filter selectivity).
    fn freq_fraction(&self, source: &str, col: usize, op: CmpOp, k: i64) -> f64;

    /// Selectivity of `source.col op value` for a range operator.
    fn range_selectivity(&self, source: &str, col: usize, op: RangeOp, value: &Value) -> f64;

    /// Indexes available on a source in this configuration.
    fn indexes_on(&self, source: &str) -> Vec<IndexMeta>;

    /// Materialized views available in this configuration.
    fn mviews(&self) -> Vec<MViewMeta>;
}

/// Clamp a selectivity into a sane open interval, as real optimizers do.
pub fn clamp_sel(s: f64) -> f64 {
    s.clamp(1e-9, 1.0)
}

/// The System-R default range selectivity, used when no histogram is
/// available (non-indexed columns, hypothetical configurations).
pub const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;

/// Histogram-based range selectivity over collected column stats.
fn range_sel_from_stats(stats: &ColumnStats, op: RangeOp, value: &Value) -> f64 {
    let lt = stats.lt_selectivity(value);
    let eq = stats.eq_selectivity(value);
    let non_null = if stats.n_rows == 0 {
        0.0
    } else {
        (stats.n_rows - stats.n_null) as f64 / stats.n_rows as f64
    };
    let s = match op {
        RangeOp::Lt => lt,
        RangeOp::Le => lt + eq,
        RangeOp::Gt => non_null - lt - eq,
        RangeOp::Ge => non_null - lt,
    };
    clamp_sel(s)
}

/// Estimate index geometry from schema widths and a row count, the same
/// formulas `BTreeIndex` uses, applied without building anything.
pub fn estimate_index_meta(table: &str, columns: &[usize], key_width: u32, rows: f64) -> IndexMeta {
    let entry_width = (key_width + 12).max(1) as f64;
    let entries_per_page = (PAGE_SIZE as f64 / entry_width).max(1.0).floor();
    let pages = (rows / entries_per_page).ceil().max(1.0);
    let fanout = entries_per_page.max(2.0);
    let mut height = 1.0;
    let mut span = fanout;
    while span < pages {
        span *= fanout;
        height += 1.0;
    }
    IndexMeta {
        table: table.to_string(),
        columns: columns.to_vec(),
        pages,
        height,
        entries_per_page,
        clustering: 1.0,
    }
}

/// Frequency-filter mass fraction from collected distribution stats:
/// read exactly off the frequency-of-frequency summary.
fn freq_fraction_from_stats(stats: &ColumnStats, op: CmpOp, k: i64) -> f64 {
    stats.freq_mass_fraction(matches!(op, CmpOp::Lt), k)
}

/// Uniformity-assumption frequency fraction: every value assumed to occur
/// `n/d` times, so the filter keeps everything or nothing (clamped).
fn freq_fraction_uniform(n_rows: f64, n_distinct: f64, op: CmpOp, k: i64) -> f64 {
    if n_rows == 0.0 || n_distinct == 0.0 {
        return 0.0;
    }
    let avg = (n_rows / n_distinct).round().max(1.0) as i64;
    let qualifies = match op {
        CmpOp::Lt => avg < k,
        CmpOp::Eq => avg == k,
    };
    if qualifies {
        1.0
    } else {
        // Real optimizers clamp rather than claim impossibility.
        0.005
    }
}

/// The `E(q, C)` view: statistics collected on a built configuration.
pub struct RealStats<'a> {
    db: &'a Database,
    built: &'a BuiltConfiguration,
}

impl<'a> RealStats<'a> {
    /// View over `built` against `db`. Table statistics must have been
    /// collected (`db.collect_stats()`).
    pub fn new(db: &'a Database, built: &'a BuiltConfiguration) -> Self {
        RealStats { db, built }
    }

    /// Column stats for a source: base tables from the database, views
    /// from their materialization-time stats.
    fn col_stats(&self, source: &str, col: usize) -> Option<&ColumnStats> {
        if let Some(s) = self.db.stats(source) {
            return s.columns.get(col);
        }
        self.built
            .mviews
            .iter()
            .find(|(mv, _)| mv.spec.name == source)
            .and_then(|(mv, _)| mv.stats.columns.get(col))
    }

    /// Distribution (MCV) statistics exist only for leading index columns.
    fn has_distribution(&self, source: &str, col: usize) -> bool {
        self.built
            .indexes_on(source)
            .any(|idx| idx.spec().columns.first() == Some(&col))
    }
}

impl StatsView for RealStats<'_> {
    fn rel_rows(&self, source: &str) -> f64 {
        if let Some(s) = self.db.stats(source) {
            return s.n_rows as f64;
        }
        self.built
            .mviews
            .iter()
            .find(|(mv, _)| mv.spec.name == source)
            .map(|(mv, _)| mv.stats.n_rows as f64)
            .unwrap_or(0.0)
    }

    fn rel_pages(&self, source: &str) -> f64 {
        if let Some(s) = self.db.stats(source) {
            return s.n_pages as f64;
        }
        self.built
            .mviews
            .iter()
            .find(|(mv, _)| mv.spec.name == source)
            .map(|(mv, _)| mv.stats.n_pages as f64)
            .unwrap_or(1.0)
    }

    fn n_distinct(&self, source: &str, col: usize) -> f64 {
        self.col_stats(source, col)
            .map(|c| c.n_distinct as f64)
            .unwrap_or(1.0)
    }

    fn eq_selectivity(&self, source: &str, col: usize, value: &Value) -> f64 {
        let Some(stats) = self.col_stats(source, col) else {
            return 1.0;
        };
        if self.has_distribution(source, col) {
            clamp_sel(stats.eq_selectivity(value))
        } else {
            clamp_sel(stats.eq_selectivity_uniform())
        }
    }

    fn freq_fraction(&self, source: &str, col: usize, op: CmpOp, k: i64) -> f64 {
        let Some(stats) = self.col_stats(source, col) else {
            return 1.0;
        };
        if self.has_distribution(source, col) {
            clamp_sel(freq_fraction_from_stats(stats, op, k))
        } else {
            clamp_sel(freq_fraction_uniform(
                stats.n_rows as f64,
                stats.n_distinct as f64,
                op,
                k,
            ))
        }
    }

    fn range_selectivity(&self, source: &str, col: usize, op: RangeOp, value: &Value) -> f64 {
        let Some(stats) = self.col_stats(source, col) else {
            return DEFAULT_RANGE_SEL;
        };
        if self.has_distribution(source, col) {
            range_sel_from_stats(stats, op, value)
        } else {
            DEFAULT_RANGE_SEL
        }
    }

    fn indexes_on(&self, source: &str) -> Vec<IndexMeta> {
        self.built
            .indexes_on(source)
            .map(|idx| IndexMeta {
                table: source.to_string(),
                columns: idx.spec().columns.clone(),
                pages: idx.n_pages() as f64,
                height: idx.height() as f64,
                entries_per_page: idx.entries_per_page() as f64,
                clustering: idx.clustering(),
            })
            .collect()
    }

    fn mviews(&self) -> Vec<MViewMeta> {
        self.built
            .fresh_mviews()
            .map(|(mv, _)| MViewMeta {
                spec: mv.spec.clone(),
                rows: mv.stats.n_rows as f64,
                pages: mv.stats.n_pages as f64,
            })
            .collect()
    }
}

/// The `H(q, Ch, Ca)` view: a hypothetical configuration `hyp`, estimated
/// while the system actually runs `current`.
///
/// The hypothetical configuration is a *base* plus optional overlay
/// slices ([`HypotheticalStats::layered`]): the advisor's greedy search
/// trials hundreds of configurations per round that differ from a shared
/// base by exactly one structure, and the overlay lets it present
/// `base + candidate` without cloning the base configuration per trial.
/// A plain view ([`HypotheticalStats::new`]) is a layered view with
/// empty overlays; both present identical statistics for the same
/// effective structure list (base structures first, overlay appended —
/// the same order `clone`-and-`push` would produce).
pub struct HypotheticalStats<'a> {
    db: &'a Database,
    current: &'a BuiltConfiguration,
    hyp: &'a Configuration,
    extra_indexes: &'a [IndexSpec],
    extra_mviews: &'a [MViewDef],
    perfect_distributions: bool,
}

impl<'a> HypotheticalStats<'a> {
    /// Hypothetical view of `hyp` taken from `current`.
    pub fn new(db: &'a Database, current: &'a BuiltConfiguration, hyp: &'a Configuration) -> Self {
        HypotheticalStats {
            db,
            current,
            hyp,
            extra_indexes: &[],
            extra_mviews: &[],
            perfect_distributions: false,
        }
    }

    /// Incremental view of `base` with extra trial structures layered on
    /// top, equivalent to a plain view of `base + extras` but without
    /// materializing that configuration.
    pub fn layered(
        db: &'a Database,
        current: &'a BuiltConfiguration,
        base: &'a Configuration,
        extra_indexes: &'a [IndexSpec],
        extra_mviews: &'a [MViewDef],
        perfect_distributions: bool,
    ) -> Self {
        HypotheticalStats {
            db,
            current,
            hyp: base,
            extra_indexes,
            extra_mviews,
            perfect_distributions,
        }
    }

    /// Ablation variant: hypothetical structures get *full* distribution
    /// statistics, as if the "observe" step the paper's conclusion calls
    /// for had run. Used to quantify how much of the recommenders'
    /// failure §5 attributes to estimation error.
    pub fn with_perfect_distributions(
        db: &'a Database,
        current: &'a BuiltConfiguration,
        hyp: &'a Configuration,
    ) -> Self {
        HypotheticalStats {
            db,
            current,
            hyp,
            extra_indexes: &[],
            extra_mviews: &[],
            perfect_distributions: true,
        }
    }

    /// All hypothetical index specs: base first, then the overlay.
    fn all_indexes(&self) -> impl Iterator<Item = &IndexSpec> {
        self.hyp.indexes.iter().chain(self.extra_indexes)
    }

    /// All hypothetical view definitions: base first, then the overlay.
    fn all_mviews(&self) -> impl Iterator<Item = &MViewDef> {
        self.hyp.mviews.iter().chain(self.extra_mviews)
    }

    /// Estimated rows of a hypothetical view: base cardinalities reduced
    /// by the textbook independence-assumption join selectivity.
    fn est_view_rows(&self, spec: &MViewSpec) -> f64 {
        let rows: Vec<f64> = spec
            .base
            .iter()
            .map(|t| self.db.stats(t).map(|s| s.n_rows as f64).unwrap_or(0.0))
            .collect();
        if spec.base.len() == 1 {
            return rows[0];
        }
        let mut sel = 1.0;
        for &(l, r) in &spec.join_on {
            let ndl = self
                .db
                .stats(&spec.base[0])
                .and_then(|s| s.columns.get(l))
                .map(|c| c.n_distinct as f64)
                .unwrap_or(1.0);
            let ndr = self
                .db
                .stats(&spec.base[1])
                .and_then(|s| s.columns.get(r))
                .map(|c| c.n_distinct as f64)
                .unwrap_or(1.0);
            sel /= ndl.max(ndr).max(1.0);
        }
        (rows[0] * rows[1] * sel).max(1.0)
    }

    /// For hypothetical-view columns, map to the underlying base column
    /// stats (`spec.projection[col]`).
    fn view_base_stats(&self, spec: &MViewSpec, col: usize) -> Option<&ColumnStats> {
        let (t, c) = *spec.projection.get(col)?;
        self.db.stats(&spec.base[t]).and_then(|s| s.columns.get(c))
    }

    fn hyp_view(&self, source: &str) -> Option<&MViewSpec> {
        self.all_mviews()
            .map(|d| &d.spec)
            .find(|s| s.name == source)
    }

    /// Average byte width of a source's columns, for index sizing.
    fn key_width(&self, source: &str, columns: &[usize]) -> u32 {
        if let Some(t) = self.db.table(source) {
            return columns
                .iter()
                .map(|&c| t.schema().columns[c].byte_width)
                .sum();
        }
        if let Some(spec) = self.hyp_view(source) {
            return columns
                .iter()
                .filter_map(|&c| spec.projection.get(c))
                .filter_map(|&(t, c)| {
                    self.db
                        .table(&spec.base[t])
                        .map(|bt| bt.schema().columns[c].byte_width)
                })
                .sum();
        }
        8 * columns.len() as u32
    }
}

impl StatsView for HypotheticalStats<'_> {
    fn rel_rows(&self, source: &str) -> f64 {
        if let Some(s) = self.db.stats(source) {
            return s.n_rows as f64;
        }
        self.hyp_view(source)
            .map(|spec| self.est_view_rows(spec))
            .unwrap_or(0.0)
    }

    fn rel_pages(&self, source: &str) -> f64 {
        if let Some(s) = self.db.stats(source) {
            return s.n_pages as f64;
        }
        if let (Some(spec), Some(_)) = (self.hyp_view(source), Some(())) {
            let rows = self.est_view_rows(spec);
            let width: u32 = spec
                .projection
                .iter()
                .filter_map(|&(t, c)| {
                    self.db
                        .table(&spec.base[t])
                        .map(|bt| bt.schema().columns[c].byte_width)
                })
                .sum::<u32>()
                + 8;
            let rpp = (PAGE_SIZE / width.max(1)).max(1) as f64;
            return (rows / rpp).ceil().max(1.0);
        }
        1.0
    }

    fn n_distinct(&self, source: &str, col: usize) -> f64 {
        if let Some(s) = self.db.stats(source) {
            return s
                .columns
                .get(col)
                .map(|c| c.n_distinct as f64)
                .unwrap_or(1.0);
        }
        if let Some(spec) = self.hyp_view(source) {
            let nd = self
                .view_base_stats(spec, col)
                .map(|c| c.n_distinct as f64)
                .unwrap_or(1.0);
            return nd.min(self.est_view_rows(spec));
        }
        1.0
    }

    fn eq_selectivity(&self, source: &str, col: usize, value: &Value) -> f64 {
        // Distribution stats only from the *current* configuration's
        // built indexes; hypothetical indexes contribute none (unless
        // the perfect-distributions ablation is on).
        let current_has = self.perfect_distributions
            || self
                .current
                .indexes_on(source)
                .any(|idx| idx.spec().columns.first() == Some(&col));
        if current_has {
            if let Some(s) = self.db.stats(source).and_then(|s| s.columns.get(col)) {
                return clamp_sel(s.eq_selectivity(value));
            }
        }
        let nd = self.n_distinct(source, col);
        clamp_sel(1.0 / nd.max(1.0))
    }

    fn freq_fraction(&self, source: &str, col: usize, op: CmpOp, k: i64) -> f64 {
        let current_has = self.perfect_distributions
            || self
                .current
                .indexes_on(source)
                .any(|idx| idx.spec().columns.first() == Some(&col));
        if current_has {
            if let Some(s) = self.db.stats(source).and_then(|s| s.columns.get(col)) {
                return clamp_sel(freq_fraction_from_stats(s, op, k));
            }
        }
        clamp_sel(freq_fraction_uniform(
            self.rel_rows(source),
            self.n_distinct(source, col),
            op,
            k,
        ))
    }

    fn range_selectivity(&self, source: &str, col: usize, op: RangeOp, value: &Value) -> f64 {
        if self.perfect_distributions {
            if let Some(s) = self.db.stats(source).and_then(|s| s.columns.get(col)) {
                return range_sel_from_stats(s, op, value);
            }
        }
        DEFAULT_RANGE_SEL
    }

    fn indexes_on(&self, source: &str) -> Vec<IndexMeta> {
        let rows = self.rel_rows(source);
        self.all_indexes()
            .filter(|s| s.table == source)
            .map(|s| {
                estimate_index_meta(source, &s.columns, self.key_width(source, &s.columns), rows)
            })
            .chain(
                self.all_mviews()
                    .filter(|d| d.spec.name == source)
                    .flat_map(|d| {
                        d.indexes.iter().map(|cols| {
                            estimate_index_meta(source, cols, self.key_width(source, cols), rows)
                        })
                    }),
            )
            .collect()
    }

    fn mviews(&self) -> Vec<MViewMeta> {
        self.all_mviews()
            .map(|d| {
                let rows = self.est_view_rows(&d.spec);
                MViewMeta {
                    spec: d.spec.clone(),
                    rows,
                    pages: self.rel_pages(&d.spec.name),
                }
            })
            .collect()
    }
}

/// Convenience: a hypothetical configuration identical to the current one
/// (useful for testing that `H` degrades gracefully to `E`-like shapes).
pub fn as_hypothetical(built: &BuiltConfiguration) -> Configuration {
    built.config.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_storage::{ColType, ColumnDef, IndexSpec, Table, TableSchema};

    fn skewed_db() -> Database {
        let mut db = Database::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColType::Int),
                ColumnDef::new("b", ColType::Int),
            ],
        ));
        for _ in 0..900 {
            t.insert(vec![Value::Int(0), Value::Int(0)]);
        }
        for i in 1..=100 {
            t.insert(vec![Value::Int(i), Value::Int(i)]);
        }
        db.add_table(t);
        db.collect_stats();
        db
    }

    fn built_with_index(db: &Database, cols: Vec<usize>) -> BuiltConfiguration {
        let mut cfg = Configuration::named("c");
        cfg.indexes.push(IndexSpec::new("t", cols));
        BuiltConfiguration::build(cfg, db)
    }

    #[test]
    fn real_stats_use_mcv_only_when_indexed() {
        let db = skewed_db();
        let p = BuiltConfiguration::build(Configuration::named("p"), &db);
        let indexed = built_with_index(&db, vec![0]);
        let heavy = Value::Int(0);
        let sel_p = RealStats::new(&db, &p).eq_selectivity("t", 0, &heavy);
        let sel_i = RealStats::new(&db, &indexed).eq_selectivity("t", 0, &heavy);
        // Without an index: uniform 1/101; with: exact 0.9.
        assert!((sel_i - 0.9).abs() < 1e-9);
        assert!(sel_p < 0.02);
    }

    #[test]
    fn hypothetical_stays_uniform_even_for_hyp_indexes() {
        let db = skewed_db();
        let p = BuiltConfiguration::build(Configuration::named("p"), &db);
        let mut hyp = Configuration::named("h");
        hyp.indexes.push(IndexSpec::new("t", vec![0]));
        let h = HypotheticalStats::new(&db, &p, &hyp);
        let sel = h.eq_selectivity("t", 0, &Value::Int(0));
        assert!(sel < 0.02, "hypothetical index must not grant MCV stats");
        // But the hypothetical index is visible for access-path planning.
        assert_eq!(h.indexes_on("t").len(), 1);
    }

    #[test]
    fn hypothetical_index_geometry_close_to_real() {
        let db = skewed_db();
        let built = built_with_index(&db, vec![0, 1]);
        let real = RealStats::new(&db, &built).indexes_on("t");
        let p = BuiltConfiguration::build(Configuration::named("p"), &db);
        let hyp = built.config.clone();
        let hv = HypotheticalStats::new(&db, &p, &hyp);
        let est = hv.indexes_on("t");
        assert_eq!(real.len(), 1);
        assert_eq!(est.len(), 1);
        assert!((real[0].pages - est[0].pages).abs() <= 1.0);
    }

    #[test]
    fn freq_fraction_uniform_is_all_or_clamped_nothing() {
        // avg freq ~ 10; k=4 -> uniform says nothing qualifies (clamped).
        let f = freq_fraction_uniform(1000.0, 100.0, CmpOp::Lt, 4);
        assert!((f - 0.005).abs() < 1e-12);
        let f2 = freq_fraction_uniform(1000.0, 1000.0, CmpOp::Lt, 4);
        assert!((f2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn freq_fraction_from_stats_counts_rare_mass() {
        let db = skewed_db();
        let stats = db.stats("t").unwrap();
        // Values 1..=100 occur once (<4): mass 100/1000.
        let f = freq_fraction_from_stats(&stats.columns[0], CmpOp::Lt, 4);
        assert!((f - 0.1).abs() < 0.02, "f={f}");
    }

    #[test]
    fn hypothetical_view_rows_use_independence() {
        let db = skewed_db();
        let p = BuiltConfiguration::build(Configuration::named("p"), &db);
        let mut hyp = Configuration::named("h");
        hyp.mviews.push(tab_storage::MViewDef {
            spec: MViewSpec::join_of("v", "t", "t", vec![(0, 0)], vec![(0, 1)]),
            indexes: vec![],
        });
        let h = HypotheticalStats::new(&db, &p, &hyp);
        // Independence: 1000 * 1000 / 101 ~ 9900. Actual self-join on the
        // skewed column would be 900^2 + 100 = 810100 -- a 80x error.
        let est = h.rel_rows("v");
        assert!(est < 20_000.0, "est={est}");
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp_sel(5.0), 1.0);
        assert!(clamp_sel(0.0) > 0.0);
    }

    #[test]
    fn layered_view_matches_materialized_configuration() {
        let db = skewed_db();
        let p = BuiltConfiguration::build(Configuration::named("p"), &db);
        let mut base = Configuration::named("base");
        base.indexes.push(IndexSpec::new("t", vec![0]));
        let extra_ix = [IndexSpec::new("t", vec![1])];
        let extra_mv = [MViewDef {
            spec: MViewSpec::join_of("v", "t", "t", vec![(0, 0)], vec![(0, 1)]),
            indexes: vec![vec![0]],
        }];

        let mut merged = base.clone();
        merged.indexes.push(extra_ix[0].clone());
        merged.mviews.push(extra_mv[0].clone());

        let layered = HypotheticalStats::layered(&db, &p, &base, &extra_ix, &extra_mv, false);
        let plain = HypotheticalStats::new(&db, &p, &merged);
        for source in ["t", "v"] {
            let a = layered.indexes_on(source);
            let b = plain.indexes_on(source);
            assert_eq!(a.len(), b.len(), "{source}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.columns, y.columns);
                assert_eq!(x.pages, y.pages);
            }
            assert_eq!(layered.rel_rows(source), plain.rel_rows(source));
            assert_eq!(layered.rel_pages(source), plain.rel_pages(source));
        }
        assert_eq!(layered.mviews().len(), plain.mviews().len());
    }
}
