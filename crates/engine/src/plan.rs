//! Physical plan representation.
//!
//! Plans are produced by the planner against a [`StatsView`] and consumed
//! by the executor against real structures. A plan is a left-deep
//! pipeline: a driver relation access followed by join steps, then a
//! hash aggregation implied by the bound query's group-by/aggregates.
//!
//! [`StatsView`]: crate::stats_view::StatsView

use tab_sqlq::RangeOp;
use tab_storage::Value;

use crate::catalog::BoundQuery;

/// How a relation's rows are obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Sequential heap scan.
    Seq,
    /// Probe of an index identified by its key columns, with a constant
    /// prefix taken from the query's filters.
    Index {
        /// The index's key columns (identifies the index on the source).
        columns: Vec<usize>,
        /// Constant values binding the leading `prefix.len()` columns.
        prefix: Vec<Value>,
        /// Whether the index covers every column the plan needs from this
        /// relation (no heap fetches).
        covering: bool,
    },
    /// Range scan on an index whose leading column carries a range
    /// predicate: bounds `(value, strict)` with `None` = unbounded.
    IndexRange {
        /// The index's key columns.
        columns: Vec<usize>,
        /// Lower bound on the leading column.
        lo: Option<(Value, bool)>,
        /// Upper bound on the leading column.
        hi: Option<(Value, bool)>,
        /// Whether the index covers the relation's needed columns.
        covering: bool,
    },
    /// Leaf-level scan of an index whose leading column carries a
    /// frequency filter: only entries whose leading key qualifies are
    /// fetched. This is the access path that lets a single-column index
    /// answer the NREF2J templates without touching the heap for
    /// non-qualifying rows.
    IndexFreqScan {
        /// The index's key columns.
        columns: Vec<usize>,
        /// Which of the query's frequency filters drives the scan.
        freq: usize,
        /// Whether the index covers the relation's needed columns.
        covering: bool,
    },
}

/// Access + residual work for one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelOp {
    /// Position in the bound query's relation list.
    pub rel: usize,
    /// Access path.
    pub access: Access,
    /// Residual constant filters `(col, value)` applied after access.
    pub filters: Vec<(usize, Value)>,
    /// Residual range filters `(col, op, value)` applied after access.
    pub ranges: Vec<(usize, RangeOp, Value)>,
    /// Indices into `BoundQuery::freqs` applied at this relation.
    pub freqs: Vec<usize>,
}

/// Where one component of an index-probe key comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeSource {
    /// A column of the already-joined (outer) side, identified by
    /// `(rel, col)` in bound-query coordinates.
    Outer(usize, usize),
    /// A constant from the query.
    Const(Value),
}

/// Join algorithm for one step.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinMethod {
    /// Build a hash table on the inner relation's (filtered) rows and
    /// probe it with outer tuples. `build_cols` are the inner key
    /// columns, aligned with `JoinStep::pairs`.
    Hash,
    /// For each outer tuple, probe an index on the inner relation.
    IndexNl {
        /// Key columns of the chosen index.
        columns: Vec<usize>,
        /// Probe key sources, one per bound leading index column.
        probe: Vec<ProbeSource>,
        /// Whether the index covers the inner relation's needed columns
        /// (skip heap fetches).
        covering: bool,
    },
}

/// One join step: bring in `inner.rel` and connect it to the tuples
/// produced so far.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStep {
    /// The inner relation and its residual work.
    pub inner: RelOp,
    /// Join algorithm.
    pub method: JoinMethod,
    /// Equi-join pairs `((outer_rel, outer_col), inner_col)` connecting
    /// the inner relation to the already-placed relations. Empty means a
    /// cartesian product.
    pub pairs: Vec<((usize, usize), usize)>,
}

impl JoinStep {
    /// Inner-side key columns, aligned with `pairs`.
    pub fn inner_cols(&self) -> impl Iterator<Item = usize> + Clone + '_ {
        self.pairs.iter().map(|&(_, ic)| ic)
    }

    /// Outer-side key columns as `(rel, col)`, aligned with `pairs`.
    pub fn outer_cols(&self) -> impl Iterator<Item = (usize, usize)> + Clone + '_ {
        self.pairs.iter().map(|&(oc, _)| oc)
    }
}

/// The planner's estimate for one operator slot of the chosen plan,
/// aligned with the executor's per-operator actuals
/// ([`OpActuals`](crate::exec::OpActuals)) so EXPLAIN can render
/// estimates against measurements slot by slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpEstimate {
    /// Estimated cost units this operator charges.
    pub cost: f64,
    /// Estimated rows flowing out of this operator.
    pub rows: f64,
}

/// A complete physical plan.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// The (possibly view-rewritten) bound query this plan computes.
    pub query: BoundQuery,
    /// Driver relation.
    pub driver: RelOp,
    /// Join steps in execution order.
    pub steps: Vec<JoinStep>,
    /// Optimizer's total cost estimate in cost units — the paper's
    /// `E(q,C)` or `H(q,Ch,Ca)` depending on the stats view used.
    pub est_cost: f64,
    /// Optimizer's estimate of the final row count.
    pub est_rows: f64,
    /// Names of materialized views this plan reads.
    pub mviews_used: Vec<String>,
    /// Per-operator estimates in the operator-slot layout shared with
    /// the executor: `[setup, driver, step…, output]` — see
    /// [`PhysicalPlan::op_labels`]. Sums to [`PhysicalPlan::est_cost`].
    pub op_ests: Vec<OpEstimate>,
}

/// Human-readable description of one access path against a source.
pub(crate) fn access_desc(source: &str, access: &Access) -> String {
    match access {
        Access::Seq => format!("SeqScan({source})"),
        Access::Index {
            columns, covering, ..
        } => format!(
            "IndexScan({source} cols={columns:?}{})",
            if *covering { " covering" } else { "" }
        ),
        Access::IndexFreqScan {
            columns, covering, ..
        } => format!(
            "IndexFreqScan({source} cols={columns:?}{})",
            if *covering { " covering" } else { "" }
        ),
        Access::IndexRange {
            columns, covering, ..
        } => format!(
            "IndexRangeScan({source} cols={columns:?}{})",
            if *covering { " covering" } else { "" }
        ),
    }
}

/// Human-readable description of one join step against a source.
pub(crate) fn step_desc(source: &str, step: &JoinStep) -> String {
    match &step.method {
        JoinMethod::Hash => format!("HashJoin[{}]", access_desc(source, &step.inner.access)),
        JoinMethod::IndexNl {
            columns, covering, ..
        } => format!(
            "IndexNLJoin({source} cols={columns:?}{})",
            if *covering { " covering" } else { "" }
        ),
    }
}

impl PhysicalPlan {
    /// Labels for each operator slot, in the layout shared by
    /// [`op_ests`](Self::op_ests) and the executor's per-operator
    /// actuals:
    ///
    /// 1. `FreqSetup` — frequency-filter subquery evaluation (zero work
    ///    when the query has no frequency filters);
    /// 2. the driver access;
    /// 3. one slot per join step, in execution order;
    /// 4. the output operator (`HashAggregate` or `Project`, `+Sort`
    ///    when an ORDER BY runs).
    pub fn op_labels(&self) -> Vec<String> {
        let rel_name = |r: usize| self.query.rels[r].source.as_str();
        let mut out = Vec::with_capacity(self.steps.len() + 3);
        out.push("FreqSetup".to_string());
        out.push(access_desc(rel_name(self.driver.rel), &self.driver.access));
        for s in &self.steps {
            out.push(step_desc(rel_name(s.inner.rel), s));
        }
        let mut last = if self.query.aggs.is_empty() && self.query.group_by.is_empty() {
            "Project".to_string()
        } else {
            "HashAggregate".to_string()
        };
        if !self.query.order_by.is_empty() {
            last.push_str("+Sort");
        }
        out.push(last);
        out
    }

    /// Short human-readable plan summary, for EXPLAIN-style output.
    pub fn describe(&self) -> String {
        let rel_name = |r: usize| self.query.rels[r].source.as_str();
        let mut parts = vec![access_desc(rel_name(self.driver.rel), &self.driver.access)];
        for s in &self.steps {
            parts.push(step_desc(rel_name(s.inner.rel), s));
        }
        parts.join(" -> ")
    }
}
