//! The cost-based optimizer.
//!
//! For the benchmark's query shapes (≤ 4 relations) the planner searches
//! exhaustively: every materialized-view rewrite of the bound query,
//! every relation permutation, and for each step the cheapest access
//! path (sequential scan vs index probe) and join method (hash join vs
//! index nested-loops). Costs come from a [`StatsView`], so the same
//! search produces real estimates `E(q,C)` and hypothetical estimates
//! `H(q,Ch,Ca)` — the two quantities §5 of the paper contrasts.

use std::collections::BTreeSet;

use tab_sqlq::RangeOp;
use tab_storage::Value;

use crate::catalog::{BoundQuery, BoundRel, JoinEdge};
use crate::cost::{RANDOM_PAGE_COST, ROW_COST, SEQ_PAGE_COST};
use crate::plan::{
    access_desc, Access, JoinMethod, JoinStep, OpEstimate, PhysicalPlan, ProbeSource, RelOp,
};
use crate::stats_view::{IndexMeta, StatsView};

/// One access path or join method the planner priced while choosing a
/// plan — the planner's decision trace, surfaced by `tab explain`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanChoice {
    /// Human-readable option, e.g. `IndexScan(protein cols=[3])`.
    pub description: String,
    /// The option's estimated cost in cost units.
    pub cost: f64,
    /// Whether this option is part of the chosen plan.
    pub chosen: bool,
}

/// Why the chosen plan won: every alternative the planner priced, at the
/// candidate level (materialized-view rewrites) and per operator slot of
/// the winning join order.
#[derive(Debug, Clone)]
pub struct PlanExplanation {
    /// Query-level candidates: the original query and each view rewrite,
    /// with the best full-plan cost found for each.
    pub candidates: Vec<PlanChoice>,
    /// Access-path/join-method options per pipeline slot of the chosen
    /// plan (`per_op[0]` is the driver, `per_op[i]` join step `i-1`).
    /// Options the planner never priced (e.g. an index with no usable
    /// prefix) do not appear.
    pub per_op: Vec<Vec<PlanChoice>>,
}

/// Plan a bound query against a statistics view.
///
/// # Panics
/// Panics if the query has more than [`MAX_RELATIONS`] relations.
pub fn plan(bound: &BoundQuery, stats: &dyn StatsView) -> PhysicalPlan {
    assert!(
        bound.rels.len() <= MAX_RELATIONS,
        "planner supports at most {MAX_RELATIONS} relations"
    );
    let mut candidates = vec![(bound.clone(), Vec::new())];
    for (rewritten, view) in mv_rewrites(bound, stats) {
        candidates.push((rewritten, vec![view]));
    }
    let mut best: Option<PhysicalPlan> = None;
    for (cand, views) in candidates {
        let p = best_for_candidate(&cand, stats, views);
        if best.as_ref().is_none_or(|b| p.est_cost < b.est_cost) {
            best = Some(p);
        }
    }
    best.expect("at least the original candidate plans")
}

/// Plan a bound query and record the planner's decision trace: the cost
/// of each query-level candidate (original vs. each materialized-view
/// rewrite), and every access path / join method priced for each slot of
/// the winning plan. Used by `tab explain`; the hot path is [`plan`],
/// which skips all recording.
///
/// # Panics
/// Panics if the query has more than [`MAX_RELATIONS`] relations.
pub fn plan_explained(
    bound: &BoundQuery,
    stats: &dyn StatsView,
) -> (PhysicalPlan, PlanExplanation) {
    assert!(
        bound.rels.len() <= MAX_RELATIONS,
        "planner supports at most {MAX_RELATIONS} relations"
    );
    let mut candidates = vec![(bound.clone(), Vec::new(), "original query".to_string())];
    for (rewritten, view) in mv_rewrites(bound, stats) {
        let desc = format!("rewrite using view `{view}`");
        candidates.push((rewritten, vec![view], desc));
    }
    let mut best: Option<PhysicalPlan> = None;
    let mut cand_choices = Vec::new();
    let mut best_idx = 0usize;
    for (i, (cand, views, desc)) in candidates.into_iter().enumerate() {
        let p = best_for_candidate(&cand, stats, views);
        cand_choices.push(PlanChoice {
            description: desc,
            cost: p.est_cost,
            chosen: false,
        });
        if best.as_ref().is_none_or(|b| p.est_cost < b.est_cost) {
            best_idx = i;
            best = Some(p);
        }
    }
    cand_choices[best_idx].chosen = true;
    let plan = best.expect("at least the original candidate plans");

    // Re-cost the winning plan's join order with logging on: the search
    // is deterministic, so the per-slot winners match the plan exactly.
    let need = plan.query.needed_columns();
    let mut perm = Vec::with_capacity(plan.steps.len() + 1);
    perm.push(plan.driver.rel);
    perm.extend(plan.steps.iter().map(|s| s.inner.rel));
    let mut per_op = Vec::new();
    let _ = cost_perm(&plan.query, stats, &need, &perm, Some(&mut per_op));
    (
        plan,
        PlanExplanation {
            candidates: cand_choices,
            per_op,
        },
    )
}

/// Maximum relations per query (the families use at most 3).
pub const MAX_RELATIONS: usize = 6;

/// Outcome of costing one relation's access.
struct CostedRelOp {
    op: RelOp,
    cost: f64,
    /// Rows emitted after all filters and frequency filters.
    out_rows: f64,
}

/// What costing one relation order yields: total cost, driver, join
/// steps, output row estimate, and the per-slot estimates.
type PermPlan = (f64, RelOp, Vec<JoinStep>, f64, Vec<OpEstimate>);

fn best_for_candidate(
    bound: &BoundQuery,
    stats: &dyn StatsView,
    mviews_used: Vec<String>,
) -> PhysicalPlan {
    let need = bound.needed_columns();
    let freq_cost: f64 = bound
        .freqs
        .iter()
        .map(|f| freq_eval_cost(&f.sub_table, f.sub_col, stats))
        .sum();

    let n = bound.rels.len();
    let mut best: Option<PermPlan> = None;
    for perm in permutations(n) {
        if let Some((cost, driver, steps, rows, ests)) = cost_perm(bound, stats, &need, perm, None)
        {
            let total = cost + freq_cost;
            if best.as_ref().is_none_or(|(c, ..)| total < *c) {
                best = Some((total, driver, steps, rows, ests));
            }
        }
    }
    let (mut total, driver, steps, mut rows, pipeline_ests) = best.expect("some permutation");

    // Aggregation on top.
    if !bound.aggs.is_empty() || !bound.group_by.is_empty() {
        let distinct_extra = bound
            .aggs
            .iter()
            .filter(|a| matches!(a, crate::catalog::BoundAgg::CountDistinct(..)))
            .count() as f64;
        total += rows * ROW_COST * (1.0 + distinct_extra);
        // Hash aggregation over more rows than memory holds spills too.
        total += crate::cost::spill_pages(rows as u64, 0) as f64 * SEQ_PAGE_COST;
        let groups = if bound.group_by.is_empty() {
            1.0
        } else {
            let mut g = 1.0f64;
            for &(r, c) in &bound.group_by {
                g *= stats.n_distinct(&bound.rels[r].source, c).max(1.0);
                if g > 1e15 {
                    break;
                }
            }
            g.min(rows.max(1.0))
        };
        rows = groups;
    }
    if !bound.order_by.is_empty() {
        let log = rows.max(2.0).log2().ceil();
        total +=
            rows * log * ROW_COST + crate::cost::spill_pages(rows as u64, 0) as f64 * SEQ_PAGE_COST;
    }
    if let Some(limit) = bound.limit {
        rows = rows.min(limit as f64);
    }

    // Operator-slot estimates: whatever `total` carries beyond the freq
    // setup and the join pipeline is attributed to the output operator
    // (aggregation / sort), matching the executor's actuals layout.
    let pipeline_cost: f64 = pipeline_ests.iter().map(|e| e.cost).sum();
    let mut op_ests = Vec::with_capacity(pipeline_ests.len() + 2);
    op_ests.push(OpEstimate {
        cost: freq_cost,
        rows: 0.0,
    });
    op_ests.extend(pipeline_ests);
    op_ests.push(OpEstimate {
        cost: total - freq_cost - pipeline_cost,
        rows,
    });

    PhysicalPlan {
        query: bound.clone(),
        driver,
        steps,
        est_cost: total,
        est_rows: rows,
        mviews_used,
        op_ests,
    }
}

/// Cost a fixed relation order. Returns
/// `(cost, driver, steps, out_rows, per-slot estimates)`. When `logs` is
/// supplied, every access path and join method priced for each pipeline
/// slot is appended to it (one inner `Vec` per slot: driver first, then
/// each join step) — the hot paths pass `None` and pay nothing.
fn cost_perm(
    bound: &BoundQuery,
    stats: &dyn StatsView,
    need: &[BTreeSet<usize>],
    perm: &[usize],
    mut logs: Option<&mut Vec<Vec<PlanChoice>>>,
) -> Option<PermPlan> {
    let mut dlog = logs.as_deref_mut().map(|_| Vec::new());
    let d = best_rel_op(bound, stats, need, perm[0], dlog.as_mut());
    if let (Some(ls), Some(dl)) = (logs.as_deref_mut(), dlog) {
        ls.push(dl);
    }
    let mut total = d.cost;
    let mut tuples = d.out_rows;
    let mut ests = vec![OpEstimate {
        cost: d.cost,
        rows: d.out_rows,
    }];
    let mut steps = Vec::new();
    let mut placed = vec![perm[0]];

    for &r in &perm[1..] {
        // All join pairs connecting r to placed relations.
        let mut pairs: Vec<((usize, usize), usize)> = Vec::new();
        for e in &bound.joins {
            collect_pairs(e, r, &placed, &mut pairs);
        }
        let mut slog = logs.as_deref_mut().map(|_| Vec::new());
        let (step, cost, out) =
            best_join_step(bound, stats, need, r, &pairs, tuples, slog.as_mut())?;
        if let (Some(ls), Some(sl)) = (logs.as_deref_mut(), slog) {
            ls.push(sl);
        }
        total += cost;
        tuples = out;
        ests.push(OpEstimate { cost, rows: out });
        steps.push(step);
        placed.push(r);
    }
    Some((total, d.op, steps, tuples, ests))
}

fn collect_pairs(
    e: &JoinEdge,
    r: usize,
    placed: &[usize],
    pairs: &mut Vec<((usize, usize), usize)>,
) {
    if e.b == r && placed.contains(&e.a) {
        for &(ca, cb) in &e.cols {
            pairs.push(((e.a, ca), cb));
        }
    } else if e.a == r && placed.contains(&e.b) {
        for &(ca, cb) in &e.cols {
            pairs.push(((e.b, cb), ca));
        }
    }
}

/// Best access path for a single relation (used for drivers and hash-join
/// inners). When `log` is supplied, every priced option is appended as a
/// [`PlanChoice`], with the winner marked `chosen`.
fn best_rel_op(
    bound: &BoundQuery,
    stats: &dyn StatsView,
    need: &[BTreeSet<usize>],
    rel: usize,
    mut log: Option<&mut Vec<PlanChoice>>,
) -> CostedRelOp {
    let source = &bound.rels[rel].source;
    let rows = stats.rel_rows(source);
    let pages = stats.rel_pages(source);
    let filters: Vec<(usize, Value)> = bound
        .filters
        .iter()
        .filter(|f| f.rel == rel)
        .map(|f| (f.col, f.value.clone()))
        .collect();
    let freqs: Vec<usize> = bound
        .freqs
        .iter()
        .enumerate()
        .filter(|(_, f)| f.rel == rel)
        .map(|(i, _)| i)
        .collect();
    let ranges: Vec<(usize, RangeOp, Value)> = bound
        .ranges
        .iter()
        .filter(|f| f.rel == rel)
        .map(|f| (f.col, f.op, f.value.clone()))
        .collect();

    let mut sel_all = 1.0;
    for (c, v) in &filters {
        sel_all *= stats.eq_selectivity(source, *c, v);
    }
    for (c, op, v) in &ranges {
        sel_all *= stats.range_selectivity(source, *c, *op, v);
    }
    for &fi in &freqs {
        let f = &bound.freqs[fi];
        sel_all *= stats.freq_fraction(&f.sub_table, f.sub_col, f.op, f.k);
    }
    let out_rows = rows * sel_all;

    // Sequential scan baseline.
    let seq_cost = pages * SEQ_PAGE_COST + rows * ROW_COST;
    if let Some(l) = log.as_deref_mut() {
        l.push(PlanChoice {
            description: format!("SeqScan({source})"),
            cost: seq_cost,
            chosen: false,
        });
    }
    let mut best_log = 0usize;
    let mut best = CostedRelOp {
        op: RelOp {
            rel,
            access: Access::Seq,
            filters: filters.clone(),
            ranges: ranges.clone(),
            freqs: freqs.clone(),
        },
        cost: seq_cost,
        out_rows,
    };

    // Index-filtered frequency scans: an index whose leading column
    // carries a frequency filter reads only the qualifying entries'
    // rows, skipping the heap for everything else.
    for idx in stats.indexes_on(source) {
        let Some(&lead) = idx.columns.first() else {
            continue;
        };
        let Some((fi, f)) = freqs
            .iter()
            .map(|&fi| (fi, &bound.freqs[fi]))
            .find(|(_, f)| f.col == lead)
        else {
            continue;
        };
        // Only self-referential filters (subquery over this very column)
        // can drive the scan: the qualifying key set is then exactly the
        // index's own leading-key groups.
        if f.sub_table != *source || f.sub_col != lead {
            continue;
        }
        let frac = stats.freq_fraction(&f.sub_table, f.sub_col, f.op, f.k);
        let qual_rows = rows * frac;
        let covering = need[rel].iter().all(|c| idx.columns.contains(c));
        let distinct = stats.n_distinct(source, lead);
        let fetch = if covering {
            0.0
        } else {
            (qual_rows * idx.clustering).ceil().min(pages)
        };
        let cost = idx.pages * SEQ_PAGE_COST
            + (distinct + qual_rows) * ROW_COST
            + fetch * RANDOM_PAGE_COST;
        let entry = log.as_deref_mut().map(|l| {
            l.push(PlanChoice {
                description: format!(
                    "IndexFreqScan({source} cols={:?}{})",
                    idx.columns,
                    if covering { " covering" } else { "" }
                ),
                cost,
                chosen: false,
            });
            l.len() - 1
        });
        if cost < best.cost {
            if let Some(e) = entry {
                best_log = e;
            }
            best = CostedRelOp {
                op: RelOp {
                    rel,
                    access: Access::IndexFreqScan {
                        columns: idx.columns.clone(),
                        freq: fi,
                        covering,
                    },
                    filters: filters.clone(),
                    ranges: ranges.clone(),
                    freqs: freqs.clone(),
                },
                cost,
                out_rows,
            };
        }
    }

    // Index range scans: an index whose leading column carries a range
    // filter reads only the qualifying key span.
    for idx in stats.indexes_on(source) {
        let Some(&lead) = idx.columns.first() else {
            continue;
        };
        let leading_ranges: Vec<&(usize, RangeOp, Value)> =
            ranges.iter().filter(|(c, _, _)| *c == lead).collect();
        if leading_ranges.is_empty() {
            continue;
        }
        // Tightest bounds over the leading column.
        let mut lo: Option<(Value, bool)> = None;
        let mut hi: Option<(Value, bool)> = None;
        let mut span_sel = 1.0;
        for (c, op, v) in &leading_ranges
            .iter()
            .map(|r| (*r).clone())
            .collect::<Vec<_>>()
        {
            span_sel *= stats.range_selectivity(source, *c, *op, v);
            match op {
                RangeOp::Gt | RangeOp::Ge => {
                    let strict = matches!(op, RangeOp::Gt);
                    if lo.as_ref().is_none_or(|(cur, _)| v > cur) {
                        lo = Some((v.clone(), strict));
                    }
                }
                RangeOp::Lt | RangeOp::Le => {
                    let strict = matches!(op, RangeOp::Lt);
                    if hi.as_ref().is_none_or(|(cur, _)| v < cur) {
                        hi = Some((v.clone(), strict));
                    }
                }
            }
        }
        let matches = rows * span_sel;
        let covering = need[rel].iter().all(|c| idx.columns.contains(c));
        let leaf = (matches / idx.entries_per_page).ceil().max(1.0);
        let fetch = if covering {
            0.0
        } else {
            (matches * idx.clustering).ceil().min(pages)
        };
        let cost =
            (idx.height + leaf) * RANDOM_PAGE_COST + fetch * RANDOM_PAGE_COST + matches * ROW_COST;
        let entry = log.as_deref_mut().map(|l| {
            l.push(PlanChoice {
                description: format!(
                    "IndexRangeScan({source} cols={:?}{})",
                    idx.columns,
                    if covering { " covering" } else { "" }
                ),
                cost,
                chosen: false,
            });
            l.len() - 1
        });
        if cost < best.cost {
            if let Some(e) = entry {
                best_log = e;
            }
            best = CostedRelOp {
                op: RelOp {
                    rel,
                    access: Access::IndexRange {
                        columns: idx.columns.clone(),
                        lo: lo.clone(),
                        hi: hi.clone(),
                        covering,
                    },
                    filters: filters.clone(),
                    ranges: ranges.clone(),
                    freqs: freqs.clone(),
                },
                cost,
                out_rows,
            };
        }
    }

    // Index probes on constant-filter prefixes.
    for idx in stats.indexes_on(source) {
        let mut prefix = Vec::new();
        let mut prefix_sel = 1.0;
        let mut used = BTreeSet::new();
        for &col in &idx.columns {
            match filters.iter().find(|(c, _)| *c == col) {
                Some((_, v)) => {
                    prefix_sel *= stats.eq_selectivity(source, col, v);
                    prefix.push(v.clone());
                    used.insert(col);
                }
                None => break,
            }
        }
        if prefix.is_empty() {
            continue;
        }
        let covering = need[rel].iter().all(|c| idx.columns.contains(c));
        let matches = rows * prefix_sel;
        let cost = probe_cost(&idx, matches, pages, covering);
        let entry = log.as_deref_mut().map(|l| {
            l.push(PlanChoice {
                description: format!(
                    "IndexScan({source} cols={:?}{})",
                    idx.columns,
                    if covering { " covering" } else { "" }
                ),
                cost,
                chosen: false,
            });
            l.len() - 1
        });
        if cost < best.cost {
            if let Some(e) = entry {
                best_log = e;
            }
            let residual: Vec<(usize, Value)> = filters
                .iter()
                .filter(|(c, _)| !used.contains(c))
                .cloned()
                .collect();
            best = CostedRelOp {
                op: RelOp {
                    rel,
                    access: Access::Index {
                        columns: idx.columns.clone(),
                        prefix,
                        covering,
                    },
                    filters: residual,
                    ranges: ranges.clone(),
                    freqs: freqs.clone(),
                },
                cost,
                out_rows,
            };
        }
    }
    if let Some(l) = log {
        l[best_log].chosen = true;
    }
    best
}

/// Cost of one index probe returning `matches` rows. Heap fetches are
/// scaled by the index's clustering factor (rows co-located with their
/// key cost far fewer pages).
fn probe_cost(idx: &IndexMeta, matches: f64, heap_pages: f64, covering: bool) -> f64 {
    let leaf = (matches / idx.entries_per_page).ceil().max(1.0);
    let heap = if covering {
        0.0
    } else {
        (matches * idx.clustering).ceil().min(heap_pages)
    };
    (idx.height + leaf + heap) * RANDOM_PAGE_COST + matches * ROW_COST
}

/// Choose the cheapest join method bringing `rel` into the pipeline.
/// When `log` is supplied, every priced option is appended as a
/// [`PlanChoice`], with the winner marked `chosen`.
fn best_join_step(
    bound: &BoundQuery,
    stats: &dyn StatsView,
    need: &[BTreeSet<usize>],
    rel: usize,
    pairs: &[((usize, usize), usize)],
    outer_rows: f64,
    mut log: Option<&mut Vec<PlanChoice>>,
) -> Option<(JoinStep, f64, f64)> {
    let source = &bound.rels[rel].source;
    let rows = stats.rel_rows(source);
    let pages = stats.rel_pages(source);

    // Join selectivity over all pairs, used for output estimation.
    let mut join_sel = 1.0;
    for &((orel, ocol), icol) in pairs {
        let nd_o = stats.n_distinct(&bound.rels[orel].source, ocol);
        let nd_i = stats.n_distinct(source, icol);
        join_sel /= nd_o.max(nd_i).max(1.0);
    }

    // Hash join with best inner access, spilling when the build side
    // exceeds working memory.
    let inner = best_rel_op(bound, stats, need, rel, None);
    let out = (outer_rows * inner.out_rows * join_sel).max(0.0);
    let spill =
        crate::cost::spill_pages(inner.out_rows as u64, outer_rows as u64) as f64 * SEQ_PAGE_COST;
    let hash_cost =
        inner.cost + inner.out_rows * ROW_COST + outer_rows * ROW_COST + out * ROW_COST + spill;
    if let Some(l) = log.as_deref_mut() {
        l.push(PlanChoice {
            description: format!("HashJoin[{}]", access_desc(source, &inner.op.access)),
            cost: hash_cost,
            chosen: false,
        });
    }
    let mut best_log = 0usize;
    let mut best = (
        JoinStep {
            inner: inner.op,
            method: JoinMethod::Hash,
            pairs: pairs.to_vec(),
        },
        hash_cost,
        out,
    );

    // Index nested-loops over each index whose prefix can be bound from
    // join columns and constant filters.
    let filters: Vec<(usize, Value)> = bound
        .filters
        .iter()
        .filter(|f| f.rel == rel)
        .map(|f| (f.col, f.value.clone()))
        .collect();
    let freqs: Vec<usize> = bound
        .freqs
        .iter()
        .enumerate()
        .filter(|(_, f)| f.rel == rel)
        .map(|(i, _)| i)
        .collect();
    let ranges: Vec<(usize, RangeOp, Value)> = bound
        .ranges
        .iter()
        .filter(|f| f.rel == rel)
        .map(|f| (f.col, f.op, f.value.clone()))
        .collect();
    let mut filter_sel = 1.0;
    for (c, v) in &filters {
        filter_sel *= stats.eq_selectivity(source, *c, v);
    }
    for (c, op, v) in &ranges {
        filter_sel *= stats.range_selectivity(source, *c, *op, v);
    }
    let mut freq_sel = 1.0;
    for &fi in &freqs {
        let f = &bound.freqs[fi];
        freq_sel *= stats.freq_fraction(&f.sub_table, f.sub_col, f.op, f.k);
    }

    for idx in stats.indexes_on(source) {
        let mut probe = Vec::new();
        let mut probe_sel = 1.0;
        // Only columns bound from a *constant* may drop their filter from
        // the residual list; a column bound from the outer join value
        // still needs its constant filter re-checked after the probe.
        let mut used_const_cols = BTreeSet::new();
        let mut has_outer = false;
        for &col in &idx.columns {
            if let Some(&((orel, ocol), _)) = pairs.iter().find(|(_, ic)| *ic == col) {
                probe.push(ProbeSource::Outer(orel, ocol));
                probe_sel /= stats.n_distinct(source, col).max(1.0);
                has_outer = true;
            } else if let Some((_, v)) = filters.iter().find(|(c, _)| *c == col) {
                probe.push(ProbeSource::Const(v.clone()));
                probe_sel *= stats.eq_selectivity(source, col, v);
                used_const_cols.insert(col);
            } else {
                break;
            }
        }
        if !has_outer {
            continue;
        }
        let covering = need[rel].iter().all(|c| idx.columns.contains(c));
        let matches_pp = rows * probe_sel;
        let cost = outer_rows * probe_cost(&idx, matches_pp, pages, covering)
            + outer_rows * matches_pp * ROW_COST;
        let entry = log.as_deref_mut().map(|l| {
            l.push(PlanChoice {
                description: format!(
                    "IndexNLJoin({source} cols={:?}{})",
                    idx.columns,
                    if covering { " covering" } else { "" }
                ),
                cost,
                chosen: false,
            });
            l.len() - 1
        });
        if cost < best.1 {
            if let Some(e) = entry {
                best_log = e;
            }
            let residual: Vec<(usize, Value)> = filters
                .iter()
                .filter(|(c, _)| !used_const_cols.contains(c))
                .cloned()
                .collect();
            let out = (outer_rows * rows * join_sel * filter_sel * freq_sel).max(0.0);
            best = (
                JoinStep {
                    inner: RelOp {
                        rel,
                        access: Access::Seq, // unused for IndexNl
                        filters: residual,
                        ranges: ranges.clone(),
                        freqs: freqs.clone(),
                    },
                    method: JoinMethod::IndexNl {
                        columns: idx.columns.clone(),
                        probe,
                        covering,
                    },
                    pairs: pairs.to_vec(),
                },
                cost,
                out,
            );
        }
    }
    if let Some(l) = log {
        l[best_log].chosen = true;
    }
    Some(best)
}

/// Cost of evaluating a frequency subquery once. With an index leading
/// on the grouped column the group sizes are read off the leaf level —
/// one operation per *distinct key*, not per row; without one, the
/// whole table is scanned and hashed.
fn freq_eval_cost(sub_table: &str, sub_col: usize, stats: &dyn StatsView) -> f64 {
    let rows = stats.rel_rows(sub_table);
    let pages = stats.rel_pages(sub_table);
    let index_only = stats
        .indexes_on(sub_table)
        .into_iter()
        .find(|i| i.columns.first() == Some(&sub_col));
    match index_only {
        Some(idx) => idx.pages * SEQ_PAGE_COST + stats.n_distinct(sub_table, sub_col) * ROW_COST,
        None => pages * SEQ_PAGE_COST + 2.0 * rows * ROW_COST,
    }
}

/// All permutations of `0..n` in lexicographic order, computed once per
/// relation count and shared: the what-if search re-plans the same query
/// shapes thousands of times, and `n` never exceeds [`MAX_RELATIONS`].
fn permutations(n: usize) -> &'static [Vec<usize>] {
    use std::sync::OnceLock;
    static TABLES: [OnceLock<Vec<Vec<usize>>>; MAX_RELATIONS + 1] =
        [const { OnceLock::new() }; MAX_RELATIONS + 1];
    TABLES[n].get_or_init(|| enumerate_permutations(n))
}

fn enumerate_permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..n).collect();
    let mut free: Vec<bool> = vec![true; n];
    fn rec(
        n: usize,
        depth: usize,
        cur: &mut Vec<usize>,
        free: &mut Vec<bool>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if depth == n {
            out.push(cur[..n].to_vec());
            return;
        }
        for i in 0..n {
            if free[i] {
                free[i] = false;
                cur[depth] = i;
                rec(n, depth + 1, cur, free, out);
                free[i] = true;
            }
        }
    }
    rec(n, 0, &mut cur, &mut free, &mut out);
    out
}

/// Enumerate single-view rewrites of `bound` using the views visible in
/// `stats`. Each result replaces one join edge (two relations) with a
/// scan of the view.
fn mv_rewrites(bound: &BoundQuery, stats: &dyn StatsView) -> Vec<(BoundQuery, String)> {
    let mut out = Vec::new();
    for meta in stats.mviews() {
        if meta.spec.base.len() != 2 {
            continue;
        }
        for e in &bound.joins {
            for flip in [false, true] {
                if let Some(rw) = try_rewrite(bound, &meta.spec, e, flip) {
                    out.push((rw, meta.spec.name.clone()));
                }
            }
        }
    }
    out
}

/// Try to replace edge `e` (rels `e.a`, `e.b`) with view `spec`.
/// `flip=false` maps `e.a → base[0]`; `flip=true` maps `e.a → base[1]`.
fn try_rewrite(
    bound: &BoundQuery,
    spec: &tab_storage::MViewSpec,
    e: &JoinEdge,
    flip: bool,
) -> Option<BoundQuery> {
    let (i, j) = (e.a, e.b);
    let (base_i, base_j) = if flip {
        (&spec.base[1], &spec.base[0])
    } else {
        (&spec.base[0], &spec.base[1])
    };
    if &bound.rels[i].source != base_i || &bound.rels[j].source != base_j {
        return None;
    }
    // Edge column pairs must exactly match the view's join definition.
    let mut edge_cols: Vec<(usize, usize)> = if flip {
        e.cols.iter().map(|&(ca, cb)| (cb, ca)).collect()
    } else {
        e.cols.clone()
    };
    let mut view_cols = spec.join_on.clone();
    edge_cols.sort_unstable();
    view_cols.sort_unstable();
    if edge_cols != view_cols {
        return None;
    }

    // Needed columns once this edge is gone.
    let mut without_edge = bound.clone();
    without_edge
        .joins
        .retain(|x| !(x.a == e.a && x.b == e.b && x.cols == e.cols));
    let need = without_edge.needed_columns();

    // Base-table position within the view for each of our two relations.
    let tpos = |rel: usize| -> usize {
        match (rel == i, flip) {
            (true, false) | (false, true) => 0,
            _ => 1,
        }
    };
    // Every needed column of i and j must be projected.
    for rel in [i, j] {
        for &c in &need[rel] {
            spec.view_column_of(tpos(rel), c)?;
        }
    }

    // New relation list: everything but i and j, view appended last.
    let mut new_rels: Vec<BoundRel> = Vec::new();
    let mut old_to_new = vec![usize::MAX; bound.rels.len()];
    for (k, r) in bound.rels.iter().enumerate() {
        if k != i && k != j {
            old_to_new[k] = new_rels.len();
            new_rels.push(r.clone());
        }
    }
    let view_idx = new_rels.len();
    new_rels.push(BoundRel {
        alias: format!("${}", spec.name),
        source: spec.name.clone(),
    });

    let remap = |rel: usize, col: usize| -> Option<(usize, usize)> {
        if rel == i || rel == j {
            Some((view_idx, spec.view_column_of(tpos(rel), col)?))
        } else {
            Some((old_to_new[rel], col))
        }
    };

    // Remap joins (matched edge already removed), merging duplicates.
    let mut joins: Vec<JoinEdge> = Vec::new();
    for x in &without_edge.joins {
        let mut cols = Vec::new();
        let mut endpoints = None;
        for &(ca, cb) in &x.cols {
            let (ra, ca2) = remap(x.a, ca)?;
            let (rb, cb2) = remap(x.b, cb)?;
            let (a, b, ca3, cb3) = if ra <= rb {
                (ra, rb, ca2, cb2)
            } else {
                (rb, ra, cb2, ca2)
            };
            if a == b {
                // Edge collapsed inside the view: it held by construction
                // of the view only if the view joined on it; since the
                // matched edge was removed, any residual self-edge means
                // the rewrite is invalid.
                return None;
            }
            endpoints = Some((a, b));
            cols.push((ca3, cb3));
        }
        let (a, b) = endpoints?;
        match joins.iter_mut().find(|g| g.a == a && g.b == b) {
            Some(g) => g.cols.extend(cols),
            None => joins.push(JoinEdge { a, b, cols }),
        }
    }

    let mut filters = Vec::new();
    for f in &bound.filters {
        let (rel, col) = remap(f.rel, f.col)?;
        filters.push(crate::catalog::ConstFilter {
            rel,
            col,
            value: f.value.clone(),
        });
    }
    let mut ranges = Vec::new();
    for f in &bound.ranges {
        let (rel, col) = remap(f.rel, f.col)?;
        ranges.push(crate::catalog::RangeFilter {
            rel,
            col,
            op: f.op,
            value: f.value.clone(),
        });
    }
    let mut freqs = Vec::new();
    for f in &bound.freqs {
        let (rel, col) = remap(f.rel, f.col)?;
        freqs.push(crate::catalog::FreqFilter {
            rel,
            col,
            ..f.clone()
        });
    }
    let mut group_by = Vec::new();
    for &(r, c) in &bound.group_by {
        group_by.push(remap(r, c)?);
    }
    let mut aggs = Vec::new();
    for a in &bound.aggs {
        aggs.push(match a {
            crate::catalog::BoundAgg::CountStar => crate::catalog::BoundAgg::CountStar,
            crate::catalog::BoundAgg::CountDistinct(r, c) => {
                let (r2, c2) = remap(*r, *c)?;
                crate::catalog::BoundAgg::CountDistinct(r2, c2)
            }
        });
    }
    let mut select = Vec::new();
    for s in &bound.select {
        select.push(match s {
            crate::catalog::BoundItem::Column(r, c) => {
                let (r2, c2) = remap(*r, *c)?;
                crate::catalog::BoundItem::Column(r2, c2)
            }
            crate::catalog::BoundItem::Agg(k) => crate::catalog::BoundItem::Agg(*k),
        });
    }

    Some(BoundQuery {
        rels: new_rels,
        joins,
        filters,
        ranges,
        freqs,
        group_by,
        aggs,
        select,
        order_by: bound.order_by.clone(),
        limit: bound.limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutations_count_and_order() {
        let p = permutations(3);
        assert_eq!(p.len(), 6);
        assert_eq!(p[0], vec![0, 1, 2]);
        assert_eq!(p[5], vec![2, 1, 0]);
        assert_eq!(permutations(1), vec![vec![0]]);
    }
}

#[cfg(test)]
mod planner_behavior_tests {
    use super::*;
    use crate::catalog::bind;
    use crate::stats_view::RealStats;
    use tab_sqlq::parse;
    use tab_storage::{
        BuiltConfiguration, ColType, ColumnDef, Configuration, Database, MViewDef, MViewSpec,
        Table, TableSchema, Value,
    };

    fn db() -> Database {
        let mut db = Database::new();
        // `a` is large and scattered; `b` is a small dimension, so the
        // materialized join is smaller than scanning and joining the
        // bases -- the regime where the view rewrite must win.
        for (name, rows, key_mod) in [("a", 20_000i64, 400), ("b", 40, 400)] {
            let mut t = Table::new(TableSchema::new(
                name,
                (0..2)
                    .map(|i| ColumnDef::new(format!("c{i}"), ColType::Int))
                    .collect(),
            ));
            for i in 0..rows {
                t.insert(vec![Value::Int(i % key_mod), Value::Int(i)]);
            }
            db.add_table(t);
        }
        db.collect_stats();
        db
    }

    fn mv_config() -> Configuration {
        let mut cfg = Configuration::named("mv");
        cfg.mviews.push(MViewDef {
            spec: MViewSpec::join_of("ab", "a", "b", vec![(0, 0)], vec![(0, 1), (1, 1)]),
            indexes: vec![],
        });
        cfg
    }

    #[test]
    fn stale_views_are_not_planned() {
        let mut dbx = db();
        let mut built = BuiltConfiguration::build(mv_config(), &dbx);
        let q = parse("SELECT a.c1, COUNT(*) FROM a, b WHERE a.c0 = b.c0 GROUP BY a.c1").unwrap();
        let bound = bind(&q, &dbx).unwrap();
        // Fresh view: rewrite used.
        let fresh_plan = plan(&bound, &RealStats::new(&dbx, &built));
        assert_eq!(fresh_plan.mviews_used, vec!["ab".to_string()]);
        // Stale view: rewrite must disappear.
        let id = dbx
            .table_mut("a")
            .unwrap()
            .insert(vec![Value::Int(1), Value::Int(9)]);
        built.apply_insert("a", &[Value::Int(1), Value::Int(9)], id);
        dbx.collect_stats();
        let stale_plan = plan(&bound, &RealStats::new(&dbx, &built));
        assert!(stale_plan.mviews_used.is_empty());
    }

    #[test]
    fn spill_raises_hash_join_estimate() {
        // Join estimates must include the spill term once the build side
        // exceeds working memory.
        let small = crate::cost::spill_pages(100, 100);
        let big = crate::cost::spill_pages(100_000, 50_000);
        assert_eq!(small, 0);
        assert!(big > 1000);
    }
}
