//! The I/O-shaped cost model shared by the optimizer and the executor.
//!
//! The paper measures *elapsed seconds* on disk-resident databases with a
//! 30-minute timeout. We substitute deterministic **cost units** that are
//! dominated by pages touched, exactly as 2005 elapsed times were (see
//! DESIGN.md §1): sequential pages are cheap, random pages expensive, and
//! per-row CPU work is small but unbounded intermediates still add up.
//!
//! Calibration: a full scan of the largest NREF table at the default
//! scale costs about what a 6.5 GB scan cost the authors (~100 s), and
//! [`DEFAULT_TIMEOUT_UNITS`] maps to the paper's 30-minute timeout. The
//! conversion to "simulated seconds" is a single constant so every figure
//! can be read in the paper's units.

/// Cost of reading one page sequentially.
pub const SEQ_PAGE_COST: f64 = 0.25;

/// Cost of reading one page at a random position (tree descent, heap
/// fetch by row id).
pub const RANDOM_PAGE_COST: f64 = 1.5;

/// CPU cost of processing one row (predicate eval, hash insert/probe).
///
/// Deliberately small relative to page costs: the paper's elapsed times
/// come from disk-resident databases an order of magnitude larger than
/// RAM, where I/O dominates CPU by orders of magnitude (a 2005 CPU
/// pushed ~1M simple rows/s through a pipelined operator while a disk
/// delivered ~100 random pages/s).
pub const ROW_COST: f64 = 0.0005;

/// Simulated seconds per cost unit. Chosen so that
/// `DEFAULT_TIMEOUT_UNITS` corresponds to the paper's 1800-second
/// timeout, with the timeout budget allowing roughly a dozen sequential
/// scans of the largest benchmark table -- the same ratio the paper's
/// 30-minute timeout bears to a full scan of its largest table.
pub const SIM_SECONDS_PER_UNIT: f64 = 1800.0 / DEFAULT_TIMEOUT_UNITS;

/// Default execution budget: the paper's 30-minute timeout.
pub const DEFAULT_TIMEOUT_UNITS: f64 = 35_000.0;

/// Maximum rows a *budgeted* execution may process before it is
/// declared timed out. This is the memory-governed component of the
/// timeout: at the paper's scale the same queries process ~80x more
/// rows and blow the 30-minute budget outright; at ours they would
/// otherwise materialize multi-gigabyte intermediates in RAM.
pub const BUDGET_ROW_CAP: u64 = 20_000_000;

/// Rows a hash operator can hold in memory before spilling. Scaled with
/// the benchmark databases exactly as the paper's 752 MB–1 GB desktops
/// were scaled against their 6.5–10 GB databases: working memory holds a
/// few percent of the largest table.
pub const HASH_SPILL_ROWS: u64 = 50_000;

/// Rows per page in spill files. Benchmark tuples run ~100-130 bytes,
/// so a spill page holds about 64 of them.
pub const SPILL_ROWS_PER_PAGE: u64 = 64;

/// Partition fanout per Grace pass (bounded by memory for output
/// buffers on a 2005-class machine).
pub const SPILL_PARTITIONS: u64 = 8;

/// Extra sequential pages charged when a hash operator over `build` and
/// `probe` rows spills: Grace-style recursive partitioning writes and
/// re-reads both inputs once per pass, and a build side far larger than
/// memory needs multiple passes.
pub fn spill_pages(build_rows: u64, probe_rows: u64) -> u64 {
    spill_pages_with(build_rows, probe_rows, HASH_SPILL_ROWS)
}

/// [`spill_pages`] with an explicit in-memory threshold. A run with a
/// real buffer pool in [`ChargePolicy::Observed`] mode spills when the
/// build side outgrows the *pool* (`buffer_pages * SPILL_ROWS_PER_PAGE`
/// rows, if smaller than [`HASH_SPILL_ROWS`]); the metered/compat paths
/// always use [`HASH_SPILL_ROWS`] so golden totals never move.
pub fn spill_pages_with(build_rows: u64, probe_rows: u64, threshold_rows: u64) -> u64 {
    let threshold = threshold_rows.max(1);
    if build_rows <= threshold {
        return 0;
    }
    let ratio = (build_rows / threshold).max(1) as f64;
    let passes = ratio.log(SPILL_PARTITIONS as f64).ceil().max(1.0) as u64;
    passes * 2 * (build_rows + probe_rows) / SPILL_ROWS_PER_PAGE
}

/// How a buffer-pool run charges page costs.
///
/// Irrelevant when no pool is configured (`--buffer-pages 0`): the
/// executor then charges the modeled page counts directly, as it always
/// has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChargePolicy {
    /// Charge *observed* pool I/O: hits are free, a sequential-readahead
    /// miss costs [`SEQ_PAGE_COST`], a random miss [`RANDOM_PAGE_COST`].
    /// On a cold pool larger than the working set this reproduces the
    /// modeled totals exactly (every modeled page misses once).
    #[default]
    Observed,
    /// Run the pool for real (frames, evictions, spill I/O, stats) but
    /// charge exactly the modeled page counts, so claims and cost-unit
    /// totals are byte-identical to a poolless run. Used by the golden
    /// grids and the memory-capped CI smoke job.
    Metered,
}

impl ChargePolicy {
    /// Parse a CLI value (`observed` | `metered`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "observed" => Ok(ChargePolicy::Observed),
            "metered" => Ok(ChargePolicy::Metered),
            other => Err(format!(
                "unknown charge policy `{other}` (observed|metered)"
            )),
        }
    }

    /// The CLI/JSON name of this policy.
    pub fn name(&self) -> &'static str {
        match self {
            ChargePolicy::Observed => "observed",
            ChargePolicy::Metered => "metered",
        }
    }
}

/// Convert cost units to simulated seconds.
pub fn units_to_sim_seconds(units: f64) -> f64 {
    units * SIM_SECONDS_PER_UNIT
}

/// Error returned when an execution exceeds its budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedOut {
    /// Units consumed when the budget tripped.
    pub spent: f64,
}

/// Running cost account for one query execution.
///
/// The executor charges every page and row it touches; when a budget is
/// set and exceeded, charging fails and the executor unwinds — the
/// equivalent of the paper killing a query at the 30-minute mark.
///
/// # Charge order does not matter
///
/// The meter keeps three non-negative counters and derives [`units`]
/// from their totals, so splitting, merging, or reordering charges
/// leaves the final total bit-identical. The budget check is monotone —
/// the total exceeds the budget at some prefix of the charge sequence
/// if and only if it exceeds it at the end — so batching also preserves
/// the Done/Timeout outcome (a [`Outcome::Timeout`] reports only the
/// budget, never the trip point). The executor relies on this to charge
/// operator inputs in bulk instead of per tuple; see the note in
/// `exec.rs`.
///
/// [`units`]: CostMeter::units
#[derive(Debug, Clone)]
pub struct CostMeter {
    seq_pages: u64,
    random_pages: u64,
    rows: u64,
    budget: Option<f64>,
}

impl CostMeter {
    /// A meter with no budget (never times out).
    pub fn unbounded() -> Self {
        CostMeter {
            seq_pages: 0,
            random_pages: 0,
            rows: 0,
            budget: None,
        }
    }

    /// A meter that trips after `budget` cost units.
    pub fn with_budget(budget: f64) -> Self {
        CostMeter {
            budget: Some(budget),
            ..Self::unbounded()
        }
    }

    /// Total cost units consumed so far.
    #[inline]
    pub fn units(&self) -> f64 {
        self.seq_pages as f64 * SEQ_PAGE_COST
            + self.random_pages as f64 * RANDOM_PAGE_COST
            + self.rows as f64 * ROW_COST
    }

    /// Pages read sequentially so far.
    pub fn seq_pages(&self) -> u64 {
        self.seq_pages
    }

    /// Pages read randomly so far.
    pub fn random_pages(&self) -> u64 {
        self.random_pages
    }

    /// Rows processed so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The budget this meter trips at, if any. Morsel workers snapshot
    /// it to pre-check the shared abort gate (see `exec.rs`); the
    /// authoritative Done/Timeout verdict still comes from the ordered
    /// per-morsel reduction through [`CostMeter::charge_rows`] and
    /// friends.
    pub fn budget(&self) -> Option<f64> {
        self.budget
    }

    #[inline]
    fn check(&self) -> Result<(), TimedOut> {
        match self.budget {
            Some(b) if self.units() > b || self.rows > BUDGET_ROW_CAP => Err(TimedOut {
                spent: self.units(),
            }),
            _ => Ok(()),
        }
    }

    /// Charge `n` sequential page reads.
    #[inline]
    pub fn charge_seq_pages(&mut self, n: u64) -> Result<(), TimedOut> {
        self.seq_pages += n;
        self.check()
    }

    /// Charge `n` random page reads.
    #[inline]
    pub fn charge_random_pages(&mut self, n: u64) -> Result<(), TimedOut> {
        self.random_pages += n;
        self.check()
    }

    /// Charge `n` rows of CPU work.
    #[inline]
    pub fn charge_rows(&mut self, n: u64) -> Result<(), TimedOut> {
        self.rows += n;
        self.check()
    }
}

/// Result of one actual query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The query completed.
    Done {
        /// Total cost units consumed (the paper's `A(q, C)`).
        units: f64,
        /// Number of result rows.
        rows: u64,
    },
    /// The query exceeded its budget (the paper's "timeout" bin).
    Timeout {
        /// The budget that was exceeded.
        budget: f64,
    },
}

impl Outcome {
    /// Cost units if completed.
    pub fn units(&self) -> Option<f64> {
        match self {
            Outcome::Done { units, .. } => Some(*units),
            Outcome::Timeout { .. } => None,
        }
    }

    /// Lower bound on cost units: actual if done, the budget if timed out
    /// (the paper's §4.3 "we can use the timeout value to obtain a lower
    /// bound").
    pub fn units_lower_bound(&self) -> f64 {
        match self {
            Outcome::Done { units, .. } => *units,
            Outcome::Timeout { budget } => *budget,
        }
    }

    /// Whether the execution timed out.
    pub fn is_timeout(&self) -> bool {
        matches!(self, Outcome::Timeout { .. })
    }

    /// Simulated seconds, using the lower bound for timeouts.
    pub fn sim_seconds_lower_bound(&self) -> f64 {
        units_to_sim_seconds(self.units_lower_bound())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_times_out() {
        let mut m = CostMeter::unbounded();
        m.charge_seq_pages(1_000_000_000).unwrap();
        assert!(m.units() > 0.0);
    }

    #[test]
    fn budget_trips() {
        let budget = 10.0 * RANDOM_PAGE_COST;
        let mut m = CostMeter::with_budget(budget);
        m.charge_random_pages(10).unwrap();
        let err = m.charge_random_pages(1).unwrap_err();
        assert!(err.spent > budget);
    }

    #[test]
    fn cost_mix() {
        let mut m = CostMeter::unbounded();
        m.charge_seq_pages(10).unwrap();
        m.charge_random_pages(2).unwrap();
        m.charge_rows(500).unwrap();
        let expect = 10.0 * SEQ_PAGE_COST + 2.0 * RANDOM_PAGE_COST + 500.0 * ROW_COST;
        assert!((m.units() - expect).abs() < 1e-9);
    }

    #[test]
    fn random_pages_cost_more_than_seq() {
        const { assert!(RANDOM_PAGE_COST > SEQ_PAGE_COST * 5.0) }
    }

    #[test]
    fn timeout_lower_bound() {
        let o = Outcome::Timeout { budget: 100.0 };
        assert_eq!(o.units(), None);
        assert_eq!(o.units_lower_bound(), 100.0);
        assert!(o.is_timeout());
        let d = Outcome::Done {
            units: 5.0,
            rows: 2,
        };
        assert_eq!(d.units(), Some(5.0));
    }

    #[test]
    fn default_timeout_is_thirty_minutes() {
        assert!((units_to_sim_seconds(DEFAULT_TIMEOUT_UNITS) - 1800.0).abs() < 1e-6);
    }

    #[test]
    fn spill_pages_with_default_threshold_matches_legacy() {
        for (b, p) in [(0, 0), (50_000, 10), (50_001, 0), (5_000_000, 123_456)] {
            assert_eq!(spill_pages(b, p), spill_pages_with(b, p, HASH_SPILL_ROWS));
        }
    }

    #[test]
    fn tighter_threshold_spills_earlier_and_harder() {
        // 10k rows fit under the default threshold but not a 512-row pool.
        assert_eq!(spill_pages(10_000, 10_000), 0);
        let tight = spill_pages_with(10_000, 10_000, 512);
        assert!(tight > 0);
        // More passes at the tighter threshold, same per-pass volume.
        assert!(tight >= 2 * (10_000 + 10_000) / SPILL_ROWS_PER_PAGE);
    }

    #[test]
    fn charge_policy_parses_round_trip() {
        assert_eq!(ChargePolicy::parse("observed"), Ok(ChargePolicy::Observed));
        assert_eq!(ChargePolicy::parse("metered"), Ok(ChargePolicy::Metered));
        assert!(ChargePolicy::parse("bogus").is_err());
        assert_eq!(ChargePolicy::default().name(), "observed");
        assert_eq!(ChargePolicy::Metered.name(), "metered");
    }
}
