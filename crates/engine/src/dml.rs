//! DML execution: applying insertions to a database + configuration.
//!
//! §4.4 of the paper measures how insertions shift the comparison
//! between `1C` (fast queries, slow inserts) and recommended
//! configurations (the reverse). This module executes `INSERT`
//! statements for real: the heap grows, every index on the table is
//! maintained, dependent materialized views go stale, and the
//! maintenance I/O is charged like any other work.

use tab_sqlq::Insert;
use tab_storage::{BuiltConfiguration, ColType, Database, Value};

use crate::catalog::BindError;
use crate::cost::RANDOM_PAGE_COST;

/// Result of applying one insertion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsertOutcome {
    /// Maintenance cost in cost units (heap write + index descents +
    /// view delta charges).
    pub units: f64,
    /// The new row's id in the heap.
    pub row_id: tab_storage::RowId,
}

fn err(msg: impl Into<String>) -> BindError {
    BindError {
        message: msg.into(),
    }
}

/// Validate an insert against the table schema (arity and types).
pub fn validate_insert(insert: &Insert, db: &Database) -> Result<(), BindError> {
    let table = db
        .table(&insert.table)
        .ok_or_else(|| err(format!("unknown table `{}`", insert.table)))?;
    let cols = &table.schema().columns;
    if insert.values.len() != cols.len() {
        return Err(err(format!(
            "table `{}` has {} columns, insert provides {}",
            insert.table,
            cols.len(),
            insert.values.len()
        )));
    }
    for (v, c) in insert.values.iter().zip(cols) {
        let ok = matches!(
            (v, c.ty),
            (Value::Null, _)
                | (Value::Int(_), ColType::Int)
                | (Value::Int(_) | Value::Float(_), ColType::Float)
                | (Value::Str(_), ColType::Str)
        );
        if !ok {
            return Err(err(format!(
                "value {v} does not fit column `{}` of type {}",
                c.name, c.ty
            )));
        }
    }
    Ok(())
}

/// Apply one insertion: append to the heap, maintain every index in the
/// configuration, and mark dependent views stale.
///
/// Statistics are *not* refreshed (matching the benchmark protocol,
/// where statistics are collected at defined points, not continuously).
pub fn apply_insert(
    insert: &Insert,
    db: &mut Database,
    built: &mut BuiltConfiguration,
) -> Result<InsertOutcome, BindError> {
    validate_insert(insert, db)?;
    let table = db.table_mut(&insert.table).expect("validated table exists");
    let row_id = table.insert(insert.values.clone());
    let pages = built.apply_insert(&insert.table, &insert.values, row_id);
    Ok(InsertOutcome {
        units: pages as f64 * RANDOM_PAGE_COST,
        row_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_sqlq::{parse, parse_statement, Statement};
    use tab_storage::{ColumnDef, Configuration, IndexSpec, Table, TableSchema};

    fn setup() -> (Database, BuiltConfiguration) {
        let mut db = Database::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColType::Int),
                ColumnDef::new("b", ColType::Str),
            ],
        ));
        for i in 0..100 {
            t.insert(vec![Value::Int(i), Value::str(format!("v{i}"))]);
        }
        db.add_table(t);
        db.collect_stats();
        let mut cfg = Configuration::named("c");
        cfg.indexes.push(IndexSpec::new("t", vec![0]));
        let built = BuiltConfiguration::build(cfg, &db);
        (db, built)
    }

    fn insert_of(sql: &str) -> Insert {
        match parse_statement(sql).unwrap() {
            Statement::Insert(i) => i,
            other => panic!("expected insert: {other:?}"),
        }
    }

    #[test]
    fn insert_is_queryable_through_the_index() {
        let (mut db, mut built) = setup();
        let out = apply_insert(
            &insert_of("INSERT INTO t VALUES (777, 'new')"),
            &mut db,
            &mut built,
        )
        .unwrap();
        assert!(out.units > 0.0);
        // Statistics still describe the old instance, but execution sees
        // the new row.
        let s = crate::Session::new(&db, &built);
        let q = parse("SELECT t.b, COUNT(*) FROM t WHERE t.a = 777 GROUP BY t.b").unwrap();
        let rows = s.run(&q, None).unwrap().rows.unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::str("new"));
    }

    #[test]
    fn arity_and_type_validation() {
        let (mut db, mut built) = setup();
        let wrong_arity = insert_of("INSERT INTO t VALUES (1)");
        assert!(apply_insert(&wrong_arity, &mut db, &mut built).is_err());
        let wrong_type = insert_of("INSERT INTO t VALUES ('x', 'y')");
        assert!(apply_insert(&wrong_type, &mut db, &mut built).is_err());
        let unknown = insert_of("INSERT INTO nope VALUES (1, 'x')");
        assert!(apply_insert(&unknown, &mut db, &mut built).is_err());
        let null_ok = insert_of("INSERT INTO t VALUES (NULL, NULL)");
        assert!(apply_insert(&null_ok, &mut db, &mut built).is_ok());
    }

    #[test]
    fn indexed_config_pays_more_per_insert() {
        let (mut db, mut built) = setup();
        let mut db2 = Database::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColType::Int),
                ColumnDef::new("b", ColType::Str),
            ],
        ));
        for i in 0..100 {
            t.insert(vec![Value::Int(i), Value::str("x")]);
        }
        db2.add_table(t);
        db2.collect_stats();
        let mut p = BuiltConfiguration::build(Configuration::named("p"), &db2);
        let ins = insert_of("INSERT INTO t VALUES (1, 'z')");
        let with_index = apply_insert(&ins, &mut db, &mut built).unwrap();
        let without = apply_insert(&ins, &mut db2, &mut p).unwrap();
        assert!(with_index.units > without.units);
    }
}
