//! Rendering for `tab explain`: the chosen plan with per-operator
//! estimates vs. actuals, plus the planner's decision trace.
//!
//! The renderer is pure formatting over data produced elsewhere —
//! [`PhysicalPlan::op_ests`] from the planner, [`OpActuals`] from the
//! instrumented executor, and [`PlanExplanation`] from
//! [`plan_explained`](crate::planner::plan_explained) — so it has no
//! effect on costs or results.

use crate::exec::OpActuals;
use crate::plan::PhysicalPlan;
use crate::planner::PlanExplanation;

/// Render an EXPLAIN report for `plan`.
///
/// `actuals` (when present) come from an instrumented execution; a
/// timed-out run supplies fewer slots than the plan has operators and
/// the missing cells render as `-`. `expl` (when present) adds the
/// "access paths considered" and candidate-rewrite sections.
pub fn render_explain(
    plan: &PhysicalPlan,
    actuals: Option<&[OpActuals]>,
    expl: Option<&PlanExplanation>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("plan: {}\n", plan.describe()));
    if !plan.mviews_used.is_empty() {
        out.push_str(&format!("views used: {}\n", plan.mviews_used.join(", ")));
    }
    out.push_str(&format!(
        "estimated: {:.3} units, {:.0} rows\n",
        plan.est_cost, plan.est_rows
    ));
    if let Some(acts) = actuals {
        let units: f64 = acts.iter().map(|a| a.units).sum();
        let complete = acts.len() == plan.op_ests.len();
        out.push_str(&format!(
            "actual:    {units:.3} units{}\n",
            if complete { "" } else { " (timed out)" }
        ));
    }
    out.push('\n');
    out.push_str(&operator_table(plan, actuals));

    if let Some(e) = expl {
        if e.per_op.iter().any(|c| c.len() > 1) {
            out.push_str("\naccess paths considered:\n");
            for (slot, choices) in e.per_op.iter().enumerate() {
                let rel = if slot == 0 {
                    plan.driver.rel
                } else {
                    plan.steps[slot - 1].inner.rel
                };
                let source = &plan.query.rels[rel].source;
                let head = if slot == 0 {
                    format!("driver ({source})")
                } else {
                    format!("step {slot} ({source})")
                };
                out.push_str(&format!("  {head}:\n"));
                out.push_str(&choice_list(choices, 4));
            }
        }
        if e.candidates.len() > 1 {
            out.push_str("\nquery candidates:\n");
            out.push_str(&choice_list(&e.candidates, 2));
        }
    }
    out
}

/// The estimates-vs-actuals table, one line per operator slot. When the
/// run went through a buffer pool (some operator saw page traffic) a
/// trailing `pages` column reports per-operator hits/misses; without a
/// pool the column is omitted entirely so the table is byte-identical
/// to pool-less builds.
fn operator_table(plan: &PhysicalPlan, actuals: Option<&[OpActuals]>) -> String {
    let labels = plan.op_labels();
    let pooled = actuals.is_some_and(|a| a.iter().any(|x| x.page_hits + x.page_misses > 0));
    let mut header = vec![
        "operator".to_string(),
        "est.rows".to_string(),
        "act.rows".to_string(),
        "est.cost".to_string(),
        "act.cost".to_string(),
        "probes".to_string(),
    ];
    if pooled {
        header.push("pages".to_string());
    }
    let dash = || "-".to_string();
    // The output slot's estimate is a residual and can round to IEEE
    // negative zero; never print `-0.000`.
    let units = |x: f64| {
        let s = format!("{x:.3}");
        if s == "-0.000" {
            "0.000".to_string()
        } else {
            s
        }
    };
    let mut rows = vec![header];
    for (i, label) in labels.iter().enumerate() {
        let est = plan.op_ests.get(i);
        let act = actuals.and_then(|a| a.get(i));
        let mut row = vec![
            label.clone(),
            est.map_or_else(dash, |e| format!("{:.0}", e.rows)),
            act.map_or_else(dash, |a| a.rows_out.to_string()),
            est.map_or_else(dash, |e| units(e.cost)),
            act.map_or_else(dash, |a| units(a.units)),
            act.map_or_else(dash, |a| {
                if a.probes > 0 {
                    a.probes.to_string()
                } else {
                    dash()
                }
            }),
        ];
        if pooled {
            row.push(act.map_or_else(dash, |a| {
                if a.page_hits + a.page_misses > 0 {
                    format!("{}h/{}m", a.page_hits, a.page_misses)
                } else {
                    dash()
                }
            }));
        }
        rows.push(row);
    }
    let mut total = vec![
        "total".to_string(),
        dash(),
        dash(),
        format!("{:.3}", plan.est_cost),
        actuals.map_or_else(dash, |a| {
            format!("{:.3}", a.iter().map(|x| x.units).sum::<f64>())
        }),
        dash(),
    ];
    if pooled {
        total.push(actuals.map_or_else(dash, |a| {
            let h: u64 = a.iter().map(|x| x.page_hits).sum();
            let m: u64 = a.iter().map(|x| x.page_misses).sum();
            format!("{h}h/{m}m")
        }));
    }
    rows.push(total);

    let ncols = rows[0].len();
    let mut widths = vec![0usize; ncols];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in &rows {
        out.push_str(&format!("{:<w$}", row[0], w = widths[0]));
        for (cell, w) in row[1..].iter().zip(&widths[1..]) {
            out.push_str(&format!("  {cell:>w$}"));
        }
        out.push('\n');
    }
    out
}

/// One indented line per [`PlanChoice`], the chosen one marked `>`.
fn choice_list(choices: &[crate::planner::PlanChoice], indent: usize) -> String {
    let width = choices
        .iter()
        .map(|c| c.description.len())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for c in choices {
        out.push_str(&format!(
            "{:pad$}{} {:<width$}  {:.3}\n",
            "",
            if c.chosen { '>' } else { ' ' },
            c.description,
            c.cost,
            pad = indent,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::bind;
    use crate::planner::plan_explained;
    use crate::session::Session;
    use crate::stats_view::RealStats;
    use tab_sqlq::parse;
    use tab_storage::{
        BuiltConfiguration, ColType, ColumnDef, Configuration, Database, IndexSpec, Table,
        TableSchema, Value,
    };

    fn db() -> Database {
        let mut db = Database::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColType::Int),
                ColumnDef::new("g", ColType::Int),
            ],
        ));
        for i in 0..10_000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 5)]);
        }
        db.add_table(t);
        db.collect_stats();
        db
    }

    #[test]
    fn explain_renders_estimates_actuals_and_alternatives() {
        let db = db();
        let mut cfg = Configuration::named("ix");
        cfg.indexes.push(IndexSpec::new("t", vec![0]));
        let built = BuiltConfiguration::build(cfg, &db);
        let q = parse("SELECT t.g, COUNT(*) FROM t WHERE t.id = 7 GROUP BY t.g").unwrap();
        let bound = bind(&q, &db).unwrap();
        let (plan, expl) = plan_explained(&bound, &RealStats::new(&db, &built));
        let session = Session::new(&db, &built);
        let (result, ops) = session.run_instrumented(&q, None).unwrap();
        assert_eq!(ops.len(), plan.op_labels().len());
        let text = render_explain(&plan, Some(&ops), Some(&expl));
        // The chosen access path, both cost columns, and the losing
        // alternative all appear.
        assert!(text.contains("IndexScan(t cols=[0]"), "{text}");
        assert!(text.contains("est.cost"), "{text}");
        assert!(text.contains("act.cost"), "{text}");
        assert!(text.contains("> IndexScan"), "{text}");
        assert!(text.contains("  SeqScan(t)"), "{text}");
        // Actual units in the table sum to the run's outcome total.
        let total: f64 = ops.iter().map(|a| a.units).sum();
        let reported = result.outcome.units().unwrap();
        assert!((total - reported).abs() < 1e-9, "{total} vs {reported}");
    }

    #[test]
    fn instrumentation_does_not_change_costs() {
        let db = db();
        let built = BuiltConfiguration::build(Configuration::named("p"), &db);
        let session = Session::new(&db, &built);
        let q = parse("SELECT t.g, COUNT(*) FROM t GROUP BY t.g").unwrap();
        let plain = session.run(&q, None).unwrap();
        let (instr, ops) = session.run_instrumented(&q, None).unwrap();
        assert_eq!(plain.outcome.units(), instr.outcome.units());
        assert_eq!(plain.rows, instr.rows);
        assert!(!ops.is_empty());
    }
}
