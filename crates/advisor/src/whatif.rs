//! Memoized what-if evaluation service for the greedy search.
//!
//! The greedy search prices O(rounds × candidates × affected-queries)
//! hypothetical configurations through the optimizer's what-if
//! interface. Most of those calls are redundant: a structure can only
//! change a query's plan if it is *relevant* to that query — an index
//! on one of the query's own tables, or a materialized view whose base
//! pair is one of the query's join edges. [`WhatIfService`] exploits
//! that with a cost cache keyed by
//! `(query index, sorted relevant-candidate-id signature)`:
//!
//! * Within a round, a trial candidate irrelevant to a query reuses the
//!   query's current cost without invoking the planner at all.
//! * Across rounds, picking a candidate that is irrelevant to a query
//!   leaves that query's signature unchanged, so every re-pricing of it
//!   is a cache hit.
//!
//! Cache entries are never invalidated: the key *is* the relevant
//! structure set, so adding a structure relevant to a query changes the
//! query's key rather than staling an entry. The base configuration the
//! search starts from is constant for the lifetime of the service and
//! therefore needs no encoding in the key.
//!
//! The service also pre-binds every workload query once (the sequential
//! search re-bound each query on every estimate) and evaluates trials
//! through [`tab_engine::estimate_hypothetical_layered`], which layers
//! the one trial structure over the shared base configuration instead
//! of cloning it per candidate.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tab_engine::{bind, estimate_hypothetical_layered, BoundQuery};
use tab_sqlq::Query;
use tab_storage::{BuiltConfiguration, Configuration, Database, IndexSpec, MViewDef};

use crate::candidates::Candidate;

/// Cache key: `(workload query index, sorted relevant-candidate-id
/// signature)`. The full key is stored, so lookups are exact — no
/// fingerprint collisions.
type CostKey = (u32, Box<[u32]>);

/// Cache shard count. The cache is sharded by workload query index so
/// the parallel candidate fan-out — whose jobs mostly touch different
/// queries at any instant — does not serialize on one mutex.
const SHARDS: usize = 64;

/// One cache shard: keys whose query index maps to this shard.
type Shard = Mutex<HashMap<CostKey, f64>>;

/// Counters describing one search's use of the what-if interface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WhatIfStats {
    /// Total what-if cost requests issued by the search.
    pub whatif_calls: u64,
    /// Requests that actually invoked the planner (cache misses with a
    /// bindable query).
    pub planner_calls: u64,
    /// Requests answered from the cost cache.
    pub cache_hits: u64,
}

impl std::ops::Sub for WhatIfStats {
    type Output = WhatIfStats;

    /// Counter delta between two snapshots (later minus earlier) — how
    /// the advisor trace attributes what-if work to individual rounds.
    fn sub(self, earlier: WhatIfStats) -> WhatIfStats {
        WhatIfStats {
            whatif_calls: self.whatif_calls - earlier.whatif_calls,
            planner_calls: self.planner_calls - earlier.planner_calls,
            cache_hits: self.cache_hits - earlier.cache_hits,
        }
    }
}

/// A memoized what-if evaluator over a fixed workload and candidate set.
///
/// All methods take `&self`; the service is safe to share across the
/// `par_map` candidate fan-out. The counters are deterministic at any
/// thread count: within a round every trial's signature contains its
/// own candidate id, so no two concurrent estimates ever race on the
/// same cache key.
pub struct WhatIfService<'a> {
    db: &'a Database,
    current: &'a BuiltConfiguration,
    candidates: &'a [Candidate],
    /// Workload queries bound once up front; `None` for unbindable ones
    /// (estimated as `f64::INFINITY`, matching `estimate_hypothetical`).
    bound: Vec<Option<BoundQuery>>,
    /// For each candidate, the sorted indices of workload queries it can
    /// affect (queries touching any of the candidate's tables).
    affected: Vec<Vec<usize>>,
    perfect: bool,
    /// Sharded by `qi % SHARDS`; `None` disables memoization.
    cache: Option<Box<[Shard]>>,
    calls: AtomicU64,
    hits: AtomicU64,
    plans: AtomicU64,
}

impl<'a> WhatIfService<'a> {
    /// Build a service for one greedy search. `cache: false` disables
    /// memoization (every request invokes the planner) — used by the
    /// cache-equivalence tests.
    pub fn new(
        db: &'a Database,
        current: &'a BuiltConfiguration,
        workload: &[Query],
        candidates: &'a [Candidate],
        perfect: bool,
        cache: bool,
    ) -> Self {
        let bound = workload.iter().map(|q| bind(q, db).ok()).collect();
        let affected = candidates
            .iter()
            .map(|c| {
                let tables = c.tables();
                workload
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| q.from.iter().any(|t| tables.contains(&t.table.as_str())))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        WhatIfService {
            db,
            current,
            candidates,
            bound,
            affected,
            perfect,
            cache: cache.then(|| (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect()),
            calls: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            plans: AtomicU64::new(0),
        }
    }

    /// The sorted workload-query indices candidate `ci` can affect.
    pub fn affected(&self, ci: usize) -> &[usize] {
        &self.affected[ci]
    }

    /// Whether candidate `ci` is relevant to workload query `qi`.
    fn relevant(&self, ci: u32, qi: usize) -> bool {
        self.affected[ci as usize].binary_search(&qi).is_ok()
    }

    /// The cache key's structure signature: the sorted ids of the chosen
    /// candidates relevant to `qi`, plus the trial candidate if relevant.
    fn signature(&self, chosen_ids: &[u32], trial: Option<u32>, qi: usize) -> Box<[u32]> {
        let mut sig: Vec<u32> = chosen_ids
            .iter()
            .copied()
            .filter(|&ci| self.relevant(ci, qi))
            .collect();
        if let Some(t) = trial {
            if self.relevant(t, qi) {
                sig.push(t);
            }
        }
        sig.sort_unstable();
        sig.into_boxed_slice()
    }

    /// Estimated cost of workload query `qi` under `base` (the evolving
    /// chosen configuration, whose appended candidates are `chosen_ids`)
    /// plus the optional `trial` candidate layered on top.
    ///
    /// Bit-identical to pricing the fully materialized configuration
    /// through `estimate_hypothetical`: the layered statistics view
    /// presents the same structures in the same order as cloning `base`
    /// and pushing the trial.
    pub fn estimate(
        &self,
        base: &Configuration,
        chosen_ids: &[u32],
        trial: Option<u32>,
        qi: usize,
    ) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let shard = self.cache.as_ref().map(|shards| &shards[qi % SHARDS]);
        let key = shard
            .as_ref()
            .map(|_| (qi as u32, self.signature(chosen_ids, trial, qi)));
        if let (Some(shard), Some(key)) = (&shard, &key) {
            if let Some(&c) = shard.lock().expect("whatif cache poisoned").get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return c;
            }
        }
        let cost = match &self.bound[qi] {
            None => f64::INFINITY,
            Some(bound) => {
                self.plans.fetch_add(1, Ordering::Relaxed);
                let (extra_indexes, extra_mviews): (&[IndexSpec], &[MViewDef]) =
                    match trial.map(|ci| &self.candidates[ci as usize]) {
                        Some(Candidate::Index(i)) => (std::slice::from_ref(i), &[]),
                        Some(Candidate::MView(m)) => (&[], std::slice::from_ref(m)),
                        None => (&[], &[]),
                    };
                estimate_hypothetical_layered(
                    self.db,
                    self.current,
                    base,
                    extra_indexes,
                    extra_mviews,
                    bound,
                    self.perfect,
                )
            }
        };
        if let (Some(shard), Some(key)) = (shard, key) {
            shard
                .lock()
                .expect("whatif cache poisoned")
                .insert(key, cost);
        }
        cost
    }

    /// Snapshot of the service's counters.
    pub fn stats(&self) -> WhatIfStats {
        WhatIfStats {
            whatif_calls: self.calls.load(Ordering::Relaxed),
            planner_calls: self.plans.load(Ordering::Relaxed),
            cache_hits: self.hits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{generate, CandidateStyle};
    use crate::config_builders::p_configuration;
    use tab_engine::estimate_hypothetical;
    use tab_sqlq::parse;
    use tab_storage::{ColType, ColumnDef, Table, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        for name in ["t", "u"] {
            let mut t = Table::new(
                TableSchema::new(
                    name,
                    vec![
                        ColumnDef::new("id", ColType::Int),
                        ColumnDef::new("a", ColType::Int),
                    ],
                )
                .primary_key(&["id"]),
            );
            for i in 0..5_000i64 {
                t.insert(vec![Value::Int(i), Value::Int(i % 500)]);
            }
            db.add_table(t);
        }
        db.collect_stats();
        db
    }

    #[test]
    fn irrelevant_trial_is_a_cache_hit_and_costs_match_materialized() {
        let db = db();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let w = vec![
            parse("SELECT t.a, COUNT(*) FROM t WHERE t.a = 3 GROUP BY t.a").unwrap(),
            parse("SELECT u.a, COUNT(*) FROM u WHERE u.a = 3 GROUP BY u.a").unwrap(),
        ];
        let cands = generate(&db, &w, CandidateStyle::SingleColumn);
        let ti = cands
            .iter()
            .position(|c| matches!(c, Candidate::Index(i) if i.table == "t"))
            .expect("an index candidate on t");
        let svc = WhatIfService::new(&db, &p, &w, &cands, false, true);

        let base = p.config.clone();
        // Query 1 (on `u`) is unaffected by an index on `t`: after the
        // baseline estimate, the trial must be answered from the cache.
        let c0 = svc.estimate(&base, &[], None, 1);
        let c1 = svc.estimate(&base, &[], Some(ti as u32), 1);
        assert_eq!(c0.to_bits(), c1.to_bits());
        let s = svc.stats();
        assert_eq!(s.whatif_calls, 2);
        assert_eq!(s.planner_calls, 1);
        assert_eq!(s.cache_hits, 1);

        // A relevant trial matches pricing the materialized trial config.
        let layered = svc.estimate(&base, &[], Some(ti as u32), 0);
        let mut trial = base.clone();
        match &cands[ti] {
            Candidate::Index(i) => trial.indexes.push(i.clone()),
            Candidate::MView(m) => trial.mviews.push(m.clone()),
        }
        let materialized = estimate_hypothetical(&db, &p, &trial, &w[0]).unwrap();
        assert_eq!(layered.to_bits(), materialized.to_bits());
    }

    #[test]
    fn counters_add_up_and_disabled_cache_never_hits() {
        let db = db();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let w = vec![parse("SELECT t.a, COUNT(*) FROM t WHERE t.a = 3 GROUP BY t.a").unwrap()];
        let cands = generate(&db, &w, CandidateStyle::SingleColumn);
        let svc = WhatIfService::new(&db, &p, &w, &cands, false, false);
        let base = p.config.clone();
        for _ in 0..3 {
            svc.estimate(&base, &[], None, 0);
        }
        let s = svc.stats();
        assert_eq!(s.whatif_calls, 3);
        assert_eq!(s.planner_calls, 3);
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.planner_calls + s.cache_hits, s.whatif_calls);
    }
}
