//! Greedy what-if search over candidate structures.
//!
//! This is the search architecture §2.2 describes: "the recommender
//! relies on a heuristic search to compute estimates for a subset of the
//! configurations", evaluating each hypothetical configuration through
//! the optimizer's what-if interface (`H(q, Ch, Ca)`), under a storage
//! budget, with **total estimated workload cost** as the objective —
//! the very objective whose blind spots the paper exposes.

use tab_engine::stats_view::{HypotheticalStats, StatsView};
use tab_engine::{estimate_hypothetical, estimate_hypothetical_perfect};
use tab_sqlq::Query;
use tab_storage::{BuiltConfiguration, Configuration, Database, PAGE_SIZE};

use crate::candidates::Candidate;

/// What the greedy search optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Objective {
    /// Total estimated workload cost — what the 2005 tools optimize
    /// ("the goal used by System C's recommender is total cost", §4.3).
    #[default]
    TotalCost,
    /// The given percentile of per-query estimated cost — the CFC-style
    /// quality-of-service objective the paper argues recommenders should
    /// accept (§2.2). Used by the objective ablation.
    Percentile(f64),
}

/// Tunables for the greedy search.
#[derive(Debug, Clone, Copy)]
pub struct GreedyOptions {
    /// Stop after this many accepted structures (the 2005 tools
    /// recommended 5–20 structures per workload; see Tables 2–3).
    pub max_structures: usize,
    /// Stop when the best candidate's estimated gain falls below this
    /// fraction of the current total estimated workload cost (the
    /// "improvement below x%" stopping rule the commercial tools used).
    pub min_gain_fraction: f64,
    /// Optimization objective.
    pub objective: Objective,
    /// Ablation: evaluate hypothetical configurations with full
    /// distribution statistics instead of the uniformity assumption.
    pub perfect_estimates: bool,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            max_structures: 12,
            min_gain_fraction: 0.002,
            objective: Objective::TotalCost,
            perfect_estimates: false,
        }
    }
}

/// The scalar statistic the objective tracks over per-query costs.
fn objective_value(costs: &[f64], objective: Objective) -> f64 {
    match objective {
        Objective::TotalCost => costs.iter().filter(|c| c.is_finite()).sum(),
        Objective::Percentile(p) => {
            let mut v: Vec<f64> = costs.iter().copied().filter(|c| c.is_finite()).collect();
            if v.is_empty() {
                return 0.0;
            }
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let k = ((p * v.len() as f64).ceil() as usize).clamp(1, v.len());
            // Optimize the tail mass at and above the percentile, so the
            // objective still moves when single queries improve.
            v[k - 1..].iter().sum()
        }
    }
}

/// Estimated size in bytes of a candidate, using the same hypothetical
/// geometry the optimizer sees.
pub fn candidate_bytes(db: &Database, current: &BuiltConfiguration, cand: &Candidate) -> u64 {
    let mut probe = Configuration::named("size-probe");
    match cand {
        Candidate::Index(i) => probe.indexes.push(i.clone()),
        Candidate::MView(m) => probe.mviews.push(m.clone()),
    }
    let hv = HypotheticalStats::new(db, current, &probe);
    let mut pages = 0.0;
    match cand {
        Candidate::Index(i) => {
            for m in hv.indexes_on(&i.table) {
                pages += m.pages;
            }
        }
        Candidate::MView(m) => {
            pages += hv.rel_pages(&m.spec.name);
            for im in hv.indexes_on(&m.spec.name) {
                pages += im.pages;
            }
        }
    }
    (pages * PAGE_SIZE as f64) as u64
}

/// Greedily select candidates maximizing estimated workload benefit per
/// byte, subject to `budget_bytes`. Returns the recommended
/// configuration (the current configuration's structures plus the
/// selected candidates).
pub fn greedy_select(
    db: &Database,
    current: &BuiltConfiguration,
    workload: &[Query],
    candidates: Vec<Candidate>,
    budget_bytes: u64,
    name: &str,
    opts: GreedyOptions,
) -> Configuration {
    let mut chosen = current.config.clone();
    chosen.name = name.to_string();

    let est = |hyp: &Configuration, q: &Query| -> f64 {
        let r = if opts.perfect_estimates {
            estimate_hypothetical_perfect(db, current, hyp, q)
        } else {
            estimate_hypothetical(db, current, hyp, q)
        };
        r.unwrap_or(f64::INFINITY)
    };

    // Per-query cost under the evolving hypothetical configuration.
    let mut costs: Vec<f64> = workload.iter().map(|q| est(&chosen, q)).collect();
    // The stopping threshold is anchored to the *initial* workload cost:
    // a workload dominated by a few queries no structure can improve
    // must not mask genuine gains on the rest.
    let initial_total = objective_value(&costs, opts.objective);

    // Which queries each candidate can affect.
    let affected: Vec<Vec<usize>> = candidates
        .iter()
        .map(|c| {
            let tables = c.tables();
            workload
                .iter()
                .enumerate()
                .filter(|(_, q)| q.from.iter().any(|t| tables.contains(&t.table.as_str())))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    let sizes: Vec<u64> = candidates
        .iter()
        .map(|c| candidate_bytes(db, current, c))
        .collect();

    let mut remaining = budget_bytes;
    let mut active: Vec<bool> = vec![true; candidates.len()];
    let debug = std::env::var_os("TAB_ADVISOR_DEBUG").is_some();
    if debug {
        eprintln!(
            "[greedy] {} candidates, budget {} MiB, initial total {:.0}",
            candidates.len(),
            budget_bytes >> 20,
            costs.iter().filter(|c| c.is_finite()).sum::<f64>()
        );
    }

    for _round in 0..opts.max_structures {
        let mut best: Option<(usize, f64, Vec<f64>)> = None;
        for (ci, cand) in candidates.iter().enumerate() {
            if !active[ci] || sizes[ci] > remaining || affected[ci].is_empty() {
                continue;
            }
            let mut trial = chosen.clone();
            match cand {
                Candidate::Index(i) => trial.indexes.push(i.clone()),
                Candidate::MView(m) => trial.mviews.push(m.clone()),
            }
            let mut trial_costs = costs.clone();
            let mut new_costs = Vec::with_capacity(affected[ci].len());
            for &qi in &affected[ci] {
                let c = est(&trial, &workload[qi]).min(costs[qi]);
                trial_costs[qi] = c;
                new_costs.push(c);
            }
            let before = objective_value(&costs, opts.objective);
            let after = objective_value(&trial_costs, opts.objective);
            let gain = (before - after).max(0.0);
            let density = gain / sizes[ci].max(1) as f64;
            let best_density = best
                .as_ref()
                .map(|(bi, g, _)| g / sizes[*bi].max(1) as f64)
                .unwrap_or(f64::NEG_INFINITY);
            if gain > opts.min_gain_fraction * initial_total.max(1.0) && density > best_density {
                best = Some((ci, gain, new_costs));
            }
        }
        if debug {
            match &best {
                Some((ci, g, _)) => eprintln!(
                    "[greedy] round pick #{ci} gain {g:.0} size {} MiB",
                    sizes[*ci] >> 20
                ),
                None => {
                    // Report the best rejected gain for diagnosis.
                    let mut top = (usize::MAX, 0.0f64);
                    for (ci, _) in candidates.iter().enumerate() {
                        if !active[ci] || affected[ci].is_empty() {
                            continue;
                        }
                        let mut trial = chosen.clone();
                        match &candidates[ci] {
                            Candidate::Index(i) => trial.indexes.push(i.clone()),
                            Candidate::MView(m) => trial.mviews.push(m.clone()),
                        }
                        let mut trial_costs = costs.clone();
                        for &qi in &affected[ci] {
                            trial_costs[qi] = est(&trial, &workload[qi]).min(costs[qi]);
                        }
                        let g = objective_value(&costs, opts.objective)
                            - objective_value(&trial_costs, opts.objective);
                        if g > top.1 {
                            top = (ci, g);
                        }
                    }
                    eprintln!(
                        "[greedy] stop: best rejected gain {:.0} (cand #{}, size-fits {}), threshold {:.0}",
                        top.1,
                        top.0,
                        top.0 != usize::MAX && sizes.get(top.0).map(|s| *s <= remaining).unwrap_or(false),
                        opts.min_gain_fraction
                            * objective_value(&costs, opts.objective).max(1.0)
                    );
                }
            }
        }
        let Some((ci, _gain, new_costs)) = best else {
            break;
        };
        match &candidates[ci] {
            Candidate::Index(i) => chosen.indexes.push(i.clone()),
            Candidate::MView(m) => {
                if !chosen.mviews.iter().any(|x| x.spec.name == m.spec.name) {
                    chosen.mviews.push(m.clone());
                }
            }
        }
        for (pos, &qi) in affected[ci].iter().enumerate() {
            costs[qi] = new_costs[pos];
        }
        remaining = remaining.saturating_sub(sizes[ci]);
        active[ci] = false;
    }

    chosen.normalize();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{generate, CandidateStyle};
    use crate::config_builders::p_configuration;
    use tab_sqlq::parse;
    use tab_storage::{ColType, ColumnDef, IndexSpec, Table, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColType::Int),
                    ColumnDef::new("a", ColType::Int),
                    ColumnDef::new("g", ColType::Int),
                ],
            )
            .primary_key(&["id"]),
        );
        for i in 0..20_000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 2000), Value::Int(i % 5)]);
        }
        db.add_table(t);
        db.collect_stats();
        db
    }

    #[test]
    fn selects_beneficial_index_within_budget() {
        let db = db();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let w: Vec<_> = (0..5)
            .map(|i| {
                parse(&format!(
                    "SELECT t.g, COUNT(*) FROM t WHERE t.a = {i} GROUP BY t.g"
                ))
                .unwrap()
            })
            .collect();
        let cands = generate(&db, &w, CandidateStyle::SingleColumn);
        let cfg = greedy_select(
            &db,
            &p,
            &w,
            cands,
            50 * 1024 * 1024,
            "R",
            GreedyOptions::default(),
        );
        assert!(
            cfg.indexes.contains(&IndexSpec::new("t", vec![1])),
            "expected an index on the filter column, got {:?}",
            cfg.indexes
        );
    }

    #[test]
    fn respects_zero_budget() {
        let db = db();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let w = vec![parse("SELECT t.g, COUNT(*) FROM t WHERE t.a = 1 GROUP BY t.g").unwrap()];
        let cands = generate(&db, &w, CandidateStyle::SingleColumn);
        let cfg = greedy_select(&db, &p, &w, cands, 0, "R", GreedyOptions::default());
        assert_eq!(cfg.indexes, p.config.indexes);
    }

    #[test]
    fn candidate_size_estimates_are_sane() {
        let db = db();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let b = candidate_bytes(&db, &p, &Candidate::Index(IndexSpec::new("t", vec![1])));
        // 20k rows at ~20 bytes/entry: a few hundred KB at most.
        assert!(b > 8 * 1024 && b < 4 * 1024 * 1024, "b={b}");
    }
}
