//! Greedy what-if search over candidate structures.
//!
//! This is the search architecture §2.2 describes: "the recommender
//! relies on a heuristic search to compute estimates for a subset of the
//! configurations", evaluating each hypothetical configuration through
//! the optimizer's what-if interface (`H(q, Ch, Ca)`), under a storage
//! budget, with **total estimated workload cost** as the objective —
//! the very objective whose blind spots the paper exposes.
//!
//! What-if calls go through the memoized [`crate::whatif::WhatIfService`]
//! and candidate trials fan out over [`tab_storage::par_map`]. The
//! selection reduces sequentially in candidate order with a strict `>`
//! density comparison, so on equal benefit density the lowest candidate
//! index wins and the recommendation is byte-identical at any thread
//! count.

use std::time::Instant;

use tab_engine::stats_view::{HypotheticalStats, StatsView};
use tab_sqlq::Query;
use tab_storage::{
    par_map, BuiltConfiguration, Configuration, Database, Parallelism, StderrTraceSink, Trace,
    TraceEvent, PAGE_SIZE,
};

use crate::candidates::Candidate;
use crate::whatif::WhatIfService;

/// Short human-readable label for a candidate, used in trace events.
fn candidate_desc(c: &Candidate) -> String {
    match c {
        Candidate::Index(i) => format!("INDEX {i}"),
        Candidate::MView(m) => format!("MVIEW {}", m.spec.name),
    }
}

/// What the greedy search optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Objective {
    /// Total estimated workload cost — what the 2005 tools optimize
    /// ("the goal used by System C's recommender is total cost", §4.3).
    #[default]
    TotalCost,
    /// The given percentile of per-query estimated cost — the CFC-style
    /// quality-of-service objective the paper argues recommenders should
    /// accept (§2.2). Used by the objective ablation.
    Percentile(f64),
}

/// Tunables for the greedy search.
#[derive(Debug, Clone, Copy)]
pub struct GreedyOptions {
    /// Stop after this many accepted structures (the 2005 tools
    /// recommended 5–20 structures per workload; see Tables 2–3).
    pub max_structures: usize,
    /// Stop when the best candidate's estimated gain falls below this
    /// fraction of the current total estimated workload cost (the
    /// "improvement below x%" stopping rule the commercial tools used).
    pub min_gain_fraction: f64,
    /// Optimization objective.
    pub objective: Objective,
    /// Ablation: evaluate hypothetical configurations with full
    /// distribution statistics instead of the uniformity assumption.
    pub perfect_estimates: bool,
    /// Thread budget for the candidate fan-out. The recommendation is
    /// identical at any setting; only wall-clock changes.
    pub par: Parallelism,
    /// Whether to memoize what-if costs by relevant-structure signature.
    /// Costs are identical either way; `false` exists for the
    /// cache-equivalence tests and ablations.
    pub cache: bool,
    /// Stop before a round whose preceding what-if call count has
    /// reached this budget (the convergence harness's planner-invocation
    /// ladder). The check runs between rounds on the service's
    /// deterministic counters, so a budgeted search picks an identical
    /// prefix of the unbudgeted search at any thread count. `None`
    /// leaves the search unbudgeted.
    pub max_whatif_calls: Option<u64>,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            max_structures: 12,
            min_gain_fraction: 0.002,
            objective: Objective::TotalCost,
            perfect_estimates: false,
            par: Parallelism::sequential(),
            cache: true,
            max_whatif_calls: None,
        }
    }
}

/// One accepted structure in a greedy search, for diagnostics and the
/// cache-equivalence tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Index of the picked candidate in the input candidate vector.
    pub candidate: usize,
    /// The pick's estimated objective gain.
    pub gain: f64,
    /// Objective value after applying the pick.
    pub objective_after: f64,
    /// Cumulative what-if requests issued up to and including this
    /// round — the x-axis of an objective-vs-budget convergence curve.
    pub whatif_calls: u64,
    /// Cumulative planner invocations up to and including this round.
    pub planner_calls: u64,
    /// Cumulative cache hits up to and including this round.
    pub cache_hits: u64,
}

/// Instrumentation from one greedy search, reported in
/// `BENCH_advisor.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Number of candidate structures considered.
    pub candidates: usize,
    /// Total what-if cost requests issued.
    pub whatif_calls: u64,
    /// Requests that invoked the planner (cache misses).
    pub planner_calls: u64,
    /// Requests answered from the cost cache.
    pub cache_hits: u64,
    /// Accepted structures, in pick order.
    pub rounds: Vec<RoundStats>,
    /// Objective value of the starting configuration, anchoring round 0
    /// of a convergence curve.
    pub initial_objective: f64,
    /// Wall-clock seconds spent in the search.
    pub wall_seconds: f64,
}

impl SearchStats {
    /// Fraction of what-if requests answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.whatif_calls == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.whatif_calls as f64
        }
    }
}

/// The scalar statistic the objective tracks over per-query costs.
fn objective_value(costs: &[f64], objective: Objective) -> f64 {
    match objective {
        Objective::TotalCost => costs.iter().filter(|c| c.is_finite()).sum(),
        Objective::Percentile(p) => {
            let mut v: Vec<f64> = costs.iter().copied().filter(|c| c.is_finite()).collect();
            if v.is_empty() {
                return 0.0;
            }
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let k = ((p * v.len() as f64).ceil() as usize).clamp(1, v.len());
            // Optimize the tail mass at and above the percentile, so the
            // objective still moves when single queries improve.
            v[k - 1..].iter().sum()
        }
    }
}

/// Estimated size in bytes of a candidate, using the same hypothetical
/// geometry the optimizer sees.
pub fn candidate_bytes(db: &Database, current: &BuiltConfiguration, cand: &Candidate) -> u64 {
    let mut probe = Configuration::named("size-probe");
    match cand {
        Candidate::Index(i) => probe.indexes.push(i.clone()),
        Candidate::MView(m) => probe.mviews.push(m.clone()),
    }
    let hv = HypotheticalStats::new(db, current, &probe);
    let mut pages = 0.0;
    match cand {
        Candidate::Index(i) => {
            for m in hv.indexes_on(&i.table) {
                pages += m.pages;
            }
        }
        Candidate::MView(m) => {
            pages += hv.rel_pages(&m.spec.name);
            for im in hv.indexes_on(&m.spec.name) {
                pages += im.pages;
            }
        }
    }
    (pages * PAGE_SIZE as f64) as u64
}

/// Greedily select candidates maximizing estimated workload benefit per
/// byte, subject to `budget_bytes`. Returns the recommended
/// configuration (the current configuration's structures plus the
/// selected candidates).
pub fn greedy_select(
    db: &Database,
    current: &BuiltConfiguration,
    workload: &[Query],
    candidates: Vec<Candidate>,
    budget_bytes: u64,
    name: &str,
    opts: GreedyOptions,
) -> Configuration {
    greedy_select_with_stats(db, current, workload, candidates, budget_bytes, name, opts).0
}

/// [`greedy_select`], also returning the search's [`SearchStats`].
pub fn greedy_select_with_stats(
    db: &Database,
    current: &BuiltConfiguration,
    workload: &[Query],
    candidates: Vec<Candidate>,
    budget_bytes: u64,
    name: &str,
    opts: GreedyOptions,
) -> (Configuration, SearchStats) {
    greedy_select_traced(
        db,
        current,
        workload,
        candidates,
        budget_bytes,
        name,
        opts,
        Trace::disabled(),
    )
}

/// [`greedy_select_with_stats`] with a [`Trace`] emitting structured
/// `advisor_begin` / `advisor_round` / `advisor_stop` / `advisor_end`
/// events. With tracing disabled, setting `TAB_ADVISOR_DEBUG` routes the
/// same events to stderr (the structured successor of the old ad-hoc
/// narration). Tracing never changes the recommendation.
#[allow(clippy::too_many_arguments)]
pub fn greedy_select_traced(
    db: &Database,
    current: &BuiltConfiguration,
    workload: &[Query],
    candidates: Vec<Candidate>,
    budget_bytes: u64,
    name: &str,
    opts: GreedyOptions,
    trace: Trace<'_>,
) -> (Configuration, SearchStats) {
    let stderr_sink = StderrTraceSink;
    let trace = if !trace.is_enabled() && std::env::var_os("TAB_ADVISOR_DEBUG").is_some() {
        Trace::to(&stderr_sink)
    } else {
        trace
    };
    let t_start = Instant::now();
    let mut chosen = current.config.clone();
    chosen.name = name.to_string();

    let svc = WhatIfService::new(
        db,
        current,
        workload,
        &candidates,
        opts.perfect_estimates,
        opts.cache,
    );
    // Ids (candidate-vector indices) of the picks appended to `chosen`,
    // in pick order: the cache-signature input.
    let mut chosen_ids: Vec<u32> = Vec::new();

    // Per-query cost under the evolving hypothetical configuration.
    let qidx: Vec<usize> = (0..workload.len()).collect();
    let mut costs: Vec<f64> = par_map(opts.par, &qidx, |&qi| {
        svc.estimate(&chosen, &chosen_ids, None, qi)
    });
    // The stopping threshold is anchored to the *initial* workload cost:
    // a workload dominated by a few queries no structure can improve
    // must not mask genuine gains on the rest.
    let initial_total = objective_value(&costs, opts.objective);
    let threshold = opts.min_gain_fraction * initial_total.max(1.0);

    // Sizing a candidate builds a full `HypotheticalStats`; candidates
    // affecting no query can never be picked, so skip sizing them.
    let sizes: Vec<u64> = candidates
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            if svc.affected(ci).is_empty() {
                0
            } else {
                candidate_bytes(db, current, c)
            }
        })
        .collect();

    let mut remaining = budget_bytes;
    let mut active: Vec<bool> = vec![true; candidates.len()];
    trace.emit(|| {
        TraceEvent::new("advisor_begin")
            .str("advisor", name)
            .int("candidates", candidates.len() as u64)
            .int("budget_mib", budget_bytes >> 20)
            .num("initial_total", initial_total)
            .num("threshold", threshold)
    });

    let mut rounds: Vec<RoundStats> = Vec::new();
    let mut w_prev = svc.stats();
    for _round in 0..opts.max_structures {
        // The what-if budget gates *entry* into a round: counters are
        // deterministic between rounds at any thread count, so a
        // budgeted search picks a prefix of the unbudgeted one.
        if let Some(budget) = opts.max_whatif_calls {
            if svc.stats().whatif_calls >= budget {
                trace.emit(|| {
                    TraceEvent::new("advisor_stop")
                        .str("advisor", name)
                        .int("round", rounds.len() as u64)
                        .str("reason", "whatif budget exhausted")
                        .int("whatif_calls", svc.stats().whatif_calls)
                        .int("max_whatif_calls", budget)
                });
                break;
            }
        }
        // Invariant within the round (hoisted out of the candidate loop:
        // under `Objective::Percentile` it re-sorts the cost vector).
        let before = objective_value(&costs, opts.objective);
        let live: Vec<usize> = (0..candidates.len())
            .filter(|&ci| active[ci] && sizes[ci] <= remaining && !svc.affected(ci).is_empty())
            .collect();
        // Fan the trials out; `par_map` returns results in input order,
        // so the reduction below is independent of thread count.
        let mut evals: Vec<(f64, Vec<f64>)> = par_map(opts.par, &live, |&ci| {
            let mut trial_costs = costs.clone();
            let mut new_costs = Vec::with_capacity(svc.affected(ci).len());
            for &qi in svc.affected(ci) {
                let c = svc
                    .estimate(&chosen, &chosen_ids, Some(ci as u32), qi)
                    .min(costs[qi]);
                trial_costs[qi] = c;
                new_costs.push(c);
            }
            let after = objective_value(&trial_costs, opts.objective);
            ((before - after).max(0.0), new_costs)
        });
        // Strict `>` in candidate order: equal densities keep the
        // lowest-index candidate.
        let mut best: Option<(usize, f64, f64)> = None;
        for (pos, &ci) in live.iter().enumerate() {
            let gain = evals[pos].0;
            let density = gain / sizes[ci].max(1) as f64;
            let best_density = best.map(|(_, _, d)| d).unwrap_or(f64::NEG_INFINITY);
            if gain > threshold && density > best_density {
                best = Some((pos, gain, density));
            }
        }
        if best.is_none() {
            trace.emit(|| {
                // Report the best rejected gain for diagnosis, reusing
                // this round's evaluations.
                let mut top: Option<(usize, f64)> = None;
                for (pos, &ci) in live.iter().enumerate() {
                    if top.is_none_or(|(_, g)| evals[pos].0 > g) {
                        top = Some((ci, evals[pos].0));
                    }
                }
                let ev = TraceEvent::new("advisor_stop")
                    .str("advisor", name)
                    .int("round", rounds.len() as u64)
                    .num("threshold", threshold);
                match top {
                    Some((ci, g)) => ev
                        .int("best_rejected_candidate", ci as u64)
                        .str("best_rejected_desc", &candidate_desc(&candidates[ci]))
                        .num("best_rejected_gain", g),
                    None => ev.str("reason", "no live candidates"),
                }
            });
        }
        let Some((pos, gain, density)) = best else {
            break;
        };
        let ci = live[pos];
        let new_costs = std::mem::take(&mut evals[pos].1);
        match &candidates[ci] {
            Candidate::Index(i) => chosen.indexes.push(i.clone()),
            Candidate::MView(m) => {
                if !chosen.mviews.iter().any(|x| x.spec.name == m.spec.name) {
                    chosen.mviews.push(m.clone());
                }
            }
        }
        for (p, &qi) in svc.affected(ci).iter().enumerate() {
            costs[qi] = new_costs[p];
        }
        remaining = remaining.saturating_sub(sizes[ci]);
        active[ci] = false;
        chosen_ids.push(ci as u32);
        let objective_after = objective_value(&costs, opts.objective);
        let w_now = svc.stats();
        let delta = w_now - w_prev;
        w_prev = w_now;
        rounds.push(RoundStats {
            candidate: ci,
            gain,
            objective_after,
            whatif_calls: w_now.whatif_calls,
            planner_calls: w_now.planner_calls,
            cache_hits: w_now.cache_hits,
        });
        if trace.is_enabled() {
            trace.emit(|| {
                TraceEvent::new("advisor_round")
                    .str("advisor", name)
                    .int("round", rounds.len() as u64 - 1)
                    .int("candidate", ci as u64)
                    .str("desc", &candidate_desc(&candidates[ci]))
                    .num("gain", gain)
                    .num("density", density)
                    .int("size_bytes", sizes[ci])
                    .num("objective_after", objective_after)
                    .int("whatif_calls", delta.whatif_calls)
                    .int("planner_calls", delta.planner_calls)
                    .int("cache_hits", delta.cache_hits)
            });
        }
    }

    chosen.normalize();
    let w = svc.stats();
    trace.emit(|| {
        TraceEvent::new("advisor_end")
            .str("advisor", name)
            .int("rounds", rounds.len() as u64)
            .num("objective_final", objective_value(&costs, opts.objective))
            .int("whatif_calls", w.whatif_calls)
            .int("planner_calls", w.planner_calls)
            .int("cache_hits", w.cache_hits)
    });
    let stats = SearchStats {
        candidates: candidates.len(),
        whatif_calls: w.whatif_calls,
        planner_calls: w.planner_calls,
        cache_hits: w.cache_hits,
        rounds,
        initial_objective: initial_total,
        wall_seconds: t_start.elapsed().as_secs_f64(),
    };
    (chosen, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{generate, CandidateStyle};
    use crate::config_builders::p_configuration;
    use tab_sqlq::parse;
    use tab_storage::{ColType, ColumnDef, IndexSpec, Table, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColType::Int),
                    ColumnDef::new("a", ColType::Int),
                    ColumnDef::new("g", ColType::Int),
                ],
            )
            .primary_key(&["id"]),
        );
        for i in 0..20_000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 2000), Value::Int(i % 5)]);
        }
        db.add_table(t);
        db.collect_stats();
        db
    }

    #[test]
    fn selects_beneficial_index_within_budget() {
        let db = db();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let w: Vec<_> = (0..5)
            .map(|i| {
                parse(&format!(
                    "SELECT t.g, COUNT(*) FROM t WHERE t.a = {i} GROUP BY t.g"
                ))
                .unwrap()
            })
            .collect();
        let cands = generate(&db, &w, CandidateStyle::SingleColumn);
        let cfg = greedy_select(
            &db,
            &p,
            &w,
            cands,
            50 * 1024 * 1024,
            "R",
            GreedyOptions::default(),
        );
        assert!(
            cfg.indexes.contains(&IndexSpec::new("t", vec![1])),
            "expected an index on the filter column, got {:?}",
            cfg.indexes
        );
    }

    #[test]
    fn respects_zero_budget() {
        let db = db();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let w = vec![parse("SELECT t.g, COUNT(*) FROM t WHERE t.a = 1 GROUP BY t.g").unwrap()];
        let cands = generate(&db, &w, CandidateStyle::SingleColumn);
        let cfg = greedy_select(&db, &p, &w, cands, 0, "R", GreedyOptions::default());
        assert_eq!(cfg.indexes, p.config.indexes);
    }

    #[test]
    fn candidate_size_estimates_are_sane() {
        let db = db();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let b = candidate_bytes(&db, &p, &Candidate::Index(IndexSpec::new("t", vec![1])));
        // 20k rows at ~20 bytes/entry: a few hundred KB at most.
        assert!(b > 8 * 1024 && b < 4 * 1024 * 1024, "b={b}");
    }

    #[test]
    fn whatif_budget_stops_search_on_a_prefix() {
        let db = db();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let w: Vec<_> = (0..5)
            .map(|i| {
                parse(&format!(
                    "SELECT t.g, COUNT(*) FROM t WHERE t.a = {i} GROUP BY t.g"
                ))
                .unwrap()
            })
            .collect();
        let cands = generate(&db, &w, CandidateStyle::SingleColumn);
        let (_, full) = greedy_select_with_stats(
            &db,
            &p,
            &w,
            cands.clone(),
            50 * 1024 * 1024,
            "R",
            GreedyOptions::default(),
        );
        assert!(!full.rounds.is_empty());
        assert!(full.initial_objective > 0.0);
        // Cumulative per-round counters are monotone and end at the
        // search totals.
        for pair in full.rounds.windows(2) {
            assert!(pair[0].whatif_calls <= pair[1].whatif_calls);
        }
        assert_eq!(
            full.rounds.last().unwrap().whatif_calls,
            full.whatif_calls,
            "last round's cumulative counter is the total"
        );
        // A budget below the initial pricing cost stops before round 1,
        // and any budgeted run picks a prefix of the unbudgeted rounds.
        for budget in [1, full.rounds[0].whatif_calls] {
            let (_, b) = greedy_select_with_stats(
                &db,
                &p,
                &w,
                cands.clone(),
                50 * 1024 * 1024,
                "R",
                GreedyOptions {
                    max_whatif_calls: Some(budget),
                    ..GreedyOptions::default()
                },
            );
            assert!(b.rounds.len() <= full.rounds.len());
            for (br, fr) in b.rounds.iter().zip(&full.rounds) {
                assert_eq!(br.candidate, fr.candidate, "budgeted picks a prefix");
            }
        }
        let (_, tiny) = greedy_select_with_stats(
            &db,
            &p,
            &w,
            cands,
            50 * 1024 * 1024,
            "R",
            GreedyOptions {
                max_whatif_calls: Some(1),
                ..GreedyOptions::default()
            },
        );
        assert!(tiny.rounds.is_empty(), "{tiny:?}");
    }

    /// Two independent tables: a pick on one table leaves the other
    /// table's queries' cache signatures unchanged, so re-pricing them
    /// in the next round must hit the cache.
    fn db2() -> Database {
        let mut db = Database::new();
        for name in ["t", "u"] {
            let mut t = Table::new(
                TableSchema::new(
                    name,
                    vec![
                        ColumnDef::new("id", ColType::Int),
                        ColumnDef::new("a", ColType::Int),
                        ColumnDef::new("g", ColType::Int),
                    ],
                )
                .primary_key(&["id"]),
            );
            for i in 0..20_000i64 {
                t.insert(vec![Value::Int(i), Value::Int(i % 2000), Value::Int(i % 5)]);
            }
            db.add_table(t);
        }
        db.collect_stats();
        db
    }

    #[test]
    fn stats_counters_are_consistent_and_cache_hits_occur() {
        let db = db2();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let w: Vec<_> = (0..5)
            .flat_map(|i| {
                ["t", "u"].map(|tbl| {
                    parse(&format!(
                        "SELECT {tbl}.g, COUNT(*) FROM {tbl} WHERE {tbl}.a = {i} GROUP BY {tbl}.g"
                    ))
                    .unwrap()
                })
            })
            .collect();
        let cands = generate(&db, &w, CandidateStyle::SingleColumn);
        let (cfg, stats) = greedy_select_with_stats(
            &db,
            &p,
            &w,
            cands.clone(),
            50 * 1024 * 1024,
            "R",
            GreedyOptions::default(),
        );
        assert_eq!(stats.candidates, cands.len());
        assert_eq!(stats.planner_calls + stats.cache_hits, stats.whatif_calls);
        assert!(
            stats.cache_hits > 0,
            "re-pricing across rounds should hit the cache: {stats:?}"
        );
        assert_eq!(
            stats.rounds.len(),
            cfg.indexes.len() - p.config.indexes.len()
        );

        // Disabling the cache prices every request through the planner
        // and picks the identical configuration.
        let (cfg_nc, stats_nc) = greedy_select_with_stats(
            &db,
            &p,
            &w,
            cands,
            50 * 1024 * 1024,
            "R",
            GreedyOptions {
                cache: false,
                ..GreedyOptions::default()
            },
        );
        assert_eq!(cfg, cfg_nc);
        assert_eq!(stats_nc.cache_hits, 0);
        assert_eq!(stats_nc.planner_calls, stats_nc.whatif_calls);
        assert_eq!(stats_nc.whatif_calls, stats.whatif_calls);
    }
}
