//! Candidate-structure generation for the recommenders.
//!
//! Each commercial recommender of the period generated *candidates* from
//! the workload's predicate columns, then searched over them (Chaudhuri &
//! Narasayya 1997; Valentin et al. 2000; Agrawal et al. 2000). The three
//! styles here reproduce the architectural spread of the paper's three
//! anonymous systems:
//!
//! - [`CandidateStyle::SingleColumn`] (System A): one-column indexes on
//!   every predicate column plus narrow two-column merges;
//! - [`CandidateStyle::Covering`] (System B): wide covering indexes
//!   (filter + join + group-by columns) plus one-column filter indexes;
//! - [`CandidateStyle::CoveringWithViews`] (System C): System B's
//!   candidates plus materialized join views with indexes on them
//!   (the shape of Table 3's recommendations).

use std::collections::BTreeSet;

use tab_engine::catalog::{bind, BoundQuery};
use tab_sqlq::Query;
use tab_storage::{Database, IndexSpec, MViewDef, MViewSpec};

/// Which candidate-generation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateStyle {
    /// Single-column indexes plus narrow merges.
    SingleColumn,
    /// Multi-column covering indexes.
    Covering,
    /// Covering indexes plus materialized views.
    CoveringWithViews,
}

/// A candidate physical structure.
#[derive(Debug, Clone, PartialEq)]
pub enum Candidate {
    /// A base-table index.
    Index(IndexSpec),
    /// A materialized view with its indexes.
    MView(MViewDef),
}

impl Candidate {
    /// Tables this candidate is relevant to (queries touching any of
    /// them may benefit).
    pub fn tables(&self) -> Vec<&str> {
        match self {
            Candidate::Index(i) => vec![&i.table],
            Candidate::MView(m) => m.spec.base.iter().map(String::as_str).collect(),
        }
    }
}

/// Per-relation predicate columns extracted from one bound query.
#[derive(Debug, Default, Clone)]
struct RelCols {
    filters: Vec<usize>,
    joins: Vec<usize>,
    freqs: Vec<usize>,
    groups: Vec<usize>,
}

fn rel_cols(b: &BoundQuery) -> Vec<RelCols> {
    let mut out = vec![RelCols::default(); b.rels.len()];
    for f in &b.filters {
        push_unique(&mut out[f.rel].filters, f.col);
    }
    for f in &b.ranges {
        push_unique(&mut out[f.rel].filters, f.col);
    }
    for e in &b.joins {
        for &(ca, cb) in &e.cols {
            push_unique(&mut out[e.a].joins, ca);
            push_unique(&mut out[e.b].joins, cb);
        }
    }
    for f in &b.freqs {
        push_unique(&mut out[f.rel].freqs, f.col);
    }
    for &(r, c) in &b.group_by {
        push_unique(&mut out[r].groups, c);
    }
    out
}

fn push_unique(v: &mut Vec<usize>, c: usize) {
    if !v.contains(&c) {
        v.push(c);
    }
}

/// Generate the candidate set for a workload.
///
/// Queries that fail to bind are skipped (the recommender cannot see
/// structures for queries it cannot parse).
pub fn generate(db: &Database, workload: &[Query], style: CandidateStyle) -> Vec<Candidate> {
    let mut indexes: BTreeSet<IndexSpec> = BTreeSet::new();
    let mut mviews: Vec<MViewDef> = Vec::new();

    for q in workload {
        let Ok(b) = bind(q, db) else { continue };
        let cols = rel_cols(&b);
        for (rel, rc) in cols.iter().enumerate() {
            let table = b.rels[rel].source.clone();
            let indexable = |c: &usize| {
                db.table(&table)
                    .map(|t| t.schema().columns[*c].indexable)
                    .unwrap_or(false)
            };
            let filters: Vec<usize> = rc
                .filters
                .iter()
                .filter(|c| indexable(c))
                .copied()
                .collect();
            let joins: Vec<usize> = rc.joins.iter().filter(|c| indexable(c)).copied().collect();
            let freqs: Vec<usize> = rc.freqs.iter().filter(|c| indexable(c)).copied().collect();
            let groups: Vec<usize> = rc.groups.iter().filter(|c| indexable(c)).copied().collect();

            match style {
                CandidateStyle::SingleColumn => {
                    for &c in filters.iter().chain(&joins).chain(&freqs) {
                        indexes.insert(IndexSpec::new(table.clone(), vec![c]));
                    }
                    // Narrow merge: selective filter first, then a join column.
                    if let (Some(&f), Some(&j)) = (filters.first(), joins.first()) {
                        if f != j {
                            indexes.insert(IndexSpec::new(table.clone(), vec![f, j]));
                        }
                    }
                    // Merge with the first group-by column.
                    if let (Some(&j), Some(&g)) = (joins.first(), groups.first()) {
                        if j != g {
                            indexes.insert(IndexSpec::new(table.clone(), vec![j, g]));
                        }
                    }
                }
                CandidateStyle::Covering | CandidateStyle::CoveringWithViews => {
                    // Wide covering candidate: filters, joins, then groups.
                    let mut wide: Vec<usize> = Vec::new();
                    for &c in filters.iter().chain(&joins).chain(&groups) {
                        push_unique(&mut wide, c);
                    }
                    wide.truncate(4);
                    if !wide.is_empty() {
                        indexes.insert(IndexSpec::new(table.clone(), wide));
                    }
                    // Join-leading covering variant.
                    let mut jg: Vec<usize> = Vec::new();
                    for &c in joins.iter().chain(&groups) {
                        push_unique(&mut jg, c);
                    }
                    jg.truncate(4);
                    if jg.len() > 1 {
                        indexes.insert(IndexSpec::new(table.clone(), jg));
                    }
                    // One-column indexes on filter columns only.
                    for &c in &filters {
                        indexes.insert(IndexSpec::new(table.clone(), vec![c]));
                    }
                }
            }
        }

        if style == CandidateStyle::CoveringWithViews {
            for e in &b.joins {
                if let Some(def) = view_candidate(&b, e, &cols) {
                    if !mviews.iter().any(|m| m.spec == def.spec) {
                        mviews.push(def);
                    }
                }
            }
        }
    }

    let mut out: Vec<Candidate> = indexes.into_iter().map(Candidate::Index).collect();
    out.extend(mviews.into_iter().map(Candidate::MView));
    out
}

/// A materialized-view candidate replacing one join edge: project every
/// column the query still needs from the two relations, and index the
/// columns that feed further predicates.
fn view_candidate(
    b: &BoundQuery,
    e: &tab_engine::catalog::JoinEdge,
    cols: &[RelCols],
) -> Option<MViewDef> {
    let (i, j) = (e.a, e.b);
    // Self-join views are not generated (the 2005 tools did not).
    if b.rels[i].source == b.rels[j].source {
        return None;
    }
    // Needed columns with the edge removed.
    let mut without = b.clone();
    without
        .joins
        .retain(|x| !(x.a == e.a && x.b == e.b && x.cols == e.cols));
    let need = without.needed_columns();
    let mut projection: Vec<(usize, usize)> = Vec::new();
    for (t, rel) in [(0usize, i), (1usize, j)] {
        for &c in &need[rel] {
            projection.push((t, c));
        }
    }
    if projection.is_empty() || projection.len() > 6 {
        return None;
    }
    // The name encodes the join *and* the projection: candidates from
    // different queries that project different columns are different
    // views and must not collide.
    let proj_sig: String = projection
        .iter()
        .map(|(t, c)| format!("{t}{c}"))
        .collect::<Vec<_>>()
        .join("_");
    let name = format!(
        "mv_{}_{}_{}_p{}",
        b.rels[i].source,
        b.rels[j].source,
        e.cols
            .iter()
            .map(|(a, bb)| format!("{a}x{bb}"))
            .collect::<Vec<_>>()
            .join("_"),
        proj_sig
    );
    let spec = MViewSpec::join_of(
        name,
        &b.rels[i].source,
        &b.rels[j].source,
        e.cols.clone(),
        projection.clone(),
    );
    // Index the projected columns that carry further joins or filters.
    let mut idx_cols: Vec<Vec<usize>> = Vec::new();
    for (t, rel) in [(0usize, i), (1usize, j)] {
        for &c in cols[rel].joins.iter().chain(&cols[rel].filters) {
            if let Some(vc) = projection.iter().position(|&(pt, pc)| pt == t && pc == c) {
                if !idx_cols.contains(&vec![vc]) {
                    idx_cols.push(vec![vc]);
                }
            }
        }
    }
    Some(MViewDef {
        spec,
        indexes: idx_cols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_sqlq::parse;
    use tab_storage::{ColType, ColumnDef, Table, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        for (name, cols) in [("r", vec!["a", "b", "g"]), ("s", vec!["a", "c", "h"])] {
            let mut t = Table::new(TableSchema::new(
                name,
                cols.into_iter()
                    .map(|c| ColumnDef::new(c, ColType::Int))
                    .collect(),
            ));
            for i in 0..50 {
                t.insert(vec![Value::Int(i), Value::Int(i % 5), Value::Int(i % 3)]);
            }
            db.add_table(t);
        }
        db.collect_stats();
        db
    }

    fn workload(db: &Database) -> Vec<Query> {
        let _ = db;
        vec![
            parse("SELECT r.g, COUNT(*) FROM r, s WHERE r.a = s.a AND s.c = 2 GROUP BY r.g")
                .unwrap(),
        ]
    }

    #[test]
    fn single_column_style_yields_narrow_indexes() {
        let db = db();
        let cands = generate(&db, &workload(&db), CandidateStyle::SingleColumn);
        assert!(!cands.is_empty());
        for c in &cands {
            match c {
                Candidate::Index(i) => assert!(i.columns.len() <= 2),
                Candidate::MView(_) => panic!("no views in single-column style"),
            }
        }
        // Join columns on both sides present as single-column candidates.
        assert!(cands.contains(&Candidate::Index(IndexSpec::new("r", vec![0]))));
        assert!(cands.contains(&Candidate::Index(IndexSpec::new("s", vec![0]))));
    }

    #[test]
    fn covering_style_yields_wide_indexes() {
        let db = db();
        let cands = generate(&db, &workload(&db), CandidateStyle::Covering);
        let has_wide = cands.iter().any(|c| match c {
            Candidate::Index(i) => i.columns.len() >= 2,
            _ => false,
        });
        assert!(has_wide, "expected covering candidates: {cands:?}");
    }

    #[test]
    fn views_style_includes_join_views() {
        let db = db();
        let cands = generate(&db, &workload(&db), CandidateStyle::CoveringWithViews);
        let view = cands.iter().find_map(|c| match c {
            Candidate::MView(m) => Some(m),
            _ => None,
        });
        let view = view.expect("a view candidate");
        assert_eq!(view.spec.base, vec!["r".to_string(), "s".to_string()]);
        // The filter column s.c must be projected (queries still filter on it).
        assert!(view.spec.projection.contains(&(1, 1)));
    }

    #[test]
    fn deduplicates_across_queries() {
        let db = db();
        let w = [workload(&db), workload(&db)].concat();
        let c1 = generate(&db, &workload(&db), CandidateStyle::SingleColumn);
        let c2 = generate(&db, &w, CandidateStyle::SingleColumn);
        assert_eq!(c1.len(), c2.len());
    }
}
