//! The paper's baseline configurations.
//!
//! - `P` (§3.2): "instances in which all primary key and foreign key
//!   constraints in the relational schema are defined, and where only
//!   primary key indexes are created".
//! - `1C` (§3.2.3): "created by adding to P all possible single column
//!   indexes (i.e., one index for each indexable column in the schema)"
//!   — the reference configuration the whole paper argues for.

use tab_storage::{Configuration, Database, IndexSpec};

/// The initial configuration `P`: one index per primary key.
pub fn p_configuration(db: &Database, name: impl Into<String>) -> Configuration {
    let mut cfg = Configuration::named(name);
    for t in db.tables() {
        let pk = &t.schema().primary_key;
        if !pk.is_empty() {
            cfg.indexes
                .push(IndexSpec::new(t.schema().name.clone(), pk.clone()));
        }
    }
    cfg.normalize();
    cfg
}

/// The reference configuration `1C`: `P` plus a single-column index on
/// every indexable column of every table.
pub fn one_column_configuration(db: &Database, name: impl Into<String>) -> Configuration {
    let mut cfg = p_configuration(db, name);
    for t in db.tables() {
        for c in t.schema().indexable_columns() {
            cfg.indexes
                .push(IndexSpec::new(t.schema().name.clone(), vec![c]));
        }
    }
    cfg.normalize();
    cfg
}

/// The paper's space budget: the auxiliary size of `1C` minus that of
/// `P` ("the difference in size between 1C and P as the space budget",
/// §3.2.3). Computed on built configurations so the sizes are real.
pub fn one_column_budget_bytes(
    p: &tab_storage::BuiltConfiguration,
    one_c: &tab_storage::BuiltConfiguration,
) -> u64 {
    one_c
        .report
        .aux_bytes()
        .saturating_sub(p.report.aux_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tab_storage::{BuiltConfiguration, ColType, ColumnDef, Table, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColType::Int),
                    ColumnDef::new("a", ColType::Int),
                    ColumnDef::new("wide", ColType::Str).not_indexable(),
                ],
            )
            .primary_key(&["id"]),
        );
        for i in 0..100 {
            t.insert(vec![Value::Int(i), Value::Int(i % 5), Value::str("x")]);
        }
        db.add_table(t);
        db
    }

    #[test]
    fn p_has_only_pk_indexes() {
        let cfg = p_configuration(&db(), "P");
        assert_eq!(cfg.indexes.len(), 1);
        assert_eq!(cfg.indexes[0].columns, vec![0]);
        assert!(cfg.mviews.is_empty());
    }

    #[test]
    fn one_column_covers_every_indexable_column() {
        let cfg = one_column_configuration(&db(), "1C");
        // id (pk, deduped with single-col pk index) + a; `wide` excluded.
        assert_eq!(cfg.indexes.len(), 2);
        assert!(cfg
            .indexes
            .iter()
            .all(|i| i.columns.len() == 1 && i.columns[0] < 2));
    }

    #[test]
    fn budget_is_positive_and_matches_difference() {
        let db = db();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let c1 = BuiltConfiguration::build(one_column_configuration(&db, "1C"), &db);
        let b = one_column_budget_bytes(&p, &c1);
        assert!(b > 0);
        assert_eq!(b, c1.report.aux_bytes() - p.report.aux_bytes());
    }
}
