//! # tab-advisor
//!
//! Configuration recommenders and baseline configurations for
//! `tab-bench`:
//!
//! - [`config_builders`]: the paper's `P` (primary keys only) and `1C`
//!   (all single-column indexes) configurations, and the `size(1C) −
//!   size(P)` storage budget;
//! - [`candidates`]: per-workload candidate generation in three styles;
//! - [`greedy`]: the shared what-if greedy knapsack search;
//! - [`whatif`]: the memoized, thread-safe what-if evaluation service
//!   the search prices candidates through;
//! - [`profiles`]: the three recommender profiles standing in for the
//!   paper's anonymous commercial Systems A, B, and C.

#![warn(missing_docs)]

pub mod candidates;
pub mod config_builders;
pub mod greedy;
pub mod profiles;
pub mod whatif;

pub use candidates::{generate as generate_candidates, Candidate, CandidateStyle};
pub use config_builders::{one_column_budget_bytes, one_column_configuration, p_configuration};
pub use greedy::{
    candidate_bytes, greedy_select, greedy_select_traced, greedy_select_with_stats, GreedyOptions,
    Objective, RoundStats, SearchStats,
};
pub use profiles::{AdvisorInput, Recommender, SearchLimits, SystemA, SystemB, SystemC};
pub use whatif::{WhatIfService, WhatIfStats};
