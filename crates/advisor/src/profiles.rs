//! The three recommender profiles: Systems A, B, and C.
//!
//! The paper anonymizes two commercial RDBMSs ("the systems tested,
//! which we call Systems A and B"; "we selected one of the two systems
//! for the second experiment, which we will refer to as System C").
//! We model them as three advisor profiles spanning the architecture
//! space of the 2005 tools — all three share the what-if greedy search
//! (and therefore its estimation blind spots), and differ in candidate
//! generation exactly as the published tool papers differ:
//!
//! | profile | candidates | modeled after |
//! |---------|------------|---------------|
//! | `SystemA` | single-column + narrow merges, with a workload-size capacity limit | AutoAdmin-style per-query candidate selection |
//! | `SystemB` | wide covering indexes | DB2 Advisor-style index-only search |
//! | `SystemC` | covering indexes + materialized views + indexes on views | Design-Advisor-style integrated selection |
//!
//! `SystemA`'s capacity limit reproduces §4.2's observation that one
//! recommender "did not output any recommended configuration at all" for
//! the NREF3J 100-query workload while succeeding on some smaller
//! subsets of it.

use tab_sqlq::Query;
use tab_storage::{BuiltConfiguration, Configuration, Database, Parallelism, Trace};

use crate::candidates::{generate, CandidateStyle};
use crate::greedy::{greedy_select_traced, GreedyOptions, SearchStats};

/// Input to a recommendation request (§2.1's task definition).
pub struct AdvisorInput<'a> {
    /// The database, with statistics collected.
    pub db: &'a Database,
    /// The currently built configuration (the paper always starts from
    /// `P`).
    pub current: &'a BuiltConfiguration,
    /// The workload `W`.
    pub workload: &'a [Query],
    /// Storage budget in bytes (the paper uses `size(1C) − size(P)`).
    pub budget_bytes: u64,
    /// Thread budget for the what-if candidate fan-out. The
    /// recommendation is identical at any setting.
    pub par: Parallelism,
    /// Structured trace receiving advisor round events. Tracing is
    /// observational only; [`Trace::disabled()`] is the zero-cost
    /// default.
    pub trace: Trace<'a>,
}

/// Explicit resource limits on one recommendation request — the
/// convergence harness's knobs. The default is unlimited in both
/// dimensions (beyond each profile's own stopping rules), which is what
/// every pre-existing `recommend` call gets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchLimits {
    /// Cap on accepted structures (greedy rounds); `None` keeps the
    /// profile's default.
    pub max_structures: Option<usize>,
    /// Cap on what-if cost requests, checked between rounds; `None`
    /// leaves the search unbudgeted. See
    /// [`GreedyOptions::max_whatif_calls`].
    pub max_whatif_calls: Option<u64>,
}

/// A configuration recommender.
pub trait Recommender {
    /// The profile's display name (`A`, `B`, or `C`).
    fn name(&self) -> &'static str;

    /// Produce a recommendation, or `None` when the tool gives up —
    /// which the paper observed in practice (§4.2).
    fn recommend(&self, input: &AdvisorInput<'_>) -> Option<Configuration> {
        self.recommend_with_stats(input).0
    }

    /// [`Recommender::recommend`], also returning the greedy search's
    /// [`SearchStats`] (all zero when the tool gives up before
    /// searching).
    fn recommend_with_stats(
        &self,
        input: &AdvisorInput<'_>,
    ) -> (Option<Configuration>, SearchStats) {
        self.recommend_budgeted(input, SearchLimits::default())
    }

    /// [`Recommender::recommend_with_stats`] under explicit
    /// [`SearchLimits`] — how the convergence harness sweeps a what-if
    /// budget ladder without re-deriving candidates per profile.
    fn recommend_budgeted(
        &self,
        input: &AdvisorInput<'_>,
        limits: SearchLimits,
    ) -> (Option<Configuration>, SearchStats);
}

/// The shared per-profile search options: the caller's thread budget and
/// explicit limits on top of the defaults.
fn search_options(input: &AdvisorInput<'_>, limits: SearchLimits) -> GreedyOptions {
    let base = GreedyOptions::default();
    GreedyOptions {
        par: input.par,
        max_structures: limits.max_structures.unwrap_or(base.max_structures),
        max_whatif_calls: limits.max_whatif_calls,
        ..base
    }
}

/// System A: per-query single-column candidates with a hard capacity
/// limit on `|workload| × |candidates|`.
#[derive(Debug, Clone, Copy)]
pub struct SystemA {
    /// The capacity limit. The default is calibrated so that the
    /// benchmark's NREF2J workload fits and NREF3J's (self-join-heavy,
    /// larger candidate sets) does not — matching §4.2.
    pub capacity_limit: usize,
}

impl Default for SystemA {
    fn default() -> Self {
        SystemA {
            capacity_limit: 4_000,
        }
    }
}

impl Recommender for SystemA {
    fn name(&self) -> &'static str {
        "A"
    }

    fn recommend_budgeted(
        &self,
        input: &AdvisorInput<'_>,
        limits: SearchLimits,
    ) -> (Option<Configuration>, SearchStats) {
        let cands = generate(input.db, input.workload, CandidateStyle::SingleColumn);
        if cands.len() * input.workload.len() > self.capacity_limit {
            // The tool's search space exceeds its capacity: no output,
            // exactly as observed for NREF3J at 100 queries.
            return (None, SearchStats::default());
        }
        let (cfg, stats) = greedy_select_traced(
            input.db,
            input.current,
            input.workload,
            cands,
            input.budget_bytes,
            "R",
            search_options(input, limits),
            input.trace,
        );
        (Some(cfg), stats)
    }
}

/// System B: covering-index candidates, no views, no capacity limit.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemB;

impl Recommender for SystemB {
    fn name(&self) -> &'static str {
        "B"
    }

    fn recommend_budgeted(
        &self,
        input: &AdvisorInput<'_>,
        limits: SearchLimits,
    ) -> (Option<Configuration>, SearchStats) {
        let cands = generate(input.db, input.workload, CandidateStyle::Covering);
        let (cfg, stats) = greedy_select_traced(
            input.db,
            input.current,
            input.workload,
            cands,
            input.budget_bytes,
            "R",
            search_options(input, limits),
            input.trace,
        );
        (Some(cfg), stats)
    }
}

/// System C: covering indexes plus materialized views with indexes on
/// them (Table 3's recommendation shapes).
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemC;

impl Recommender for SystemC {
    fn name(&self) -> &'static str {
        "C"
    }

    fn recommend_budgeted(
        &self,
        input: &AdvisorInput<'_>,
        limits: SearchLimits,
    ) -> (Option<Configuration>, SearchStats) {
        let cands = generate(input.db, input.workload, CandidateStyle::CoveringWithViews);
        let (cfg, stats) = greedy_select_traced(
            input.db,
            input.current,
            input.workload,
            cands,
            input.budget_bytes,
            "R",
            search_options(input, limits),
            input.trace,
        );
        (Some(cfg), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config_builders::p_configuration;
    use tab_sqlq::parse;
    use tab_storage::{ColType, ColumnDef, Table, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColType::Int),
                    ColumnDef::new("a", ColType::Int),
                    ColumnDef::new("g", ColType::Int),
                ],
            )
            .primary_key(&["id"]),
        );
        for i in 0..10_000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 1000), Value::Int(i % 4)]);
        }
        db.add_table(t);
        db.collect_stats();
        db
    }

    fn workload() -> Vec<Query> {
        (0..4)
            .map(|i| {
                parse(&format!(
                    "SELECT t.g, COUNT(*) FROM t WHERE t.a = {i} GROUP BY t.g"
                ))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn system_a_gives_up_over_capacity() {
        let db = db();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let w = workload();
        let input = AdvisorInput {
            db: &db,
            current: &p,
            workload: &w,
            budget_bytes: 10 * 1024 * 1024,
            par: Parallelism::sequential(),
            trace: Trace::disabled(),
        };
        let tiny = SystemA { capacity_limit: 1 };
        assert!(tiny.recommend(&input).is_none());
        let roomy = SystemA::default();
        assert!(roomy.recommend(&input).is_some());
    }

    #[test]
    fn all_profiles_recommend_within_budget() {
        let db = db();
        let p = BuiltConfiguration::build(p_configuration(&db, "P"), &db);
        let w = workload();
        let budget = 10 * 1024 * 1024;
        let input = AdvisorInput {
            db: &db,
            current: &p,
            workload: &w,
            budget_bytes: budget,
            par: Parallelism::sequential(),
            trace: Trace::disabled(),
        };
        for r in [&SystemA::default() as &dyn Recommender, &SystemB, &SystemC] {
            let cfg = r.recommend(&input).expect("recommendation");
            let built = BuiltConfiguration::build(cfg, &db);
            let added = built
                .report
                .aux_bytes()
                .saturating_sub(p.report.aux_bytes());
            assert!(
                added <= budget * 2,
                "system {} blew the budget: {added} > {budget}",
                r.name()
            );
        }
    }
}
