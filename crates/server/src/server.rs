//! The serving front end: thread-per-connection over a [`SharedEngine`].
//!
//! [`Server::start`] binds a TCP listener and returns a [`Server`]
//! handle immediately; an accept thread hands each connection to its own
//! worker thread. Every request pins a fresh [`EngineSnapshot`], so a
//! request sees one whole generation end to end no matter what writers
//! do meanwhile, and per-request results are exactly those of a direct
//! [`tab_engine::Session`] over the same generation (the serving smoke
//! test and `tab bench serve` both verify this equality).
//!
//! Robustness contract:
//!
//! - a malformed or panicking request answers an `{"ok":false}`
//!   envelope and the connection lives on;
//! - a connection idle past [`ServeOptions::idle_timeout`] is closed;
//! - past [`ServeOptions::max_connections`] live connections, new ones
//!   are refused with a retryable `overloaded` envelope instead of
//!   spawning unbounded threads; past [`ServeOptions::admission`]
//!   in-flight requests, work is shed cheapest-to-lose first (`ADVISE`,
//!   then `EXPLAIN`, then everything but the observability verbs);
//! - transient `accept()` failures (e.g. `EMFILE` under fd pressure)
//!   back off exponentially instead of spinning, counted in
//!   [`ServerCounters::accept_errors`];
//! - an armed [`FaultPlan`] can drop, tear, or delay response writes
//!   (`drop:conn:N`, `torn:wire:N`, `delay:conn:N`) to prove client
//!   retry loops converge — see `DESIGN.md` §15;
//! - `SHUTDOWN` (or [`Server::shutdown`]) stops the accept loop,
//!   lets every in-flight request finish, then joins all workers — no
//!   request is ever answered half-written (unless a torn-wire fault
//!   was armed to do exactly that).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tab_advisor::{AdvisorInput, Recommender, SystemA, SystemB, SystemC};
use tab_engine::{EngineSnapshot, SharedEngine, DEFAULT_TIMEOUT_UNITS};
use tab_families::{sample_preserving_par, Family};
use tab_sqlq::{parse_statement, Statement};
use tab_storage::{FaultPlan, Faults, Parallelism, WireFault};

use crate::proto::{parse_request, Request, ResponseBuilder};

/// How the server runs: bind address, database label (for advisor
/// budgets), per-request budget, and per-connection idle limit.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind (`127.0.0.1:0` picks a free port — the default,
    /// and what every test uses).
    pub addr: String,
    /// Database label (e.g. `NREF`) used to derive the advisor's space
    /// budget on `ADVISE`.
    pub label: String,
    /// Per-query execution budget in cost units.
    pub timeout_units: f64,
    /// Close a connection that stays idle this long.
    pub idle_timeout: Duration,
    /// Thread budget for `ADVISE` what-if fan-out (recommendations are
    /// identical at any setting).
    pub par: Parallelism,
    /// Armed fault plan for the wire sites (`drop:conn:N`,
    /// `torn:wire:N`, `delay:conn:N`). `None` (the default) serves
    /// with zero fault-check overhead beyond one branch per response.
    pub faults: Option<Arc<FaultPlan>>,
    /// Hard cap on concurrently served connections; one past the cap is
    /// answered a retryable `overloaded` envelope and closed. `0`
    /// disables the cap (the pre-PR-10 unbounded behavior).
    pub max_connections: usize,
    /// Admission limit on in-flight requests: `ADVISE` sheds at half
    /// this, `EXPLAIN` at three quarters, `QUERY`/`INSERT` only past
    /// the full limit. `0` disables shedding.
    pub admission: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            label: "NREF".into(),
            timeout_units: DEFAULT_TIMEOUT_UNITS,
            idle_timeout: Duration::from_secs(30),
            par: Parallelism::new(0),
            faults: None,
            max_connections: 256,
            admission: 64,
        }
    }
}

/// Serving counters, shared by every connection worker and reported by
/// the `STATS` verb. All counters are monotonic except
/// [`ServerCounters::inflight`], a gauge.
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections admitted to a worker thread.
    pub accepted: AtomicU64,
    /// Transient `accept()` failures survived via backoff.
    pub accept_errors: AtomicU64,
    /// Connections refused at [`ServeOptions::max_connections`].
    pub conns_refused: AtomicU64,
    /// `ADVISE` requests shed under load.
    pub shed_advise: AtomicU64,
    /// `EXPLAIN` requests shed under load.
    pub shed_explain: AtomicU64,
    /// `QUERY`/`INSERT` requests shed at the full admission limit.
    pub shed_query: AtomicU64,
    /// Responses silently dropped by an armed `drop:conn` fault.
    pub wire_dropped: AtomicU64,
    /// Responses half-written by an armed `torn:wire` fault.
    pub wire_torn: AtomicU64,
    /// Responses delayed by an armed `delay:conn` fault.
    pub wire_delayed: AtomicU64,
    /// Requests currently being dispatched (gauge, not monotonic).
    pub inflight: AtomicU64,
}

/// Which requests to shed with `inflight` requests in flight under an
/// admission `limit`, cheapest-to-lose first: `ADVISE` (expensive, and
/// always safe to retry) sheds at half the limit, `EXPLAIN` at three
/// quarters, `QUERY`/`INSERT` only past the limit itself. `PING`,
/// `STATS`, `QUIT` and `SHUTDOWN` always pass — they are how an
/// operator observes and drains an overloaded server.
fn shed(request: &Request, inflight: u64, limit: usize) -> Option<&'static str> {
    if limit == 0 {
        return None;
    }
    let limit = limit as u64;
    match request {
        Request::Advise { .. } if inflight >= (limit / 2).max(1) => Some("advise"),
        Request::Explain { .. } if inflight >= (limit * 3 / 4).max(1) => Some("explain"),
        Request::Query { .. } | Request::Insert { .. } if inflight > limit => Some("query"),
        _ => None,
    }
}

/// Granularity at which blocked reads wake up to poll the shutdown
/// flag and the idle deadline.
const POLL_TICK: Duration = Duration::from_millis(20);

/// A running server. Dropping the handle shuts the server down.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `opts.addr` and start serving `engine`. Returns as soon as
    /// the listener is bound; use [`Server::addr`] to learn the chosen
    /// port when binding port 0.
    pub fn start(engine: Arc<SharedEngine>, opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServerCounters::default());
        let accept = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || accept_loop(listener, engine, opts, stop, counters))
        };
        Ok(Server {
            addr,
            stop,
            counters,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live serving counters (also reported over the wire by
    /// `STATS`).
    pub fn counters(&self) -> &Arc<ServerCounters> {
        &self.counters
    }

    /// Whether a shutdown has been requested (by this handle or by a
    /// `SHUTDOWN` request over the wire).
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Block until the server stops — i.e. until someone sends
    /// `SHUTDOWN` or another thread calls [`Server::shutdown`]. All
    /// connection workers are joined before this returns.
    pub fn wait(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Request a graceful stop and block until every in-flight request
    /// has been answered and all threads are joined.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.wait();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Longest pause between retries after a failing `accept()`.
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_secs(1);

/// Accept until the stop flag rises, then join every worker.
fn accept_loop(
    listener: TcpListener,
    engine: Arc<SharedEngine>,
    opts: ServeOptions,
    stop: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let mut backoff = POLL_TICK;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                backoff = POLL_TICK;
                // Reap finished workers so a long-lived server does not
                // accumulate handles — and so the connection cap counts
                // only live connections.
                workers.retain(|h| !h.is_finished());
                if opts.max_connections > 0 && workers.len() >= opts.max_connections {
                    counters.conns_refused.fetch_add(1, Ordering::Relaxed);
                    let mut stream = stream;
                    let bye = ResponseBuilder::retryable_error(
                        &format!(
                            "connection limit reached ({} live), try again later",
                            workers.len()
                        ),
                        "overloaded",
                    );
                    let _ = writeln!(stream, "{bye}");
                    continue;
                }
                counters.accepted.fetch_add(1, Ordering::Relaxed);
                let engine = Arc::clone(&engine);
                let opts = opts.clone();
                let stop = Arc::clone(&stop);
                let counters = Arc::clone(&counters);
                workers.push(std::thread::spawn(move || {
                    // A torn-down connection (peer vanished mid-write)
                    // is that connection's problem, not the server's.
                    let _ = serve_connection(stream, &engine, &opts, &stop, &counters);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL_TICK),
            Err(_) => {
                // Transient accept failures (EMFILE under fd pressure,
                // ECONNABORTED, …) must not spin the loop hot: count
                // them and back off exponentially, resetting on the
                // next successful accept.
                counters.accept_errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_CAP);
            }
        }
    }
    for h in workers {
        let _ = h.join();
    }
}

/// Reads lines off one connection and answers them until QUIT,
/// SHUTDOWN, EOF, idle timeout, or server stop.
fn serve_connection(
    stream: TcpStream,
    engine: &SharedEngine,
    opts: &ServeOptions,
    stop: &AtomicBool,
    counters: &ServerCounters,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_TICK))?;
    let mut reader = LineReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut last_activity = Instant::now();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        if last_activity.elapsed() > opts.idle_timeout {
            let bye = ResponseBuilder::error("idle timeout, closing connection");
            let _ = writeln!(out, "{bye}");
            return Ok(());
        }
        let line = match reader.poll_line()? {
            Poll::Closed => return Ok(()),
            Poll::Pending => continue,
            Poll::Line(line) => line,
        };
        last_activity = Instant::now();
        if line.trim().is_empty() {
            continue;
        }
        let (response, control) = handle_line(engine, opts, counters, &line);
        // Wire-level chaos happens *after* dispatch: the request was
        // applied, the acknowledgement is what gets lost — exactly the
        // window idempotent retries must cover (DESIGN.md §15).
        let wire = opts
            .faults
            .as_deref()
            .and_then(|plan| Faults::to(plan).wire());
        match wire {
            Some(WireFault::Drop) => {
                counters.wire_dropped.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            Some(WireFault::Torn) => {
                counters.wire_torn.fetch_add(1, Ordering::Relaxed);
                out.write_all(&response.as_bytes()[..response.len() / 2])?;
                out.flush()?;
                return Ok(());
            }
            Some(WireFault::Delay) => {
                counters.wire_delayed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(50));
            }
            None => {}
        }
        writeln!(out, "{response}")?;
        out.flush()?;
        match control {
            Control::Continue => {}
            Control::CloseConnection => return Ok(()),
            Control::ShutdownServer => {
                stop.store(true, Ordering::Relaxed);
                return Ok(());
            }
        }
    }
}

/// What the connection loop does after answering a request.
enum Control {
    Continue,
    CloseConnection,
    ShutdownServer,
}

/// One request line to one response line. Panics inside dispatch
/// become error envelopes: a bad request must never take down the
/// connection, let alone the server. Admission control runs first —
/// a shed request costs one atomic increment, not a snapshot.
fn handle_line(
    engine: &SharedEngine,
    opts: &ServeOptions,
    counters: &ServerCounters,
    line: &str,
) -> (String, Control) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return (ResponseBuilder::error(&e), Control::Continue),
    };
    let control = match request {
        Request::Quit => Control::CloseConnection,
        Request::Shutdown => Control::ShutdownServer,
        _ => Control::Continue,
    };
    let inflight = counters.inflight.fetch_add(1, Ordering::Relaxed) + 1;
    let response = if let Some(verb) = shed(&request, inflight, opts.admission) {
        match verb {
            "advise" => &counters.shed_advise,
            "explain" => &counters.shed_explain,
            _ => &counters.shed_query,
        }
        .fetch_add(1, Ordering::Relaxed);
        ResponseBuilder::retryable_error(
            &format!("overloaded: {verb} shed at {inflight} in-flight requests"),
            "overloaded",
        )
    } else {
        catch_unwind(AssertUnwindSafe(|| {
            dispatch(engine, opts, counters, &request)
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("request panicked");
            ResponseBuilder::error(&format!("internal error: {msg}"))
        })
    };
    counters.inflight.fetch_sub(1, Ordering::Relaxed);
    (response, control)
}

/// Execute one parsed request against a freshly pinned snapshot.
fn dispatch(
    engine: &SharedEngine,
    opts: &ServeOptions,
    counters: &ServerCounters,
    request: &Request,
) -> String {
    match request {
        Request::Ping => {
            let snap = engine.snapshot();
            let configs: Vec<&str> = snap.config_names().collect();
            ResponseBuilder::ok("ping")
                .int_field("generation", snap.seq())
                .str_field("configs", &configs.join(","))
                .finish()
        }
        Request::Stats => stats(engine, counters),
        Request::Quit => ResponseBuilder::ok("bye").finish(),
        Request::Shutdown => ResponseBuilder::ok("shutdown").finish(),
        Request::Query { config, sql } => run_query(engine, opts, config, sql),
        Request::Insert {
            config,
            client,
            cseq,
            sql,
        } => keyed_insert(engine, config, client, *cseq, sql),
        Request::Explain { config, sql } => explain_query(engine, config, sql),
        Request::Advise {
            family,
            system,
            workload,
        } => advise(engine, opts, family, system, *workload),
    }
}

/// `STATS`: one line of serving counters plus the engine's durability
/// state — how an operator watches shedding, chaos, and recovery.
fn stats(engine: &SharedEngine, c: &ServerCounters) -> String {
    let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
    ResponseBuilder::ok("stats")
        .int_field("generation", engine.generation())
        .bool_field("durable", engine.is_durable())
        .int_field("recovered", engine.recovered())
        .int_field("deduped", engine.deduped())
        .int_field("accepted", load(&c.accepted))
        .int_field("accept_errors", load(&c.accept_errors))
        .int_field("conns_refused", load(&c.conns_refused))
        .int_field("shed_advise", load(&c.shed_advise))
        .int_field("shed_explain", load(&c.shed_explain))
        .int_field("shed_query", load(&c.shed_query))
        .int_field("wire_dropped", load(&c.wire_dropped))
        .int_field("wire_torn", load(&c.wire_torn))
        .int_field("wire_delayed", load(&c.wire_delayed))
        .finish()
}

/// `INSERT <config> <client>:<seq> <sql>`: the idempotent write path.
/// A replayed sequence answers the cached acknowledgement with
/// `"deduped":true` — same generation, row id, and bit-identical units
/// as the original ack.
fn keyed_insert(engine: &SharedEngine, config: &str, client: &str, cseq: u64, sql: &str) -> String {
    let stmt = match parse_statement(sql) {
        Ok(s) => s,
        Err(e) => return ResponseBuilder::error(&e.to_string()),
    };
    let Statement::Insert(ins) = stmt else {
        return ResponseBuilder::error("the INSERT verb needs an INSERT statement");
    };
    match engine.insert_keyed(&ins, config, client, cseq) {
        Ok(k) => ResponseBuilder::ok("insert")
            .int_field("generation", k.out.generation)
            .str_field("verdict", "inserted")
            .int_field("row_id", u64::from(k.out.row_id))
            .num_field("units", k.out.units)
            .bool_field("deduped", k.deduped)
            .finish(),
        Err(e) => ResponseBuilder::error(&e.message),
    }
}

/// Open a per-request session over `snap`, or an error envelope naming
/// the configurations that *are* served.
fn session_or_error<'a>(
    snap: &'a EngineSnapshot,
    config: &str,
) -> Result<tab_engine::Session<'a>, String> {
    snap.session(config).ok_or_else(|| {
        let served: Vec<&str> = snap.config_names().collect();
        ResponseBuilder::error(&format!(
            "no configuration `{config}` (served: {})",
            served.join(", ")
        ))
    })
}

/// `QUERY`: a SELECT runs on the pinned snapshot; an INSERT goes
/// through the latched copy-on-write path and reports the generation
/// it published.
fn run_query(engine: &SharedEngine, opts: &ServeOptions, config: &str, sql: &str) -> String {
    let stmt = match parse_statement(sql) {
        Ok(s) => s,
        Err(e) => return ResponseBuilder::error(&e.to_string()),
    };
    match stmt {
        Statement::Insert(ins) => match engine.insert(&ins, config) {
            Ok(out) => ResponseBuilder::ok("insert")
                .int_field("generation", out.generation)
                .str_field("verdict", "inserted")
                .int_field("row_id", u64::from(out.row_id))
                .num_field("units", out.units)
                .finish(),
            Err(e) => ResponseBuilder::error(&e.message),
        },
        Statement::Query(q) => {
            let snap = engine.snapshot();
            let session = match session_or_error(&snap, config) {
                Ok(s) => s,
                Err(envelope) => return envelope,
            };
            match session.run(&q, Some(opts.timeout_units)) {
                Ok(r) => {
                    let b = ResponseBuilder::ok("query")
                        .int_field("generation", snap.seq())
                        .str_field("plan", &r.plan.describe());
                    match r.outcome {
                        tab_engine::Outcome::Done { units, rows } => b
                            .str_field("verdict", "done")
                            .num_field("units", units)
                            .int_field("rows", rows)
                            .finish(),
                        tab_engine::Outcome::Timeout { budget } => b
                            .str_field("verdict", "timeout")
                            .num_field("budget_units", budget)
                            .finish(),
                    }
                }
                Err(e) => ResponseBuilder::error(&e.message),
            }
        }
    }
}

/// `EXPLAIN`: plan shape plus optimizer estimate, nothing executed.
fn explain_query(engine: &SharedEngine, config: &str, sql: &str) -> String {
    let q = match tab_sqlq::parse(sql) {
        Ok(q) => q,
        Err(e) => return ResponseBuilder::error(&e.to_string()),
    };
    let snap = engine.snapshot();
    let session = match session_or_error(&snap, config) {
        Ok(s) => s,
        Err(envelope) => return envelope,
    };
    let plan = match session.plan_query(&q) {
        Ok(p) => p,
        Err(e) => return ResponseBuilder::error(&e.message),
    };
    let estimate = match session.estimate(&q) {
        Ok(u) => u,
        Err(e) => return ResponseBuilder::error(&e.message),
    };
    ResponseBuilder::ok("explain")
        .int_field("generation", snap.seq())
        .str_field("plan", &plan.describe())
        .num_field("estimate_units", estimate)
        .finish()
}

/// `ADVISE`: sample a workload from the family on the pinned snapshot
/// and run a recommender profile. The response carries counts and the
/// DDL, not wall-clock, so it is deterministic for a fixed generation.
fn advise(
    engine: &SharedEngine,
    opts: &ServeOptions,
    family: &str,
    system: &str,
    workload: usize,
) -> String {
    let Some(family) = Family::parse(family) else {
        return ResponseBuilder::error(&format!("unknown family `{family}`"));
    };
    let a = SystemA {
        capacity_limit: 4_000,
    };
    let rec: &dyn Recommender = match system.to_ascii_uppercase().as_str() {
        "A" => &a,
        "B" => &SystemB,
        "C" => &SystemC,
        other => return ResponseBuilder::error(&format!("unknown system `{other}`")),
    };
    let snap = engine.snapshot();
    let state = snap.state();
    let all = family.enumerate_with(&state.db, opts.par);
    if all.is_empty() {
        return ResponseBuilder::error(&format!(
            "family {} is empty on this database",
            family.name()
        ));
    }
    // Sample with estimates from the paper's P baseline so the served
    // configuration set does not perturb workload selection.
    let p = tab_core::build_p(&state.db, &opts.label);
    let estimator = tab_engine::Session::new(&state.db, &p);
    let w = sample_preserving_par(
        &all,
        |q| estimator.estimate(q).unwrap_or(f64::INFINITY),
        workload,
        2005,
        opts.par,
    );
    let input = AdvisorInput {
        db: &state.db,
        current: &p,
        workload: &w,
        budget_bytes: tab_core::space_budget(&state.db, &opts.label),
        par: opts.par,
        trace: tab_core::Trace::disabled(),
    };
    let (cfg, stats) = rec.recommend_with_stats(&input);
    let b = ResponseBuilder::ok("advise")
        .int_field("generation", snap.seq())
        .str_field("family", family.name())
        .str_field("system", rec.name())
        .int_field("workload", w.len() as u64)
        .int_field("whatif_calls", stats.whatif_calls);
    match cfg {
        None => b.str_field("verdict", "no_recommendation").finish(),
        Some(cfg) => {
            let mut ddl: Vec<String> = cfg
                .indexes
                .iter()
                .filter(|i| !p.config.indexes.contains(i))
                .map(|i| format!("CREATE INDEX {i}"))
                .collect();
            ddl.extend(cfg.mviews.iter().map(|m| {
                format!(
                    "CREATE MATERIALIZED VIEW {} OVER {}",
                    m.spec.name,
                    m.spec.base.join(" JOIN ")
                )
            }));
            b.str_field("verdict", "recommended")
                .int_field("indexes", cfg.indexes.len() as u64)
                .int_field("mviews", cfg.mviews.len() as u64)
                .str_field("ddl", &ddl.join("; "))
                .finish()
        }
    }
}

/// Result of one non-blocking line poll.
enum Poll {
    /// A complete line (newline stripped).
    Line(String),
    /// No complete line yet; the read timed out.
    Pending,
    /// Peer closed the connection.
    Closed,
}

/// A line reader safe under read timeouts. `BufRead::read_line` may
/// drop buffered bytes when a read times out mid-line; this reader
/// keeps partial lines in its own buffer across timeouts, so a slow
/// client typing a long request is never corrupted.
struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
    chunk: [u8; 4096],
}

impl LineReader {
    fn new(stream: TcpStream) -> Self {
        LineReader {
            stream,
            pending: Vec::new(),
            chunk: [0; 4096],
        }
    }

    /// Pop a buffered complete line if one exists.
    fn take_line(&mut self) -> Option<String> {
        let nl = self.pending.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.pending.drain(..=nl).collect();
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    /// Read more bytes (bounded by the stream's read timeout) and
    /// return a line if one completed.
    fn poll_line(&mut self) -> std::io::Result<Poll> {
        if let Some(line) = self.take_line() {
            return Ok(Poll::Line(line));
        }
        match self.stream.read(&mut self.chunk) {
            Ok(0) => Ok(Poll::Closed),
            Ok(n) => {
                self.pending.extend_from_slice(&self.chunk[..n]);
                Ok(match self.take_line() {
                    Some(line) => Poll::Line(line),
                    None => Poll::Pending,
                })
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Ok(Poll::Pending)
            }
            Err(e) => Err(e),
        }
    }
}
