//! # tab-server
//!
//! The concurrent serving front end for `tab-bench`: a
//! thread-per-connection TCP server speaking the line-oriented
//! [`tab-wire-v1`](proto) protocol over a
//! [`SharedEngine`](tab_engine::SharedEngine), plus the matching
//! blocking [`Client`].
//!
//! Division of labor:
//!
//! - [`tab_storage::GenerationCell`] publishes immutable generations
//!   (snapshot reads never block, never see torn state);
//! - [`tab_engine::SharedEngine`] gives those generations engine
//!   meaning (database + built configurations, latched copy-on-write
//!   inserts);
//! - this crate puts a wire in front: [`Server`] answers `QUERY`,
//!   `EXPLAIN`, `ADVISE`, `PING` with one JSON line per request, turns
//!   panics into error envelopes, and shuts down gracefully on
//!   `SHUTDOWN`;
//! - the load generator behind `tab bench serve` drives [`Client`]s
//!   against it and byte-compares per-request results with direct
//!   [`tab_engine::Session`] runs.
//!
//! See `DESIGN.md` §14 for the concurrency model and the benchmark's
//! determinism contract.

#![deny(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, RetryClient};
pub use proto::{parse_request, Request, Response, ResponseBuilder, RESPONSE_PREFIX};
pub use server::{ServeOptions, Server, ServerCounters};
