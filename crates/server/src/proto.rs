//! The `tab-wire-v1` protocol: request lines in, JSON response lines out.
//!
//! The wire format is deliberately minimal so any line-oriented client
//! can speak it. A request is one text line — a verb followed by
//! whitespace-separated operands, with the SQL tail taken verbatim:
//!
//! ```text
//! PING
//! QUERY <config> <sql>          query or INSERT statement
//! INSERT <config> <client>:<seq> <sql>   sequence-keyed, idempotent INSERT
//! EXPLAIN <config> <sql>        plan + estimate, nothing executed
//! ADVISE <family> <system> [n]  run a recommender over a sampled workload
//! STATS                         serving counters (shed, retries, recovery)
//! QUIT                          close this connection
//! SHUTDOWN                      stop the whole server gracefully
//! ```
//!
//! `INSERT` carries an idempotency key: `<client>` names the sender and
//! `<seq>` is a per-client sequence number that must increase with every
//! *new* write. Resending the last sequence (because the connection died
//! before the acknowledgement arrived) replays the cached ack with
//! `"deduped":true` instead of applying the row twice — see
//! `DESIGN.md` §15.
//!
//! Errors a client may safely retry (overload shedding, injected wire
//! faults) are marked `"retryable":true` with a machine-readable
//! `"reason"`; everything else is permanent.
//!
//! A response is exactly one JSON line opening with
//! [`RESPONSE_PREFIX`], rendered with **no space after the `:` of each
//! key** — the same discipline as `tab-trace-v1` — so responses parse
//! with the dependency-free string scanner
//! [`tab_storage::trace_reader::field`] instead of a JSON library.
//! Requests never crash the connection: the server wraps dispatch in a
//! panic guard and answers `{"ok":false,"error":...}` envelopes.
//!
//! Cost units cross the wire through Rust's shortest-roundtrip `{}`
//! float formatting, so a client parsing `units` back gets the
//! bit-identical `f64` the engine produced — the serving benchmark's
//! exact-equality checks against direct [`tab_engine::Session`] runs
//! depend on this.

use tab_storage::trace::json_escape;
use tab_storage::trace_reader::{field, unescape};

/// The schema tag every response line opens with, byte-for-byte.
pub const RESPONSE_PREFIX: &str = "{\"schema\":\"tab-wire-v1\"";

/// One parsed request line. See the module docs for the line grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `PING` — liveness probe; answers with the current generation and
    /// the served configuration names.
    Ping,
    /// `QUERY <config> <sql>` — execute a statement against the named
    /// configuration. A `SELECT` runs on a pinned snapshot; an `INSERT`
    /// goes through the latched write path and publishes a generation.
    Query {
        /// Serving name of the configuration to run under.
        config: String,
        /// The SQL text, verbatim to end of line.
        sql: String,
    },
    /// `EXPLAIN <config> <sql>` — plan the query and report the chosen
    /// plan shape and its cost estimate without executing it.
    Explain {
        /// Serving name of the configuration to plan under.
        config: String,
        /// The SQL text, verbatim to end of line.
        sql: String,
    },
    /// `INSERT <config> <client>:<seq> <sql>` — a sequence-keyed,
    /// idempotent INSERT: retrying the same `<client>:<seq>` replays
    /// the cached acknowledgement instead of applying the row again.
    Insert {
        /// Serving name of the configuration charged for maintenance.
        config: String,
        /// Client identity the sequence number is scoped to.
        client: String,
        /// Per-client sequence number; must increase per new write.
        cseq: u64,
        /// The INSERT statement, verbatim to end of line.
        sql: String,
    },
    /// `ADVISE <family> <system> [n]` — sample an `n`-query workload
    /// (default 50) from the family on the current snapshot and run the
    /// named recommender profile over it.
    Advise {
        /// Workload family name (e.g. `NREF2J`).
        family: String,
        /// Recommender profile: `A`, `B`, or `C`.
        system: String,
        /// Workload sample size.
        workload: usize,
    },
    /// `STATS` — report serving counters: accepted/refused connections,
    /// shed requests per verb, wire faults fired, deduped retries, and
    /// WAL recovery state.
    Stats,
    /// `QUIT` — close this connection after an acknowledgement.
    Quit,
    /// `SHUTDOWN` — acknowledge, then stop the whole server: no new
    /// connections, existing connections close after their in-flight
    /// request.
    Shutdown,
}

/// Split the next whitespace-delimited token off `s`, returning the
/// token and the rest (leading whitespace trimmed from both).
fn next_token(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim_start()),
        None => (s, ""),
    }
}

/// Parse one request line. Verbs are case-insensitive; the SQL tail is
/// preserved verbatim. Errors name what is missing — they become
/// `{"ok":false}` envelopes, never closed connections.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let (verb, rest) = next_token(line);
    match verb.to_ascii_uppercase().as_str() {
        "PING" => Ok(Request::Ping),
        "STATS" => Ok(Request::Stats),
        "QUIT" => Ok(Request::Quit),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "INSERT" => {
            let (config, rest) = next_token(rest);
            let (key, sql) = next_token(rest);
            if config.is_empty() {
                return Err("INSERT needs a configuration name".into());
            }
            let (client, seq) = key
                .split_once(':')
                .ok_or_else(|| format!("INSERT needs a `client:seq` key, got `{key}`"))?;
            if client.is_empty() {
                return Err("INSERT needs a non-empty client id".into());
            }
            let cseq = seq
                .parse()
                .map_err(|_| format!("bad sequence number `{seq}`"))?;
            if sql.is_empty() {
                return Err("INSERT needs SQL text".into());
            }
            Ok(Request::Insert {
                config: config.to_string(),
                client: client.to_string(),
                cseq,
                sql: sql.to_string(),
            })
        }
        "QUERY" | "EXPLAIN" => {
            let (config, sql) = next_token(rest);
            if config.is_empty() {
                return Err(format!("{verb} needs a configuration name"));
            }
            if sql.is_empty() {
                return Err(format!("{verb} needs SQL text"));
            }
            let config = config.to_string();
            let sql = sql.to_string();
            if verb.eq_ignore_ascii_case("QUERY") {
                Ok(Request::Query { config, sql })
            } else {
                Ok(Request::Explain { config, sql })
            }
        }
        "ADVISE" => {
            let (family, rest) = next_token(rest);
            let (system, rest) = next_token(rest);
            if family.is_empty() || system.is_empty() {
                return Err("ADVISE needs a family and a system".into());
            }
            let (n, rest) = next_token(rest);
            if !rest.is_empty() {
                return Err(format!("trailing operands after ADVISE: `{rest}`"));
            }
            let workload = if n.is_empty() {
                50
            } else {
                n.parse().map_err(|_| format!("bad workload size `{n}`"))?
            };
            Ok(Request::Advise {
                family: family.to_string(),
                system: system.to_string(),
                workload,
            })
        }
        "" => Err("empty request".into()),
        other => Err(format!(
            "unknown verb `{other}` (try PING, QUERY, INSERT, EXPLAIN, ADVISE, STATS, QUIT, \
             SHUTDOWN)"
        )),
    }
}

/// Incrementally renders one response line in the `tab-wire-v1` shape.
/// Field order is insertion order; the builder exists so every call
/// site keeps the no-space-after-colon discipline the line scanner
/// relies on.
#[derive(Debug)]
pub struct ResponseBuilder {
    line: String,
}

impl ResponseBuilder {
    /// Start an `"ok":true` response for `verb`.
    pub fn ok(verb: &str) -> Self {
        let mut line = String::with_capacity(128);
        line.push_str(RESPONSE_PREFIX);
        line.push_str(",\"ok\":true,\"verb\":\"");
        line.push_str(verb);
        line.push('"');
        ResponseBuilder { line }
    }

    /// Build a complete `"ok":false` error envelope.
    pub fn error(message: &str) -> String {
        format!(
            "{RESPONSE_PREFIX},\"ok\":false,\"error\":\"{}\"}}",
            json_escape(message)
        )
    }

    /// Build a complete `"ok":false` envelope a client may safely
    /// retry, tagged with a machine-readable `reason` (for example
    /// `overloaded`). Retry safety is the server's promise that the
    /// request was **not** applied.
    pub fn retryable_error(message: &str, reason: &str) -> String {
        format!(
            "{RESPONSE_PREFIX},\"ok\":false,\"retryable\":true,\"reason\":\"{}\",\"error\":\"{}\"}}",
            json_escape(reason),
            json_escape(message)
        )
    }

    /// Append a string field (JSON-escaped).
    pub fn str_field(mut self, key: &str, value: &str) -> Self {
        self.line
            .push_str(&format!(",\"{key}\":\"{}\"", json_escape(value)));
        self
    }

    /// Append an integer field.
    pub fn int_field(mut self, key: &str, value: u64) -> Self {
        self.line.push_str(&format!(",\"{key}\":{value}"));
        self
    }

    /// Append a float field via shortest-roundtrip `{}` formatting, so
    /// the receiver can parse back the bit-identical value.
    pub fn num_field(mut self, key: &str, value: f64) -> Self {
        self.line.push_str(&format!(",\"{key}\":{value}"));
        self
    }

    /// Append a bare JSON boolean field.
    pub fn bool_field(mut self, key: &str, value: bool) -> Self {
        self.line.push_str(&format!(",\"{key}\":{value}"));
        self
    }

    /// Close the JSON object and return the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.line.push('}');
        self.line
    }
}

/// A received response line with typed field access. Thin by design:
/// it keeps the raw line and scans it per field with
/// [`tab_storage::trace_reader::field`], so the client needs no JSON
/// dependency and unknown fields from a newer server are ignored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    line: String,
}

impl Response {
    /// Accept a received line as a `tab-wire-v1` response, rejecting
    /// anything that does not open with [`RESPONSE_PREFIX`] or does not
    /// close its JSON object — a torn half-line from a connection cut
    /// mid-write must fail parse, not masquerade as a short response.
    pub fn parse(line: &str) -> Result<Response, String> {
        let line = line.trim_end_matches(['\r', '\n']);
        if !line.starts_with(RESPONSE_PREFIX) {
            return Err(format!("not a tab-wire-v1 response: `{line}`"));
        }
        if !line.ends_with('}') {
            return Err(format!("torn tab-wire-v1 response: `{line}`"));
        }
        Ok(Response {
            line: line.to_string(),
        })
    }

    /// The raw response line.
    pub fn line(&self) -> &str {
        &self.line
    }

    /// Whether the request succeeded.
    pub fn is_ok(&self) -> bool {
        field(&self.line, "ok") == Some("true")
    }

    /// The error message of an `"ok":false` envelope.
    pub fn error(&self) -> Option<String> {
        self.str_field("error")
    }

    /// Whether this is an `"ok":false` envelope the server marked safe
    /// to retry (the request was not applied).
    pub fn is_retryable(&self) -> bool {
        !self.is_ok() && field(&self.line, "retryable") == Some("true")
    }

    /// The machine-readable reason of a retryable envelope, e.g.
    /// `overloaded`.
    pub fn reason(&self) -> Option<String> {
        self.str_field("reason")
    }

    /// A string field, unescaped; `None` if absent.
    pub fn str_field(&self, key: &str) -> Option<String> {
        field(&self.line, key).map(unescape)
    }

    /// A float field; `None` if absent or non-numeric.
    pub fn num_field(&self, key: &str) -> Option<f64> {
        field(&self.line, key)?.parse().ok()
    }

    /// An integer field; `None` if absent or non-integral.
    pub fn int_field(&self, key: &str) -> Option<u64> {
        field(&self.line, key)?.parse().ok()
    }

    /// A boolean field; `None` if absent or not `true`/`false`.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        match field(&self.line, key) {
            Some("true") => Some(true),
            Some("false") => Some(false),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse_case_insensitively_with_verbatim_sql() {
        assert_eq!(parse_request("ping"), Ok(Request::Ping));
        assert_eq!(
            parse_request("query p SELECT COUNT(*) FROM t"),
            Ok(Request::Query {
                config: "p".into(),
                sql: "SELECT COUNT(*) FROM t".into()
            })
        );
        assert_eq!(
            parse_request("EXPLAIN  ix  SELECT a,  b FROM t"),
            Ok(Request::Explain {
                config: "ix".into(),
                sql: "SELECT a,  b FROM t".into()
            })
        );
        assert_eq!(
            parse_request("ADVISE NREF2J B 20"),
            Ok(Request::Advise {
                family: "NREF2J".into(),
                system: "B".into(),
                workload: 20
            })
        );
        assert_eq!(
            parse_request("ADVISE NREF2J C"),
            Ok(Request::Advise {
                family: "NREF2J".into(),
                system: "C".into(),
                workload: 50
            })
        );
    }

    #[test]
    fn keyed_insert_and_stats_parse() {
        assert_eq!(
            parse_request("INSERT p loader-3:17 INSERT INTO t VALUES (1, 'a:b')"),
            Ok(Request::Insert {
                config: "p".into(),
                client: "loader-3".into(),
                cseq: 17,
                sql: "INSERT INTO t VALUES (1, 'a:b')".into()
            })
        );
        assert_eq!(parse_request("stats"), Ok(Request::Stats));
        assert!(parse_request("INSERT p INSERT INTO t VALUES (1)")
            .unwrap_err()
            .contains("client:seq"));
        assert!(parse_request("INSERT p c:x INSERT INTO t VALUES (1)")
            .unwrap_err()
            .contains("sequence"));
        assert!(parse_request("INSERT p :1 INSERT INTO t VALUES (1)")
            .unwrap_err()
            .contains("client"));
        assert!(parse_request("INSERT p c:1").unwrap_err().contains("SQL"));
    }

    #[test]
    fn retryable_envelopes_and_torn_lines() {
        let line = ResponseBuilder::retryable_error("shed: too busy", "overloaded");
        let r = Response::parse(&line).unwrap();
        assert!(!r.is_ok());
        assert!(r.is_retryable());
        assert_eq!(r.reason().as_deref(), Some("overloaded"));
        assert_eq!(r.error().as_deref(), Some("shed: too busy"));
        // Permanent errors are not retryable.
        let r = Response::parse(&ResponseBuilder::error("no such table")).unwrap();
        assert!(!r.is_retryable());
        assert_eq!(r.reason(), None);
        // A torn half-line (connection cut mid-write) fails parse even
        // though it opens with the right prefix.
        let whole = ResponseBuilder::ok("query")
            .int_field("generation", 3)
            .finish();
        let torn = &whole[..whole.len() / 2];
        assert!(Response::parse(torn).unwrap_err().contains("torn"));
    }

    #[test]
    fn bad_requests_name_the_problem() {
        assert!(parse_request("").unwrap_err().contains("empty"));
        assert!(parse_request("FROB x").unwrap_err().contains("FROB"));
        assert!(parse_request("QUERY p").unwrap_err().contains("SQL"));
        assert!(parse_request("ADVISE NREF2J")
            .unwrap_err()
            .contains("system"));
        assert!(parse_request("ADVISE NREF2J B twelve")
            .unwrap_err()
            .contains("twelve"));
    }

    #[test]
    fn builder_and_response_round_trip() {
        let line = ResponseBuilder::ok("query")
            .int_field("generation", 3)
            .str_field("verdict", "done")
            .num_field("units", 0.1 + 0.2)
            .str_field("plan", "SeqScan(\"t\")")
            .finish();
        let r = Response::parse(&line).unwrap();
        assert!(r.is_ok());
        assert_eq!(r.str_field("verb").as_deref(), Some("query"));
        assert_eq!(r.int_field("generation"), Some(3));
        // Bit-identical float round-trip through the wire.
        assert_eq!(r.num_field("units"), Some(0.1 + 0.2));
        assert_eq!(r.str_field("plan").as_deref(), Some("SeqScan(\"t\")"));
        assert_eq!(r.error(), None);
    }

    #[test]
    fn error_envelope_parses() {
        let line = ResponseBuilder::error("no such table `x`");
        let r = Response::parse(&line).unwrap();
        assert!(!r.is_ok());
        assert_eq!(r.error().as_deref(), Some("no such table `x`"));
        assert!(Response::parse("hello").is_err());
    }
}
