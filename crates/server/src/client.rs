//! A blocking `tab-wire-v1` client: one request line out, one response
//! line back. The load generator and `tab client` are both built on
//! this; it is intentionally tiny (a `TcpStream` and a line buffer).
//!
//! [`RetryClient`] layers reconnect-and-retry on top: every write is
//! sequence-keyed through the `INSERT` verb, so resending after a
//! dropped connection or an `overloaded` shed never double-applies a
//! row (the server replays the cached ack, `"deduped":true`) and never
//! loses one. Reads are retried because they are naturally idempotent.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::Response;

/// A connected client. Requests are strictly serial per client —
/// concurrency in the benchmark comes from running many clients.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a serving front end.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Send one raw request line and return the raw response line
    /// (trailing newline stripped). An empty read means the server
    /// closed the connection.
    pub fn request_line(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end_matches(['\r', '\n']).to_string())
    }

    /// Send one request line and parse the response envelope.
    pub fn request(&mut self, line: &str) -> Result<Response, String> {
        let raw = self.request_line(line).map_err(|e| e.to_string())?;
        Response::parse(&raw)
    }

    /// `QUERY <config> <sql>`.
    pub fn query(&mut self, config: &str, sql: &str) -> Result<Response, String> {
        self.request(&format!("QUERY {config} {sql}"))
    }

    /// `EXPLAIN <config> <sql>`.
    pub fn explain(&mut self, config: &str, sql: &str) -> Result<Response, String> {
        self.request(&format!("EXPLAIN {config} {sql}"))
    }

    /// `PING`.
    pub fn ping(&mut self) -> Result<Response, String> {
        self.request("PING")
    }

    /// `STATS` — the server's serving counters.
    pub fn stats(&mut self) -> Result<Response, String> {
        self.request("STATS")
    }

    /// `QUIT` — the server acknowledges, then closes this connection.
    pub fn quit(mut self) -> Result<Response, String> {
        self.request("QUIT")
    }

    /// `SHUTDOWN` — the server acknowledges, then stops entirely.
    pub fn shutdown(mut self) -> Result<Response, String> {
        self.request("SHUTDOWN")
    }
}

/// A reconnecting client with idempotent, sequence-keyed writes.
///
/// The retry loop answers the classic lost-ack problem: a connection
/// that dies *after* the server applied an INSERT but *before* the ack
/// arrived is indistinguishable (to the client) from one that died
/// before the apply. [`RetryClient::insert`] resends the same
/// `<client>:<seq>` key until an answer arrives; the server's dedup
/// table turns the ambiguous resend into the original acknowledgement.
///
/// Retried outcomes: I/O errors, torn (half-written) response lines,
/// and envelopes the server marked `"retryable":true` (overload
/// shedding). Permanent errors — bad SQL, unknown configuration, stale
/// sequence — surface immediately.
#[derive(Debug)]
pub struct RetryClient {
    addr: String,
    client_id: String,
    next_seq: u64,
    conn: Option<Client>,
    connected_once: bool,
    max_attempts: u32,
    base_backoff: Duration,
    retries: u64,
    reconnects: u64,
}

impl RetryClient {
    /// A client identified as `client_id` (the dedup scope), talking to
    /// `addr`. Connects lazily on the first request.
    pub fn new(addr: impl Into<String>, client_id: impl Into<String>) -> RetryClient {
        RetryClient {
            addr: addr.into(),
            client_id: client_id.into(),
            next_seq: 1,
            conn: None,
            connected_once: false,
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            retries: 0,
            reconnects: 0,
        }
    }

    /// Point further requests at a new address — how a chaos harness
    /// follows a killed-and-restarted server to its new port. Sequence
    /// numbering continues: the WAL-rebuilt dedup table on the restarted
    /// server still recognizes this client.
    pub fn set_addr(&mut self, addr: impl Into<String>) {
        self.addr = addr.into();
        self.conn = None;
    }

    /// Requests resent after a retryable failure so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Connections re-established so far (excluding the first).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The sequence number the next [`RetryClient::insert`] will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn conn(&mut self) -> std::io::Result<&mut Client> {
        if self.conn.is_none() {
            let c = Client::connect(&self.addr)?;
            if self.connected_once {
                self.reconnects += 1;
            }
            self.connected_once = true;
            self.conn = Some(c);
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }

    /// Send `line` until a whole response arrives, reconnecting and
    /// backing off (bounded exponential) between attempts. Returns the
    /// last error when every attempt failed.
    fn request_with_retry(&mut self, line: &str) -> Result<Response, String> {
        let mut last = String::new();
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                self.retries += 1;
                let backoff = self.base_backoff * 2u32.saturating_pow(attempt - 1);
                std::thread::sleep(backoff.min(Duration::from_millis(500)));
            }
            let conn = match self.conn() {
                Ok(c) => c,
                Err(e) => {
                    last = format!("connect {}: {e}", self.addr);
                    continue;
                }
            };
            match conn.request(line) {
                Ok(r) if r.is_retryable() => {
                    last = r.error().unwrap_or_else(|| "retryable error".into());
                }
                Ok(r) => return Ok(r),
                Err(e) => {
                    // An I/O error or torn line: the connection is in
                    // an unknown state, drop it and reconnect.
                    last = e;
                    self.conn = None;
                }
            }
        }
        Err(format!(
            "request failed after {} attempts: {last}",
            self.max_attempts
        ))
    }

    /// An idempotent, sequence-keyed INSERT. The sequence number only
    /// advances on success, so a failed request is retried under the
    /// same key and can never double-apply.
    pub fn insert(&mut self, config: &str, sql: &str) -> Result<Response, String> {
        let seq = self.next_seq;
        let line = format!("INSERT {config} {}:{seq} {sql}", self.client_id);
        let r = self.request_with_retry(&line)?;
        if r.is_ok() {
            self.next_seq = seq + 1;
        }
        Ok(r)
    }

    /// `QUERY` with retry (reads are naturally idempotent).
    pub fn query(&mut self, config: &str, sql: &str) -> Result<Response, String> {
        self.request_with_retry(&format!("QUERY {config} {sql}"))
    }

    /// `STATS` with retry.
    pub fn stats(&mut self) -> Result<Response, String> {
        self.request_with_retry("STATS")
    }

    /// `PING` with retry.
    pub fn ping(&mut self) -> Result<Response, String> {
        self.request_with_retry("PING")
    }
}
