//! A blocking `tab-wire-v1` client: one request line out, one response
//! line back. The load generator and `tab client` are both built on
//! this; it is intentionally tiny (a `TcpStream` and a line buffer).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::Response;

/// A connected client. Requests are strictly serial per client —
/// concurrency in the benchmark comes from running many clients.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a serving front end.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Send one raw request line and return the raw response line
    /// (trailing newline stripped). An empty read means the server
    /// closed the connection.
    pub fn request_line(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end_matches(['\r', '\n']).to_string())
    }

    /// Send one request line and parse the response envelope.
    pub fn request(&mut self, line: &str) -> Result<Response, String> {
        let raw = self.request_line(line).map_err(|e| e.to_string())?;
        Response::parse(&raw)
    }

    /// `QUERY <config> <sql>`.
    pub fn query(&mut self, config: &str, sql: &str) -> Result<Response, String> {
        self.request(&format!("QUERY {config} {sql}"))
    }

    /// `EXPLAIN <config> <sql>`.
    pub fn explain(&mut self, config: &str, sql: &str) -> Result<Response, String> {
        self.request(&format!("EXPLAIN {config} {sql}"))
    }

    /// `PING`.
    pub fn ping(&mut self) -> Result<Response, String> {
        self.request("PING")
    }

    /// `QUIT` — the server acknowledges, then closes this connection.
    pub fn quit(mut self) -> Result<Response, String> {
        self.request("QUIT")
    }

    /// `SHUTDOWN` — the server acknowledges, then stops entirely.
    pub fn shutdown(mut self) -> Result<Response, String> {
        self.request("SHUTDOWN")
    }
}
