//! `tab` — the tab-bench command line.
//!
//! ```text
//! tab gen     --db nref:2000 --out DIR            dump a database as CSVs
//! tab explain --db nref:2000 --config 1c "SQL"    show the chosen plan + estimate
//! tab run     --db nref:2000 --config p  "SQL"    execute (query or INSERT)
//! tab advise  --db skth:0.01 --family SkTH3Js --system C
//! tab bench   --db nref:2000 --family NREF2J --configs p,1c
//! tab goal    --db nref:2000 --family NREF2J --config 1c --steps "10:0.1,60:0.5"
//! ```
//!
//! Databases are generated on the fly: `nref:<proteins>`,
//! `skth:<scale>`, `unth:<scale>` (defaults: `nref:2000`, scale `0.005`).

mod args;

use std::process::ExitCode;

use std::sync::Arc;

use args::Args;
use tab_advisor::{AdvisorInput, Recommender, SystemA, SystemB, SystemC};
use tab_bench_harness::chaos::{run_chaos_bench, ChaosOptions};
use tab_bench_harness::converge::{run_convergence, ConvergenceSpec};
use tab_bench_harness::replay::{diff, render_summary, replay_str, report_json, DiffOptions};
use tab_bench_harness::serve_bench::{run_serve_bench, LoadMode, ServeBenchOptions};
use tab_core::convergence::{
    convergence_csv_rows, convergence_json, render_convergence_table, CSV_HEADER,
};
use tab_core::report::render_cfc_ascii;
use tab_core::{run_workload_with, Goal, Parallelism};
use tab_datagen::{generate_nref, generate_tpch, Distribution, NrefParams, TpchParams};
use tab_engine::{
    apply_insert, ChargePolicy, EngineState, ExecOpts, PoolOpts, Session, SharedEngine,
};
use tab_families::{sample_preserving_par, Family};
use tab_server::{Client, ServeOptions, Server};
use tab_sqlq::{parse_statement, Statement};
use tab_storage::{atomic_write, BuiltConfiguration, Database, FaultPlan, Pager};

const USAGE: &str = "\
tab — benchmarking framework for configuration recommenders

USAGE:
  tab gen     --db SPEC --out DIR [--seed N]
  tab explain --db SPEC [--config p|1c] [--timeout-secs T] \"SQL\"
  tab run     --db SPEC [--config p|1c] [--timeout-secs T] \"SQL\"
  tab advise  --db SPEC --family NAME [--system A|B|C] [--workload N] [--trace PATH]
  tab bench   --db SPEC --family NAME [--configs p,1c] [--workload N] [--timeout-secs T]
  tab goal    --db SPEC --family NAME --steps \"10:0.1,60:0.5\" [--config p|1c]
  tab faults  SPEC                    validate a fault-injection spec
                                      (see `repro --faults` / DESIGN.md §10)
  tab replay    TRACE.jsonl           reconstruct a traced run (exit 1 on a
                                      torn trace; never half-replays)
  tab tracediff GOLDEN FRESH [--tolerance REL] [--report PATH]
                                      structural diff of two traces; exit 1
                                      and name every divergence (DESIGN.md §11)
  tab converge  --db SPEC --family NAME [--profiles A,B,C]
                [--ladder 50,200,800,unlimited] [--max-structures N]
                [--workload N] [--out DIR]
                                      objective-vs-budget convergence curves
  tab serve     --db SPEC [--addr HOST:PORT] [--timeout-secs T]
                [--wal PATH] [--faults SPEC] [--max-connections N]
                [--admission N]
                                      serve configs p and 1c over tab-wire-v1
                                      (thread per connection; stop with the
                                      SHUTDOWN verb). --wal makes inserts
                                      durable: logged + fsynced before the
                                      ack, replayed on restart (DESIGN.md §15)
  tab client    --addr HOST:PORT \"REQUEST LINE\"
                                      send one wire request, print the response
  tab bench serve --db SPEC --family NAME [--clients N] [--requests N]
                [--workload N] [--mode closed|open] [--interarrival-ms MS]
                [--faults SPEC] [--out DIR]
                                      serving throughput benchmark: boots a
                                      server, drives N clients, verifies every
                                      wire result against a direct session,
                                      writes BENCH_serve.json +
                                      serve_requests.csv
  tab bench chaos --db nref:N [--family NAME] [--inserts N]
                [--kill-after N] [--drop-at N] [--queries N]
                [--workload N] [--wal PATH] [--out DIR]
                                      durability proof: spawns a real
                                      tab serve --wal child, loses one INSERT
                                      ack to a drop:conn fault (the retry must
                                      dedup), kill -9s it mid-load, restarts
                                      on the same WAL, and proves every acked
                                      INSERT survived with post-recovery
                                      queries bit-identical to an
                                      uninterrupted baseline; writes
                                      BENCH_chaos.json

`tab serve` and `tab bench serve` read --faults (or TAB_FAULTS) for
wire-level chaos: drop:conn:N, torn:wire:N, delay:conn:N, plus the WAL
sites enospc:wal and panic:wal:append:N (validate with `tab faults`).

All commands accept --threads N (worker threads for grid/workload
fan-out; 0 or absent = all cores). `explain` and `run` additionally
accept --query-threads N (intra-query morsel workers; default 1,
0 = all cores), --morsel-rows N (rows per morsel, default 4096),
--buffer-pages N (run through an N-frame buffer pool with clock
eviction and spill-to-disk; 0 = off, the default) and
--charge observed|metered (how the meter prices pool traffic:
`observed` charges misses only, `metered` keeps the legacy model-based
charges so totals match a pool-less run). Results are identical at any
thread count or morsel size.

DB SPEC: nref[:proteins] | skth[:scale] | unth[:scale]
FAMILY:  NREF2J | NREF3J | SkTH3J | SkTH3Js | UnTH3J";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "gen" => cmd_gen(&args).map(|()| ExitCode::SUCCESS),
        "explain" => cmd_explain(&args).map(|()| ExitCode::SUCCESS),
        "run" => cmd_run(&args).map(|()| ExitCode::SUCCESS),
        "advise" => cmd_advise(&args).map(|()| ExitCode::SUCCESS),
        "bench" => cmd_bench(&args).map(|()| ExitCode::SUCCESS),
        "goal" => cmd_goal(&args).map(|()| ExitCode::SUCCESS),
        "faults" => cmd_faults(&args).map(|()| ExitCode::SUCCESS),
        "replay" => cmd_replay(&args).map(|()| ExitCode::SUCCESS),
        "tracediff" => cmd_tracediff(&args),
        "converge" => cmd_converge(&args).map(|()| ExitCode::SUCCESS),
        "serve" => cmd_serve(&args).map(|()| ExitCode::SUCCESS),
        "client" => cmd_client(&args).map(|()| ExitCode::SUCCESS),
        "" | "help" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Generate the database named by a `--db` spec.
fn load_db(args: &Args) -> Result<(Database, String), String> {
    let spec = args.get("db").unwrap_or("nref");
    let seed: u64 = args.get_parsed("seed")?.unwrap_or(2005);
    let (kind, param) = match spec.split_once(':') {
        Some((k, p)) => (k, Some(p)),
        None => (spec, None),
    };
    let db = match kind {
        "nref" => {
            let proteins = match param {
                Some(p) => p.parse().map_err(|_| format!("bad protein count `{p}`"))?,
                None => 2_000,
            };
            generate_nref(NrefParams { proteins, seed })
        }
        "skth" | "unth" => {
            let scale = match param {
                Some(p) => p.parse().map_err(|_| format!("bad scale `{p}`"))?,
                None => 0.005,
            };
            generate_tpch(TpchParams {
                scale,
                distribution: if kind == "skth" {
                    Distribution::Zipf(1.0)
                } else {
                    Distribution::Uniform
                },
                seed,
            })
        }
        other => return Err(format!("unknown database `{other}`")),
    };
    Ok((db, kind.to_uppercase()))
}

fn load_config(args: &Args, db: &Database, label: &str) -> Result<BuiltConfiguration, String> {
    match args.get("config").unwrap_or("p") {
        "p" | "P" => Ok(tab_core::build_p(db, label)),
        "1c" | "1C" => Ok(tab_core::build_1c(db, label)),
        other => Err(format!("unknown config `{other}` (use p or 1c)")),
    }
}

fn family_of(name: &str) -> Result<Family, String> {
    Family::parse(name).ok_or_else(|| format!("unknown family `{name}`"))
}

fn sql_arg(args: &Args) -> Result<String, String> {
    if args.positional.is_empty() {
        return Err("missing SQL argument".into());
    }
    Ok(args.positional.join(" "))
}

/// The `--threads` flag as a [`Parallelism`] (0 or absent = all cores).
fn par_of(args: &Args) -> Result<Parallelism, String> {
    Ok(Parallelism::new(args.get_parsed("threads")?.unwrap_or(0)))
}

/// The `--faults` flag (or the `TAB_FAULTS` environment variable) as an
/// armed fault plan — the same grammar `repro --faults` speaks,
/// validated by `tab faults`.
fn faults_of(args: &Args) -> Result<Option<Arc<FaultPlan>>, String> {
    let spec = match args.get("faults") {
        Some(s) => Some(s.to_string()),
        None => std::env::var("TAB_FAULTS").ok(),
    };
    match spec {
        Some(s) if !s.trim().is_empty() => Ok(Some(Arc::new(FaultPlan::parse(&s)?))),
        _ => Ok(None),
    }
}

/// The `--query-threads` / `--morsel-rows` flags as an [`ExecOpts`] for
/// the morsel-driven executor. Intra-query parallelism defaults to
/// sequential (`--query-threads 1`); 0 means all cores. Results are
/// identical at any setting — only wall-clock changes.
fn exec_opts_of(args: &Args) -> Result<ExecOpts<'static>, String> {
    let threads: usize = args.get_parsed("query-threads")?.unwrap_or(1);
    let morsel_rows: usize = args
        .get_parsed("morsel-rows")?
        .unwrap_or(tab_engine::DEFAULT_MORSEL_ROWS);
    if morsel_rows == 0 {
        return Err("--morsel-rows must be at least 1".into());
    }
    Ok(ExecOpts {
        par: Parallelism::new(threads),
        morsel_rows,
        ..ExecOpts::default()
    })
}

/// The `--buffer-pages` flag: when nonzero, a spill pager with every
/// base-table heap materialised, ready to back a [`PoolOpts`].
fn pager_of(args: &Args, db: &Database) -> Result<Option<Pager>, String> {
    let pages: usize = args.get_parsed("buffer-pages")?.unwrap_or(0);
    if pages == 0 {
        return Ok(None);
    }
    let mut pager = Pager::new("cli").map_err(|e| format!("cannot create spill pager: {e}"))?;
    let names: Vec<String> = db.table_names().map(String::from).collect();
    for name in &names {
        pager
            .materialize_table(name, db.table(name).expect("listed table exists"))
            .map_err(|e| format!("cannot materialise table `{name}`: {e}"))?;
    }
    Ok(Some(pager))
}

/// The `--buffer-pages`/`--charge` flags as a [`PoolOpts`] borrowing the
/// pager built by [`pager_of`] (which must outlive the session).
fn pool_of<'a>(args: &Args, pager: Option<&'a Pager>) -> Result<Option<PoolOpts<'a>>, String> {
    let pages: usize = args.get_parsed("buffer-pages")?.unwrap_or(0);
    if pages == 0 {
        return Ok(None);
    }
    let mut pool = PoolOpts::new(pages);
    if let Some(s) = args.get("charge") {
        pool.policy = ChargePolicy::parse(s)?;
    }
    pool.pager = pager;
    Ok(Some(pool))
}

fn workload_for(
    args: &Args,
    db: &Database,
    p: &BuiltConfiguration,
    family: Family,
) -> Result<Vec<tab_sqlq::Query>, String> {
    let n: usize = args.get_parsed("workload")?.unwrap_or(50);
    let par = par_of(args)?;
    let all = family.enumerate_with(db, par);
    if all.is_empty() {
        return Err(format!(
            "family {} is empty on this database",
            family.name()
        ));
    }
    let session = Session::new(db, p);
    Ok(sample_preserving_par(
        &all,
        |q| session.estimate(q).unwrap_or(f64::INFINITY),
        n,
        2005,
        par,
    ))
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let (db, label) = load_db(args)?;
    let out = args.require("out")?;
    for table in db.tables() {
        let path = std::path::Path::new(out).join(format!("{}.csv", table.schema().name));
        tab_storage::export_table(table, &path).map_err(|e| e.to_string())?;
        println!(
            "{}: {} rows -> {}",
            table.schema().name,
            table.n_rows(),
            path.display()
        );
    }
    println!("{label} exported to {out}");
    Ok(())
}

fn cmd_explain(args: &Args) -> Result<(), String> {
    let (db, label) = load_db(args)?;
    let built = load_config(args, &db, &label)?;
    let sql = sql_arg(args)?;
    let q = tab_sqlq::parse(&sql).map_err(|e| e.to_string())?;
    let timeout: Option<f64> = args
        .get_parsed::<f64>("timeout-secs")?
        .map(|s| s / tab_engine::SIM_SECONDS_PER_UNIT);
    let pager = pager_of(args, &db)?;
    let exec = ExecOpts {
        pool: pool_of(args, pager.as_ref())?,
        ..exec_opts_of(args)?
    };
    let session = Session::new(&db, &built).with_exec(exec);
    // Plan with the decision trace, then execute the same query
    // instrumented so the rendering pairs estimates with actuals
    // (under `--buffer-pages` the actuals gain a per-operator `pages`
    // hit/miss column).
    let (plan, expl) = session
        .plan_query_explained(&q)
        .map_err(|e| e.to_string())?;
    let (r, acts) = session
        .run_instrumented(&q, timeout)
        .map_err(|e| e.to_string())?;
    print!(
        "{}",
        tab_engine::render_explain(&plan, Some(&acts), Some(&expl))
    );
    if !r.io.is_zero() {
        println!(
            "buffer pool: {} hits, {} misses ({} seq, {} random), {} evictions, \
             {:.1}% hit rate",
            r.io.hits,
            r.io.misses(),
            r.io.misses_seq,
            r.io.misses_random,
            r.io.evictions,
            r.io.hit_rate() * 100.0
        );
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let (mut db, label) = load_db(args)?;
    let mut built = load_config(args, &db, &label)?;
    let sql = sql_arg(args)?;
    let timeout: Option<f64> = args
        .get_parsed::<f64>("timeout-secs")?
        .map(|s| s / tab_engine::SIM_SECONDS_PER_UNIT);
    match parse_statement(&sql).map_err(|e| e.to_string())? {
        Statement::Insert(ins) => {
            let out = apply_insert(&ins, &mut db, &mut built).map_err(|e| e.to_string())?;
            println!(
                "inserted row {} ({:.2} units of maintenance)",
                out.row_id, out.units
            );
        }
        Statement::Query(q) => {
            let pager = pager_of(args, &db)?;
            let exec = ExecOpts {
                pool: pool_of(args, pager.as_ref())?,
                ..exec_opts_of(args)?
            };
            let session = Session::new(&db, &built).with_exec(exec);
            let r = session.run(&q, timeout).map_err(|e| e.to_string())?;
            match (&r.outcome, &r.rows) {
                (o, Some(rows)) => {
                    for row in rows.iter().take(25) {
                        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                        println!("{}", cells.join(" | "));
                    }
                    if rows.len() > 25 {
                        println!("... ({} rows total)", rows.len());
                    }
                    println!(
                        "-- {} rows in {:.2} simulated seconds via {}",
                        rows.len(),
                        o.sim_seconds_lower_bound(),
                        r.plan.describe()
                    );
                }
                _ => println!(
                    "TIMEOUT after {:.0} simulated seconds",
                    r.outcome.sim_seconds_lower_bound()
                ),
            }
            if !r.io.is_zero() {
                println!(
                    "-- buffer pool: {} hits, {} misses ({} seq, {} random), \
                     {} evictions, {:.1}% hit rate",
                    r.io.hits,
                    r.io.misses(),
                    r.io.misses_seq,
                    r.io.misses_random,
                    r.io.evictions,
                    r.io.hit_rate() * 100.0
                );
            }
        }
    }
    Ok(())
}

fn cmd_advise(args: &Args) -> Result<(), String> {
    let (db, label) = load_db(args)?;
    let family = family_of(args.require("family")?)?;
    let p = tab_core::build_p(&db, &label);
    let budget = tab_core::space_budget(&db, &label);
    let w = workload_for(args, &db, &p, family)?;
    let system = args.get("system").unwrap_or("B");
    let rec: &dyn Recommender = match system.to_uppercase().as_str() {
        "A" => &SystemA {
            capacity_limit: 4_000,
        },
        "B" => &SystemB,
        "C" => &SystemC,
        other => return Err(format!("unknown system `{other}`")),
    };
    // `--trace PATH` captures the advisor's round-by-round decisions as
    // tab-trace-v1 JSONL; the sink must outlive the borrowed Trace.
    let sink = match args.get("trace") {
        Some(path) => Some(
            tab_core::FileTraceSink::create(std::path::Path::new(path))
                .map_err(|e| format!("cannot create trace file `{path}`: {e}"))?,
        ),
        None => None,
    };
    let input = AdvisorInput {
        db: &db,
        current: &p,
        workload: &w,
        budget_bytes: budget,
        par: par_of(args)?,
        trace: sink
            .as_ref()
            .map(|s| tab_core::Trace::to(s))
            .unwrap_or_else(tab_core::Trace::disabled),
    };
    let (cfg, stats) = rec.recommend_with_stats(&input);
    eprintln!(
        "what-if calls: {} (planner {}, cache hits {}, {:.0}% hit rate) in {:.2}s",
        stats.whatif_calls,
        stats.planner_calls,
        stats.cache_hits,
        stats.cache_hit_rate() * 100.0,
        stats.wall_seconds
    );
    match cfg {
        None => println!(
            "System {} produced NO recommendation for {} ({} queries) — \
             candidate space exceeds its capacity",
            rec.name(),
            family.name(),
            w.len()
        ),
        Some(cfg) => {
            println!(
                "System {} recommendation for {} ({} queries, budget {} MiB):",
                rec.name(),
                family.name(),
                w.len(),
                budget / (1 << 20)
            );
            for i in &cfg.indexes {
                if !p.config.indexes.contains(i) {
                    println!("  CREATE INDEX {i}");
                }
            }
            for m in &cfg.mviews {
                println!(
                    "  CREATE MATERIALIZED VIEW {} OVER {} ({} indexes)",
                    m.spec.name,
                    m.spec.base.join(" JOIN "),
                    m.indexes.len()
                );
            }
        }
    }
    // The sink stages at `<path>.tmp`; publish to the final path now
    // that the advise run completed.
    if let Some(s) = sink {
        s.finish().map_err(|e| format!("trace sink failed: {e}"))?;
    }
    Ok(())
}

/// `tab faults SPEC` — parse a fault plan and print what it would arm,
/// so specs can be validated before a long repro run.
fn cmd_faults(args: &Args) -> Result<(), String> {
    let spec = args
        .positional
        .first()
        .map(String::as_str)
        .or_else(|| args.get("spec"))
        .ok_or("faults needs a SPEC argument, e.g. `tab faults enospc:claims.csv`")?;
    let plan = tab_core::FaultPlan::parse(spec)?;
    for line in plan.describe() {
        println!("{line}");
    }
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    // `tab bench serve` is the serving throughput benchmark; everything
    // else is the classic per-configuration workload bench.
    if args.positional.first().map(String::as_str) == Some("serve") {
        return cmd_bench_serve(args);
    }
    if args.positional.first().map(String::as_str) == Some("chaos") {
        return cmd_bench_chaos(args);
    }
    let (db, label) = load_db(args)?;
    let family = family_of(args.require("family")?)?;
    let p = tab_core::build_p(&db, &label);
    let w = workload_for(args, &db, &p, family)?;
    let timeout_units = args
        .get_parsed::<f64>("timeout-secs")?
        .map(|s| s / tab_engine::SIM_SECONDS_PER_UNIT)
        .unwrap_or(tab_engine::DEFAULT_TIMEOUT_UNITS);
    let configs = args.get("configs").unwrap_or("p,1c");
    let mut curves = Vec::new();
    for name in configs.split(',') {
        let built = match name.trim() {
            "p" | "P" => tab_core::build_p(&db, &label),
            "1c" | "1C" => tab_core::build_1c(&db, &label),
            other => return Err(format!("unknown config `{other}`")),
        };
        let run = run_workload_with(&db, &built, &w, timeout_units, par_of(args)?);
        println!(
            "{:>4}: total (lower bound) {:.0}s, timeouts {}/{}",
            name,
            run.total_lower_bound_sim_seconds(),
            run.timeout_count(),
            w.len()
        );
        curves.push((name.trim().to_uppercase(), run.cfc()));
    }
    let refs: Vec<(&str, &tab_core::Cfc)> = curves.iter().map(|(l, c)| (l.as_str(), c)).collect();
    let max_x = tab_engine::units_to_sim_seconds(timeout_units) * 1.1;
    println!("\n{}", render_cfc_ascii(&refs, 0.1, max_x, 64, 16));
    Ok(())
}

/// `tab serve` — boot the concurrent serving front end over the `p`
/// and `1c` configurations and block until a wire `SHUTDOWN` arrives.
/// With `--wal PATH` the engine is durable: the log is replayed before
/// the listener binds (the recovery line precedes the serving line, a
/// contract `tab bench chaos` parses), and every insert is fsynced
/// before its acknowledgement.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let (db, label) = load_db(args)?;
    let p = tab_core::build_p(&db, &label);
    let c1 = tab_core::build_1c(&db, &label);
    let timeout_units = args
        .get_parsed::<f64>("timeout-secs")?
        .map(|s| s / tab_engine::SIM_SECONDS_PER_UNIT)
        .unwrap_or(tab_engine::DEFAULT_TIMEOUT_UNITS);
    let faults = faults_of(args)?;
    let state = EngineState::new(db)
        .with_config("p", p)
        .with_config("1c", c1);
    let engine = match args.get("wal") {
        Some(path) => {
            let t0 = std::time::Instant::now();
            let (engine, report) =
                SharedEngine::with_wal(state, std::path::Path::new(path), faults.clone())
                    .map_err(|e| format!("wal recovery failed: {e}"))?;
            println!(
                "wal: recovered {} records (torn tail: {}) in {:.3}s",
                report.replayed,
                if report.torn_tail { "yes" } else { "no" },
                t0.elapsed().as_secs_f64()
            );
            Arc::new(engine)
        }
        None => Arc::new(SharedEngine::new(state)),
    };
    let defaults = ServeOptions::default();
    let opts = ServeOptions {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        label: label.clone(),
        timeout_units,
        par: par_of(args)?,
        faults,
        max_connections: args
            .get_parsed("max-connections")?
            .unwrap_or(defaults.max_connections),
        admission: args.get_parsed("admission")?.unwrap_or(defaults.admission),
        ..defaults
    };
    let mut server =
        Server::start(engine, opts).map_err(|e| format!("cannot start server: {e}"))?;
    println!("serving {label} (configs p, 1c) on {}", server.addr());
    println!("stop with: tab client --addr {} SHUTDOWN", server.addr());
    server.wait();
    println!("server stopped");
    Ok(())
}

/// `tab client` — send one `tab-wire-v1` request line, print the JSON
/// response line, exit nonzero on an `"ok":false` envelope.
fn cmd_client(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    if args.positional.is_empty() {
        return Err("client needs a request line, e.g. `tab client PING`".into());
    }
    let line = args.positional.join(" ");
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let response = client.request(&line)?;
    println!("{}", response.line());
    if response.is_ok() {
        Ok(())
    } else {
        Err(response
            .error()
            .unwrap_or_else(|| "request failed".to_string()))
    }
}

/// `tab bench serve` — the serving throughput benchmark (DESIGN.md
/// §14): boots an in-process server, drives it with the configured
/// load, verifies every wire result against a direct session, and
/// writes `BENCH_serve.json` + `serve_requests.csv`.
fn cmd_bench_serve(args: &Args) -> Result<(), String> {
    let (db, label) = load_db(args)?;
    let family = family_of(args.require("family")?)?;
    let mode = match args.get("mode").unwrap_or("closed") {
        "closed" => LoadMode::Closed,
        "open" => LoadMode::Open {
            interarrival: std::time::Duration::from_millis(
                args.get_parsed("interarrival-ms")?.unwrap_or(5),
            ),
        },
        other => return Err(format!("unknown mode `{other}` (use closed or open)")),
    };
    let defaults = ServeBenchOptions::default();
    let opts = ServeBenchOptions {
        clients: args.get_parsed("clients")?.unwrap_or(defaults.clients),
        requests: args.get_parsed("requests")?.unwrap_or(defaults.requests),
        workload: args.get_parsed("workload")?.unwrap_or(defaults.workload),
        mode,
        timeout_units: args
            .get_parsed::<f64>("timeout-secs")?
            .map(|s| s / tab_engine::SIM_SECONDS_PER_UNIT)
            .unwrap_or(tab_engine::DEFAULT_TIMEOUT_UNITS),
        par: par_of(args)?,
        faults: faults_of(args)?,
    };
    let report = run_serve_bench(&db, &label, family, &opts)?;
    let out = std::path::Path::new(args.get("out").unwrap_or("."));
    let json_path = out.join("BENCH_serve.json");
    let csv_path = out.join("serve_requests.csv");
    atomic_write(&json_path, report.json().as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
    atomic_write(&csv_path, report.requests_csv().as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", csv_path.display()))?;
    print!("{}", report.render_table());
    println!(
        "all {} wire results match the direct session baseline exactly",
        report.baseline_matches
    );
    println!("wrote {} and {}", json_path.display(), csv_path.display());
    Ok(())
}

/// `tab bench chaos` — the durability benchmark (DESIGN.md §15): spawn
/// a real `tab serve --wal` process, SIGKILL it mid-load with a wire
/// fault armed, restart it, and prove every acknowledged insert
/// survived and every post-recovery read matches an uninterrupted
/// baseline bit-for-bit. Writes `BENCH_chaos.json`.
fn cmd_bench_chaos(args: &Args) -> Result<(), String> {
    let (db, label) = load_db(args)?;
    let family = family_of(args.get("family").unwrap_or("NREF2J"))?;
    let out = std::path::PathBuf::from(args.get("out").unwrap_or("."));
    let server_bin = std::env::current_exe()
        .map_err(|e| format!("cannot locate the tab binary for the child server: {e}"))?;
    let defaults = ChaosOptions::default();
    let opts = ChaosOptions {
        server_bin,
        db_spec: args.require("db")?.to_string(),
        wal_path: args
            .get("wal")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| out.join("chaos.wal")),
        inserts: args.get_parsed("inserts")?.unwrap_or(defaults.inserts),
        kill_after: args
            .get_parsed("kill-after")?
            .unwrap_or(defaults.kill_after),
        drop_at: args.get_parsed("drop-at")?.unwrap_or(defaults.drop_at),
        queries: args.get_parsed("queries")?.unwrap_or(defaults.queries),
        workload: args.get_parsed("workload")?.unwrap_or(defaults.workload),
        par: par_of(args)?,
    };
    let report = run_chaos_bench(&db, &label, family, &opts)?;
    let json_path = out.join("BENCH_chaos.json");
    atomic_write(&json_path, report.json().as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
    print!("{}", report.render_table());
    println!("wrote {}", json_path.display());
    Ok(())
}

/// `tab replay TRACE.jsonl` — reconstruct a traced run's per-cell
/// operator totals and advisor searches. A torn trace (crashed writer
/// or injected `truncate:trace`) is an error, never a half-replay.
fn cmd_replay(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("replay needs a TRACE.jsonl argument")?;
    let input = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let r = replay_str(&input).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", render_summary(&r));
    Ok(())
}

/// `tab tracediff GOLDEN FRESH` — structural diff of two traces. Exits
/// 0 when structurally identical, 1 with every divergence named
/// (family/config/query/op or advisor run/round) otherwise. `--report
/// PATH` additionally writes the machine-readable `tab-tracediff-v1`
/// document; `--tolerance REL` sets the relative float tolerance
/// (plan shapes, row/probe counts, outcomes, and picks stay exact).
fn cmd_tracediff(args: &Args) -> Result<ExitCode, String> {
    let [golden, fresh] = args.positional.as_slice() else {
        return Err("tracediff needs GOLDEN and FRESH trace arguments".into());
    };
    let tolerance: f64 = args.get_parsed("tolerance")?.unwrap_or(0.0);
    let read = |path: &str| {
        let input =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        replay_str(&input).map_err(|e| format!("{path}: {e}"))
    };
    let g = read(golden)?;
    let f = read(fresh)?;
    let findings = diff(&g, &f, DiffOptions { tolerance });
    if let Some(report) = args.get("report") {
        let doc = report_json(golden, fresh, tolerance, &findings);
        std::fs::write(report, doc).map_err(|e| format!("cannot write {report}: {e}"))?;
    }
    if findings.is_empty() {
        println!(
            "traces are structurally identical \
             ({} cells, {} advisor runs, tolerance {tolerance:e})",
            g.cells.len(),
            g.advisor_runs.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for fd in &findings {
            println!("{fd}");
        }
        eprintln!(
            "{} structural divergence(s) between {golden} and {fresh}",
            findings.len()
        );
        Ok(ExitCode::FAILURE)
    }
}

/// `tab converge` — sweep recommender profiles over a what-if budget
/// ladder and print (optionally write) the convergence curves.
fn cmd_converge(args: &Args) -> Result<(), String> {
    let (db, label) = load_db(args)?;
    let family = family_of(args.require("family")?)?;
    let p = tab_core::build_p(&db, &label);
    let budget = tab_core::space_budget(&db, &label);
    let w = workload_for(args, &db, &p, family)?;
    let mut spec = ConvergenceSpec::default();
    if let Some(profiles) = args.get("profiles") {
        spec.profiles = profiles
            .split(',')
            .map(|s| s.trim().to_uppercase())
            .collect();
    }
    if let Some(ladder) = args.get("ladder") {
        spec.budget_ladder = ladder
            .split(',')
            .map(|s| {
                let s = s.trim();
                if s.eq_ignore_ascii_case("unlimited") || s.eq_ignore_ascii_case("none") {
                    Ok(None)
                } else {
                    s.parse()
                        .map(Some)
                        .map_err(|_| format!("bad ladder rung `{s}`"))
                }
            })
            .collect::<Result<_, String>>()?;
    }
    spec.max_structures = args.get_parsed("max-structures")?;
    let curves = run_convergence(
        &db,
        &p,
        family.name(),
        &w,
        budget,
        par_of(args)?,
        tab_core::Trace::disabled(),
        &spec,
    )?;
    print!("{}", render_convergence_table(&curves));
    if let Some(dir) = args.get("out") {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let csv = dir.join("convergence.csv");
        tab_core::report::write_csv(&csv, &CSV_HEADER, &convergence_csv_rows(&curves))
            .map_err(|e| format!("cannot write {}: {e}", csv.display()))?;
        let json = dir.join("BENCH_convergence.json");
        std::fs::write(&json, convergence_json(&curves))
            .map_err(|e| format!("cannot write {}: {e}", json.display()))?;
        println!("\nwrote {} and {}", csv.display(), json.display());
    }
    Ok(())
}

fn cmd_goal(args: &Args) -> Result<(), String> {
    let (db, label) = load_db(args)?;
    let family = family_of(args.require("family")?)?;
    let goal = Goal::parse(args.require("steps")?)?;
    let p = tab_core::build_p(&db, &label);
    let built = load_config(args, &db, &label)?;
    let w = workload_for(args, &db, &p, family)?;
    let run = run_workload_with(
        &db,
        &built,
        &w,
        tab_engine::DEFAULT_TIMEOUT_UNITS,
        par_of(args)?,
    );
    let cfc = run.cfc();
    println!(
        "goal {} on {} ({}): {}",
        args.require("steps")?,
        family.name(),
        built.config.name,
        if goal.satisfied_by(&cfc) {
            "SATISFIED"
        } else {
            "VIOLATED"
        }
    );
    for (x, f) in goal.steps() {
        println!(
            "  at {x:>8.1}s: required {f:.2}, achieved {:.2}",
            cfc.at(*x)
        );
    }
    Ok(())
}
