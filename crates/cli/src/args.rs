//! Minimal argument parsing for the `tab` CLI (no external crates).

use std::collections::BTreeMap;

/// Parsed command line: subcommand, `--key value` flags, positionals.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// `--key value` options and boolean `--key` switches (value `""`).
    pub flags: BTreeMap<String, String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding argv\[0\]).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty flag `--`".into());
                }
                // A flag consumes the next token as its value unless the
                // next token is another flag (then it is a switch).
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().expect("peeked"),
                    _ => String::new(),
                };
                if out.flags.insert(key.to_string(), value).is_some() {
                    return Err(format!("duplicate flag --{key}"));
                }
            } else if out.command.is_empty() {
                out.command = a;
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(String::as_str)
            .filter(|v| !v.is_empty())
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// Optional string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Boolean switch (present with or without a value).
    #[allow(dead_code)] // part of the CLI surface; used by tests
    pub fn switch(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Optional parsed numeric flag.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.flags.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("flag --{key}: cannot parse `{v}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn commands_flags_positionals() {
        let a = parse("run --db nref --timeout 30 SELECT");
        assert_eq!(a.command, "run");
        assert_eq!(a.require("db").unwrap(), "nref");
        assert_eq!(a.get_parsed::<f64>("timeout").unwrap(), Some(30.0));
        assert_eq!(a.positional, vec!["SELECT"]);
    }

    #[test]
    fn switches_have_empty_values() {
        let a = parse("gen --skew --out dir");
        assert!(a.switch("skew"));
        assert_eq!(a.get("out"), Some("dir"));
    }

    #[test]
    fn errors() {
        assert!(Args::parse(["--db".into(), "x".into(), "--db".into(), "y".into()]).is_err());
        let a = parse("run");
        assert!(a.require("db").is_err());
        assert!(a.get_parsed::<u64>("db").unwrap().is_none());
    }
}
