//! A vendored, dependency-free pseudo-random number generator exposing
//! the subset of the `rand` 0.9 API this workspace uses (`StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{random, random_range,
//! random_bool}`, `seq::SliceRandom::shuffle`).
//!
//! The build environment has no access to crates.io, so the workspace
//! aliases this crate as `rand` (`rand = { package = "tab-prng", ... }`).
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and — what actually matters for the benchmark —
//! fully deterministic for a given seed on every platform and at every
//! thread count. The stream differs from upstream `rand`'s `StdRng`
//! (ChaCha12); all workspace claims are qualitative shape checks that do
//! not depend on a particular stream.

#![warn(missing_docs)]

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution (the subset used
/// here: `f64` in `[0, 1)` and full-range integers).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that a uniform value can be drawn from (`a..b` / `a..=b`).
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draw from `[0, n)` without modulo bias (rejection sampling on the
/// top-most partial stripe).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // A full-width inclusive range would overflow the span;
                // the workspace never samples one, so draw raw bits then.
                let off = if span == 0 { rng.next_u64() } else { uniform_below(rng, span) };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i32, i64, u32, u64, usize);

/// The user-facing sampling interface (`rand::Rng` lookalike).
pub trait Rng: RngCore {
    /// Sample from the standard distribution (e.g. `f64` in `[0, 1)`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed (`rand::SeedableRng`
/// lookalike; only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from 64 bits.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used to expand seeds into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice utilities, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle, deterministic for a given generator
        /// state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(10i64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(0usize..3);
            assert!(y < 3);
            let z = rng.random_range(1i64..=5);
            assert!((1..=5).contains(&z));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should move something");
    }

    #[test]
    fn negative_ranges_work() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }
}
