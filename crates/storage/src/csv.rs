//! CSV import/export for tables — the paper's "raw relational format".
//!
//! §1.1: "Once the XML data is converted to 'raw' relational format
//! (i.e., CSV text files) it occupies 6.5GB." This module reads and
//! writes that format so generated databases can be inspected,
//! round-tripped, and loaded from external dumps.
//!
//! Format: RFC-4180-style quoting, one header row with column names,
//! `NULL` (unquoted) for SQL NULL, minimal-precision floats.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::schema::{ColType, TableSchema};
use crate::table::Table;
use crate::value::Value;

/// Error while importing CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural or type failure, with row number (1-based, header = 0).
    Malformed {
        /// Row where the problem was found.
        row: usize,
        /// Description.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Malformed { row, message } => {
                write!(f, "csv row {row}: {message}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) || field == "NULL" {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Render one value as a CSV field.
fn render(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => {
            let mut s = String::new();
            write!(s, "{x}").expect("write to string");
            s
        }
        Value::Str(s) => quote(s),
    }
}

/// Export a table to a CSV file (header row + one row per tuple).
pub fn export_table(table: &Table, path: impl AsRef<Path>) -> io::Result<()> {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .columns
        .iter()
        .map(|c| quote(&c.name))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for (_, row) in table.iter() {
        let fields: Vec<String> = row.iter().map(render).collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    if let Some(dir) = path.as_ref().parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, out)
}

/// Parse a whole CSV document into records of `(field, was_quoted)`
/// pairs (RFC-4180: quoted fields may contain commas, quotes, and
/// newlines). Blank records are skipped.
fn parse_records(text: &str) -> Result<Vec<Vec<(String, bool)>>, CsvError> {
    let mut records = Vec::new();
    let mut fields: Vec<(String, bool)> = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut row = 0usize;
    let mut chars = text.chars().peekable();

    let flush_record = |fields: &mut Vec<(String, bool)>,
                        cur: &mut String,
                        quoted: &mut bool,
                        records: &mut Vec<Vec<(String, bool)>>| {
        fields.push((std::mem::take(cur), *quoted));
        *quoted = false;
        // A record consisting of one unquoted empty field is a blank line.
        if !(fields.len() == 1 && fields[0].0.is_empty() && !fields[0].1) {
            records.push(std::mem::take(fields));
        } else {
            fields.clear();
        }
    };

    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() && !quoted => {
                in_quotes = true;
                quoted = true;
            }
            '"' => {
                return Err(CsvError::Malformed {
                    row,
                    message: "stray quote inside unquoted field".into(),
                })
            }
            ',' if !in_quotes => {
                fields.push((std::mem::take(&mut cur), quoted));
                quoted = false;
            }
            '\r' if !in_quotes && chars.peek() == Some(&'\n') => {
                chars.next();
                flush_record(&mut fields, &mut cur, &mut quoted, &mut records);
                row += 1;
            }
            '\n' if !in_quotes => {
                flush_record(&mut fields, &mut cur, &mut quoted, &mut records);
                row += 1;
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(CsvError::Malformed {
            row,
            message: "unterminated quoted field".into(),
        });
    }
    if !cur.is_empty() || quoted || !fields.is_empty() {
        flush_record(&mut fields, &mut cur, &mut quoted, &mut records);
    }
    Ok(records)
}

/// Import a CSV file into a new table with the given schema. The header
/// row must match the schema's column names in order.
pub fn import_table(schema: TableSchema, path: impl AsRef<Path>) -> Result<Table, CsvError> {
    let text = fs::read_to_string(path)?;
    let mut records = parse_records(&text)?.into_iter();
    let head = records.next().ok_or(CsvError::Malformed {
        row: 0,
        message: "empty file".into(),
    })?;
    let expected: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
    let got: Vec<&str> = head.iter().map(|(f, _)| f.as_str()).collect();
    if got != expected {
        return Err(CsvError::Malformed {
            row: 0,
            message: format!("header mismatch: expected {expected:?}, got {got:?}"),
        });
    }

    let mut table = Table::new(schema);
    for (i, fields) in records.enumerate() {
        let i = i + 1;
        if fields.len() != table.schema().columns.len() {
            return Err(CsvError::Malformed {
                row: i,
                message: format!(
                    "expected {} fields, got {}",
                    table.schema().columns.len(),
                    fields.len()
                ),
            });
        }
        let mut row = Vec::with_capacity(fields.len());
        for ((field, quoted), col) in fields.iter().zip(&table.schema().columns.clone()) {
            if field == "NULL" && !quoted {
                row.push(Value::Null);
                continue;
            }
            let v = match col.ty {
                ColType::Int => Value::Int(field.parse().map_err(|_| CsvError::Malformed {
                    row: i,
                    message: format!("bad integer `{field}` in `{}`", col.name),
                })?),
                ColType::Float => Value::Float(field.parse().map_err(|_| CsvError::Malformed {
                    row: i,
                    message: format!("bad float `{field}` in `{}`", col.name),
                })?),
                ColType::Str => Value::str(field),
            };
            row.push(v);
        }
        table.insert(row);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColType::Int),
                ColumnDef::new("name", ColType::Str),
                ColumnDef::new("score", ColType::Float),
            ],
        )
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tab_csv_{name}_{}.csv", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_rows() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::str("plain"), Value::Float(1.5)]);
        t.insert(vec![Value::Int(2), Value::str("com,ma \"q\""), Value::Null]);
        t.insert(vec![Value::Int(3), Value::str("NULL"), Value::Float(-0.25)]);
        let path = tmp("roundtrip");
        export_table(&t, &path).unwrap();
        let back = import_table(schema(), &path).unwrap();
        assert_eq!(back.n_rows(), 3);
        for i in 0..3 {
            assert_eq!(back.row(i), t.row(i), "row {i}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn quoted_null_string_is_not_null() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::str("NULL"), Value::Null]);
        let path = tmp("nulls");
        export_table(&t, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("\"NULL\""),
            "string NULL must be quoted: {text}"
        );
        let back = import_table(schema(), &path).unwrap();
        assert_eq!(back.row(0)[1], Value::str("NULL"));
        assert_eq!(back.row(0)[2], Value::Null);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn header_mismatch_rejected() {
        let path = tmp("header");
        std::fs::write(&path, "wrong,name,score\n1,x,2.0\n").unwrap();
        let err = import_table(schema(), &path).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { row: 0, .. }));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_values_rejected_with_row_number() {
        let path = tmp("badvalue");
        std::fs::write(&path, "id,name,score\n1,x,2.0\nnot_an_int,y,3.0\n").unwrap();
        let err = import_table(schema(), &path).unwrap_err();
        match err {
            CsvError::Malformed { row, message } => {
                assert_eq!(row, 2);
                assert!(message.contains("bad integer"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unterminated_quote_rejected() {
        let path = tmp("quote");
        std::fs::write(&path, "id,name,score\n1,\"open,2.0\n").unwrap();
        assert!(import_table(schema(), &path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_lines_skipped() {
        let path = tmp("empty");
        std::fs::write(&path, "id,name,score\n1,x,2.0\n\n2,y,3.0\n").unwrap();
        let t = import_table(schema(), &path).unwrap();
        assert_eq!(t.n_rows(), 2);
        std::fs::remove_file(path).ok();
    }
}
