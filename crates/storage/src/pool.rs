//! A deterministic buffer pool: fixed-size frames over 8 KiB pages with
//! pin counts, dirty tracking, and **clock eviction that is a pure
//! function of the logical access stream**.
//!
//! The paper's systems ran 6.5–10 GB databases against bounded buffer
//! memory; this pool lets the reproduction do the same while keeping
//! the harness's core guarantee: every artifact is byte-identical at
//! any thread count. The rule that makes that possible is simple —
//! **the pool never observes threads**. Page accesses are fed to the
//! pool by the executor's *coordinator* in the logical access order of
//! the plan (morsel results are replayed in morsel index order, exactly
//! like cost charges), each access gets the next value of a per-query
//! access sequence number, and the clock hand moves only in response to
//! those accesses. Two runs of the same query therefore perform the
//! same hits, misses, and evictions in the same order — at 1 thread or
//! 8, with any morsel size.
//!
//! Misses are classified by the access pattern the executor declares
//! ([`PageHint::Seq`] for readahead-friendly scans, [`PageHint::Random`]
//! for probes), which is what lets the `tab-engine` cost meter charge
//! *observed* I/O: a hit is free, a sequential miss costs a sequential
//! page, a random miss costs a random page.
//!
//! Dirty pages (spill output from hash joins, aggregation, and sorts)
//! are written to a real spill file through the optional [`Pager`] when
//! they are evicted; clean pages are reloaded from the pager's
//! materialized heap files. Without a pager the pool still performs the
//! full frame/eviction accounting over zero-filled frames, which is
//! what the microbenches and unit tests exercise.
//!
//! See `DESIGN.md` §13 for the frame table layout, the determinism
//! rule, and the pin discipline.

use std::collections::{HashMap, HashSet};

use crate::fault::Faults;
use crate::pager::Pager;
use crate::table::PAGE_SIZE;
use crate::trace::{Trace, TraceEvent};

/// Smallest pool the clock can run with: below this, a single probe's
/// pinned descent pages could occupy every frame.
pub const MIN_POOL_PAGES: usize = 8;

/// Identity of one 8 KiB page: a relation id (see [`table_rel_id`] and
/// friends) plus the page number within that relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// Relation id, from [`table_rel_id`] / [`index_rel_id`] /
    /// [`temp_rel_id`].
    pub rel: u64,
    /// Page number within the relation.
    pub page: u64,
}

/// FNV-1a over a namespaced name; stable across runs and platforms so
/// the access stream (and with it every eviction) is reproducible.
fn fnv1a(namespace: &str, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in namespace.bytes().chain(name.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Relation id of a heap table's pages.
pub fn table_rel_id(table: &str) -> u64 {
    fnv1a("T:", table)
}

/// Relation id of an index's pages (leaves first, then internal levels;
/// see `BTreeIndex::descent_pages`).
pub fn index_rel_id(index: &str) -> u64 {
    fnv1a("I:", index)
}

/// Relation id of a temporary (spill) relation, e.g. `"spill"`.
pub fn temp_rel_id(name: &str) -> u64 {
    fnv1a("S:", name)
}

/// The access pattern the caller declares for a fetch; decides whether
/// a miss is charged as a sequential (readahead) or random page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageHint {
    /// Part of a sequential sweep (heap scan, leaf-level scan, spill
    /// write stream): a miss costs a sequential page.
    Seq,
    /// A point access (index descent, heap fetch by row id): a miss
    /// costs a random page.
    Random,
}

/// Outcome of one [`BufferPool::fetch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetched {
    /// The page was resident; no I/O.
    Hit,
    /// Sequential-readahead miss: the page was loaded, charge one
    /// sequential page.
    MissSeq,
    /// Random miss: the page was loaded, charge one random page.
    MissRandom,
}

/// Wall-clock-free pool counters. All fields are order-independent
/// sums, so per-query stats merge into per-cell and per-run totals
/// identically at any thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Accesses served from a resident frame.
    pub hits: u64,
    /// Misses on a sequential ([`PageHint::Seq`]) access.
    pub misses_seq: u64,
    /// Misses on a random ([`PageHint::Random`]) access.
    pub misses_random: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Bytes of dirty pages written to the spill file on eviction.
    pub spill_bytes_written: u64,
    /// Bytes read back from the spill file on a miss.
    pub spill_bytes_read: u64,
}

impl PoolStats {
    /// Total misses of either class.
    pub fn misses(&self) -> u64 {
        self.misses_seq + self.misses_random
    }

    /// Hit rate in `[0, 1]`; `1.0` for an untouched pool.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulate another stats record (order-independent sums).
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses_seq += other.misses_seq;
        self.misses_random += other.misses_random;
        self.evictions += other.evictions;
        self.spill_bytes_written += other.spill_bytes_written;
        self.spill_bytes_read += other.spill_bytes_read;
    }

    /// Whether every counter is zero (a compat-mode run).
    pub fn is_zero(&self) -> bool {
        *self == PoolStats::default()
    }
}

/// One frame of the pool: the resident page, its clock/pin/dirty state,
/// and the 8 KiB buffer.
struct Frame {
    key: PageKey,
    referenced: bool,
    dirty: bool,
    pins: u32,
    data: Box<[u8]>,
}

/// A fixed-capacity buffer pool with deterministic clock eviction.
///
/// One pool is created per query execution and driven only by the
/// executor's coordinator — it is deliberately `!Sync`-in-use (taken by
/// `&mut`), so thread timing cannot reach it.
pub struct BufferPool<'a> {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageKey, usize>,
    hand: usize,
    access_seq: u64,
    stats: PoolStats,
    /// Pages whose dirty contents were evicted to the spill file; a
    /// later miss on one of these is a spill read, not a heap read.
    spilled: HashSet<PageKey>,
    pager: Option<&'a Pager>,
    faults: Faults<'a>,
    trace: Trace<'a>,
    /// `evict:<family>/<config>` when the `panic:evict:*` fault site is
    /// armed for this query's cell.
    evict_site: Option<&'a str>,
}

impl<'a> BufferPool<'a> {
    /// A pool of `pages` frames (clamped to [`MIN_POOL_PAGES`]) over an
    /// optional backing pager.
    pub fn new(
        pages: usize,
        pager: Option<&'a Pager>,
        faults: Faults<'a>,
        trace: Trace<'a>,
        evict_site: Option<&'a str>,
    ) -> Self {
        let capacity = pages.max(MIN_POOL_PAGES);
        BufferPool {
            capacity,
            frames: Vec::new(),
            map: HashMap::new(),
            hand: 0,
            access_seq: 0,
            stats: PoolStats::default(),
            spilled: HashSet::new(),
            pager,
            faults,
            trace,
            evict_site,
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Logical accesses performed so far.
    pub fn access_seq(&self) -> u64 {
        self.access_seq
    }

    /// Access one page. Returns whether it hit, and how the miss (if
    /// any) is classified per `hint`. `dirty` marks the frame dirty
    /// (spill output); dirty frames are written through the pager's
    /// spill file when evicted.
    pub fn fetch(&mut self, key: PageKey, hint: PageHint, dirty: bool) -> Fetched {
        self.access_seq += 1;
        let seq = self.access_seq;
        if let Some(&slot) = self.map.get(&key) {
            let f = &mut self.frames[slot];
            f.referenced = true;
            f.dirty |= dirty;
            self.stats.hits += 1;
            self.trace.emit(|| {
                TraceEvent::new("page")
                    .str("action", "hit")
                    .int("rel", key.rel)
                    .int("page", key.page)
                    .int("frame", slot as u64)
                    .int("seq", seq)
            });
            return Fetched::Hit;
        }
        let fetched = match hint {
            PageHint::Seq => {
                self.stats.misses_seq += 1;
                Fetched::MissSeq
            }
            PageHint::Random => {
                self.stats.misses_random += 1;
                Fetched::MissRandom
            }
        };
        let slot = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                key,
                referenced: true,
                dirty,
                pins: 0,
                data: vec![0u8; PAGE_SIZE as usize].into_boxed_slice(),
            });
            self.frames.len() - 1
        } else {
            let slot = self.evict(seq);
            let f = &mut self.frames[slot];
            f.key = key;
            f.referenced = true;
            f.dirty = dirty;
            f.data.fill(0);
            slot
        };
        self.map.insert(key, slot);
        self.load(key, slot);
        self.trace.emit(|| {
            TraceEvent::new("page")
                .str("action", "miss")
                .int("rel", key.rel)
                .int("page", key.page)
                .int("frame", slot as u64)
                .int("seq", seq)
        });
        fetched
    }

    /// Read the page's bytes from the backing store into its frame.
    fn load(&mut self, key: PageKey, slot: usize) {
        if self.spilled.contains(&key) {
            self.stats.spill_bytes_read += PAGE_SIZE as u64;
            if let Some(p) = self.pager {
                p.read_spill(key, &mut self.frames[slot].data)
                    .unwrap_or_else(|e| panic!("buffer pool spill read failed: {e}"));
            }
        } else if let Some(p) = self.pager {
            p.read_heap(key, &mut self.frames[slot].data)
                .unwrap_or_else(|e| panic!("buffer pool heap read failed: {e}"));
        }
        // No pager (or no heap file): the frame stays zero-filled — the
        // accounting is identical, only the payload is synthetic.
    }

    /// Run the clock hand to a victim frame, flushing it if dirty.
    /// Deterministic: the hand position is a pure function of the
    /// access stream that preceded this eviction.
    fn evict(&mut self, seq: u64) -> usize {
        let n = self.frames.len();
        let mut sweeps = 0usize;
        loop {
            assert!(
                sweeps <= 2 * n + 1,
                "buffer pool exhausted: all {n} frames pinned"
            );
            let slot = self.hand;
            self.hand = (self.hand + 1) % n;
            sweeps += 1;
            let f = &mut self.frames[slot];
            if f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            // Victim found.
            let victim = f.key;
            let was_dirty = f.dirty;
            if let Some(site) = self.evict_site {
                self.faults.panic_if_armed(site);
            }
            if was_dirty {
                self.stats.spill_bytes_written += PAGE_SIZE as u64;
                if let Err(e) = self.faults.io("spill").and_then(|()| match self.pager {
                    Some(p) => p.write_spill(victim, &self.frames[slot].data),
                    None => Ok(()),
                }) {
                    panic!("injected fault: poisoned `spill` write: {e}");
                }
                self.spilled.insert(victim);
            }
            self.stats.evictions += 1;
            self.map.remove(&victim);
            self.trace.emit(|| {
                TraceEvent::new("page")
                    .str("action", "evict")
                    .int("rel", victim.rel)
                    .int("page", victim.page)
                    .int("frame", slot as u64)
                    .int("seq", seq)
            });
            return slot;
        }
    }

    /// Pin a resident page: it cannot be evicted until unpinned.
    ///
    /// # Panics
    /// Panics if the page is not resident — pinning is only meaningful
    /// immediately after a fetch.
    pub fn pin(&mut self, key: PageKey) {
        let slot = *self.map.get(&key).expect("pin of a non-resident page");
        self.frames[slot].pins += 1;
    }

    /// Release one pin on a resident page.
    ///
    /// # Panics
    /// Panics if the page is not resident or not pinned.
    pub fn unpin(&mut self, key: PageKey) {
        let slot = *self.map.get(&key).expect("unpin of a non-resident page");
        let f = &mut self.frames[slot];
        assert!(f.pins > 0, "unpin of an unpinned page");
        f.pins -= 1;
    }

    /// Whether a page is currently resident (test/bench helper).
    pub fn is_resident(&self, key: PageKey) -> bool {
        self.map.contains_key(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(rel: u64, page: u64) -> PageKey {
        PageKey { rel, page }
    }

    fn pool(pages: usize) -> BufferPool<'static> {
        BufferPool::new(pages, None, Faults::disabled(), Trace::disabled(), None)
    }

    #[test]
    fn rel_ids_are_stable_and_namespaced() {
        assert_eq!(table_rel_id("protein"), table_rel_id("protein"));
        assert_ne!(table_rel_id("protein"), index_rel_id("protein"));
        assert_ne!(table_rel_id("protein"), temp_rel_id("protein"));
    }

    #[test]
    fn hits_after_cold_misses() {
        let mut p = pool(16);
        assert_eq!(p.fetch(key(1, 0), PageHint::Seq, false), Fetched::MissSeq);
        assert_eq!(
            p.fetch(key(1, 1), PageHint::Random, false),
            Fetched::MissRandom
        );
        assert_eq!(p.fetch(key(1, 0), PageHint::Seq, false), Fetched::Hit);
        let s = p.stats();
        assert_eq!((s.hits, s.misses_seq, s.misses_random), (1, 1, 1));
        assert_eq!(s.evictions, 0);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_clamped() {
        let p = pool(1);
        assert_eq!(p.capacity(), MIN_POOL_PAGES);
    }

    #[test]
    fn clock_evicts_deterministically() {
        // Capacity 8; touch 9 distinct pages: the first page (hand at 0,
        // ref bit cleared on the first sweep) is the victim.
        let mut p = pool(8);
        for i in 0..8 {
            p.fetch(key(1, i), PageHint::Seq, false);
        }
        p.fetch(key(2, 0), PageHint::Random, false);
        assert_eq!(p.stats().evictions, 1);
        assert!(!p.is_resident(key(1, 0)), "clock victim is the first page");
        assert!(p.is_resident(key(1, 1)));
        assert!(p.is_resident(key(2, 0)));
    }

    #[test]
    fn eviction_is_a_pure_function_of_the_access_stream() {
        let stream: Vec<PageKey> = (0..100).map(|i| key(1 + i % 3, (i * 7) % 13)).collect();
        let run = |keys: &[PageKey]| {
            let mut p = pool(8);
            let out: Vec<Fetched> = keys
                .iter()
                .map(|&k| p.fetch(k, PageHint::Random, false))
                .collect();
            (out, p.stats())
        };
        let (a, sa) = run(&stream);
        let (b, sb) = run(&stream);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.evictions > 0);
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let mut p = pool(8);
        for i in 0..8 {
            p.fetch(key(1, i), PageHint::Seq, false);
        }
        p.pin(key(1, 0));
        for i in 0..20 {
            p.fetch(key(2, i), PageHint::Random, false);
        }
        assert!(p.is_resident(key(1, 0)), "pinned page survived pressure");
        p.unpin(key(1, 0));
        for i in 0..20 {
            p.fetch(key(3, i), PageHint::Random, false);
        }
        assert!(!p.is_resident(key(1, 0)), "unpinned page became evictable");
    }

    #[test]
    #[should_panic(expected = "all 8 frames pinned")]
    fn fully_pinned_pool_panics_instead_of_looping() {
        let mut p = pool(8);
        for i in 0..8 {
            p.fetch(key(1, i), PageHint::Seq, false);
            p.pin(key(1, i));
        }
        p.fetch(key(2, 0), PageHint::Random, false);
    }

    #[test]
    fn dirty_eviction_counts_spill_bytes_and_readback() {
        let mut p = pool(8);
        // 8 dirty spill pages fill the pool; 8 more evict them all.
        for i in 0..16 {
            p.fetch(key(9, i), PageHint::Seq, true);
        }
        let s = p.stats();
        assert_eq!(s.evictions, 8);
        assert_eq!(s.spill_bytes_written, 8 * PAGE_SIZE as u64);
        assert_eq!(s.spill_bytes_read, 0);
        // Touching an evicted dirty page again is a spill read.
        p.fetch(key(9, 0), PageHint::Random, false);
        assert_eq!(p.stats().spill_bytes_read, PAGE_SIZE as u64);
    }

    #[test]
    fn page_trace_events_carry_frame_and_seq() {
        let sink = crate::trace::MemoryTraceSink::new();
        let mut p = BufferPool::new(8, None, Faults::disabled(), Trace::to(&sink), None);
        p.fetch(key(1, 0), PageHint::Seq, false);
        p.fetch(key(1, 0), PageHint::Seq, false);
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"page\""), "{}", lines[0]);
        assert!(lines[0].contains("\"action\":\"miss\""), "{}", lines[0]);
        assert!(lines[0].contains("\"frame\":0"), "{}", lines[0]);
        assert!(lines[0].contains("\"seq\":1"), "{}", lines[0]);
        assert!(lines[1].contains("\"action\":\"hit\""), "{}", lines[1]);
        assert!(lines[1].contains("\"seq\":2"), "{}", lines[1]);
    }

    #[test]
    fn injected_spill_enospc_panics_with_the_site() {
        let plan = crate::fault::FaultPlan::parse("enospc:spill").expect("spec");
        let err = std::panic::catch_unwind(|| {
            let mut p = BufferPool::new(8, None, Faults::to(&plan), Trace::disabled(), None);
            for i in 0..9 {
                p.fetch(key(9, i), PageHint::Seq, true);
            }
        })
        .expect_err("armed spill fault must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("spill"), "{msg}");
    }

    #[test]
    fn injected_evict_panic_fires_at_first_eviction() {
        let plan = crate::fault::FaultPlan::parse("panic:evict:F/C").expect("spec");
        let err = std::panic::catch_unwind(|| {
            let mut p = BufferPool::new(
                8,
                None,
                Faults::to(&plan),
                Trace::disabled(),
                Some("evict:F/C"),
            );
            for i in 0..9 {
                p.fetch(key(1, i), PageHint::Seq, false);
            }
        })
        .expect_err("armed evict fault must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("evict:F/C"), "{msg}");
    }
}
