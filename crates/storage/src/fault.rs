//! Deterministic fault injection and crash-consistent file writes.
//!
//! The reproduction harness's determinism guarantee ("outputs are
//! byte-identical at any thread count") is only as strong as its story
//! for runs that *don't* finish: a worker panicking mid-grid or a full
//! disk under an artifact write used to abort the process and discard
//! every completed cell. This module supplies the two halves of the
//! crash-consistency answer:
//!
//! 1. **[`FaultPlan`] / [`Faults`]** — a parsed fault-injection plan
//!    that fires deterministically at *named sites* (an artifact file
//!    name, a grid cell identity, the trace sink). The [`Faults`]
//!    handle follows the same contract as [`crate::trace::Trace`]: it
//!    is `Copy`, threads through call stacks without lifetime
//!    gymnastics, and a disabled handle costs one branch per site.
//! 2. **[`atomic_write`]** — write-temp-then-rename, so a run killed
//!    mid-write never leaves a half-written artifact at its final
//!    path; readers see either the old bytes or the new bytes.
//!
//! # Fault spec grammar
//!
//! A plan is parsed from a comma-separated spec (CLI `--faults SPEC`,
//! or the `TAB_FAULTS` environment variable):
//!
//! ```text
//! SPEC := arm (',' arm)*
//! arm  := 'enospc:' SITE [':' N]     simulated ENOSPC at SITE's N-th
//!                                    hit and every hit after (N is
//!                                    0-based, default 0 — the disk
//!                                    stays full once it fills)
//!       | 'panic:' SITE [':' N]      panic at SITE's N-th hit and
//!                                    every hit after (default 0)
//!       | 'truncate:trace:' N        the trace sink tears mid-line
//!                                    after N complete lines
//!       | 'drop:conn:' N             the server closes the connection
//!                                    instead of writing its N-th
//!                                    response (exactly once)
//!       | 'delay:conn:' N            the server stalls before writing
//!                                    its N-th response (exactly once)
//!       | 'torn:wire:' N             the server writes half of its
//!                                    N-th response, then closes
//!                                    (exactly once)
//! ```
//!
//! The three wire arms fire **exactly once** at their hit index rather
//! than from it onward: a wire fault models one transient network
//! event, and the idempotent-retry machinery it exists to exercise
//! would never converge against a permanently broken wire.
//!
//! Sites are plain strings chosen by the instrumented code:
//!
//! | site | fired by |
//! |------|----------|
//! | `<file>.csv`, `timings.json`, … | the harness's artifact writes (`write_csv`, bench records) |
//! | `cell:<family>/<config>` | each query job of that grid cell |
//! | `morsel:<family>/<config>` | every morsel prologue of the cell's queries — a panic inside an intra-query worker, caught and journaled like a `cell:` poison |
//! | `checkpoint` | the crash-consistency journal's writes |
//! | `trace` | every trace-sink line (`enospc:trace` silences the sink) |
//! | `spill` | every dirty-page eviction's spill write (pool mode; `enospc:spill:N` fills the disk at the N-th spilled page) |
//! | `evict:<family>/<config>` | every buffer-pool eviction inside that cell's queries — a panic here crashes a run that has already spilled pages |
//! | `wal` | every WAL append's write (`enospc:wal` fills the disk under the serving log) |
//! | `wal:append` | every WAL append (`panic:wal:append:N` crashes mid-record, leaving a real torn tail for recovery to truncate) |
//! | `datagen` | each generated table's handoff into the database (`enospc:datagen:N` fails the N-th table) |
//! | `build:<table>` | one generated table's handoff (`panic:build:protein` crashes datagen at that table) |
//! | `conn`, `wire` | every server response about to be written (the `drop:`/`delay:`/`torn:` wire arms above) |
//!
//! Examples: `panic:cell:NREF3J/NREF_1C` poisons one grid cell;
//! `enospc:claims.csv` fails the claims table write;
//! `enospc:trace:100,truncate:trace:40` is a full disk *and* a torn
//! trace tail.
//!
//! # Determinism
//!
//! Every arm fires as a pure function of its site string and a per-arm
//! hit counter, never wall-clock or randomness, so a fault plan turns
//! one deterministic run into another deterministic run: the same spec
//! fails at the same logical point every time. (Under a parallel grid
//! the *identity*-matched sites — `cell:…` — are exactly reproducible
//! at any thread count; hit-counted sites like `trace` fire after the
//! same number of events, though which worker's event trips the
//! counter may vary.) With no plan armed, every check is a single
//! `Option` branch, mirroring the zero-overhead contract of the trace
//! layer.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// What an armed fault does when its site is hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The I/O boundary reports "no space left on device".
    Enospc,
    /// The site panics (a "poisoned" unit of work).
    Panic,
    /// The trace sink writes half a line, then goes silent.
    TruncateTrace,
    /// The server closes the connection instead of writing a response.
    DropConn,
    /// The server stalls before writing a response.
    DelayConn,
    /// The server writes half a response line, then closes.
    TornWire,
}

/// What a fired wire arm asks the server's connection loop to do to
/// the response it was about to write. See [`Faults::wire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Close the connection without writing anything.
    Drop,
    /// Sleep briefly, then write normally.
    Delay,
    /// Write the first half of the line, then close.
    Torn,
}

/// One armed fault: a site, a kind, and the hit index it fires at.
#[derive(Debug)]
struct FaultArm {
    site: String,
    kind: FaultKind,
    /// Fires at the `after`-th hit (0-based). Durable arms (`once ==
    /// false`) keep firing on every hit beyond — a filled disk stays
    /// full; transient arms (the wire kinds) fire exactly once.
    after: u64,
    /// `true`: fire only *at* the `after`-th hit, not beyond.
    once: bool,
    hits: AtomicU64,
}

impl FaultArm {
    fn durable(site: impl Into<String>, kind: FaultKind, after: u64) -> Self {
        FaultArm {
            site: site.into(),
            kind,
            after,
            once: false,
            hits: AtomicU64::new(0),
        }
    }

    fn transient(site: impl Into<String>, kind: FaultKind, after: u64) -> Self {
        FaultArm {
            site: site.into(),
            kind,
            after,
            once: true,
            hits: AtomicU64::new(0),
        }
    }

    /// Count one hit; `true` if the arm fires on it.
    fn hit(&self) -> bool {
        let n = self.hits.fetch_add(1, Ordering::Relaxed);
        if self.once {
            n == self.after
        } else {
            n >= self.after
        }
    }
}

/// Split a trailing `:N` numeric segment off a site spec, defaulting
/// to hit 0. Safe for sites that themselves contain `:` (e.g.
/// `cell:NREF3J/NREF_1C`): only a purely numeric tail is taken.
fn split_hit_index(rest: &str) -> (&str, u64) {
    match rest.rsplit_once(':') {
        Some((site, n)) if !site.is_empty() => match n.parse::<u64>() {
            Ok(after) => (site, after),
            Err(_) => (rest, 0),
        },
        _ => (rest, 0),
    }
}

/// The trace sink's share of a fault plan, extracted once at sink
/// creation so the sink owns its fault state (no borrowed plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFault {
    /// Complete lines to emit before the fault bites.
    pub after_lines: u64,
    /// `true`: tear the next line mid-way (a crash's torn tail).
    /// `false`: simulated ENOSPC (drop the line and everything after).
    pub torn: bool,
}

/// A parsed, armed fault-injection plan. See the module docs for the
/// spec grammar. An empty plan (the default) arms nothing.
#[derive(Debug, Default)]
pub struct FaultPlan {
    arms: Vec<FaultArm>,
}

impl FaultPlan {
    /// Parse a comma-separated fault spec. Empty input yields the
    /// empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut arms = Vec::new();
        for raw in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (kind, rest) = raw
                .split_once(':')
                .ok_or_else(|| format!("fault `{raw}`: expected `kind:site`"))?;
            let arm = match kind {
                "enospc" => {
                    // A trailing `:N` numeric segment is the hit index.
                    let (site, after) = split_hit_index(rest);
                    FaultArm::durable(site, FaultKind::Enospc, after)
                }
                "panic" => {
                    let (site, after) = split_hit_index(rest);
                    FaultArm::durable(site, FaultKind::Panic, after)
                }
                "truncate" => {
                    let n = rest
                        .strip_prefix("trace:")
                        .and_then(|n| n.parse::<u64>().ok())
                        .ok_or_else(|| format!("fault `{raw}`: expected `truncate:trace:N`"))?;
                    FaultArm::durable("trace", FaultKind::TruncateTrace, n)
                }
                "drop" | "delay" | "torn" => {
                    let (want_site, fault_kind) = match kind {
                        "drop" => ("conn", FaultKind::DropConn),
                        "delay" => ("conn", FaultKind::DelayConn),
                        _ => ("wire", FaultKind::TornWire),
                    };
                    let n = rest
                        .strip_prefix(want_site)
                        .and_then(|r| r.strip_prefix(':'))
                        .and_then(|n| n.parse::<u64>().ok())
                        .ok_or_else(|| format!("fault `{raw}`: expected `{kind}:{want_site}:N`"))?;
                    FaultArm::transient(want_site, fault_kind, n)
                }
                other => {
                    return Err(format!(
                        "fault `{raw}`: unknown kind `{other}` \
                         (enospc|panic|truncate|drop|delay|torn)"
                    ))
                }
            };
            if arm.site.is_empty() {
                return Err(format!("fault `{raw}`: empty site"));
            }
            arms.push(arm);
        }
        Ok(FaultPlan { arms })
    }

    /// Parse the `TAB_FAULTS` environment variable, if set.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("TAB_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// Whether the plan arms anything at all.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// The arms targeting the trace sink, reduced to the sink-owned
    /// form (`truncate:trace` wins over `enospc:trace` if both are
    /// armed at the same line, being the more specific corruption).
    pub fn trace_fault(&self) -> Option<TraceFault> {
        let mut out: Option<TraceFault> = None;
        for arm in self.arms.iter().filter(|a| a.site == "trace") {
            let tf = TraceFault {
                after_lines: arm.after,
                torn: arm.kind == FaultKind::TruncateTrace,
            };
            out = Some(match out {
                Some(prev) if prev.after_lines < tf.after_lines => prev,
                Some(prev) if prev.after_lines == tf.after_lines && prev.torn => prev,
                _ => tf,
            });
        }
        out
    }

    /// Human-readable description of every armed fault, for `tab
    /// faults` and run banners.
    pub fn describe(&self) -> Vec<String> {
        self.arms
            .iter()
            .map(|a| match a.kind {
                FaultKind::Enospc => {
                    format!("enospc at `{}` from hit {}", a.site, a.after)
                }
                FaultKind::Panic => format!("panic at `{}` from hit {}", a.site, a.after),
                FaultKind::TruncateTrace => {
                    format!("trace torn after {} lines", a.after)
                }
                FaultKind::DropConn => {
                    format!("connection dropped at response {}", a.after)
                }
                FaultKind::DelayConn => {
                    format!("connection delayed at response {}", a.after)
                }
                FaultKind::TornWire => {
                    format!("response torn mid-write at response {}", a.after)
                }
            })
            .collect()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe().join(", "))
    }
}

/// The injected-ENOSPC error text carried by a fired `enospc` arm's
/// [`io::Error`]; contains the site so error chains name the boundary.
pub fn injected_enospc(site: &str) -> io::Error {
    io::Error::other(format!(
        "no space left on device (injected fault at site `{site}`)"
    ))
}

/// A zero-cost-when-disabled fault handle: either a reference to an
/// armed [`FaultPlan`] or nothing. `Copy`, mirroring
/// [`crate::trace::Trace`], so it threads through `par_map` closures
/// freely.
#[derive(Clone, Copy, Default)]
pub struct Faults<'a> {
    plan: Option<&'a FaultPlan>,
}

impl fmt::Debug for Faults<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Faults")
            .field("armed", &self.plan.map_or(0, |p| p.arms.len()))
            .finish()
    }
}

impl<'a> Faults<'a> {
    /// The no-op handle: every check is a single branch.
    pub fn disabled() -> Self {
        Faults { plan: None }
    }

    /// A handle over `plan`. An empty plan behaves like `disabled`.
    pub fn to(plan: &'a FaultPlan) -> Self {
        Faults {
            plan: (!plan.is_empty()).then_some(plan),
        }
    }

    /// Whether any fault is armed. Use to skip building site strings
    /// when nothing can fire.
    pub fn is_enabled(&self) -> bool {
        self.plan.is_some()
    }

    /// Check an I/O boundary: returns the injected ENOSPC error if an
    /// `enospc` arm matching `site` fires on this hit.
    pub fn io(&self, site: &str) -> io::Result<()> {
        if let Some(plan) = self.plan {
            for arm in &plan.arms {
                if arm.kind == FaultKind::Enospc && arm.site == site && arm.hit() {
                    return Err(injected_enospc(site));
                }
            }
        }
        Ok(())
    }

    /// Check a unit-of-work boundary: panics if a `panic` arm matches
    /// `site`. The panic message names the site so `catch_unwind`
    /// layers can report which unit was poisoned.
    pub fn panic_if_armed(&self, site: &str) {
        if self.panic_fires(site) {
            panic!("injected fault: poisoned `{site}`");
        }
    }

    /// Count one hit at a `panic` site and report whether an arm fired,
    /// *without* panicking. Call sites that must corrupt state first
    /// (e.g. the WAL's half-written torn tail) probe with this, do the
    /// damage, and then panic themselves.
    pub fn panic_fires(&self, site: &str) -> bool {
        let Some(plan) = self.plan else { return false };
        plan.arms
            .iter()
            .any(|arm| arm.kind == FaultKind::Panic && arm.site == site && arm.hit())
    }

    /// Count one server response about to be written against every
    /// armed wire arm, returning the action of the arm that fired (if
    /// any). Every response counts one hit on *all* wire arms, so a
    /// plan like `drop:conn:2,torn:wire:5` indexes both faults on the
    /// same global response sequence. If several arms fire on the same
    /// response, the most destructive wins (drop > torn > delay).
    pub fn wire(&self) -> Option<WireFault> {
        let plan = self.plan?;
        let mut fired: Option<WireFault> = None;
        for arm in &plan.arms {
            let action = match arm.kind {
                FaultKind::DropConn => WireFault::Drop,
                FaultKind::TornWire => WireFault::Torn,
                FaultKind::DelayConn => WireFault::Delay,
                _ => continue,
            };
            if arm.hit() {
                fired = Some(match (fired, action) {
                    (Some(WireFault::Drop), _) | (_, WireFault::Drop) => WireFault::Drop,
                    (Some(WireFault::Torn), _) | (_, WireFault::Torn) => WireFault::Torn,
                    _ => WireFault::Delay,
                });
            }
        }
        fired
    }
}

/// Write `bytes` to `path` crash-consistently: the bytes land in
/// `<path>.tmp` first and are renamed over `path` only once complete,
/// so a killed process never leaves a half-written file at the final
/// path. The parent directory is created if missing.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let tmp = tmp_path(path);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// The sibling `<path>.tmp` staging name used by [`atomic_write`].
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<FaultPlan>();
    _assert_send_sync::<Faults<'static>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_disabled_plans_never_fire() {
        let f = Faults::disabled();
        assert!(!f.is_enabled());
        f.io("claims.csv").expect("disabled handle cannot fail");
        f.panic_if_armed("cell:X/Y");
        let empty = FaultPlan::parse("").expect("empty spec");
        assert!(empty.is_empty());
        assert!(!Faults::to(&empty).is_enabled());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("enospc").is_err());
        assert!(FaultPlan::parse("panic:").is_err());
        assert!(FaultPlan::parse("truncate:trace:x").is_err());
        assert!(FaultPlan::parse("truncate:claims.csv:3").is_err());
        assert!(FaultPlan::parse("explode:claims.csv").is_err());
    }

    #[test]
    fn enospc_fires_at_matching_site_from_nth_hit() {
        let plan = FaultPlan::parse("enospc:claims.csv,enospc:checkpoint:2").expect("spec");
        let f = Faults::to(&plan);
        assert!(f.is_enabled());
        // Non-matching sites never fail.
        f.io("timings.json").expect("unarmed site");
        // Default arm fires on the first hit and stays failed.
        let e = f.io("claims.csv").expect_err("armed site");
        assert!(e.to_string().contains("claims.csv"), "{e}");
        f.io("claims.csv").expect_err("disk stays full");
        // `:2` arm passes twice, then fails.
        f.io("checkpoint").expect("hit 0");
        f.io("checkpoint").expect("hit 1");
        f.io("checkpoint").expect_err("hit 2");
    }

    #[test]
    fn panic_arm_names_its_site() {
        let plan = FaultPlan::parse("panic:cell:NREF3J/NREF_1C").expect("spec");
        let f = Faults::to(&plan);
        f.panic_if_armed("cell:NREF2J/NREF_P"); // no match
        let err = std::panic::catch_unwind(|| f.panic_if_armed("cell:NREF3J/NREF_1C"))
            .expect_err("armed site panics");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("cell:NREF3J/NREF_1C"), "{msg}");
    }

    #[test]
    fn wire_arms_fire_exactly_once_at_their_index() {
        let plan = FaultPlan::parse("drop:conn:1,delay:conn:3").expect("spec");
        let f = Faults::to(&plan);
        assert_eq!(f.wire(), None, "response 0 passes");
        assert_eq!(f.wire(), Some(WireFault::Drop), "response 1 dropped");
        assert_eq!(f.wire(), None, "transient arm does not stay armed");
        assert_eq!(f.wire(), Some(WireFault::Delay));
        assert_eq!(f.wire(), None);
        // Drop outranks delay when both fire on the same response.
        let both = FaultPlan::parse("delay:conn:0,drop:conn:0").expect("spec");
        assert_eq!(Faults::to(&both).wire(), Some(WireFault::Drop));
        assert!(FaultPlan::parse("torn:wire").is_err());
        assert!(FaultPlan::parse("drop:sock:1").is_err());
        assert!(FaultPlan::parse("delay:conn:x").is_err());
    }

    #[test]
    fn panic_arm_supports_hit_index_and_probe() {
        let plan = FaultPlan::parse("panic:wal:append:2").expect("spec");
        let f = Faults::to(&plan);
        assert!(!f.panic_fires("wal:append"), "hit 0 passes");
        assert!(!f.panic_fires("wal:append"), "hit 1 passes");
        assert!(f.panic_fires("wal:append"), "hit 2 fires");
        assert!(f.panic_fires("wal:append"), "durable arm stays armed");
        assert!(!f.panic_fires("wal"), "site match is exact");
    }

    #[test]
    fn trace_fault_extraction() {
        assert_eq!(
            FaultPlan::parse("enospc:claims.csv").unwrap().trace_fault(),
            None
        );
        assert_eq!(
            FaultPlan::parse("truncate:trace:40").unwrap().trace_fault(),
            Some(TraceFault {
                after_lines: 40,
                torn: true
            })
        );
        // The earlier-firing arm wins.
        assert_eq!(
            FaultPlan::parse("enospc:trace:100,truncate:trace:40")
                .unwrap()
                .trace_fault(),
            Some(TraceFault {
                after_lines: 40,
                torn: true
            })
        );
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("tab_fault_aw_{}", std::process::id()));
        let path = dir.join("out.csv");
        atomic_write(&path, b"v1").expect("first write");
        atomic_write(&path, b"v2").expect("replace");
        assert_eq!(std::fs::read(&path).expect("read back"), b"v2");
        assert!(!tmp_path(&path).exists(), "tmp staging file left behind");
        std::fs::remove_dir_all(&dir).ok();
    }
}
